"""Cross-cutting invariants of the whole stack (hypothesis-driven).

These are the properties a user silently relies on: the method must not
care how the unknowns are numbered, how the system is scaled, or how the
preconditioner is normalized — and the full pipeline must keep solving the
problem it was given.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import plate_problem, solve_mstep_ssor
from repro.core import (
    AbsoluteResidual,
    MStepPreconditioner,
    SSORSplitting,
    neumann_coefficients,
    pcg,
)
from repro.driver import build_blocked_system
from repro.util import permutation_matrix


class TestPermutationInvariance:
    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=8, deadline=None)
    def test_pcg_commutes_with_renumbering(self, seed):
        # Solve(P K Pᵀ, P f) must equal P·Solve(K, f): CG is basis-blind.
        prob = plate_problem(5)
        rng = np.random.default_rng(seed)
        perm = rng.permutation(prob.n)
        p = permutation_matrix(perm)
        k_perm = (p @ prob.k @ p.T).tocsr()
        f_perm = np.asarray(p @ prob.f)

        direct = pcg(prob.k, prob.f, stopping=AbsoluteResidual(1e-10))
        renumbered = pcg(k_perm, f_perm, stopping=AbsoluteResidual(1e-10))
        assert renumbered.iterations == direct.iterations
        assert np.asarray(p @ direct.u) == pytest.approx(
            renumbered.u, rel=1e-6, abs=1e-9
        )

    def test_multicolor_reordering_preserves_solution(self):
        # The driver solves in multicolor ordering and un-permutes; the
        # result must satisfy the *original* system.
        prob = plate_problem(7)
        solve = solve_mstep_ssor(prob, 3, eps=1e-9)
        assert prob.k @ solve.u == pytest.approx(prob.f, abs=1e-6)


class TestScaleInvariance:
    @given(st.floats(1e-3, 1e3))
    @settings(max_examples=10, deadline=None)
    def test_system_scaling_leaves_solution_path(self, c):
        # K → cK, f → cf: identical u-iterates, identical iterations (the
        # ‖Δu‖∞ test sees the same numbers).
        prob = plate_problem(5)
        k_scaled = (prob.k * c).tocsr()
        base = solve_mstep_ssor(prob, 2, eps=1e-7)

        class Scaled:
            k = k_scaled
            f = prob.f * c
            group_of_unknown = prob.group_of_unknown
            group_labels = prob.group_labels

        scaled = solve_mstep_ssor(Scaled(), 2, eps=1e-7)
        assert scaled.iterations == base.iterations
        assert scaled.u == pytest.approx(base.u, rel=1e-9, abs=1e-12)

    @given(st.floats(0.1, 10.0))
    @settings(max_examples=10, deadline=None)
    def test_preconditioner_scaling_invariance(self, c):
        prob = plate_problem(5)
        splitting = SSORSplitting(prob.k)
        base = pcg(
            prob.k, prob.f,
            MStepPreconditioner(splitting, neumann_coefficients(3)),
            eps=1e-8,
        )
        scaled = pcg(
            prob.k, prob.f,
            MStepPreconditioner(splitting, c * neumann_coefficients(3)),
            eps=1e-8,
        )
        assert scaled.iterations == base.iterations
        assert scaled.u == pytest.approx(base.u, rel=1e-8, abs=1e-11)


class TestGeometryRobustness:
    @given(st.floats(0.2, 5.0), st.integers(4, 9), st.integers(4, 9))
    @settings(max_examples=10, deadline=None)
    def test_anisotropic_plates_still_solve(self, aspect, nrows, ncols):
        prob = plate_problem(nrows, ncols=ncols, width=aspect, height=1.0)
        solve = solve_mstep_ssor(prob, 2, eps=1e-7)
        assert solve.result.converged
        assert prob.k @ solve.u == pytest.approx(prob.f, abs=1e-5)

    @given(st.floats(0.05, 0.45))
    @settings(max_examples=8, deadline=None)
    def test_poissons_ratio_sweep(self, nu):
        from repro.fem import ElasticMaterial

        prob = plate_problem(6, material=ElasticMaterial(poissons_ratio=nu))
        solve = solve_mstep_ssor(prob, 3, eps=1e-8)
        assert solve.result.converged


class TestEnergyMonotonicity:
    def test_cg_error_decreases_in_energy_norm(self):
        # The defining CG property: ‖u − uᵏ‖_K is monotonically decreasing.
        prob = plate_problem(6)
        exact = prob.direct_solution()
        energies = []

        def track(iteration, u, delta):
            e = u - exact
            energies.append(float(e @ (prob.k @ e)))

        pcg(prob.k, prob.f, eps=1e-10, callback=track)
        assert all(
            b <= a * (1 + 1e-10) for a, b in zip(energies, energies[1:])
        )

    def test_preconditioned_cg_error_also_monotone(self):
        prob = plate_problem(6)
        exact = prob.direct_solution()
        precond = MStepPreconditioner(
            SSORSplitting(prob.k), neumann_coefficients(3)
        )
        energies = []

        def track(iteration, u, delta):
            e = u - exact
            energies.append(float(e @ (prob.k @ e)))

        pcg(prob.k, prob.f, preconditioner=precond, eps=1e-10, callback=track)
        assert all(
            b <= a * (1 + 1e-10) for a, b in zip(energies, energies[1:])
        )


class TestBlockedSystemRoundTrip:
    @given(st.integers(4, 9))
    @settings(max_examples=6, deadline=None)
    def test_blocked_reconstruction(self, a):
        # Reassembling the permuted matrix from its diagonal vectors and
        # off-diagonal blocks reproduces it exactly.
        prob = plate_problem(a)
        blocked = build_blocked_system(prob)
        n = blocked.n
        rebuilt = np.zeros((n, n))
        slices = blocked.group_slices
        for c in range(blocked.n_groups):
            rows = slices[c]
            idx = np.arange(rows.start, rows.stop)
            rebuilt[idx, idx] = blocked.diagonals[c]
            for j, block in blocked.blocks[c].items():
                rebuilt[rows, slices[j]] = block.toarray()
        assert rebuilt == pytest.approx(blocked.permuted.toarray())
