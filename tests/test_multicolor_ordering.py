"""Tests for coloring validation, greedy coloring, and the ordering."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fem import plate_problem, poisson_problem
from repro.multicolor import (
    MulticolorOrdering,
    greedy_multicolor,
    groups_from_node_coloring,
    validate_groups,
)


@pytest.fixture(scope="module")
def plate():
    return plate_problem(6)


@pytest.fixture(scope="module")
def plate_ordering(plate):
    return MulticolorOrdering.from_groups(
        plate.group_of_unknown, plate.group_labels
    )


class TestGroupsFromNodeColoring:
    def test_plate_groups_match_problem(self, plate):
        mesh = plate.mesh
        groups = groups_from_node_coloring(
            mesh.node_colors, mesh.dof_node, mesh.dof_component
        )
        assert np.array_equal(groups, plate.group_of_unknown)

    def test_six_groups_for_three_colors(self, plate):
        assert set(np.unique(plate.group_of_unknown)) == set(range(6))

    def test_component_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            groups_from_node_coloring(
                np.array([0, 1]), np.array([0, 1]), np.array([0, 5])
            )


class TestValidateGroups:
    def test_plate_coloring_is_proper(self, plate):
        validate_groups(plate.k, plate.group_of_unknown)

    def test_poisson_red_black_is_proper(self):
        prob = poisson_problem(6)
        validate_groups(prob.k, prob.group_of_unknown)

    def test_catches_violation(self, plate):
        bad = np.zeros(plate.n, dtype=np.int64)  # everything one group
        with pytest.raises(ValueError, match="coupled"):
            validate_groups(plate.k, bad)

    def test_wrong_length_rejected(self, plate):
        with pytest.raises(ValueError):
            validate_groups(plate.k, np.zeros(3, dtype=np.int64))


class TestGreedyMulticolor:
    def test_produces_proper_coloring_on_plate(self, plate):
        colors = greedy_multicolor(plate.k)
        validate_groups(plate.k, colors)

    def test_poisson_needs_two_colors(self):
        prob = poisson_problem(8)
        colors = greedy_multicolor(prob.k)
        validate_groups(prob.k, colors)
        assert colors.max() + 1 == 2

    def test_natural_order_variant(self, plate):
        colors = greedy_multicolor(plate.k, order="natural")
        validate_groups(plate.k, colors)

    def test_color_count_bounded_by_degree(self, plate):
        colors = greedy_multicolor(plate.k)
        max_degree = int(np.diff(plate.k.tocsr().indptr).max()) - 1
        assert colors.max() + 1 <= max_degree + 1

    @given(st.integers(0, 2**31 - 1), st.integers(8, 30))
    @settings(max_examples=15, deadline=None)
    def test_random_spd_graphs(self, seed, n):
        rng = np.random.default_rng(seed)
        a = sp.random(n, n, density=0.15, random_state=rng, format="csr")
        a = a + a.T + sp.identity(n) * n  # symmetric, positive diagonal
        colors = greedy_multicolor(a.tocsr())
        validate_groups(a.tocsr(), colors)


class TestMulticolorOrdering:
    def test_counts_and_slices(self, plate, plate_ordering):
        counts = plate_ordering.counts
        assert counts.sum() == 60
        slices = plate_ordering.group_slices
        assert slices[0].start == 0
        assert slices[-1].stop == 60
        for c, s in enumerate(slices):
            assert s.stop - s.start == counts[c]

    def test_permutation_roundtrip(self, plate_ordering):
        rng = np.random.default_rng(7)
        x = rng.normal(size=plate_ordering.n)
        assert np.array_equal(
            plate_ordering.unpermute_vector(plate_ordering.permute_vector(x)), x
        )

    def test_permuted_vector_is_grouped(self, plate, plate_ordering):
        permuted_groups = plate_ordering.permute_vector(plate.group_of_unknown)
        assert np.array_equal(permuted_groups, np.sort(plate.group_of_unknown))

    def test_within_group_order_is_natural(self, plate_ordering):
        # Stable sort: inside each group, natural indices stay increasing —
        # the paper's bottom-to-top, left-to-right numbering within a color.
        for s in plate_ordering.group_slices:
            segment = plate_ordering.perm[s]
            assert np.all(np.diff(segment) > 0)

    def test_matrix_permutation_is_similarity(self, plate, plate_ordering):
        pk = plate_ordering.permute_matrix(plate.k)
        rng = np.random.default_rng(3)
        x = rng.normal(size=plate.n)
        left = plate_ordering.permute_vector(plate.k @ x)
        right = pk @ plate_ordering.permute_vector(x)
        assert left == pytest.approx(right)

    def test_split_vector_views(self, plate_ordering):
        x = np.zeros(plate_ordering.n)
        parts = plate_ordering.split_vector(x)
        parts[2][:] = 5.0
        assert np.count_nonzero(x) == parts[2].size  # views, not copies

    def test_default_labels(self):
        ordering = MulticolorOrdering.from_groups(np.array([0, 1, 1, 0]))
        assert ordering.labels == ("g0", "g1")

    def test_group_of_position(self, plate_ordering):
        slices = plate_ordering.group_slices
        for c, s in enumerate(slices):
            assert plate_ordering.group_of_position(s.start) == c

    def test_rejects_negative_groups(self):
        with pytest.raises(ValueError):
            MulticolorOrdering.from_groups(np.array([0, -1, 1]))
