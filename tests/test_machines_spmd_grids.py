"""Property tests: the SPMD engine across arbitrary processor grids."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import plate_problem
from repro.driver import build_blocked_system, solve_mstep_ssor
from repro.machines import Assignment, ProcessorGrid
from repro.machines.spmd import SPMDSolver


@pytest.fixture(scope="module")
def plate():
    return plate_problem(9)


@pytest.fixture(scope="module")
def blocked(plate):
    return build_blocked_system(plate)


class TestArbitraryGrids:
    @given(st.integers(1, 3), st.integers(1, 4))
    @settings(max_examples=8, deadline=None)
    def test_any_grid_solves(self, plate, blocked, prows, pcols):
        grid = ProcessorGrid(prows, pcols)
        assignment = Assignment.rectangles(plate.mesh, grid)
        solver = SPMDSolver(plate, assignment, blocked=blocked)
        sim = solver.solve(2, np.ones(2), eps=1e-7)
        assert sim.converged
        resid = np.max(np.abs(plate.f - plate.k @ sim.u_natural))
        assert resid < 1e-5

    @given(st.integers(1, 3), st.integers(1, 3))
    @settings(max_examples=6, deadline=None)
    def test_matvec_exact_on_any_grid(self, plate, blocked, prows, pcols):
        grid = ProcessorGrid(prows, pcols)
        assignment = Assignment.rectangles(plate.mesh, grid)
        solver = SPMDSolver(plate, assignment, blocked=blocked)
        rng = np.random.default_rng(prows * 10 + pcols)
        x = rng.normal(size=solver.n)
        yd = solver.matvec(solver.scatter(x), solver.new_halos())
        assert solver.gather(yd) == pytest.approx(
            blocked.permuted @ x, rel=1e-12, abs=1e-12
        )

    @given(st.integers(2, 3), st.integers(2, 3), st.integers(1, 4))
    @settings(max_examples=6, deadline=None)
    def test_precondition_matches_reference_on_2d_grids(
        self, plate, blocked, prows, pcols, m
    ):
        from repro.multicolor import MStepSSOR

        grid = ProcessorGrid(prows, pcols)
        assignment = Assignment.rectangles(plate.mesh, grid)
        solver = SPMDSolver(plate, assignment, blocked=blocked)
        rng = np.random.default_rng(m)
        r = rng.normal(size=solver.n)
        rtd = solver.precondition(np.ones(m), solver.scatter(r))
        expected = MStepSSOR(blocked, np.ones(m)).apply(r)
        assert solver.gather(rtd) == pytest.approx(expected, rel=1e-9, abs=1e-9)

    def test_2d_grid_solution_matches_driver(self, plate, blocked):
        grid = ProcessorGrid(2, 2)
        assignment = Assignment.rectangles(plate.mesh, grid)
        solver = SPMDSolver(plate, assignment, blocked=blocked)
        sim = solver.solve(3, np.ones(3), eps=1e-8)
        ref = solve_mstep_ssor(plate, 3, blocked=blocked, eps=1e-8)
        assert abs(sim.iterations - ref.iterations) <= 2
        assert sim.u_natural == pytest.approx(ref.u, rel=1e-4, abs=1e-7)

    def test_diagonal_proc_neighbors_get_messages(self, plate, blocked):
        # A 2×2 grid has NW/SE diagonal processor pairs under the '/'
        # stencil; the plans must include them.
        grid = ProcessorGrid(2, 2)
        assignment = Assignment.rectangles(plate.mesh, grid)
        solver = SPMDSolver(plate, assignment, blocked=blocked)
        pairs = {(plan.src, plan.dst) for plan in solver.plans}
        # procs: 0=SW, 1=SE, 2=NW, 3=NE; '/' couples SE↔NW (1↔2) but the
        # NE/SW pair (0↔3) only if their rectangles touch diagonally the
        # other way — which the stencil forbids.
        assert (1, 2) in pairs and (2, 1) in pairs
        assert (0, 3) not in pairs and (3, 0) not in pairs
