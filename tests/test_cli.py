"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCLI:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "1, 7, -24.5, 31.5" in out
        assert "yes" in out

    def test_fig1(self, capsys):
        assert main(["fig1", "--rows", "5", "--cols", "5"]) == 0
        out = capsys.readouterr().out
        assert "R B G" in out
        assert "max vector length" in out

    def test_solve(self, capsys):
        code = main(["solve", "--rows", "8", "--m", "3", "-P", "--eps", "1e-6"])
        out = capsys.readouterr().out
        assert code == 0
        assert "converged: True" in out
        assert "m = 3P" in out

    def test_solve_plain_cg(self, capsys):
        code = main(["solve", "--rows", "6", "--m", "0"])
        assert code == 0
        assert "m = 0" in capsys.readouterr().out

    def test_cyber(self, capsys):
        code = main(["cyber", "--rows", "8", "--m", "2", "-P"])
        out = capsys.readouterr().out
        assert code == 0
        assert "CYBER 203 simulation" in out
        assert "T = " in out

    def test_recommend(self, capsys):
        code = main(["recommend", "--rows", "8", "--b-over-a", "0.5"])
        out = capsys.readouterr().out
        assert code == 0
        assert "recommended m" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["definitely-not-a-command"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
