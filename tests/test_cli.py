"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCLI:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "1, 7, -24.5, 31.5" in out
        assert "yes" in out

    def test_fig1(self, capsys):
        assert main(["fig1", "--rows", "5", "--cols", "5"]) == 0
        out = capsys.readouterr().out
        assert "R B G" in out
        assert "max vector length" in out

    def test_solve(self, capsys):
        code = main(["solve", "--rows", "8", "--m", "3", "-P", "--eps", "1e-6"])
        out = capsys.readouterr().out
        assert code == 0
        assert "converged: True" in out
        assert "m = 3P" in out

    def test_solve_plain_cg(self, capsys):
        code = main(["solve", "--rows", "6", "--m", "0"])
        assert code == 0
        assert "m = 0" in capsys.readouterr().out

    def test_cyber(self, capsys):
        code = main(["cyber", "--rows", "8", "--m", "2", "-P"])
        out = capsys.readouterr().out
        assert code == 0
        assert "CYBER 203 simulation" in out
        assert "T = " in out

    def test_recommend(self, capsys):
        code = main(["recommend", "--rows", "8", "--b-over-a", "0.5"])
        out = capsys.readouterr().out
        assert code == 0
        assert "recommended m" in out

    def test_table2(self, capsys):
        code = main(["table2", "--meshes", "8", "--eps", "1e-6"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Table 2" in out
        assert "one batched simulator pass" in out
        assert "I(a=8)" in out

    def test_table2_per_column_matches_batched(self, capsys):
        assert main(["table2", "--meshes", "8", "--eps", "1e-6"]) == 0
        batched = capsys.readouterr().out
        assert main(
            ["table2", "--meshes", "8", "--eps", "1e-6", "--per-column"]
        ) == 0
        per_column = capsys.readouterr().out
        # Identical numbers, different banner.
        strip = lambda text: [  # noqa: E731
            line for line in text.splitlines() if not line.startswith("Table 2")
        ]
        assert strip(batched) == strip(per_column)

    def test_table2_rejects_bad_meshes(self, capsys):
        assert main(["table2", "--meshes", "abc"]) == 2

    def test_solve_scenario_and_backend(self, capsys):
        code = main([
            "solve", "--scenario", "anisotropic", "--rows", "10",
            "--m", "3", "-P", "--backend", "reference",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "AnisotropicProblem" in out
        assert "m = 3P" in out

    def test_cyber_backend_flag(self, capsys):
        code = main(["cyber", "--rows", "8", "--m", "2", "--backend", "reference"])
        out = capsys.readouterr().out
        assert code == 0
        assert "CYBER 203 simulation" in out

    def test_scenarios_listing(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        for name in ("plate", "anisotropic", "variable-plate", "lshape"):
            assert name in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["definitely-not-a-command"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestBlockRHSAndAutoM:
    """ISSUE 4: the --rhs / --m auto surface."""

    def test_solve_block_rhs(self, capsys):
        code = main(["solve", "--rows", "8", "--m", "3", "-P", "--rhs", "4"])
        out = capsys.readouterr().out
        assert code == 0
        assert "block of 4 right-hand sides in one lockstep" in out
        assert "iterations per column:" in out
        assert "all converged: True" in out
        assert "'colorings': 1" in out  # one compile for any k

    def test_solve_auto_m_plate(self, capsys):
        code = main(["solve", "--rows", "12", "--m", "auto"])
        out = capsys.readouterr().out
        assert code == 0
        assert "auto-tuned m =" in out
        assert "FEM-machine calibrated" in out

    def test_solve_auto_m_scenario_without_machine(self, capsys):
        code = main(["solve", "--scenario", "poisson", "--rows", "10",
                     "--m", "auto"])
        out = capsys.readouterr().out
        assert code == 0
        assert "no machine layout" in out

    def test_solve_rejects_bad_m(self):
        with pytest.raises(SystemExit):
            main(["solve", "--m", "sometimes"])

    def test_table2_auto_m_reproduces_the_measured_optimum(self, capsys):
        # The acceptance pin: on the paper's own a = 20 plate the
        # width-aware (4.2) model reproduces the hand-picked Table-2 m —
        # the measured-optimum plateau the paper reads off its timings.
        code = main(["table2", "--meshes", "20", "--m", "auto"])
        out = capsys.readouterr().out
        assert code == 0
        assert (
            "auto m (a=20): FEM-model-recommended m = 4 at RHS width 1 "
            "(measured table optimum m = 4)"
        ) in out

    def test_recommend_width_amortization(self, capsys):
        code = main(["recommend", "--rows", "8", "--b-over-a", "0.7",
                     "--b-marginal", "0.2", "--rhs", "8"])
        out = capsys.readouterr().out
        assert code == 0
        assert "RHS block width 8" in out
        assert "effective per-RHS B/A at width 8" in out


class TestParallelAndWorkloads:
    def test_workloads_listing(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        for name in ("plate-service", "pressure-family", "thermal-family",
                     "point-family"):
            assert name in out

    def test_solve_workload_sets_block_width(self, capsys):
        code = main(["solve", "--rows", "8", "--m", "2", "-P",
                     "--workload", "plate-service"])
        out = capsys.readouterr().out
        assert code == 0
        assert "workload: plate-service" in out
        assert "block of 4 right-hand sides" in out
        assert "all converged: True" in out

    def test_solve_workload_sharded_over_workers(self, capsys):
        code = main(["solve", "--rows", "8", "--m", "2", "-P",
                     "--workload", "point-family", "--workers", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "sharded over 2 worker processes" in out
        assert "shard dispatches: 2" in out
        assert "all converged: True" in out

    def test_single_case_workload_solves_its_own_load(self, capsys):
        # Regression: a width-1 workload must go through the block path
        # with the workload's column, not fall back to the scenario's f.
        from repro.pipeline import problems, register_workload

        def shear_only(problem):
            from repro.fem.plane_stress import assemble_plate

            _, f_shear = assemble_plate(
                problem.mesh, problem.material, traction_x=0.0,
                traction_y=1.0,
            )
            return f_shear[:, None].astype(float)

        register_workload(
            "test-shear-only", "plate", shear_only, "test-only entry",
            ("edge shear",),
        )
        try:
            code = main(["solve", "--rows", "8", "--m", "2", "-P",
                         "--workload", "test-shear-only"])
            out = capsys.readouterr().out
            assert code == 0
            assert "block of 1 right-hand sides" in out
            assert "workload: test-shear-only" in out
        finally:
            del problems._WORKLOADS["test-shear-only"]

    def test_solve_workload_scenario_mismatch_rejected(self, capsys):
        code = main(["solve", "--scenario", "poisson", "--rows", "8",
                     "--m", "2", "--workload", "plate-service"])
        assert code == 2
        assert "registered for scenario" in capsys.readouterr().err

    def test_solve_workers_match_serial_iterations(self, capsys):
        assert main(["solve", "--rows", "8", "--m", "3", "-P",
                     "--rhs", "4"]) == 0
        serial = capsys.readouterr().out
        assert main(["solve", "--rows", "8", "--m", "3", "-P",
                     "--rhs", "4", "--workers", "2"]) == 0
        sharded = capsys.readouterr().out

        def iters(text):
            for line in text.splitlines():
                if line.startswith("iterations per column"):
                    return line
            return None

        assert iters(serial) == iters(sharded)

    def test_solve_auto_model_cyber(self, capsys):
        code = main(["solve", "--rows", "12", "--m", "auto",
                     "--auto-model", "cyber"])
        out = capsys.readouterr().out
        assert code == 0
        assert "CYBER-machine calibrated" in out

    def test_table2_workers_match_serial(self, capsys):
        assert main(["table2", "--meshes", "8", "--eps", "1e-6"]) == 0
        serial = capsys.readouterr().out
        assert main(["table2", "--meshes", "8", "--eps", "1e-6",
                     "--workers", "2"]) == 0
        sharded = capsys.readouterr().out
        strip = lambda text: [  # noqa: E731
            line for line in text.splitlines() if not line.startswith("Table 2")
        ]
        assert strip(serial) == strip(sharded)
        assert "sharded over 2 worker processes" in sharded

    def test_recommend_sharded_pricing(self, capsys):
        code = main(["recommend", "--rows", "8", "--b-over-a", "0.7",
                     "--b-marginal", "0.2", "--rhs", "8", "--workers", "4"])
        out = capsys.readouterr().out
        assert code == 0
        assert "sharded over 4 workers" in out
        assert "over 4 shards" in out
