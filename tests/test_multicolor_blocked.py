"""Tests for the blocked color system (3.1)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.fem import plate_problem, poisson_problem
from repro.multicolor import BlockedMatrix, MulticolorOrdering
from repro.util import is_diagonal


@pytest.fixture(scope="module")
def plate():
    return plate_problem(6)


@pytest.fixture(scope="module")
def blocked(plate):
    ordering = MulticolorOrdering.from_groups(
        plate.group_of_unknown, plate.group_labels
    )
    return BlockedMatrix.from_matrix(plate.k, ordering)


class TestStructure31:
    """The permuted system must have the exact shape shown in (3.1)."""

    def test_diagonal_blocks_are_positive_vectors(self, blocked):
        assert len(blocked.diagonals) == 6
        for d in blocked.diagonals:
            assert np.all(d > 0)

    def test_diagonal_blocks_have_no_offdiagonal_entries(self, plate, blocked):
        permuted = blocked.permuted
        for s in blocked.group_slices:
            block = permuted[s, s]
            assert is_diagonal(block, tol=0.0)

    def test_same_node_blocks_diagonal(self, blocked):
        # B₁₂, B₃₄, B₅₆ couple (u, v) at the same node → diagonal matrices.
        assert blocked.same_node_blocks_diagonal(n_components=2)

    def test_off_diagonal_blocks_present(self, blocked):
        # For the plate every color pair couples somewhere: 30 blocks.
        assert blocked.n_offdiagonal_blocks == 30

    def test_block_symmetry(self, blocked):
        assert blocked.symmetry_residual() < 1e-12

    def test_bad_grouping_rejected(self, plate):
        ordering = MulticolorOrdering.from_groups(
            np.zeros(plate.n, dtype=np.int64)
        )
        with pytest.raises(ValueError):
            BlockedMatrix.from_matrix(plate.k, ordering)

    def test_validation_can_be_skipped_structurally(self, plate):
        # validate=False still fails later if a diagonal block has zeros on
        # the diagonal, but a proper coloring passes trivially.
        ordering = MulticolorOrdering.from_groups(
            plate.group_of_unknown, plate.group_labels
        )
        blocked = BlockedMatrix.from_matrix(plate.k, ordering, validate=False)
        assert blocked.n == plate.n


class TestMatvec:
    def test_blockwise_equals_csr(self, blocked):
        rng = np.random.default_rng(11)
        x = rng.normal(size=blocked.n)
        assert blocked.matvec_blockwise(x) == pytest.approx(blocked.matvec(x))

    def test_matvec_matches_original_matrix(self, plate, blocked):
        rng = np.random.default_rng(12)
        x_nat = rng.normal(size=plate.n)
        ordering = blocked.ordering
        y_multicolor = blocked.matvec(ordering.permute_vector(x_nat))
        y_nat = plate.k @ x_nat
        assert ordering.unpermute_vector(y_multicolor) == pytest.approx(y_nat)

    def test_block_row_sum_subset(self, blocked):
        rng = np.random.default_rng(13)
        x = rng.normal(size=blocked.n)
        xg = [x[s] for s in blocked.group_slices]
        full = blocked.block_row_sum(0, xg, range(1, 6))
        parts = blocked.block_row_sum(0, xg, [1, 2, 3]) + blocked.block_row_sum(
            0, xg, [4, 5]
        )
        assert full == pytest.approx(parts)


class TestPoissonBlocked:
    def test_red_black_two_blocks(self):
        prob = poisson_problem(8)
        ordering = MulticolorOrdering.from_groups(
            prob.group_of_unknown, prob.group_labels
        )
        blocked = BlockedMatrix.from_matrix(prob.k, ordering)
        assert blocked.n_groups == 2
        assert blocked.n_offdiagonal_blocks == 2
        rng = np.random.default_rng(5)
        x = rng.normal(size=blocked.n)
        assert blocked.matvec_blockwise(x) == pytest.approx(blocked.matvec(x))

    def test_red_black_diagonal_values(self):
        prob = poisson_problem(5)
        ordering = MulticolorOrdering.from_groups(prob.group_of_unknown)
        blocked = BlockedMatrix.from_matrix(prob.k, ordering)
        h2 = (1.0 / 6.0) ** 2
        for d in blocked.diagonals:
            assert d == pytest.approx(np.full(d.shape, 4.0 / h2))


class TestRejectsNonPositiveDiagonal:
    def test_zero_diagonal_detected(self):
        k = sp.csr_matrix(np.array([[0.0, 1.0], [1.0, 2.0]]))
        ordering = MulticolorOrdering.from_groups(np.array([0, 1]))
        with pytest.raises(ValueError, match="non-positive diagonal"):
            BlockedMatrix.from_matrix(k, ordering)
