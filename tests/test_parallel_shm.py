"""The zero-copy shared-memory transport (ISSUE 6).

Covers the PR's acceptance contracts:

* **Segment lifecycle** — publications are unlinked by
  :func:`repro.parallel.shutdown_pools`, by session close/garbage
  collection, and reused (not recreated) across steady-state dispatches;
  nothing leaks under ``python -W error`` including the stdlib resource
  tracker's shutdown report.
* **Zero-copy views** — worker-side attachments alias the published
  bytes (read-only), so the serial/sharded bitwise contract holds by
  construction; the per-dispatch pickled spec is orders of magnitude
  smaller than the old flat-CSR payload.
* **Compile-cache LRU** — a hot worker token survives a burst of 100
  one-off tokens (the regression of the old clear-everything-at-65
  behavior).
* **Start methods** — the transport attaches by name, so ``spawn``
  reproduces the ``fork`` results bitwise (``REPRO_START_METHOD``).
* **2-D shard grid** — ``(workers, group)`` partitions of the CYBER,
  FEM and SPMD schedule cells reproduce the single-pass records bitwise.
* **Failure surfacing** — a crashed shard re-raises with the failing
  spec's token and columns, not an anonymous pool traceback.
"""

import gc
import pickle
import subprocess
import sys

import numpy as np
import pytest

from repro.core.pcg import block_pcg
from repro.driver import build_blocked_system, build_mstep_applicator
from repro.parallel import (
    ApplicatorRecipe,
    CSRHandle,
    SegmentRegistry,
    ShardSpec,
    registry,
    run_shard,
    run_tasks,
    sharded_block_pcg,
    sharded_schedule,
    shutdown_pools,
)
from repro.parallel import shards, shm
from repro.parallel.schedule import _chunk
from repro.parallel.shards import matrix_token
from repro.pipeline import (
    SolverPlan,
    SolverSession,
    build_scenario,
    synthetic_load_block,
)

EPS = 1e-7
M = 3


@pytest.fixture(scope="module")
def plate():
    return build_scenario("plate", nrows=8)


@pytest.fixture(scope="module")
def plate_state(plate):
    blocked = build_blocked_system(plate)
    coeffs = np.ones(M)
    applicator = build_mstep_applicator(blocked, coeffs)
    recipe = ApplicatorRecipe(
        kind="sweep",
        coefficients=coeffs,
        groups=np.sort(blocked.ordering.groups),
        labels=tuple(blocked.ordering.labels),
    )
    F = np.ascontiguousarray(
        blocked.ordering.permute_vector(synthetic_load_block(plate, 6))
    )
    return blocked, applicator, recipe, F


def assert_block_results_bitwise(a, b):
    assert np.array_equal(a.u, b.u)
    assert np.array_equal(a.iterations, b.iterations)
    assert np.array_equal(a.converged, b.converged)
    assert a.delta_histories == b.delta_histories
    assert a.residual_histories == b.residual_histories
    assert [c.as_dict() for c in a.counters] == [c.as_dict() for c in b.counters]
    assert a.stop_rule == b.stop_rule


# --------------------------------------------------------- segment registry
class TestSegmentRegistry:
    def test_operator_publication_round_trips(self, plate_state):
        blocked, _, _, _ = plate_state
        reg = SegmentRegistry()
        try:
            k = blocked.permuted.tocsr()
            handle = reg.publish_operator("op", k)
            assert isinstance(handle, CSRHandle)
            mat = shm.attach_csr(handle)
            assert (mat != k).nnz == 0
            assert mat.data.dtype == k.data.dtype
            assert not mat.data.flags.writeable
        finally:
            reg.release_all()
            shm.detach_all()

    def test_operator_publication_is_cached(self, plate_state):
        blocked, _, _, _ = plate_state
        reg = SegmentRegistry()
        try:
            a = reg.publish_operator("op", blocked.permuted)
            b = reg.publish_operator("op", blocked.permuted)
            assert a is b
            assert len(reg.live_segments()) == 1
        finally:
            reg.release_all()

    def test_operator_lru_eviction_releases_segments(self, plate_state):
        blocked, _, _, _ = plate_state
        reg = SegmentRegistry(max_operators=2)
        try:
            reg.publish_operator("a", blocked.permuted)
            reg.publish_operator("b", blocked.permuted)
            reg.publish_operator("a", blocked.permuted)  # refresh: a is hot
            reg.publish_operator("c", blocked.permuted)  # evicts b, not a
            assert "a" in reg._operators and "c" in reg._operators
            assert "b" not in reg._operators
            assert len(reg.live_segments()) == 2
        finally:
            reg.release_all()

    def test_block_slot_segment_is_reused(self):
        reg = SegmentRegistry()
        try:
            one = reg.publish_block("tok", "rhs", np.ones((16, 4)))
            two = reg.publish_block("tok", "rhs", 2 * np.ones((16, 4)))
            assert one.segment == two.segment  # one memcpy, no new segment
            assert np.array_equal(reg.resolve(two), 2 * np.ones((16, 4)))
            bigger = reg.publish_block("tok", "rhs", np.ones((64, 8)))
            assert bigger.segment != one.segment  # outgrown: slot retired
            assert len(reg.live_segments()) == 1
        finally:
            reg.release_all()

    def test_published_blocks_are_fortran_ordered(self):
        reg = SegmentRegistry()
        try:
            view = reg.publish_block("tok", "rhs", np.arange(12.0).reshape(3, 4))
            assert view.order == "F"
            arr = shm.attach_view(view)
            assert arr.flags.f_contiguous
            assert arr[:, 1:3].base is not None  # column range: a view, no copy
        finally:
            reg.release_all()
            shm.detach_all()

    def test_release_by_token_unlinks_only_that_token(self, plate_state):
        blocked, _, _, _ = plate_state
        reg = SegmentRegistry()
        try:
            reg.publish_operator("a", blocked.permuted)
            reg.publish_block("b", "rhs", np.ones((8, 2)))
            reg.release("a")
            assert len(reg.live_segments()) == 1
            reg.release("b")
            assert reg.live_segments() == []
        finally:
            reg.release_all()

    def test_forked_child_registry_never_unlinks(self, plate_state):
        # A forked worker inherits the registry's bookkeeping but owns
        # nothing: destructive operations must no-op off-owner-pid.
        blocked, _, _, _ = plate_state
        reg = SegmentRegistry()
        try:
            reg.publish_operator("op", blocked.permuted)
            (name,) = reg.live_segments()
            reg._pid = reg._pid + 1  # simulate the fork child's view
            reg.release("op")
            reg.release_all()
            from multiprocessing import shared_memory

            seg = shared_memory.SharedMemory(name=name, create=False)
            seg.close()  # still attachable: nothing was unlinked
        finally:
            reg._pid = __import__("os").getpid()
            reg.release_all()

    def test_shutdown_pools_unlinks_everything(self, plate_state):
        blocked, applicator, recipe, F = plate_state
        sharded_block_pcg(blocked.permuted, F, recipe=recipe, workers=2, eps=EPS)
        assert registry().live_segments() != []
        shutdown_pools()
        assert registry().live_segments() == []


# ----------------------------------------------------------- session lifecycle
class TestSessionLifecycle:
    def _session(self, plate):
        return SolverSession(
            plate, plan=SolverPlan.single(M, True, eps=EPS, block_rhs=6)
        )

    def test_prewarm_publishes_and_dispatches(self, plate):
        session = self._session(plate)
        try:
            n_warm = session.prewarm_sharding(2)
            assert n_warm == 2  # one cell's recipe × two pool slots
            assert session._shm_tokens
            assert registry().live_segments() != []
            # Steady state: the prewarmed solve is still bitwise serial.
            F = synthetic_load_block(plate, 6)
            serial = session.solve_cell_block(M, True, F=F)
            sharded = session.solve_cell_block(M, True, F=F, sharding=2)
            assert_block_results_bitwise(sharded.result, serial.result)
        finally:
            session.close()

    def test_prewarm_serial_is_a_no_op(self, plate):
        session = self._session(plate)
        assert session.prewarm_sharding(None) == 0
        assert session.prewarm_sharding(1) == 0
        assert session._shm_tokens == set()

    def test_close_releases_tokens_and_is_idempotent(self, plate):
        session = self._session(plate)
        session.prewarm_sharding(2)
        token = matrix_token(session.blocked.permuted)
        assert any(
            name in registry()._token_segments.get(token, [])
            for name in registry().live_segments()
        )
        session.close()
        assert registry()._token_segments.get(token) is None
        assert session._shm_tokens == set()
        session.close()  # idempotent

    def test_garbage_collected_session_releases_segments(self, plate):
        session = self._session(plate)
        session.prewarm_sharding(2)
        token = matrix_token(session.blocked.permuted)
        assert registry()._token_segments.get(token)
        del session
        gc.collect()
        assert registry()._token_segments.get(token) is None

    def test_sharded_solve_ties_segments_to_session(self, plate):
        session = self._session(plate)
        F = synthetic_load_block(plate, 6)
        session.solve_cell_block(M, True, F=F, sharding=2)
        assert len(session._shm_tokens) == 1
        session.close()


# ------------------------------------------------------------ transports
class TestTransports:
    def test_pickled_fallback_bitwise_identical(self, plate_state):
        blocked, applicator, recipe, F = plate_state
        serial = block_pcg(blocked.permuted, F, preconditioner=applicator, eps=EPS)
        via_shm = sharded_block_pcg(
            blocked.permuted, F, recipe=recipe, workers=2, eps=EPS, use_shm=True
        )
        pickled = sharded_block_pcg(
            blocked.permuted, F, recipe=recipe, workers=2, eps=EPS, use_shm=False
        )
        assert_block_results_bitwise(via_shm, serial)
        assert_block_results_bitwise(pickled, serial)

    def test_repro_no_shm_disables_transport(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_SHM", "1")
        assert not shm.shm_enabled()
        monkeypatch.delenv("REPRO_NO_SHM")
        assert shm.shm_enabled()

    def test_dispatch_spec_is_lightweight(self, plate_state):
        # The tentpole's point: steady-state dispatch ships handles and
        # column indices, not the operator or the block values.
        from repro.parallel import build_shard_specs, column_groups

        blocked, _, recipe, F = plate_state
        groups = column_groups(F.shape[1], 2)
        light, out = build_shard_specs(
            blocked.permuted, F, recipe, groups, eps=EPS, use_shm=True
        )
        heavy, _ = build_shard_specs(
            blocked.permuted, F, recipe, groups, eps=EPS, use_shm=False
        )
        try:
            assert out is not None
            light_bytes = len(pickle.dumps(light[0]))
            heavy_bytes = len(pickle.dumps(heavy[0]))
            assert light_bytes * 4 < heavy_bytes
        finally:
            registry().release(matrix_token(blocked.permuted))

    def test_inline_run_shard_through_shared_memory(self, plate_state):
        # run_shard in the parent process itself: attach own segments.
        from repro.parallel import build_shard_specs, column_groups

        blocked, applicator, _, F = plate_state
        recipe = ApplicatorRecipe(
            kind="sweep",
            coefficients=np.ones(M),
            groups=np.sort(blocked.ordering.groups),
            labels=tuple(blocked.ordering.labels),
        )
        serial = block_pcg(blocked.permuted, F, preconditioner=applicator, eps=EPS)
        groups = column_groups(F.shape[1], 2)
        specs, out = build_shard_specs(
            blocked.permuted, F, recipe, groups, eps=EPS, use_shm=True
        )
        try:
            for spec in specs:
                result = run_shard(spec)
                assert result.u is None  # iterates went via the out block
            u = registry().resolve(out)
            assert np.array_equal(u, serial.u)
        finally:
            registry().release(matrix_token(blocked.permuted))
            shm.detach_all()


# ------------------------------------------------------- compile-cache LRU
class TestWorkerCompileCache:
    def test_hot_token_survives_a_burst_of_one_off_tokens(self, plate_state):
        # Regression: the old cache did clear() at 65 entries, evicting the
        # steady-state session's compiled operator along with the junk.
        blocked, _, recipe, F = plate_state
        payload = shards.CSRPayload.from_matrix(blocked.permuted)
        hot = ShardSpec(
            token="hot", matrix=payload, recipe=recipe,
            columns=np.arange(1), F=np.ascontiguousarray(F[:, :1]), eps=EPS,
        )
        saved = dict(shards._COMPILED)
        shards._COMPILED.clear()
        try:
            hot_state = shards.compiled_shard_state(hot)
            for i in range(100):
                one_off = ShardSpec(
                    token=f"burst-{i}", matrix=payload, recipe=recipe,
                    columns=np.arange(1), F=np.ascontiguousarray(F[:, :1]),
                    eps=EPS,
                )
                shards.compiled_shard_state(one_off)
                # The hot entry is touched between bursts, as a live
                # session's dispatches would touch it.
                assert shards.compiled_shard_state(hot) is hot_state
            assert "hot" in shards._COMPILED
            assert len(shards._COMPILED) <= shards._COMPILED_CAP
        finally:
            shards._COMPILED.clear()
            shards._COMPILED.update(saved)

    def test_cache_is_bounded(self, plate_state):
        blocked, _, recipe, F = plate_state
        payload = shards.CSRPayload.from_matrix(blocked.permuted)
        saved = dict(shards._COMPILED)
        shards._COMPILED.clear()
        try:
            for i in range(2 * shards._COMPILED_CAP):
                spec = ShardSpec(
                    token=f"t{i}", matrix=payload, recipe=recipe,
                    columns=np.arange(1), F=np.ascontiguousarray(F[:, :1]),
                    eps=EPS,
                )
                shards.compiled_shard_state(spec)
            assert len(shards._COMPILED) <= shards._COMPILED_CAP
            assert f"t{2 * shards._COMPILED_CAP - 1}" in shards._COMPILED
        finally:
            shards._COMPILED.clear()
            shards._COMPILED.update(saved)


# ----------------------------------------------------------- start methods
class TestStartMethods:
    def test_spawn_start_method_bitwise(self, plate_state, monkeypatch):
        blocked, applicator, recipe, F = plate_state
        serial = block_pcg(blocked.permuted, F, preconditioner=applicator, eps=EPS)
        monkeypatch.setenv("REPRO_START_METHOD", "spawn")
        try:
            sharded = sharded_block_pcg(
                blocked.permuted, F, recipe=recipe, workers=2, eps=EPS
            )
        finally:
            monkeypatch.delenv("REPRO_START_METHOD")
            shutdown_pools()
        assert_block_results_bitwise(sharded, serial)


# ----------------------------------------------------------- leak freedom
_LEAK_SCRIPT = """
import numpy as np

def main():
    from repro.core.pcg import block_pcg
    from repro.driver import build_blocked_system, build_mstep_applicator
    from repro.parallel import ApplicatorRecipe, sharded_block_pcg, shutdown_pools, registry
    from repro.pipeline import build_scenario, synthetic_load_block

    plate = build_scenario("plate", nrows=8)
    blocked = build_blocked_system(plate)
    coeffs = np.ones(3)
    recipe = ApplicatorRecipe(
        kind="sweep", coefficients=coeffs,
        groups=np.sort(blocked.ordering.groups),
        labels=tuple(blocked.ordering.labels),
    )
    F = np.ascontiguousarray(
        blocked.ordering.permute_vector(synthetic_load_block(plate, 4))
    )
    applicator = build_mstep_applicator(blocked, coeffs)
    serial = block_pcg(blocked.permuted, F, preconditioner=applicator, eps=1e-7)
    sharded = sharded_block_pcg(blocked.permuted, F, recipe=recipe, workers=2, eps=1e-7)
    assert np.array_equal(serial.u, sharded.u)
    shutdown_pools()
    assert registry().live_segments() == []
    print("OK")

if __name__ == "__main__":
    main()
"""


class TestNoLeaks:
    @pytest.mark.parametrize("method", ("fork", "spawn"))
    def test_sharded_run_is_warning_clean(self, method, tmp_path):
        # -W error turns the resource tracker's "leaked shared_memory
        # objects" shutdown report (and any other warning) into a failure;
        # tracker KeyError tracebacks land in stderr either way.
        script = tmp_path / "leak_probe.py"
        script.write_text(_LEAK_SCRIPT)
        import os
        import pathlib

        import repro

        src = str(pathlib.Path(repro.__file__).resolve().parents[1])
        env = dict(os.environ)
        env["REPRO_START_METHOD"] = method
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (src, env.get("PYTHONPATH")) if p
        )
        proc = subprocess.run(
            [sys.executable, "-W", "error", str(script)],
            capture_output=True, text=True, env=env, timeout=600,
        )
        assert proc.returncode == 0, proc.stderr
        assert "OK" in proc.stdout
        assert "resource_tracker" not in proc.stderr
        assert "KeyError" not in proc.stderr
        assert "leaked" not in proc.stderr


# ------------------------------------------------------- failure surfacing
class TestFailureSurfacing:
    def test_failed_shard_names_token_and_columns(self, plate_state):
        blocked, _, recipe, F = plate_state
        bogus = shm.ArrayView("repro_does_not_exist", "float64", (4,))
        spec = ShardSpec(
            token="doomed-token",
            matrix=CSRHandle(shape=(4, 4), data=bogus, indices=bogus, indptr=bogus),
            recipe=recipe,
            columns=np.arange(2),
            F=bogus,
            eps=EPS,
        )
        with pytest.raises(RuntimeError) as err:
            run_tasks(run_shard, [spec, spec], workers=2)
        message = str(err.value)
        assert "doomed-token" in message
        assert "columns=[0, 1]" in message
        assert "ShardSpec" in message


# ------------------------------------------------------------- 2-D grid
class Test2DShardGrid:
    @pytest.fixture(scope="class")
    def schedule_session(self):
        problem = build_scenario("plate", nrows=8)
        session = SolverSession(problem, plan=SolverPlan.table3(eps=1e-6))
        return session, session.schedule_cells()

    def test_chunk_group_bounds_cells_per_pass(self):
        cells = list(range(7))
        chunks = _chunk(cells, workers=2, group=3)
        assert chunks == [(0, 1, 2), (3, 4, 5), (6,)]
        # Without group: one balanced chunk per worker.
        assert _chunk(cells, workers=2) == [(0, 1, 2), (3, 4, 5, 6)]

    @pytest.mark.parametrize("grid", ((2, 1), (2, 2), (4, 3)))
    def test_cyber_grid_bitwise(self, schedule_session, grid):
        session, cells = schedule_session
        workers, group = grid
        direct = session.cyber().solve_schedule(cells, eps=1e-6)
        sharded = sharded_schedule(
            session.problem, cells, machine="cyber",
            workers=workers, group=group, eps=1e-6,
        )
        for a, b in zip(sharded, direct):
            assert a.iterations == b.iterations
            assert a.seconds == b.seconds
            assert a.op_breakdown == b.op_breakdown
            assert np.array_equal(a.u_natural, b.u_natural)

    def test_fem_grid_bitwise(self, schedule_session):
        session, cells = schedule_session
        direct = session.fem(2).solve_schedule(cells, eps=1e-6)
        sharded = sharded_schedule(
            session.problem, cells, machine="fem",
            workers=2, group=2, eps=1e-6, n_procs=2,
        )
        for a, b in zip(sharded, direct):
            assert a.iterations == b.iterations
            assert a.seconds == b.seconds
            assert a.comm_seconds == b.comm_seconds
            assert np.array_equal(a.u_natural, b.u_natural)

    def test_spmd_grid_bitwise(self, schedule_session):
        from repro.machines import Assignment, ProcessorGrid, SPMDSolver

        session, cells = schedule_session
        problem = session.problem
        grid = ProcessorGrid.for_count(2, problem.mesh)
        solver = SPMDSolver(problem, Assignment.rectangles(problem.mesh, grid))
        direct = solver.solve_schedule(cells, eps=1e-6)
        sharded = sharded_schedule(
            problem, cells, machine="spmd",
            workers=2, group=1, eps=1e-6, n_procs=2,
        )
        for a, b in zip(sharded, direct):
            assert a.iterations == b.iterations
            assert a.ledger.messages == b.ledger.messages
            assert np.array_equal(a.u_natural, b.u_natural)

    def test_session_schedule_group_passthrough(self, schedule_session):
        session, _ = schedule_session
        direct = session.run_cyber_schedule()
        gridded = session.run_cyber_schedule(workers=2, group=2)
        assert [r.seconds for r in gridded] == [r.seconds for r in direct]
        fem_direct = session.run_fem_schedule(n_procs=2)
        fem_grid = session.run_fem_schedule(n_procs=2, workers=2, group=2)
        assert [r.seconds for r in fem_grid] == [r.seconds for r in fem_direct]
