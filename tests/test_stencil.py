"""The matrix-free stencil backend: operator, sweeps, session parity.

The contract of :mod:`repro.fem.matrixfree` + :class:`repro.kernels.StencilOperator`:
the ``"stencil"`` backend is the *same solver* as the assembled CSR path —
same iterates (≤1e−12, bitwise where the schedule is identical), same
iteration counts, same operation counters — computed without ever forming
a sparse matrix or permuted color blocks.  The compiled native kernel is
an accelerator, never a semantic: the numpy fallback must produce
bit-identical products.
"""

import tracemalloc

import numpy as np
import pytest

from repro.driver import build_blocked_system, mstep_coefficients, ssor_interval
from repro.fem.matrixfree import (
    STENCIL_SCENARIOS,
    stencil_interval,
    stencil_operator,
)
from repro.kernels import StencilOperator, StencilSSOR
from repro.kernels.backend import SOLVER_BACKENDS
from repro.multicolor import MStepSSOR
from repro.pipeline import SolverPlan, SolverSession, build_scenario

TOL = 1e-12

#: Small instances of every scenario the stencil backend serves.
SCENARIOS = [
    ("poisson", {"n_grid": 12}),
    ("anisotropic", {"n_grid": 10, "epsilon": 25.0}),
    ("plate", {"nrows": 8}),
]

#: Scenarios whose merged *sweeps* are bitwise equal to the permuted-CSR
#: sweeps (the kron-arithmetic builders).  Stencil *entries* are bitwise
#: equal to assembly for every scenario — the plate builder replays the
#: assembly's element sums in order — but the plate's 2×2 node blocks
#: accumulate across diagonals in a different order than CSR column
#: order, so its sweeps agree only to ulps.
BITWISE = ("poisson", "anisotropic")


def _relerr(a: np.ndarray, b: np.ndarray) -> float:
    return float(np.max(np.abs(a - b)) / (1.0 + np.max(np.abs(a))))


# --------------------------------------------------------------------------
# operator: structure and K·x equivalence
# --------------------------------------------------------------------------


@pytest.mark.parametrize("name,kw", SCENARIOS, ids=[s[0] for s in SCENARIOS])
def test_to_csr_matches_assembled(name, kw):
    problem = build_scenario(name, **kw)
    op = stencil_operator(problem)
    dense_st = op.to_csr().toarray()
    dense_k = problem.k.toarray()
    # Bitwise for every scenario: the kron builders share assembly's
    # arithmetic, and the plate builder replays the element-order sums.
    assert np.array_equal(dense_st, dense_k)
    assert op.shape == problem.k.shape
    assert np.array_equal(op.groups, problem.group_of_unknown)


@pytest.mark.parametrize("name,kw", SCENARIOS, ids=[s[0] for s in SCENARIOS])
def test_matvec_bitwise_vs_own_csr(name, kw):
    """K·x off the stencil ≡ scipy's csr_matvec of the same matrix, bitwise.

    Vector, C-ordered block and F-ordered block inputs all take distinct
    code paths (fused native kernel, per-column loop, numpy fallback) —
    each must agree with ``to_csr() @ x`` to the last bit.
    """
    op = stencil_operator(build_scenario(name, **kw))
    k = op.to_csr()
    rng = np.random.default_rng(7)
    x = rng.normal(size=op.n)
    out = np.empty(op.n)
    assert np.array_equal(op.matvec_into(x, out), k @ x)
    assert np.array_equal(op @ x, k @ x)

    xb_c = np.ascontiguousarray(rng.normal(size=(op.n, 3)))
    xb_f = np.asfortranarray(xb_c)
    ref = k @ xb_c
    assert np.array_equal(op.matvec_into(xb_c, np.empty((op.n, 3))), ref)
    assert np.array_equal(op.matvec_into(xb_f, np.empty((op.n, 3))), ref)

    # accumulate: out += K x on a non-zero starting buffer.  The kernel
    # adds the stencil terms onto out's prior value (out-first
    # association), while `base + (K @ x)` sums the product first — same
    # arithmetic to reordering, so ulp-level agreement, not bitwise.
    base = rng.normal(size=op.n)
    acc = base.copy()
    op.matvec_accumulate(x, acc)
    expected = base + k @ x
    assert _relerr(expected, acc) <= 1e-13


@pytest.mark.parametrize("name,kw", SCENARIOS, ids=[s[0] for s in SCENARIOS])
def test_numpy_fallback_bitwise(name, kw, monkeypatch):
    """With the compiled kernel disabled the products do not change a bit."""
    import repro.kernels.stencil as stencil_mod

    op_native = stencil_operator(build_scenario(name, **kw))
    monkeypatch.setattr(stencil_mod, "load_native", lambda: None)
    op_plain = stencil_operator(build_scenario(name, **kw))
    assert op_plain._native_plan is None  # the fallback really is in force

    rng = np.random.default_rng(11)
    x = rng.normal(size=op_native.n)
    xb = rng.normal(size=(op_native.n, 2))
    assert np.array_equal(
        op_native.matvec_into(x, np.empty(op_native.n)),
        op_plain.matvec_into(x, np.empty(op_plain.n)),
    )
    assert np.array_equal(
        op_native.matvec_into(xb, np.empty(xb.shape)),
        op_plain.matvec_into(xb, np.empty(xb.shape)),
    )


def test_operator_validation():
    vals = np.ones((3, 4))
    groups = np.zeros(4, dtype=int)
    with pytest.raises(ValueError, match="main diagonal"):
        StencilOperator(offsets=(-1, 1), values=np.ones((2, 4)), groups=groups)
    with pytest.raises(ValueError, match="strictly increasing"):
        StencilOperator(offsets=(1, 0, -1), values=vals, groups=groups)
    with pytest.raises(ValueError, match="one group per unknown"):
        StencilOperator(offsets=(-1, 0, 1), values=vals, groups=np.zeros(3, int))
    bad = np.ones((3, 4))
    bad[1] = -1.0  # main diagonal
    with pytest.raises(ValueError, match="diagonal must be positive"):
        StencilOperator(offsets=(-1, 0, 1), values=bad, groups=groups)


def test_memory_footprint_beats_csr():
    """The raison d'être: the stencil stores O(d·n), CSR O(nnz) + indices."""
    problem = build_scenario("poisson", n_grid=32)
    op = stencil_operator(problem)
    k = problem.k
    csr_bytes = k.data.nbytes + k.indices.nbytes + k.indptr.nbytes
    assert op.memory_bytes() < csr_bytes


# --------------------------------------------------------------------------
# sweeps: StencilSSOR ≡ MStepSSOR through the multicolor permutation
# --------------------------------------------------------------------------


@pytest.mark.parametrize("name,kw", SCENARIOS, ids=[s[0] for s in SCENARIOS])
@pytest.mark.parametrize("m", [1, 2, 4])
def test_sweep_matches_mstep_ssor(name, kw, m):
    """The merged stencil sweeps equal the permuted-CSR merged sweeps.

    ``StencilSSOR`` runs in natural ordering, ``MStepSSOR`` in multicolor
    ordering; mapped through ``perm``/``inverse_perm`` they are the same
    arithmetic — bitwise for the kron-built stencils, ≤1e−12 for the
    plate (its 2×2 node blocks accumulate across diagonals in a
    different order than CSR columns) — and charge identical operation
    counts.
    """
    problem = build_scenario(name, **kw)
    blocked = build_blocked_system(problem)
    coeffs = mstep_coefficients(m, False, ssor_interval(blocked))
    csr_sweep = MStepSSOR(blocked, coeffs)
    st_sweep = StencilSSOR(stencil_operator(problem), coeffs)
    perm = blocked.ordering.perm
    inv = blocked.ordering.inverse_perm
    rng = np.random.default_rng(3)

    r = rng.normal(size=blocked.n)
    y_csr = csr_sweep.apply(r[perm])[inv]
    y_st = np.array(st_sweep.apply(r))  # pooled buffer — copy before reuse
    R = rng.normal(size=(blocked.n, 4))
    yb_csr = csr_sweep.apply(R[perm])[inv]
    yb_st = np.array(st_sweep.apply(R))
    if name in BITWISE:
        assert np.array_equal(y_csr, y_st)
        assert np.array_equal(yb_csr, yb_st)
    else:
        assert _relerr(y_csr, y_st) <= TOL
        assert _relerr(yb_csr, yb_st) <= TOL

    # identical instrumentation, including the sweeps' extra counters
    assert st_sweep.counter == csr_sweep.counter


@pytest.mark.parametrize("name,kw", SCENARIOS, ids=[s[0] for s in SCENARIOS])
@pytest.mark.parametrize("m", [1, 2, 4])
def test_fused_sweep_native_vs_fallback_bitwise(name, kw, m, monkeypatch):
    """The fused native sweep and the chunked-numpy fallback are the same
    arithmetic: vector and block applications agree to the last bit and
    charge identical operation counts, for every step count."""
    import repro.kernels.stencil as stencil_mod

    problem = build_scenario(name, **kw)
    coeffs = mstep_coefficients(m, False, ssor_interval(build_blocked_system(problem)))
    sweep_native = StencilSSOR(stencil_operator(problem), coeffs)
    if sweep_native.operator.sweep_plan is None:
        pytest.skip("no compiled kernel in this environment")
    monkeypatch.setattr(stencil_mod, "load_native", lambda: None)
    sweep_plain = StencilSSOR(stencil_operator(problem), coeffs)
    assert sweep_plain.operator.sweep_plan is None  # fallback really in force

    rng = np.random.default_rng(13)
    r = rng.normal(size=sweep_native.operator.n)
    R = rng.normal(size=(sweep_native.operator.n, 3))
    assert np.array_equal(
        np.array(sweep_native.apply(r)), np.array(sweep_plain.apply(r))
    )
    assert np.array_equal(
        np.array(sweep_native.apply(R)), np.array(sweep_plain.apply(R))
    )
    assert sweep_native.counter == sweep_plain.counter


def test_native_so_cache_hit(tmp_path, monkeypatch):
    """The second interpreter's construction compiles nothing: the
    content-hashed ``.so`` from the first build is dlopened straight from
    the kernel build directory."""
    from repro.kernels import _native

    if _native.load_native() is None:
        pytest.skip("no C compiler in this environment")
    # A fresh interpreter is simulated by clearing the one-shot cache;
    # the hashed .so exists, so a compile now would be a cache miss bug.
    monkeypatch.setattr(_native, "_CACHE", [])
    monkeypatch.setattr(
        _native, "_compile",
        lambda *a, **k: pytest.fail("cached .so ignored: recompiled"),
    )
    assert _native.load_native() is not None


def test_sweeps_share_the_operator_workspace():
    """Every sweep bound to one operator reuses the same scratch pool
    (the session's interval probe and applicators pay for it once); an
    explicit pool still opts a sweep out."""
    from repro.kernels import WorkspacePool

    op = stencil_operator(build_scenario("poisson", n_grid=8))
    a = StencilSSOR(op, np.ones(1))
    b = StencilSSOR(op, np.ones(2))
    assert a.workspace is op.workspace
    assert b.workspace is op.workspace
    private = WorkspacePool()
    c = StencilSSOR(op, np.ones(1), workspace=private)
    assert c.workspace is private


# --------------------------------------------------------------------------
# session parity: the stencil backend is the same solver
# --------------------------------------------------------------------------


@pytest.mark.parametrize("name,kw", SCENARIOS, ids=[s[0] for s in SCENARIOS])
@pytest.mark.parametrize("m", [1, 2, 4])
@pytest.mark.parametrize("k", [1, 4])
def test_session_parity_vs_csr(name, kw, m, k):
    """Stencil-backend solves reproduce the CSR pipeline cell for cell:
    iterates to ≤1e−12 and identical iteration counts, for vector and
    block right-hand sides."""
    plan_csr = SolverPlan.single(m)
    plan_st = SolverPlan.single(m, backend="stencil")
    s_csr = SolverSession(build_scenario(name, **kw), plan=plan_csr)
    s_st = SolverSession(build_scenario(name, **kw), plan=plan_st)

    if k == 1:
        r_csr = s_csr.solve_cell(m)
        r_st = s_st.solve_cell(m)
        assert r_csr.iterations == r_st.iterations
        assert _relerr(r_csr.u, r_st.u) <= TOL
        assert r_st.blocked is None  # never permuted, never assembled blocks
    else:
        n = s_csr.problem.f.size
        F = np.random.default_rng(5).normal(size=(n, k))
        r_csr = s_csr.solve_cell_block(m, F=F)
        r_st = s_st.solve_cell_block(m, F=F)
        assert np.array_equal(r_csr.iterations, r_st.iterations)
        assert _relerr(r_csr.u, r_st.u) <= TOL
    assert s_st.stats.operator_backend == "stencil"
    assert s_csr.stats.operator_backend == "csr"


@pytest.mark.parametrize("k", [1, 4])
def test_session_parity_stretched_plate(k):
    """The stretched domain's harder spectrum still reproduces the CSR
    iterates under the ≤1e−12 pin — including the k=4 block whose parity
    tail used to drift past it before the plate stencil became bitwise
    equal to assembly."""
    kw = {"nrows": 8}
    s_csr = SolverSession(
        build_scenario("stretched-plate", **kw), plan=SolverPlan.single(2)
    )
    s_st = SolverSession(
        build_scenario("stretched-plate", **kw),
        plan=SolverPlan.single(2, backend="stencil"),
    )
    if k == 1:
        r_csr = s_csr.solve_cell(2)
        r_st = s_st.solve_cell(2)
        assert r_csr.iterations == r_st.iterations
    else:
        F = np.random.default_rng(5).normal(size=(s_csr.problem.f.size, k))
        r_csr = s_csr.solve_cell_block(2, F=F)
        r_st = s_st.solve_cell_block(2, F=F)
        assert np.array_equal(r_csr.iterations, r_st.iterations)
    assert _relerr(r_csr.u, r_st.u) <= TOL


def test_matrix_free_end_to_end():
    """``assemble=False`` + stencil backend: no matrix ever exists, the
    interval comes from power iteration, and the solve still converges to
    the assembled path's answer."""
    problem = build_scenario("poisson", n_grid=12, assemble=False)
    assert problem.k is None
    session = SolverSession(problem, plan=SolverPlan.single(2, backend="stencil"))
    solve = session.solve_cell(2, eps=1e-10)
    assert solve.result.converged

    reference = SolverSession(
        build_scenario("poisson", n_grid=12), plan=SolverPlan.single(2)
    ).solve_cell(2, eps=1e-10)
    assert _relerr(reference.u, solve.u) <= 1e-8  # both ≈ the true solution

    lo, hi = session.interval
    assert 0 < lo < hi
    assert session.stats.intervals == 1


def test_stencil_interval_encloses_exact_spectrum():
    problem = build_scenario("poisson", n_grid=12)
    lo_ex, hi_ex = ssor_interval(build_blocked_system(problem))
    lo, hi = stencil_interval(stencil_operator(problem))
    assert lo <= lo_ex * 1.05
    assert hi >= hi_ex / 1.05


# --------------------------------------------------------------------------
# sharding: the matrix-free path fans out like the assembled one
# --------------------------------------------------------------------------


@pytest.mark.parametrize("name,kw", SCENARIOS, ids=[s[0] for s in SCENARIOS])
def test_stencil_description_roundtrip(name, kw):
    """The picklable diagonal description rebuilds the operator bitwise
    — and undercuts the CSR arrays (by 5–40× on the kron grids; the
    plate ships its ulp-scattered self-coupling diagonals dense, so its
    margin is thinner), which is why stencil shards never touch CSR
    shared-memory segments."""
    import pickle

    from repro.parallel import stencil_description

    op = stencil_operator(build_scenario(name, **kw))
    desc = stencil_description(op)
    rebuilt = desc.to_operator()
    assert rebuilt.offsets == op.offsets
    assert np.array_equal(rebuilt.values, op.values)
    assert np.array_equal(rebuilt.groups, op.groups)
    assert rebuilt.group_labels == op.group_labels
    k = op.to_csr()
    csr_bytes = k.data.nbytes + k.indices.nbytes + k.indptr.nbytes
    budget = csr_bytes if name == "plate" else csr_bytes / 4
    assert len(pickle.dumps(desc)) < budget


@pytest.mark.parametrize("sharding", [2, 4, (2, 2), (4, 1)])
def test_sharded_stencil_block_matches_serial(sharding):
    """Serial ≡ sharded on the stencil backend for every tested
    (workers, group) partition: iterates, iteration counts and
    per-column counters, bitwise."""
    kw = {"n_grid": 12}
    plan = SolverPlan.single(2, backend="stencil")
    F = np.random.default_rng(17).normal(
        size=(build_scenario("poisson", **kw).f.size, 6)
    )
    serial = SolverSession(
        build_scenario("poisson", **kw), plan=plan
    ).solve_cell_block(2, F=F)
    session = SolverSession(build_scenario("poisson", **kw), plan=plan)
    sharded = session.solve_cell_block(2, F=F, sharding=sharding)
    assert np.array_equal(serial.u, sharded.u)
    assert np.array_equal(serial.iterations, sharded.iterations)
    assert [c.as_dict() for c in serial.result.counters] == [
        c.as_dict() for c in sharded.result.counters
    ]
    assert session.stats.shard_dispatches >= 2


def test_sharded_stencil_pickled_fallback_bitwise():
    """With shared memory off the description rides the spec pickle —
    same bits either way."""
    from repro.core.pcg import block_pcg
    from repro.driver import mstep_coefficients, ssor_interval
    from repro.parallel import ApplicatorRecipe, sharded_block_pcg

    problem = build_scenario("poisson", n_grid=12)
    op = stencil_operator(problem)
    coeffs = mstep_coefficients(
        2, False, ssor_interval(build_blocked_system(problem))
    )
    recipe = ApplicatorRecipe(kind="stencil", coefficients=coeffs)
    F = np.random.default_rng(23).normal(size=(op.n, 4))
    serial = block_pcg(
        op, F, preconditioner=StencilSSOR(op, coeffs), eps=1e-7
    )
    for use_shm in (True, False):
        sharded = sharded_block_pcg(
            op, F, recipe=recipe, workers=2, eps=1e-7, use_shm=use_shm
        )
        assert np.array_equal(serial.u, sharded.u)
        assert np.array_equal(serial.iterations, sharded.iterations)


def test_prewarm_sharding_stencil():
    """Prewarming the stencil backend dispatches warm specs (one per pool
    slot per distinct cell recipe) and leaves the numerics untouched."""
    plan = SolverPlan.single(2, backend="stencil")
    session = SolverSession(build_scenario("poisson", n_grid=12), plan=plan)
    assert session.prewarm_sharding(2) == 2
    F = np.random.default_rng(29).normal(size=(session.problem.f.size, 4))
    warm = session.solve_cell_block(2, F=F, sharding=2)
    cold = SolverSession(
        build_scenario("poisson", n_grid=12), plan=plan
    ).solve_cell_block(2, F=F)
    assert np.array_equal(warm.u, cold.u)
    assert np.array_equal(warm.iterations, cold.iterations)


# --------------------------------------------------------------------------
# guard rails: every unsupported combination refuses loudly
# --------------------------------------------------------------------------


def test_unsupported_scenarios_refuse():
    with pytest.raises(ValueError, match="no stencil operator"):
        stencil_operator(build_scenario("lshape", a=5))
    with pytest.raises(ValueError, match="constant element stiffness"):
        stencil_operator(build_scenario("variable-plate", nrows=6))


def test_invalid_backend_lists_choices():
    with pytest.raises(ValueError) as exc:
        SolverPlan.single(2, backend="gpu")
    for valid in SOLVER_BACKENDS:
        assert repr(valid) in str(exc.value)


def test_stencil_plan_rejects_splitting_applicator():
    with pytest.raises(ValueError, match="merged sweeps only"):
        SolverPlan.single(2, backend="stencil", applicator="splitting")


def test_matrix_free_problem_has_no_blocked_system():
    session = SolverSession(
        build_scenario("poisson", n_grid=8, assemble=False),
        plan=SolverPlan.single(2, backend="stencil"),
    )
    with pytest.raises(ValueError, match="no blocked"):
        session.blocked


def test_scenario_registry_reports_backends():
    from repro.pipeline import available_scenarios

    by_name = {spec.name: spec for spec in available_scenarios()}
    for name in STENCIL_SCENARIOS:
        assert "stencil" in by_name[name].backends
    assert "stencil" not in by_name["lshape"].backends


# --------------------------------------------------------------------------
# large mesh (perf-marked: excluded from tier-1)
# --------------------------------------------------------------------------


@pytest.mark.perf
def test_large_mesh_solves_under_csr_memory_ceiling():
    """ISSUE 8 acceptance: a mesh ≥10× the paper's a=41 system solved
    matrix-free under a peak-allocation ceiling the assembled pipeline
    exceeds at the same size."""
    n_grid = 512  # n = 262,144 dof = 80× the a=41 plate's 3,280

    def peak_of(assemble: bool, backend: str) -> float:
        tracemalloc.start()
        try:
            problem = build_scenario("poisson", n_grid=n_grid, assemble=assemble)
            session = SolverSession(
                problem, plan=SolverPlan.single(2, eps=1e-6, backend=backend)
            )
            solve = session.solve_cell(2)
            assert solve.result.converged
            return tracemalloc.get_traced_memory()[1] / 2**20
        finally:
            tracemalloc.stop()

    stencil_peak = peak_of(False, "stencil")
    csr_peak = peak_of(True, "vectorized")
    # The ceiling between them: matrix-free fits where assembled cannot.
    assert stencil_peak <= 0.7 * csr_peak, (stencil_peak, csr_peak)
