"""Tests for stress recovery — closes the loop on the plate physics."""

import numpy as np
import pytest

from repro import plate_problem, solve_mstep_ssor
from repro.fem.stress import (
    ElementStress,
    element_stresses,
    nodal_stresses,
    von_mises,
)


@pytest.fixture(scope="module")
def solved_plate():
    problem = plate_problem(10)
    solve = solve_mstep_ssor(problem, 3, eps=1e-10)
    return problem, solve.u


class TestElementStress:
    def test_von_mises_uniaxial(self):
        s = ElementStress(sigma_xx=2.0, sigma_yy=0.0, tau_xy=0.0)
        assert s.von_mises == pytest.approx(2.0)

    def test_von_mises_pure_shear(self):
        s = ElementStress(0.0, 0.0, 1.0)
        assert s.von_mises == pytest.approx(np.sqrt(3.0))

    def test_count_matches_triangles(self, solved_plate):
        problem, u = solved_plate
        stresses = element_stresses(problem.mesh, problem.material, u)
        assert len(stresses) == problem.mesh.n_triangles


class TestPhysics:
    def test_uniaxial_tension_field(self, solved_plate):
        # Uniform x-traction of magnitude 1 on the free edge → σ_xx ≈ 1
        # away from the clamped edge (Saint-Venant), σ_yy ≈ 0, τ ≈ 0.
        problem, u = solved_plate
        mesh = problem.mesh
        nodal = nodal_stresses(mesh, problem.material, u)
        interior = [
            mesh.node_id(i, j)
            for i in range(mesh.ncols // 2, mesh.ncols - 1)
            for j in range(2, mesh.nrows - 2)
        ]
        sx = nodal[interior, 0]
        sy = nodal[interior, 1]
        assert np.mean(sx) == pytest.approx(1.0, abs=0.08)
        assert np.max(np.abs(sy)) < 0.25

    def test_stress_concentration_at_clamp(self, solved_plate):
        # The clamped corners carry the highest equivalent stress.
        problem, u = solved_plate
        mesh = problem.mesh
        nodal = nodal_stresses(mesh, problem.material, u)
        vm = von_mises(nodal)
        corner = mesh.node_id(0, 0)
        mid_field = mesh.node_id(mesh.ncols // 2, mesh.nrows // 2)
        assert vm[corner] > vm[mid_field]

    def test_zero_displacement_zero_stress(self):
        problem = plate_problem(6)
        nodal = nodal_stresses(
            problem.mesh, problem.material, np.zeros(problem.n)
        )
        assert np.max(np.abs(nodal)) == 0.0

    def test_linearity(self, solved_plate):
        problem, u = solved_plate
        one = nodal_stresses(problem.mesh, problem.material, u)
        two = nodal_stresses(problem.mesh, problem.material, 2.0 * u)
        assert two == pytest.approx(2.0 * one)

    def test_length_validation(self):
        problem = plate_problem(5)
        with pytest.raises(ValueError):
            element_stresses(problem.mesh, problem.material, np.zeros(3))
