"""Smoke tests: every example script runs to completion.

Examples are user-facing documentation; a broken one is a broken promise.
Each is imported and its ``main()`` executed (fast ones fully; the two
heavyweight ones are covered by running their underlying builders on
smaller inputs inside the benchmarks, so here we only import-check them).
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def load_example(name: str):
    path = EXAMPLES / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestExamplesRun:
    def test_quickstart(self, capsys):
        load_example("quickstart").main()
        out = capsys.readouterr().out
        assert "m-step SSOR PCG" in out
        assert "6P" in out

    def test_poisson_redblack(self, capsys):
        load_example("poisson_redblack").main()
        out = capsys.readouterr().out
        assert "red/black" in out
        assert "2 colors" in out

    def test_irregular_region(self, capsys):
        load_example("irregular_region").main()
        out = capsys.readouterr().out
        assert "L-shaped" in out
        assert "von Mises" in out

    def test_fem_machine_simulation(self, capsys):
        load_example("fem_machine_simulation").main()
        out = capsys.readouterr().out
        assert "speedup" in out
        assert "Figure 5" in out

    def test_scenario_tour(self, capsys):
        load_example("scenario_tour").main()
        out = capsys.readouterr().out
        assert "anisotropic" in out
        assert "variable-plate" in out

    def test_block_rhs_tour(self, capsys):
        load_example("block_rhs_tour").main()
        out = capsys.readouterr().out
        assert "Four load cases" in out
        assert "bitwise" in out
        assert "iteration spread" in out


class TestStencilLargeMesh:
    def test_stencil_large_mesh(self, capsys, monkeypatch):
        module = load_example("stencil_large_mesh")
        monkeypatch.setattr(module, "N_GRID", 48)  # CI-sized mesh, same path
        module.main()
        out = capsys.readouterr().out
        assert "matrix-free (stencil)" in out
        assert "peak-allocation advantage" in out


class TestHeavyExamplesImportable:
    @pytest.mark.parametrize(
        "name", ["plane_stress_plate", "cyber_simulation", "polynomial_preconditioners"]
    )
    def test_module_loads_and_has_main(self, name):
        module = load_example(name)
        assert callable(module.main)


class TestParallelTour:
    def test_parallel_tour(self, capsys):
        load_example("parallel_tour").main()
        out = capsys.readouterr().out
        assert "bitwise identical to the serial block lockstep" in out
        assert "worker processes" in out
        assert "CYBER schedule cells sharded" in out
