"""Failure-injection tests: the library must fail loudly and sanely.

The solvers assume SPD operators and proper colorings; these tests feed
them broken inputs and check that every failure is either detected at
construction or surfaces as a clean non-converged result — never a wrong
answer reported as converged.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core import (
    DeltaInfNorm,
    JacobiSplitting,
    MStepPreconditioner,
    SSORSplitting,
    cg,
    neumann_coefficients,
    pcg,
)
from repro.fem import PlateMesh, plate_problem
from repro.multicolor import BlockedMatrix, MStepSSOR, MulticolorOrdering


class TestIndefiniteOperators:
    def test_cg_on_indefinite_matrix_reports_breakdown(self):
        k = sp.diags([1.0, -1.0, 2.0]).tocsr()
        f = np.array([1.0, 1.0, 1.0])
        result = cg(k, f, eps=1e-10, maxiter=50)
        # Either it never claims convergence, or the residual really is small.
        if result.converged:
            assert np.max(np.abs(k @ result.u - f)) < 1e-6

    def test_pcg_with_indefinite_preconditioner_still_guarded(self):
        # An m-step Jacobi preconditioner on a matrix whose Jacobi spectrum
        # exceeds 2 is indefinite for even m; PCG may wander but must not
        # report a bad solution as converged under a residual rule.
        prob = plate_problem(5)
        precond = MStepPreconditioner(
            JacobiSplitting(prob.k), neumann_coefficients(2)
        )
        from repro.core import AbsoluteResidual

        result = pcg(
            prob.k, prob.f, preconditioner=precond,
            stopping=AbsoluteResidual(1e-9), maxiter=2000,
        )
        if result.converged:
            assert np.max(np.abs(prob.k @ result.u - prob.f)) < 1e-6


class TestBrokenColorings:
    def test_blocked_matrix_rejects_improper_groups(self):
        prob = plate_problem(5)
        # Group everything by parity of the unknown index — same-node (u, v)
        # pairs land in different groups but neighbor couplings collide.
        bad = (np.arange(prob.n) // 4) % 3
        ordering = MulticolorOrdering.from_groups(bad)
        with pytest.raises(ValueError):
            BlockedMatrix.from_matrix(prob.k, ordering)

    def test_zero_diagonal_rejected_before_any_sweep(self):
        k = sp.csr_matrix(
            np.array([[0.0, 1.0, 0.0], [1.0, 2.0, 1.0], [0.0, 1.0, 2.0]])
        )
        ordering = MulticolorOrdering.from_groups(np.array([0, 1, 0]))
        with pytest.raises(ValueError, match="non-positive diagonal"):
            BlockedMatrix.from_matrix(k, ordering)


class TestDegenerateGeometry:
    def test_mesh_rejects_single_row(self):
        with pytest.raises(ValueError):
            PlateMesh(1, 8)

    def test_dof_index_out_of_range(self):
        mesh = PlateMesh(4, 4)
        with pytest.raises(ValueError):
            mesh.node_id(10, 0)
        with pytest.raises(ValueError):
            mesh.dof_index(0, 2)


class TestSolverGuards:
    def test_maxiter_zero_returns_not_converged(self):
        prob = plate_problem(4)
        result = cg(prob.k, prob.f, eps=1e-12, maxiter=0)
        assert not result.converged
        assert result.iterations == 0

    def test_huge_eps_converges_first_iteration(self):
        prob = plate_problem(4)
        result = cg(prob.k, prob.f, stopping=DeltaInfNorm(1e9))
        assert result.converged
        assert result.iterations == 1

    def test_mstep_ssor_never_mutates_input(self):
        prob = plate_problem(5)
        from repro.driver import build_blocked_system

        blocked = build_blocked_system(prob)
        applicator = MStepSSOR(blocked, neumann_coefficients(3))
        r = np.ones(blocked.n)
        r_copy = r.copy()
        applicator.apply(r)
        assert np.array_equal(r, r_copy)

    def test_pcg_never_mutates_rhs(self):
        prob = plate_problem(5)
        f_copy = prob.f.copy()
        pcg(prob.k, prob.f, eps=1e-8)
        assert np.array_equal(prob.f, f_copy)

    def test_ssor_splitting_never_mutates_matrix(self):
        prob = plate_problem(5)
        before = prob.k.copy()
        splitting = SSORSplitting(prob.k)
        splitting.apply_p_inv(np.ones(prob.n))
        assert (prob.k - before).nnz == 0
