"""Tests for the IC(0) baseline."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core import AbsoluteResidual, cg, pcg
from repro.core.ichol import ICBreakdown, ICPreconditioner, ichol0
from repro.fem import plate_problem, poisson_problem
from repro.util import is_spd


class TestFactorization:
    def test_exact_on_tridiagonal_m_matrix(self):
        # IC(0) of a tridiagonal M-matrix is the *exact* Cholesky factor
        # (no fill exists to drop).
        n = 12
        k = sp.diags(
            [-np.ones(n - 1), 2.0 * np.ones(n), -np.ones(n - 1)], [-1, 0, 1]
        ).tocsr()
        l_factor = ichol0(k)
        assert (l_factor @ l_factor.T - k).toarray() == pytest.approx(
            np.zeros((n, n)), abs=1e-12
        )

    def test_pattern_preserved(self):
        prob = poisson_problem(6)
        l_factor = ichol0(prob.k)
        lower = sp.tril(prob.k, 0).tocsr()
        assert l_factor.nnz == lower.nnz
        assert np.array_equal(l_factor.indices, lower.indices)

    def test_poisson_residual_small(self):
        prob = poisson_problem(8)
        l_factor = ichol0(prob.k)
        err = (l_factor @ l_factor.T - prob.k).toarray()
        # zero-fill drops some fill, but the factorization is close on the
        # 5-point stencil.
        assert np.max(np.abs(err)) < 0.35 * float(np.abs(prob.k.toarray()).max())

    def test_positive_diagonal(self):
        prob = plate_problem(5)
        precond = ICPreconditioner(prob.k)
        assert np.all(precond.l_factor.diagonal() > 0)

    KERSHAW = np.array(
        [
            [3.0, -2.0, 0.0, 2.0],
            [-2.0, 3.0, -2.0, 0.0],
            [0.0, -2.0, 3.0, -2.0],
            [2.0, 0.0, -2.0, 3.0],
        ]
    )

    def test_breakdown_raises(self):
        # Kershaw's (1978) classic: SPD yet IC(0) hits a negative pivot.
        assert is_spd(self.KERSHAW, tol=1e-12)
        with pytest.raises(ICBreakdown):
            ichol0(sp.csr_matrix(self.KERSHAW))

    def test_shift_rescues_breakdown(self):
        precond = ICPreconditioner(sp.csr_matrix(self.KERSHAW))
        assert precond.shift > 0
        out = precond.apply(np.ones(4))
        assert np.all(np.isfinite(out))


class TestICCG:
    def test_iccg_converges_and_beats_cg(self):
        prob = plate_problem(8)
        base = cg(prob.k, prob.f, stopping=AbsoluteResidual(1e-9))
        precond = ICPreconditioner(prob.k)
        result = pcg(
            prob.k, prob.f, preconditioner=precond,
            stopping=AbsoluteResidual(1e-9),
        )
        assert result.converged
        assert result.iterations < base.iterations
        assert prob.k @ result.u == pytest.approx(prob.f, abs=1e-7)

    def test_iccg_competitive_with_one_step_ssor(self):
        # Serially, ICCG is at least in the same league as 1-step SSOR —
        # the reason it was the default in 1983 serial codes.
        from repro.core import MStepPreconditioner, SSORSplitting, neumann_coefficients

        prob = plate_problem(8)
        ic_iters = pcg(
            prob.k, prob.f, preconditioner=ICPreconditioner(prob.k), eps=1e-7
        ).iterations
        ssor_iters = pcg(
            prob.k,
            prob.f,
            preconditioner=MStepPreconditioner(
                SSORSplitting(prob.k), neumann_coefficients(1)
            ),
            eps=1e-7,
        ).iterations
        assert ic_iters <= ssor_iters * 1.5

    def test_counter_tracks_triangular_solves(self):
        prob = plate_problem(5)
        precond = ICPreconditioner(prob.k)
        precond.apply(np.ones(prob.n))
        precond.apply(np.ones(prob.n))
        assert precond.counter.precond_applications == 2
        assert precond.counter.extra["triangular_solves"] == 4

    def test_cyber_cost_is_scalar_bound(self):
        from repro.machines import CYBER_203

        prob = plate_problem(8)
        precond = ICPreconditioner(prob.k)
        t_ic = precond.cyber_apply_seconds(CYBER_203)
        # 2·nnz scalar ops at scalar_time each.
        assert t_ic == pytest.approx(2 * precond.nnz * CYBER_203.scalar_time)
