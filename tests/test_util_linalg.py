"""Unit and property tests for repro.util.linalg."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.util import OperationCounter, as_dense, inf_norm, inner, permutation_matrix

finite_vectors = hnp.arrays(
    dtype=np.float64,
    shape=st.integers(1, 40),
    elements=st.floats(-1e6, 1e6, allow_nan=False),
)


class TestInner:
    def test_matches_numpy_dot(self):
        rng = np.random.default_rng(0)
        x, y = rng.normal(size=17), rng.normal(size=17)
        assert inner(x, y) == pytest.approx(float(x @ y))

    def test_returns_python_float(self):
        assert isinstance(inner(np.ones(3), np.ones(3)), float)

    @given(finite_vectors)
    def test_inner_with_self_nonnegative(self, x):
        assert inner(x, x) >= 0.0

    @given(finite_vectors)
    def test_symmetry(self, x):
        y = x[::-1].copy()
        assert inner(x, y) == pytest.approx(inner(y, x))


class TestInfNorm:
    def test_empty_vector(self):
        assert inf_norm(np.array([])) == 0.0

    def test_known_value(self):
        assert inf_norm(np.array([1.0, -3.5, 2.0])) == 3.5

    @given(finite_vectors)
    def test_dominates_mean_abs(self, x):
        # Relative slack: the mean of identical values can exceed the max by
        # a rounding ulp.
        assert inf_norm(x) >= np.mean(np.abs(x)) * (1.0 - 1e-12) - 1e-12

    @given(finite_vectors, st.floats(-100, 100, allow_nan=False))
    def test_absolute_homogeneity(self, x, a):
        assert inf_norm(a * x) == pytest.approx(abs(a) * inf_norm(x), rel=1e-12, abs=1e-300)


class TestPermutationMatrix:
    def test_identity(self):
        p = permutation_matrix(np.arange(4))
        assert np.array_equal(as_dense(p), np.eye(4))

    def test_gather_semantics(self):
        perm = np.array([2, 0, 1])
        p = permutation_matrix(perm)
        x = np.array([10.0, 20.0, 30.0])
        assert np.array_equal(p @ x, x[perm])

    def test_orthogonality(self):
        rng = np.random.default_rng(3)
        perm = rng.permutation(11)
        p = permutation_matrix(perm)
        assert np.array_equal(as_dense(p @ p.T), np.eye(11))

    def test_similarity_reorders_matrix(self):
        rng = np.random.default_rng(4)
        a = rng.normal(size=(5, 5))
        perm = rng.permutation(5)
        p = permutation_matrix(perm)
        b = as_dense(p @ a @ p.T)
        assert b == pytest.approx(a[np.ix_(perm, perm)])

    def test_rejects_non_permutation(self):
        with pytest.raises(ValueError):
            permutation_matrix(np.array([0, 0, 1]))
        with pytest.raises(ValueError):
            permutation_matrix(np.array([0, 5, 1]))

    @given(st.integers(1, 30), st.integers(0, 2**31 - 1))
    def test_roundtrip_property(self, n, seed):
        rng = np.random.default_rng(seed)
        perm = rng.permutation(n)
        p = permutation_matrix(perm)
        x = rng.normal(size=n)
        assert p.T @ (p @ x) == pytest.approx(x)


class TestOperationCounter:
    def test_starts_at_zero(self):
        c = OperationCounter()
        assert c.as_dict() == {
            "inner_products": 0,
            "matvecs": 0,
            "precond_applications": 0,
            "precond_steps": 0,
            "axpys": 0,
        }

    def test_merge_accumulates(self):
        a = OperationCounter(inner_products=2, matvecs=1, extra={"sweeps": 3})
        b = OperationCounter(inner_products=1, axpys=4, extra={"sweeps": 2, "solves": 1})
        a.merge(b)
        assert a.inner_products == 3
        assert a.matvecs == 1
        assert a.axpys == 4
        assert a.extra == {"sweeps": 5, "solves": 1}
