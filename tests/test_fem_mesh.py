"""Unit and property tests for the plate mesh (Figure 1 structure)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fem import PlateMesh
from repro.fem.mesh import BLACK, GREEN, RED

mesh_dims = st.tuples(st.integers(2, 14), st.integers(2, 14))


@pytest.fixture
def mesh66():
    """The Finite Element Machine test problem: 6 rows × 6 columns."""
    return PlateMesh(nrows=6, ncols=6)


class TestSizes:
    def test_paper_6x6_has_60_equations(self, mesh66):
        assert mesh66.n_unknowns == 60  # "60 equations" in Section 4

    def test_a_and_b(self, mesh66):
        assert mesh66.a == 6
        assert mesh66.b == 5

    def test_triangle_count(self, mesh66):
        assert mesh66.n_triangles == 2 * 5 * 5
        assert mesh66.triangles.shape == (50, 3)

    def test_rejects_degenerate(self):
        with pytest.raises(ValueError):
            PlateMesh(nrows=1, ncols=5)
        with pytest.raises(ValueError):
            PlateMesh(nrows=5, ncols=5, width=-1.0)


class TestIndexing:
    def test_node_id_roundtrip(self, mesh66):
        for node in range(mesh66.n_nodes):
            i, j = mesh66.node_ij(node)
            assert mesh66.node_id(i, j) == node

    def test_coordinates_corners(self):
        mesh = PlateMesh(nrows=3, ncols=4, width=3.0, height=2.0)
        coords = mesh.coordinates
        assert coords[mesh.node_id(0, 0)] == pytest.approx([0.0, 0.0])
        assert coords[mesh.node_id(3, 2)] == pytest.approx([3.0, 2.0])

    @given(mesh_dims)
    def test_dof_indices_are_bijective(self, dims):
        nrows, ncols = dims
        mesh = PlateMesh(nrows=nrows, ncols=ncols)
        seen = set()
        for node in mesh.unconstrained_nodes:
            for dof in (0, 1):
                seen.add(mesh.dof_index(int(node), dof))
        assert seen == set(range(mesh.n_unknowns))

    def test_constrained_node_dof_is_negative(self, mesh66):
        assert mesh66.dof_index(mesh66.node_id(0, 0), 0) == -1

    def test_dof_node_and_component_consistent(self, mesh66):
        for idx in range(mesh66.n_unknowns):
            node = int(mesh66.dof_node[idx])
            comp = int(mesh66.dof_component[idx])
            assert mesh66.dof_index(node, comp) == idx


class TestTriangulation:
    def test_triangles_are_ccw(self, mesh66):
        coords = mesh66.coordinates
        tri = coords[mesh66.triangles]
        area2 = (tri[:, 1, 0] - tri[:, 0, 0]) * (tri[:, 2, 1] - tri[:, 0, 1]) - (
            tri[:, 2, 0] - tri[:, 0, 0]
        ) * (tri[:, 1, 1] - tri[:, 0, 1])
        assert np.all(area2 > 0)

    def test_triangles_tile_the_plate(self, mesh66):
        coords = mesh66.coordinates
        tri = coords[mesh66.triangles]
        area2 = (tri[:, 1, 0] - tri[:, 0, 0]) * (tri[:, 2, 1] - tri[:, 0, 1]) - (
            tri[:, 2, 0] - tri[:, 0, 0]
        ) * (tri[:, 1, 1] - tri[:, 0, 1])
        assert float(np.sum(area2) / 2.0) == pytest.approx(
            mesh66.width * mesh66.height
        )

    def test_interior_node_has_six_neighbors(self, mesh66):
        interior = mesh66.node_id(3, 3)
        assert len(mesh66.neighbors(interior)) == 6

    def test_corner_neighbor_counts(self, mesh66):
        # The SW corner has E and N plus the NW diagonal of the '/' split.
        sw = mesh66.node_id(0, 0)
        assert len(mesh66.neighbors(sw)) == 2  # (-1,1) off grid, (1,-1) off grid
        ne = mesh66.node_id(5, 5)
        assert len(mesh66.neighbors(ne)) == 2

    @given(mesh_dims)
    @settings(max_examples=25)
    def test_neighbor_relation_is_symmetric(self, dims):
        nrows, ncols = dims
        mesh = PlateMesh(nrows=nrows, ncols=ncols)
        adj = mesh.adjacency
        for node, nbrs in adj.items():
            for other in nbrs:
                assert node in adj[other]

    @given(mesh_dims)
    @settings(max_examples=25)
    def test_triangle_edges_are_neighbor_pairs(self, dims):
        nrows, ncols = dims
        mesh = PlateMesh(nrows=nrows, ncols=ncols)
        adj = mesh.adjacency
        for tri in mesh.triangles:
            for p, q in ((0, 1), (1, 2), (0, 2)):
                assert int(tri[q]) in adj[int(tri[p])]


class TestColoring:
    @given(mesh_dims)
    @settings(max_examples=40)
    def test_every_triangle_tricolored(self, dims):
        nrows, ncols = dims
        mesh = PlateMesh(nrows=nrows, ncols=ncols)
        mesh.validate_coloring()  # raises on violation

    @given(mesh_dims)
    @settings(max_examples=40)
    def test_no_adjacent_nodes_share_color(self, dims):
        nrows, ncols = dims
        mesh = PlateMesh(nrows=nrows, ncols=ncols)
        colors = mesh.node_colors
        for node, nbrs in mesh.adjacency.items():
            for other in nbrs:
                assert colors[node] != colors[other]

    def test_first_node_is_red(self, mesh66):
        assert mesh66.node_colors[mesh66.node_id(0, 0)] == RED

    def test_paper_wrap_rule(self):
        # ncols ≡ 2 (mod 3): the last node of the first row is Black and the
        # sequential R/B/G numbering wraps consistently (all Table-2 meshes).
        for ncols in (5, 8, 20, 41, 62, 80):
            mesh = PlateMesh(nrows=3, ncols=ncols)
            assert mesh.sequential_wrap_consistent
            assert mesh.node_colors[mesh.node_id(ncols - 1, 0)] == BLACK

    def test_sequential_numbering_matches_closed_form_when_consistent(self):
        mesh = PlateMesh(nrows=4, ncols=5)
        sequential = np.arange(mesh.n_nodes) % 3  # R,B,G,R,B,G,... row-major
        assert np.array_equal(sequential, mesh.node_colors)

    def test_color_counts_sum(self, mesh66):
        assert int(mesh66.color_counts().sum()) == mesh66.n_nodes

    def test_colors_balanced_within_one(self):
        mesh = PlateMesh(nrows=20, ncols=20)
        counts = mesh.color_counts()
        assert counts.max() - counts.min() <= 2

    def test_ascii_rendition_shape(self, mesh66):
        art = mesh66.coloring_ascii()
        lines = art.splitlines()
        assert len(lines) == 6
        assert all(len(line.split()) == 6 for line in lines)
        assert set("".join(line.replace(" ", "") for line in lines)) <= set("RBG")
        assert mesh66.color_ij(0, 0) == RED and GREEN in mesh66.node_colors


class TestConstraints:
    def test_left_column_constrained(self, mesh66):
        assert np.array_equal(
            mesh66.constrained_nodes,
            np.array([mesh66.node_id(0, j) for j in range(6)]),
        )

    def test_loaded_edge_is_right_column(self, mesh66):
        assert np.array_equal(
            mesh66.loaded_nodes,
            np.array([mesh66.node_id(5, j) for j in range(6)]),
        )

    def test_unconstrained_count(self, mesh66):
        assert mesh66.unconstrained_nodes.size == 30


class TestVectorLength:
    @pytest.mark.parametrize(
        "a, expected_low, expected_high",
        [(20, 130, 136), (41, 555, 565), (62, 1275, 1290), (80, 2125, 2140)],
    )
    def test_table2_vector_lengths(self, a, expected_low, expected_high):
        # Paper reports v = 132, 561, 1282, 2134 for a = 20, 41, 62, 80;
        # the closed form gives ceil(a²/3) up to color-count rounding.
        mesh = PlateMesh(nrows=a, ncols=a)
        assert expected_low <= mesh.max_vector_length() <= expected_high

    def test_vector_length_close_to_a_squared_over_3(self):
        mesh = PlateMesh(nrows=55, ncols=55)
        # "around 1000 when a = 55"
        assert abs(mesh.max_vector_length() - 55 * 55 / 3) <= 2
