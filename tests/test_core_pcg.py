"""Tests for Algorithm 1 (PCG driver) and stopping rules."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    AbsoluteResidual,
    DeltaInfNorm,
    IdentityPreconditioner,
    JacobiSplitting,
    MStepPreconditioner,
    RelativeResidual,
    SSORSplitting,
    cg,
    neumann_coefficients,
    pcg,
)
from repro.fem import plate_problem, poisson_problem


def random_spd(seed: int, n: int = 30) -> tuple[sp.csr_matrix, np.ndarray]:
    rng = np.random.default_rng(seed)
    a = rng.normal(size=(n, n))
    k = sp.csr_matrix(a @ a.T + n * np.eye(n))
    return k, rng.normal(size=n)


class TestCG:
    def test_solves_diagonal_exactly_in_one_iteration(self):
        k = sp.diags([2.0, 2.0, 2.0]).tocsr()
        f = np.array([2.0, 4.0, 6.0])
        result = cg(k, f, eps=1e-12)
        assert result.converged
        assert result.u == pytest.approx(f / 2.0)
        # One Krylov direction suffices for a scaled identity; Algorithm 1
        # still needs a second iteration for ‖Δu‖ to fall below ε.
        assert result.iterations <= 2

    def test_exact_termination_within_n_steps(self):
        k, f = random_spd(0, n=25)
        result = cg(k, f, stopping=AbsoluteResidual(tol=1e-9), maxiter=200)
        assert result.converged
        assert result.iterations <= 25 + 5  # finite termination + rounding slack

    def test_solution_correct(self):
        prob = poisson_problem(10)
        result = cg(prob.k, prob.f, eps=1e-10)
        direct = prob.direct_solution()
        assert result.u == pytest.approx(direct, rel=1e-6, abs=1e-8)

    def test_zero_rhs_converges_immediately(self):
        k, _ = random_spd(1, n=10)
        result = cg(k, np.zeros(10), eps=1e-12)
        assert result.converged
        assert result.u == pytest.approx(np.zeros(10))

    def test_maxiter_respected(self):
        prob = poisson_problem(12)
        result = cg(prob.k, prob.f, eps=1e-14, maxiter=3)
        assert not result.converged
        assert result.iterations == 3

    def test_initial_guess_used(self):
        prob = poisson_problem(6)
        exact = prob.direct_solution()
        result = cg(prob.k, prob.f, u0=exact.copy(), eps=1e-10)
        assert result.iterations <= 1
        assert result.converged


class TestInstrumentation:
    def test_two_inner_products_per_iteration(self):
        # The paper's central cost claim: Algorithm 1 does two inner
        # products per iteration (plus one at startup), regardless of m.
        prob = plate_problem(5)
        result = cg(prob.k, prob.f, eps=1e-8)
        iters = result.iterations
        # Startup ρ₀ + per iteration: (p, Kp) always, (r̃, r) except on the
        # stopping iteration (steps 4–7 skipped).
        assert result.counter.inner_products == 1 + 2 * iters - 1

    def test_matvec_count(self):
        prob = plate_problem(5)
        result = cg(prob.k, prob.f, eps=1e-8)
        assert result.counter.matvecs == result.iterations + 1  # + initial r⁰

    def test_precond_counts_merged_per_solve(self):
        prob = plate_problem(5)
        splitting = SSORSplitting(prob.k)
        precond = MStepPreconditioner(splitting, neumann_coefficients(2))
        first = pcg(prob.k, prob.f, preconditioner=precond, eps=1e-8)
        second = pcg(prob.k, prob.f, preconditioner=precond, eps=1e-8)
        # Re-using the preconditioner must not leak counts across solves.
        # Applications per solve: one at startup plus one per iteration,
        # minus the stopping iteration's (steps 4–7 are skipped).
        assert first.counter.precond_applications == first.iterations
        assert second.counter.precond_applications == second.iterations
        assert second.counter.precond_steps == 2 * second.iterations

    def test_delta_history_length(self):
        prob = poisson_problem(8)
        result = cg(prob.k, prob.f, eps=1e-8)
        assert len(result.delta_history) == result.iterations
        assert result.delta_history[-1] < 1e-8

    def test_residual_tracking_optional(self):
        prob = poisson_problem(8)
        untracked = cg(prob.k, prob.f, eps=1e-8)
        tracked = cg(prob.k, prob.f, eps=1e-8, track_residual=True)
        assert untracked.residual_history == []
        assert len(tracked.residual_history) >= tracked.iterations

    def test_callback_invoked(self):
        prob = poisson_problem(6)
        seen = []
        cg(prob.k, prob.f, eps=1e-8, callback=lambda k, u, d: seen.append(k))
        assert seen == list(range(1, len(seen) + 1))


class TestPreconditionedConvergence:
    @pytest.mark.parametrize("m", [1, 2, 3])
    def test_mstep_ssor_reduces_iterations(self, m):
        prob = plate_problem(6)
        base = cg(prob.k, prob.f, eps=1e-6)
        precond = MStepPreconditioner(SSORSplitting(prob.k), neumann_coefficients(m))
        result = pcg(prob.k, prob.f, preconditioner=precond, eps=1e-6)
        assert result.converged
        assert result.iterations < base.iterations
        assert result.u == pytest.approx(base.u, rel=1e-4, abs=1e-6)

    def test_jacobi_preconditioner_correct(self):
        k, f = random_spd(3, n=40)
        precond = MStepPreconditioner(JacobiSplitting(k), neumann_coefficients(1))
        result = pcg(k, f, preconditioner=precond, stopping=AbsoluteResidual(1e-10))
        assert result.converged
        assert k @ result.u == pytest.approx(f, rel=1e-7, abs=1e-7)

    @given(st.integers(0, 2**31 - 1), st.integers(1, 4))
    @settings(max_examples=15, deadline=None)
    def test_property_random_spd_systems_solved(self, seed, m):
        k, f = random_spd(seed, n=20)
        precond = MStepPreconditioner(SSORSplitting(k), neumann_coefficients(m))
        result = pcg(k, f, preconditioner=precond, stopping=AbsoluteResidual(1e-9))
        assert result.converged
        assert np.linalg.norm(k @ result.u - f) < 1e-6 * max(np.linalg.norm(f), 1)


class TestStoppingRules:
    def test_delta_inf_description(self):
        assert "1e-06" in DeltaInfNorm(1e-6).describe() or "1e-6" in DeltaInfNorm(
            1e-6
        ).describe()

    def test_rules_validate_tolerances(self):
        for cls in (DeltaInfNorm, RelativeResidual, AbsoluteResidual):
            with pytest.raises(ValueError):
                cls(-1.0)

    def test_relative_residual_stops_later_than_loose_delta(self):
        prob = poisson_problem(10)
        loose = cg(prob.k, prob.f, stopping=DeltaInfNorm(1e-2))
        tight = cg(prob.k, prob.f, stopping=RelativeResidual(1e-12))
        assert tight.iterations > loose.iterations
        assert np.linalg.norm(prob.k @ tight.u - prob.f) <= 1e-10 * np.linalg.norm(
            prob.f
        )

    def test_identity_preconditioner_equals_plain_cg(self):
        prob = poisson_problem(9)
        a = cg(prob.k, prob.f, eps=1e-9)
        b = pcg(prob.k, prob.f, preconditioner=IdentityPreconditioner(), eps=1e-9)
        assert a.iterations == b.iterations
        assert a.u == pytest.approx(b.u)

    def test_shape_mismatch_rejected(self):
        k = sp.identity(4).tocsr()
        with pytest.raises(ValueError):
            pcg(k, np.ones(5))
