"""Tests for the timing models, diagonal storage, and the vector machine."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machines import (
    CYBER_203,
    FEM_1983,
    ArrayTimingModel,
    DiagonalStorage,
    VectorMachine,
    VectorTimingModel,
)


class TestVectorTimingModel:
    def test_paper_efficiency_quotes(self):
        # "For vectors of length 1000 around 90% efficiency is obtained, but
        #  this drops to approximately 50% ... for length 100 and 10% for
        #  vectors of length 10."
        model = CYBER_203
        assert model.efficiency(1000) == pytest.approx(0.90, abs=0.02)
        assert model.efficiency(100) == pytest.approx(0.50, abs=0.01)
        assert model.efficiency(10) == pytest.approx(0.10, abs=0.01)

    def test_op_time_grows_linearly(self):
        model = VectorTimingModel()
        t1 = model.vector_op_time(1000)
        t2 = model.vector_op_time(2000)
        assert t2 < 2 * t1  # startup amortized
        assert t2 > 1.8 * t1

    def test_zero_length_free(self):
        assert VectorTimingModel().vector_op_time(0) == 0.0
        assert VectorTimingModel().dot_time(0) == 0.0

    def test_dot_slower_than_vector_op(self):
        # "the additions of the partial sums make this operation considerably
        #  slower than the other vector operations"
        model = CYBER_203
        for n in (50, 132, 561, 2134):
            assert model.dot_time(n) > 2 * model.vector_op_time(n)

    def test_dot_relative_penalty_shrinks_with_length(self):
        model = CYBER_203
        short = model.dot_time(132) / model.vector_op_time(132)
        long = model.dot_time(2134) / model.vector_op_time(2134)
        assert long < short

    def test_validation(self):
        with pytest.raises(ValueError):
            VectorTimingModel(element_time=0.0)


class TestArrayTimingModel:
    def test_reduction_modes(self):
        model = FEM_1983
        assert model.reduction_time(1) == 0.0
        assert model.reduction_time(8, "software") == 7 * model.ring_hop_time
        assert model.reduction_time(8, "circuit") == 3 * model.circuit_stage_time
        with pytest.raises(ValueError):
            model.reduction_time(4, "telepathy")

    def test_circuit_is_log_software_is_linear(self):
        model = FEM_1983
        soft = [model.reduction_time(p, "software") for p in (2, 16, 128)]
        circ = [model.reduction_time(p, "circuit") for p in (2, 16, 128)]
        assert soft[2] / soft[0] == pytest.approx(127.0)
        assert circ[2] / circ[0] == pytest.approx(7.0)

    def test_record_time_structure(self):
        model = ArrayTimingModel()
        assert model.record_time(0) == 0.0
        assert model.record_time(10) == pytest.approx(
            model.record_latency + 10 * model.word_time
        )

    def test_minute_scale_single_processor(self):
        # Sanity of the calibration: ~2000 flops/iteration × ~48 iterations
        # of the 60-equation problem lands in Table 3's minute range.
        assert 30.0 < FEM_1983.compute_time(2000) * 48 < 120.0


class TestDiagonalStorage:
    def test_round_trip_square(self):
        rng = np.random.default_rng(0)
        a = sp.random(12, 12, density=0.3, random_state=rng).tocsr()
        storage = DiagonalStorage.from_block(a)
        assert (storage.to_csr() - a).nnz == 0

    def test_round_trip_rectangular(self):
        rng = np.random.default_rng(1)
        a = sp.random(7, 11, density=0.4, random_state=rng).tocsr()
        storage = DiagonalStorage.from_block(a)
        assert storage.to_csr().toarray() == pytest.approx(a.toarray())

    def test_matvec_matches_csr(self):
        rng = np.random.default_rng(2)
        a = sp.random(9, 13, density=0.5, random_state=rng).tocsr()
        storage = DiagonalStorage.from_block(a)
        x = rng.normal(size=13)
        assert storage.matvec(x) == pytest.approx(a @ x)

    def test_matvec_accumulates(self):
        a = sp.identity(5).tocsr()
        storage = DiagonalStorage.from_block(a)
        out = np.ones(5)
        storage.matvec(np.full(5, 2.0), out=out)
        assert out == pytest.approx(np.full(5, 3.0))

    def test_empty_block(self):
        storage = DiagonalStorage.from_block(sp.csr_matrix((4, 6)))
        assert storage.n_diagonals == 0
        assert storage.matvec(np.ones(6)) == pytest.approx(np.zeros(4))

    def test_prunes_numerically_zero_diagonals(self):
        # Build a matrix with an explicit structural zero off the diagonal.
        a = sp.coo_matrix(
            (np.array([1.0, 0.0, 1.0]), (np.array([0, 0, 1]), np.array([0, 1, 1]))),
            shape=(2, 2),
        ).tocsr()
        storage = DiagonalStorage.from_block(a)
        assert storage.offsets == (0,)

    def test_diagonal_count_of_tridiagonal(self):
        n = 10
        a = sp.diags([np.ones(n - 1), 2 * np.ones(n), np.ones(n - 1)], [-1, 0, 1])
        storage = DiagonalStorage.from_block(a.tocsr())
        assert storage.n_diagonals == 3
        assert storage.max_vector_length() == n

    @given(st.integers(0, 2**31 - 1), st.integers(2, 20), st.integers(2, 20))
    @settings(max_examples=25, deadline=None)
    def test_property_matvec_any_shape(self, seed, rows, cols):
        rng = np.random.default_rng(seed)
        a = sp.random(rows, cols, density=0.3, random_state=rng).tocsr()
        storage = DiagonalStorage.from_block(a)
        x = rng.normal(size=cols)
        assert storage.matvec(x) == pytest.approx(a @ x, rel=1e-12, abs=1e-12)


class TestVectorMachine:
    def test_arithmetic_correct_and_charged(self):
        vm = VectorMachine(CYBER_203)
        a, b = np.arange(4.0), np.ones(4)
        assert vm.add(a, b) == pytest.approx(a + b)
        assert vm.subtract(a, b) == pytest.approx(a - b)
        assert vm.multiply(a, b) == pytest.approx(a * b)
        assert vm.axpy(2.0, a, b) == pytest.approx(b + 2 * a)
        assert vm.dot(a, a) == pytest.approx(float(a @ a))
        assert vm.elapsed_seconds > 0
        counts = vm.log.breakdown()
        assert counts["add"][0] == 1
        assert counts["dot"][0] == 1

    def test_dot_charged_more_than_add(self):
        vm = VectorMachine(CYBER_203)
        x = np.ones(500)
        vm.add(x, x)
        vm.dot(x, x)
        assert vm.log.seconds["dot"] > vm.log.seconds["add"]

    def test_mask_is_free_and_correct(self):
        vm = VectorMachine(CYBER_203)
        before = vm.elapsed_seconds
        out = vm.apply_mask(np.array([1.0, 2.0, 3.0]), np.array([True, False, True]))
        assert out == pytest.approx([1.0, 0.0, 3.0])
        assert vm.elapsed_seconds == before  # control vector rides the op

    def test_masked_store_charged(self):
        vm = VectorMachine(CYBER_203)
        dst = np.zeros(3)
        out = vm.masked_store(dst, np.array([1.0, 2.0, 3.0]), np.array([True, False, True]))
        assert out == pytest.approx([1.0, 0.0, 3.0])
        assert vm.log.counts["masked_store"] == 1

    def test_diag_matvec_charges_per_diagonal(self):
        vm = VectorMachine(CYBER_203)
        a = sp.diags([np.ones(9), np.ones(10)], [-1, 0]).tocsr()
        storage = DiagonalStorage.from_block(a)
        out = np.zeros(10)
        vm.diag_matvec_accumulate(storage, np.ones(10), out)
        assert vm.log.counts["diag_madd"] == 2

    def test_reset(self):
        vm = VectorMachine(CYBER_203)
        vm.add(np.ones(3), np.ones(3))
        vm.reset()
        assert vm.elapsed_seconds == 0.0
