"""Tests for power-iteration intervals and model-based m selection."""

import numpy as np
import pytest

from repro.analysis import PerformanceModel
from repro.core import SSORSplitting, spectrum_interval
from repro.core.autotune import predicted_cost_curve, recommend_m
from repro.core.spectral import power_interval
from repro.fem import plate_problem


@pytest.fixture(scope="module")
def splitting():
    return SSORSplitting(plate_problem(8).k)


@pytest.fixture(scope="module")
def interval(splitting):
    return spectrum_interval(splitting)


class TestPowerInterval:
    def test_close_to_dense(self, splitting, interval):
        lo, hi = power_interval(splitting, iterations=600)
        exact_lo, exact_hi = interval
        assert hi == pytest.approx(exact_hi, rel=0.02)
        assert lo == pytest.approx(exact_lo, rel=0.25, abs=5e-3)

    def test_estimates_inside_true_interval(self, splitting, interval):
        lo, hi = power_interval(splitting, iterations=300)
        exact_lo, exact_hi = interval
        assert hi <= exact_hi * (1 + 1e-8)
        assert lo >= exact_lo * (1 - 1e-6) - 1e-12

    def test_deterministic_given_seed(self, splitting):
        a = power_interval(splitting, iterations=50, seed=3)
        b = power_interval(splitting, iterations=50, seed=3)
        assert a == b

    def test_rejects_nonsymmetric(self):
        from repro.core import SORSplitting

        with pytest.raises(ValueError):
            power_interval(SORSplitting(plate_problem(5).k))


class TestRecommendM:
    @pytest.fixture(scope="class")
    def kappa_k(self):
        k = plate_problem(8).k.toarray()
        eigs = np.linalg.eigvalsh(k)
        return float(eigs[-1] / eigs[0])

    def test_recommendation_in_range(self, interval, kappa_k):
        model = PerformanceModel(a=1.0, b=1.0)
        rec = recommend_m(interval, model, m_max=10, kappa_k=kappa_k)
        assert 0 <= rec.m <= 10
        assert rec.score == min(rec.scores.values())

    def test_cheap_preconditioner_pushes_m_up(self, interval):
        cheap = recommend_m(interval, PerformanceModel(a=1.0, b=0.05), m_max=10)
        dear = recommend_m(interval, PerformanceModel(a=1.0, b=5.0), m_max=10)
        assert cheap.m >= dear.m

    def test_preconditioning_always_recommended_here(self, interval, kappa_k):
        # With B/A ≈ 1 (the Finite Element Machine's regime) the model never
        # picks plain CG on this problem — matching Tables 2/3.
        rec = recommend_m(
            interval, PerformanceModel(a=1.0, b=1.0), m_max=8, kappa_k=kappa_k
        )
        assert rec.m >= 1

    def test_without_kappa_k_no_cg_baseline(self, interval):
        rec = recommend_m(interval, PerformanceModel(a=1.0, b=1.0), m_max=5)
        assert 0 not in rec.scores
        assert rec.m >= 1

    def test_curve_kappas_decrease(self, interval):
        model = PerformanceModel(a=1.0, b=0.5)
        _, kappas = predicted_cost_curve(interval, model, m_max=8)
        values = [kappas[m] for m in sorted(kappas)]
        assert all(b <= a * (1 + 1e-9) for a, b in zip(values, values[1:]))

    def test_recommendation_is_near_measured_optimum(self, interval):
        # The model is a √κ-bound heuristic: actual CG converges faster than
        # the bound on the clustered least-squares spectra, so the measured
        # optimum sits at smaller m.  The practical requirement is that
        # *using* the recommendation costs little: its measured time must be
        # within 35 % of the measured minimum (and far below plain CG).
        from repro.driver import solve_mstep_ssor

        problem = plate_problem(8)
        model = PerformanceModel(a=1.0, b=0.6)
        rec = recommend_m(interval, model, m_max=8)
        measured = {}
        for m in range(0, 9):
            solve = solve_mstep_ssor(
                problem, m, parametrized=m >= 2, interval=interval, eps=1e-7
            )
            measured[m] = model.predicted_time(m, solve.iterations)
        best = min(measured.values())
        assert measured[rec.m] <= 1.35 * best
        assert measured[rec.m] < 0.75 * measured[0]

    def test_criterion_validation(self, interval):
        with pytest.raises(ValueError):
            recommend_m(interval, PerformanceModel(a=1.0, b=1.0), criterion="magic")

    def test_m_max_validation(self, interval):
        with pytest.raises(ValueError):
            predicted_cost_curve(interval, PerformanceModel(a=1.0, b=1.0), m_max=0)


class TestWidthAwareRecommendation:
    """ISSUE 4: tuning m for a block of simultaneous right-hand sides."""

    def test_wider_blocks_never_recommend_fewer_steps(self, interval):
        # Amortization lowers the effective per-RHS step cost, so the
        # (4.2) break-even moves toward more steps as the block widens.
        model = PerformanceModel(a=1.0, b=1.5, b_marginal=0.15)
        picks = [
            recommend_m(interval, model, m_max=10, width=w).m
            for w in (1, 2, 4, 8, 16)
        ]
        assert picks == sorted(picks)
        assert picks[-1] > picks[0]

    def test_width_one_is_the_paper_model(self, interval):
        model = PerformanceModel(a=1.0, b=0.8, b_marginal=0.2)
        base = recommend_m(interval, model, m_max=8)
        explicit = recommend_m(interval, model, m_max=8, width=1)
        assert base.scores == explicit.scores
        assert base.m == explicit.m

    def test_width_recorded_on_recommendation(self, interval):
        model = PerformanceModel(a=1.0, b=1.0, b_marginal=0.3)
        rec = recommend_m(interval, model, m_max=6, width=4)
        assert rec.width == 4

    def test_non_amortizing_model_scales_uniformly(self, interval):
        # Without b_marginal the whole curve scales by the width — the
        # argmin cannot move.
        model = PerformanceModel(a=1.0, b=1.0)
        assert (
            recommend_m(interval, model, m_max=8, width=8).m
            == recommend_m(interval, model, m_max=8).m
        )

    def test_plateau_tolerance_picks_smaller_m(self, interval):
        model = PerformanceModel(a=1.0, b=0.3)
        strict = recommend_m(interval, model, m_max=10)
        plateau = recommend_m(interval, model, m_max=10, rel_tol=0.05)
        assert plateau.m <= strict.m
        assert plateau.scores == strict.scores

    def test_fem_machine_calibration_feeds_the_curve(self):
        from repro.driver import build_blocked_system, ssor_interval
        from repro.machines import FiniteElementMachine

        problem = plate_problem(8)
        blocked = build_blocked_system(problem)
        machine = FiniteElementMachine(problem, 4, blocked=blocked)
        model = PerformanceModel.from_fem_machine(machine)
        assert model.amortizes  # per-phase setup amortizes over the block
        rec = recommend_m(
            ssor_interval(blocked), model, m_max=10, width=4, rel_tol=0.05
        )
        assert 1 <= rec.m <= 10

    def test_width_validation(self, interval):
        with pytest.raises(ValueError):
            recommend_m(
                interval, PerformanceModel(a=1.0, b=1.0), width=0
            )
