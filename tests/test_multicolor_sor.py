"""Tests for multicolor SOR sweeps and the m-step SSOR of Algorithm 2.

The central correctness result: the Conrad–Wallach merged application
(`MStepSSOR.apply`) must agree with the transparent Horner reference
(`apply_reference`) and, as an operator, with the closed form
``M_m⁻¹ = (Σ αᵢ Gⁱ) P⁻¹`` computed densely from the SSOR splitting.
"""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fem import plate_problem, poisson_problem
from repro.multicolor import (
    BlockedMatrix,
    MStepSSOR,
    MulticolorOrdering,
    multicolor_sor_solve,
    sor_backward_sweep,
    sor_forward_sweep,
    ssor_iteration,
)
from repro.util import OperationCounter, is_symmetric


def build_blocked(problem):
    ordering = MulticolorOrdering.from_groups(
        problem.group_of_unknown, problem.group_labels
    )
    return BlockedMatrix.from_matrix(problem.k, ordering)


@pytest.fixture(scope="module")
def plate_blocked():
    return build_blocked(plate_problem(6))


@pytest.fixture(scope="module")
def poisson_blocked():
    return build_blocked(poisson_problem(6))


def dense_ssor_factors(blocked):
    """Dense (D − L̃), D, (D − Ũ) of the block splitting, multicolor order."""
    a = blocked.permuted.toarray()
    d = np.diag(np.diag(a))
    lower = -np.tril(a, -1)
    upper = -np.triu(a, 1)
    return d - lower, d, d - upper


def dense_mstep_operator(blocked, coefficients):
    """Closed-form M_m⁻¹ = (Σ αᵢ Gⁱ) P⁻¹ with P the SSOR(ω=1) splitting."""
    dl, d, du = dense_ssor_factors(blocked)
    p = dl @ np.linalg.solve(d, du)
    p_inv = np.linalg.inv(p)
    g = np.eye(blocked.n) - p_inv @ blocked.permuted.toarray()
    out = np.zeros_like(p_inv)
    g_power = np.eye(blocked.n)
    for alpha in coefficients:
        out += alpha * g_power
        g_power = g_power @ g
    return out @ p_inv


class TestSweeps:
    def test_forward_sweep_is_block_gauss_seidel(self, plate_blocked):
        # One forward sweep from zero equals the lower-triangular solve
        # (D − L̃)⁻¹ b in the multicolor ordering.
        rng = np.random.default_rng(0)
        b = rng.normal(size=plate_blocked.n)
        x = np.zeros_like(b)
        sor_forward_sweep(plate_blocked, x, b)
        dl, _, _ = dense_ssor_factors(plate_blocked)
        assert x == pytest.approx(np.linalg.solve(dl, b), rel=1e-12, abs=1e-12)

    def test_backward_sweep_is_upper_solve(self, plate_blocked):
        rng = np.random.default_rng(1)
        b = rng.normal(size=plate_blocked.n)
        x = np.zeros_like(b)
        sor_backward_sweep(plate_blocked, x, b)
        _, _, du = dense_ssor_factors(plate_blocked)
        assert x == pytest.approx(np.linalg.solve(du, b), rel=1e-12, abs=1e-12)

    def test_ssor_iteration_matches_splitting_formula(self, plate_blocked):
        # x_new = G x + P⁻¹ b for P = (D−L̃) D⁻¹ (D−Ũ).
        rng = np.random.default_rng(2)
        b = rng.normal(size=plate_blocked.n)
        x = rng.normal(size=plate_blocked.n)
        expected_input = x.copy()
        ssor_iteration(plate_blocked, x, b)
        dl, d, du = dense_ssor_factors(plate_blocked)
        p = dl @ np.linalg.solve(d, du)
        g = np.eye(plate_blocked.n) - np.linalg.solve(p, plate_blocked.permuted.toarray())
        expected = g @ expected_input + np.linalg.solve(p, b)
        assert x == pytest.approx(expected, rel=1e-10, abs=1e-10)

    def test_sweep_counter(self, plate_blocked):
        counter = OperationCounter()
        b = np.ones(plate_blocked.n)
        x = np.zeros_like(b)
        sor_forward_sweep(plate_blocked, x, b, counter=counter)
        assert counter.extra["block_multiplies"] == 30
        assert counter.extra["diag_solves"] == 6


class TestSORSolver:
    def test_solves_plate(self, plate_blocked):
        b = np.ones(plate_blocked.n)
        x, iters, converged = multicolor_sor_solve(
            plate_blocked, b, omega=1.0, tol=1e-12, maxiter=20_000
        )
        assert converged
        assert plate_blocked.matvec(x) == pytest.approx(b, abs=1e-8)

    def test_omega_validation(self, plate_blocked):
        with pytest.raises(ValueError):
            multicolor_sor_solve(plate_blocked, np.ones(plate_blocked.n), omega=2.5)

    def test_relaxation_changes_trajectory_not_fixpoint(self, poisson_blocked):
        b = np.ones(poisson_blocked.n)
        x1, _, c1 = multicolor_sor_solve(poisson_blocked, b, omega=1.0, tol=1e-12)
        x2, _, c2 = multicolor_sor_solve(poisson_blocked, b, omega=1.4, tol=1e-12)
        assert c1 and c2
        assert x1 == pytest.approx(x2, abs=1e-7)


class TestMStepSSOR:
    @pytest.mark.parametrize("m", [1, 2, 3, 4, 5])
    def test_merged_equals_reference(self, plate_blocked, m):
        rng = np.random.default_rng(m)
        coeffs = rng.uniform(0.5, 2.0, size=m) * np.where(
            rng.random(m) < 0.3, -1.0, 1.0
        )
        applicator = MStepSSOR(plate_blocked, coeffs)
        r = rng.normal(size=plate_blocked.n)
        fast = applicator.apply(r)
        slow = applicator.apply_reference(r)
        assert fast == pytest.approx(slow, rel=1e-11, abs=1e-11)

    @pytest.mark.parametrize("m", [1, 2, 3])
    def test_matches_closed_form_operator(self, plate_blocked, m):
        coeffs = np.arange(1.0, m + 1.0)  # arbitrary distinct coefficients
        applicator = MStepSSOR(plate_blocked, coeffs)
        dense = dense_mstep_operator(plate_blocked, coeffs)
        rng = np.random.default_rng(m + 10)
        r = rng.normal(size=plate_blocked.n)
        assert applicator.apply(r) == pytest.approx(dense @ r, rel=1e-9, abs=1e-9)

    @pytest.mark.parametrize("m", [1, 2, 4])
    def test_poisson_two_colors(self, poisson_blocked, m):
        coeffs = np.ones(m)
        applicator = MStepSSOR(poisson_blocked, coeffs)
        rng = np.random.default_rng(m)
        r = rng.normal(size=poisson_blocked.n)
        fast = applicator.apply(r)
        slow = applicator.apply_reference(r)
        dense = dense_mstep_operator(poisson_blocked, coeffs)
        assert fast == pytest.approx(slow, rel=1e-11, abs=1e-11)
        assert fast == pytest.approx(dense @ r, rel=1e-9, abs=1e-9)

    def test_preconditioner_is_symmetric_operator(self, plate_blocked):
        applicator = MStepSSOR(plate_blocked, np.ones(3))
        dense = applicator.as_dense_operator()
        assert is_symmetric(dense, tol=1e-9)

    def test_unparametrized_eigenvalues_in_unit_interval(self, poisson_blocked):
        # Eigenvalues of M_m⁻¹K are 1 − (1 − μ)^m ∈ (0, 1] for the SSOR
        # splitting with ω = 1 (μ = eig of P⁻¹K ∈ (0, 1]).
        m = 3
        applicator = MStepSSOR(poisson_blocked, np.ones(m))
        dense = applicator.as_dense_operator() @ poisson_blocked.permuted.toarray()
        eigs = np.linalg.eigvals(dense).real
        assert eigs.min() > 0
        assert eigs.max() <= 1.0 + 1e-10

    def test_block_multiply_count_is_one_sor_sweep_per_step(self, plate_blocked):
        # The Conrad–Wallach claim: each preconditioner step costs
        # nc·(nc−1) = 30 block multiplies, not the naive 60.
        for m in (1, 2, 5):
            applicator = MStepSSOR(plate_blocked, np.ones(m))
            applicator.apply(np.ones(plate_blocked.n))
            assert applicator.counter.extra["block_multiplies"] == 30 * m
            assert applicator.counter.precond_steps == m

    def test_single_group_degenerates_to_scaled_jacobi(self):
        # With one color the matrix must be diagonal and M⁻¹ r = α₀ D⁻¹ r.
        d = sp.diags([2.0, 4.0, 5.0]).tocsr()
        ordering = MulticolorOrdering.from_groups(np.zeros(3, dtype=np.int64))
        blocked = BlockedMatrix.from_matrix(d, ordering)
        applicator = MStepSSOR(blocked, np.array([3.0, 1.0]))
        r = np.array([2.0, 4.0, 10.0])
        assert applicator.apply(r) == pytest.approx(3.0 * r / np.array([2.0, 4.0, 5.0]))

    def test_rejects_empty_coefficients(self, plate_blocked):
        with pytest.raises(ValueError):
            MStepSSOR(plate_blocked, np.array([]))

    @given(st.integers(1, 6), st.integers(0, 2**31 - 1))
    @settings(max_examples=12, deadline=None)
    def test_property_merged_equals_reference_poisson(self, m, seed):
        prob = poisson_problem(5)
        blocked = build_blocked(prob)
        rng = np.random.default_rng(seed)
        coeffs = rng.uniform(-2.0, 2.0, size=m)
        applicator = MStepSSOR(blocked, coeffs)
        r = rng.normal(size=blocked.n)
        assert applicator.apply(r) == pytest.approx(
            applicator.apply_reference(r), rel=1e-10, abs=1e-10
        )
