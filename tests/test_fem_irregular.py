"""Tests for irregular regions with greedy multicoloring."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import solve_mstep_ssor
from repro.driver import build_blocked_system, ssor_interval
from repro.fem.irregular import l_shaped_problem, perforated_problem
from repro.multicolor import validate_groups
from repro.util import is_spd


@pytest.fixture(scope="module")
def l_problem():
    return l_shaped_problem(9)


@pytest.fixture(scope="module")
def holed_problem():
    return perforated_problem(9)


class TestDomainConstruction:
    def test_l_shape_removes_quadrant(self, l_problem):
        kept = l_problem.kept_cells
        assert not kept[-1, -1]
        assert kept[0, 0]
        # roughly a quarter of the cells removed
        removed = kept.size - int(kept.sum())
        assert removed == pytest.approx(kept.size / 4, rel=0.3)

    def test_active_nodes_touch_every_kept_triangle(self, l_problem):
        active = set(int(n) for n in l_problem.active_nodes)
        for tri in l_problem.kept_triangles:
            assert all(int(t) in active for t in tri)

    def test_system_is_spd(self, l_problem, holed_problem):
        assert is_spd(l_problem.k)
        assert is_spd(holed_problem.k)

    def test_unknown_count(self, l_problem):
        assert l_problem.n == 2 * l_problem.free_nodes.size

    def test_loads_on_surviving_right_edge(self, l_problem):
        # The L-shape keeps the lower part of the right edge: loads ≠ 0.
        assert float(np.abs(l_problem.f).sum()) > 0
        # y-loads are zero (pure x-traction).
        assert float(np.abs(l_problem.f[1::2]).sum()) == 0.0

    def test_domain_ascii_shows_notch(self, l_problem):
        art = l_problem.domain_ascii()
        assert "." in art and "#" in art and "x" in art

    def test_empty_domain_rejected(self):
        with pytest.raises(ValueError):
            l_shaped_problem(4, notch_fraction=0.999)

    def test_bad_coloring_mode_rejected(self):
        with pytest.raises(ValueError):
            l_shaped_problem(6, coloring="psychic")


class TestGreedyColoringOnIrregular:
    def test_grouping_is_proper(self, l_problem, holed_problem):
        validate_groups(l_problem.k, l_problem.group_of_unknown)
        validate_groups(holed_problem.k, holed_problem.group_of_unknown)

    def test_node_mode_groups_are_color_times_component(self, l_problem):
        groups = l_problem.group_of_unknown
        comps = l_problem.component_of_unknown
        assert np.all((groups % 2) == comps)

    def test_matrix_mode_also_proper(self):
        prob = l_shaped_problem(7, coloring="matrix")
        validate_groups(prob.k, prob.group_of_unknown)

    def test_group_count_reasonable(self, l_problem):
        # Greedy needs at most Δ+1 node colors; the triangular lattice has
        # Δ = 6, and in practice greedy lands at 3–5 node colors → ≤10 groups.
        assert 6 <= l_problem.n_groups <= 12


class TestSolves:
    @pytest.mark.parametrize("factory", [l_shaped_problem, perforated_problem])
    def test_mstep_ssor_solves_and_helps(self, factory):
        prob = factory(8)
        blocked = build_blocked_system(prob)
        interval = ssor_interval(blocked)
        base = solve_mstep_ssor(prob, 0, blocked=blocked, eps=1e-8)
        fitted = solve_mstep_ssor(
            prob, 3, parametrized=True, interval=interval, blocked=blocked, eps=1e-8
        )
        assert base.result.converged and fitted.result.converged
        assert fitted.iterations < base.iterations / 2
        resid = np.max(np.abs(prob.f - prob.k @ fitted.u))
        assert resid < 1e-6

    def test_solution_matches_direct(self, l_problem):
        solve = solve_mstep_ssor(l_problem, 2, eps=1e-10)
        direct = l_problem.direct_solution()
        assert solve.u == pytest.approx(direct, rel=1e-4, abs=1e-7)

    @given(st.integers(5, 10), st.floats(0.25, 0.6))
    @settings(max_examples=6, deadline=None)
    def test_property_any_notch_solvable(self, a, notch):
        prob = l_shaped_problem(a, notch_fraction=notch)
        solve = solve_mstep_ssor(prob, 1, eps=1e-7)
        assert solve.result.converged
