"""Tests for the polynomial parametrization machinery (Section 2.2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    PAPER_TABLE1,
    eigenvalue_map,
    fit_report,
    least_squares_coefficients,
    minmax_coefficients,
    neumann_coefficients,
    normalize_leading,
    q_polynomial,
)

INTERVAL = (0.05, 1.0)  # typical SSOR P⁻¹K spectrum


class TestPaperTable1:
    """Exact reproduction of the paper's Table 1.

    The printed α values are uniform-weight least squares on the
    theoretical SSOR interval [0, 1] normalized so α₀ = 1 — every digit of
    the scan matches.
    """

    @pytest.mark.parametrize("m", [2, 3, 4])
    def test_exact_match(self, m):
        ours = normalize_leading(least_squares_coefficients(m, (0.0, 1.0)))
        assert ours == pytest.approx(np.array(PAPER_TABLE1[m]), abs=5e-3)

    def test_normalization_requires_positive_leading(self):
        with pytest.raises(ValueError):
            normalize_leading(np.array([-1.0, 2.0]))

    def test_normalization_preserves_pcg_behavior(self):
        # A positive scaling of M leaves the PCG iterates unchanged.
        from repro.core import MStepPreconditioner, SSORSplitting, pcg
        from repro.fem import plate_problem

        prob = plate_problem(5)
        splitting = SSORSplitting(prob.k)
        raw = least_squares_coefficients(3, (0.0, 1.0))
        scaled = normalize_leading(raw)
        res_raw = pcg(
            prob.k, prob.f, MStepPreconditioner(splitting, raw), eps=1e-8
        )
        res_scaled = pcg(
            prob.k, prob.f, MStepPreconditioner(splitting, scaled), eps=1e-8
        )
        assert res_raw.iterations == res_scaled.iterations
        assert res_raw.u == pytest.approx(res_scaled.u, rel=1e-9, abs=1e-12)


class TestQPolynomial:
    def test_unparametrized_map_is_one_minus_power(self):
        # αᵢ ≡ 1 → q(μ) = 1 − (1−μ)^m.
        for m in (1, 2, 3, 5):
            q = eigenvalue_map(neumann_coefficients(m))
            mu = np.linspace(0.0, 1.0, 33)
            assert q(mu) == pytest.approx(1.0 - (1.0 - mu) ** m)

    def test_q_vanishes_at_zero(self):
        rng = np.random.default_rng(0)
        coeffs = rng.normal(size=4)
        assert q_polynomial(coeffs)(0.0) == pytest.approx(0.0, abs=1e-14)

    def test_degree(self):
        coeffs = np.array([1.0, 2.0, 3.0])
        assert q_polynomial(coeffs).degree() == 3  # μ·(degree m−1 in (1−μ))

    def test_m1_scaling(self):
        # m = 1: q(μ) = α₀ μ — condition number independent of α₀, as the
        # paper notes ("we are only interested in m > 1").
        report_1 = fit_report(np.array([1.0]), INTERVAL)
        report_5 = fit_report(np.array([5.0]), INTERVAL)
        assert report_1.condition_bound == pytest.approx(report_5.condition_bound)


class TestLeastSquares:
    @pytest.mark.parametrize("m", [1, 2, 3, 4, 6])
    def test_beats_unparametrized_in_l2(self, m):
        # The fitted coefficients minimize ∫(1−q)²; the all-ones choice is in
        # the feasible set, so the fit can only be at least as good.
        lo, hi = INTERVAL
        mu = np.linspace(lo, hi, 4001)
        fitted = eigenvalue_map(least_squares_coefficients(m, INTERVAL))
        plain = eigenvalue_map(neumann_coefficients(m))
        err_fit = np.trapezoid((1 - fitted(mu)) ** 2, mu)
        err_plain = np.trapezoid((1 - plain(mu)) ** 2, mu)
        assert err_fit <= err_plain + 1e-12

    def test_residual_decreases_with_m(self):
        lo, hi = INTERVAL
        mu = np.linspace(lo, hi, 4001)
        errors = []
        for m in range(1, 7):
            q = eigenvalue_map(least_squares_coefficients(m, INTERVAL))
            errors.append(float(np.trapezoid((1 - q(mu)) ** 2, mu)))
        assert all(b <= a + 1e-14 for a, b in zip(errors, errors[1:]))

    def test_orthogonality_of_residual(self):
        # Normal equations: the residual 1 − q is L2-orthogonal to every
        # basis function μ(1−μ)ⁱ.
        m = 4
        coeffs = least_squares_coefficients(m, INTERVAL)
        q = eigenvalue_map(coeffs)
        nodes, weights = np.polynomial.legendre.leggauss(60)
        lo, hi = INTERVAL
        mu = 0.5 * (hi - lo) * nodes + 0.5 * (hi + lo)
        w = weights * 0.5 * (hi - lo)
        resid = 1.0 - q(mu)
        for i in range(m):
            phi = mu * (1.0 - mu) ** i
            assert float(np.sum(w * resid * phi)) == pytest.approx(0.0, abs=1e-10)

    def test_weight_mu_changes_fit(self):
        uniform = least_squares_coefficients(3, INTERVAL, weight="uniform")
        weighted = least_squares_coefficients(3, INTERVAL, weight="mu")
        assert not np.allclose(uniform, weighted)

    def test_callable_weight(self):
        coeffs = least_squares_coefficients(2, INTERVAL, weight=lambda mu: mu**2)
        assert coeffs.shape == (2,)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            least_squares_coefficients(0, INTERVAL)
        with pytest.raises(ValueError):
            least_squares_coefficients(2, (1.0, 0.5))
        with pytest.raises(ValueError):
            least_squares_coefficients(2, (-0.1, 1.0))
        with pytest.raises(ValueError):
            least_squares_coefficients(2, INTERVAL, weight="bogus")

    @given(st.integers(2, 8), st.floats(0.01, 0.4))
    @settings(max_examples=20, deadline=None)
    def test_property_fit_positive_on_interval(self, m, lo):
        # A sensible fit keeps q positive on the fitting interval (SPD M).
        interval = (lo, 1.0)
        coeffs = least_squares_coefficients(m, interval)
        report = fit_report(coeffs, interval)
        assert report.positive


class TestMinMax:
    @pytest.mark.parametrize("m", [1, 2, 3, 4, 6])
    def test_equioscillation_error(self, m):
        # max |1 − q*| on [λ₁, λ_n] equals 1/T_m(x₀) exactly.
        lo, hi = INTERVAL
        coeffs = minmax_coefficients(m, INTERVAL)
        report = fit_report(coeffs, INTERVAL)
        x0 = (hi + lo) / (hi - lo)
        t_m = np.polynomial.chebyshev.Chebyshev.basis(m)
        expected = 1.0 / float(t_m(x0))
        assert report.max_deviation == pytest.approx(expected, rel=1e-8)

    @pytest.mark.parametrize("m", [2, 3, 4, 5])
    def test_minmax_beats_least_squares_in_sup_norm(self, m):
        ls = fit_report(least_squares_coefficients(m, INTERVAL), INTERVAL)
        mm = fit_report(minmax_coefficients(m, INTERVAL), INTERVAL)
        assert mm.max_deviation <= ls.max_deviation + 1e-12

    @pytest.mark.parametrize("m", [2, 3, 4, 5])
    def test_minmax_beats_unparametrized_condition_bound(self, m):
        plain = fit_report(neumann_coefficients(m), INTERVAL)
        mm = fit_report(minmax_coefficients(m, INTERVAL), INTERVAL)
        assert mm.condition_bound <= plain.condition_bound + 1e-9

    def test_condition_bound_formula(self):
        # κ bound = (1+e)/(1−e) with e = 1/T_m(x₀).
        m = 3
        lo, hi = INTERVAL
        coeffs = minmax_coefficients(m, INTERVAL)
        report = fit_report(coeffs, INTERVAL)
        x0 = (hi + lo) / (hi - lo)
        e = 1.0 / float(np.polynomial.chebyshev.Chebyshev.basis(m)(x0))
        assert report.condition_bound == pytest.approx((1 + e) / (1 - e), rel=1e-8)

    def test_m1_reduces_to_scaled_identity(self):
        coeffs = minmax_coefficients(1, INTERVAL)
        assert coeffs.shape == (1,)
        lo, hi = INTERVAL
        assert coeffs[0] == pytest.approx(2.0 / (hi + lo))

    @given(
        st.integers(1, 8),
        st.floats(0.01, 0.5),
        st.floats(0.6, 2.0),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_positive_and_bounded(self, m, lo, hi):
        interval = (lo, hi)
        coeffs = minmax_coefficients(m, interval)
        report = fit_report(coeffs, interval)
        assert report.positive
        assert report.q_max <= 2.0 + 1e-9  # 1 + deviation ≤ 2


class TestFitReport:
    def test_reports_interval_extrema(self):
        report = fit_report(neumann_coefficients(2), (0.0, 1.0))
        # q(μ) = 1 − (1−μ)² on [0,1]: min 0 at 0, max 1 at 1.
        assert report.q_min == pytest.approx(0.0, abs=1e-14)
        assert report.q_max == pytest.approx(1.0)
        assert not report.positive
        assert report.condition_bound == float("inf")

    def test_interior_extremum_found(self):
        # coefficients producing a hump inside the interval
        coeffs = np.array([4.0, -5.0])
        report = fit_report(coeffs, (0.0, 1.0))
        mu = np.linspace(0, 1, 20001)
        q = eigenvalue_map(coeffs)(mu)
        assert report.q_max == pytest.approx(float(q.max()), abs=1e-6)
        assert report.q_min == pytest.approx(float(q.min()), abs=1e-6)
