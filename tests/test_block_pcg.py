"""block_pcg: the multi-RHS lockstep core (ISSUE 4).

The acceptance contract: ``block_pcg`` with k columns produces
per-column iterates, iteration counts, histories and operation counters
**bitwise identical** to k independent ``pcg()`` runs — including column
retirement (converged columns freeze while the rest keep iterating),
degenerate columns (f = 0), k = 1 blocks, and non-contiguous /
Fortran-ordered input blocks.
"""

import numpy as np
import pytest

from repro import plate_problem
from repro.core.mstep import IdentityPreconditioner
from repro.core.pcg import BlockPCGResult, block_pcg, cg, pcg
from repro.driver import build_blocked_system, build_mstep_applicator
from repro.core.polynomial import neumann_coefficients

EPS = 1e-7


@pytest.fixture(scope="module")
def system():
    problem = plate_problem(8)
    blocked = build_blocked_system(problem)
    return problem, blocked


def _rhs_block(blocked, ncols=4, seed=0):
    rng = np.random.default_rng(seed)
    return np.stack(
        [rng.normal(size=blocked.n) for _ in range(ncols)], axis=1
    )


def _assert_column_matches(col, solo):
    assert col.iterations == solo.iterations
    assert col.converged == solo.converged
    assert np.array_equal(col.u, solo.u)
    assert col.delta_history == solo.delta_history
    assert col.residual_history == solo.residual_history
    assert col.counter.as_dict() == solo.counter.as_dict()


class TestBitwiseAgainstIndependentRuns:
    @pytest.mark.parametrize("applicator", ["sweep", "splitting"])
    def test_preconditioned_block_matches_solo_runs(self, system, applicator):
        _, blocked = system
        coeffs = neumann_coefficients(3)
        F = _rhs_block(blocked)
        block = block_pcg(
            blocked.permuted, F,
            preconditioner=build_mstep_applicator(
                blocked, coeffs, applicator=applicator
            ),
            eps=EPS,
        )
        assert block.all_converged
        for j in range(F.shape[1]):
            solo = pcg(
                blocked.permuted, np.ascontiguousarray(F[:, j]),
                preconditioner=build_mstep_applicator(
                    blocked, coeffs, applicator=applicator
                ),
                eps=EPS,
            )
            _assert_column_matches(block.column(j), solo)

    def test_plain_cg_block(self, system):
        _, blocked = system
        F = _rhs_block(blocked, ncols=3, seed=1)
        block = block_pcg(blocked.permuted, F, eps=1e-6)
        for j in range(3):
            solo = cg(blocked.permuted, np.ascontiguousarray(F[:, j]), eps=1e-6)
            _assert_column_matches(block.column(j), solo)

    def test_columns_retire_independently(self, system):
        # Different columns converge at different iterations; the shared
        # lockstep must not drag retired columns onward.
        _, blocked = system
        rng = np.random.default_rng(3)
        F = np.stack(
            [rng.normal(size=blocked.n),
             1e4 * rng.normal(size=blocked.n),
             1e-4 * rng.normal(size=blocked.n)],
            axis=1,
        )
        block = block_pcg(
            blocked.permuted, F,
            preconditioner=build_mstep_applicator(
                blocked, neumann_coefficients(2)
            ),
            eps=EPS,
        )
        assert len(set(int(i) for i in block.iterations)) > 1
        for j in range(3):
            solo = pcg(
                blocked.permuted, np.ascontiguousarray(F[:, j]),
                preconditioner=build_mstep_applicator(
                    blocked, neumann_coefficients(2)
                ),
                eps=EPS,
            )
            _assert_column_matches(block.column(j), solo)


class TestRetirementEdgeCases:
    """The ISSUE's named edge cases."""

    def test_k1_block_is_bitwise_the_scalar_pcg(self, system):
        problem, blocked = system
        f = blocked.ordering.permute_vector(np.asarray(problem.f, float))
        coeffs = neumann_coefficients(3)
        block = block_pcg(
            blocked.permuted, f[:, None],
            preconditioner=build_mstep_applicator(blocked, coeffs),
            eps=EPS, track_residual=True,
        )
        solo = pcg(
            blocked.permuted, f,
            preconditioner=build_mstep_applicator(blocked, coeffs),
            eps=EPS, track_residual=True,
        )
        assert block.k == 1
        _assert_column_matches(block.column(0), solo)

    def test_zero_column_mixed_with_hard_columns(self, system):
        # An already-converged RHS (f = 0) retires on iteration 1 with
        # rho == 0 while a hard RHS keeps iterating — exactly as solo.
        _, blocked = system
        rng = np.random.default_rng(5)
        F = np.stack(
            [np.zeros(blocked.n), 100.0 * rng.normal(size=blocked.n)],
            axis=1,
        )
        block = block_pcg(
            blocked.permuted, F,
            preconditioner=build_mstep_applicator(
                blocked, neumann_coefficients(2)
            ),
            eps=EPS,
        )
        assert int(block.iterations[0]) == 1
        assert bool(block.converged[0])
        assert int(block.iterations[1]) > 1
        for j in range(2):
            solo = pcg(
                blocked.permuted, np.ascontiguousarray(F[:, j]),
                preconditioner=build_mstep_applicator(
                    blocked, neumann_coefficients(2)
                ),
                eps=EPS,
            )
            _assert_column_matches(block.column(j), solo)

    def test_fortran_ordered_and_strided_inputs(self, system):
        _, blocked = system
        F = _rhs_block(blocked, ncols=3, seed=7)
        precond = lambda: build_mstep_applicator(  # noqa: E731
            blocked, neumann_coefficients(2)
        )
        reference = block_pcg(blocked.permuted, F, preconditioner=precond(),
                              eps=EPS)
        fortran = block_pcg(
            blocked.permuted, np.asfortranarray(F), preconditioner=precond(),
            eps=EPS,
        )
        wide = np.zeros((blocked.n, 6))
        wide[:, ::2] = F
        strided = block_pcg(
            blocked.permuted, wide[:, ::2], preconditioner=precond(), eps=EPS
        )
        for other in (fortran, strided):
            assert np.array_equal(other.u, reference.u)
            assert np.array_equal(other.iterations, reference.iterations)
            for j in range(3):
                assert (
                    other.counters[j].as_dict()
                    == reference.counters[j].as_dict()
                )


class TestResultObject:
    def test_maxiter_cap_per_column(self, system):
        _, blocked = system
        F = _rhs_block(blocked, ncols=2, seed=9)
        block = block_pcg(blocked.permuted, F, eps=1e-14, maxiter=3)
        assert list(block.iterations) == [3, 3]
        assert not block.all_converged
        solo = cg(blocked.permuted, np.ascontiguousarray(F[:, 0]),
                  eps=1e-14, maxiter=3)
        _assert_column_matches(block.column(0), solo)

    def test_identity_preconditioner_counters_per_column(self, system):
        _, blocked = system
        F = _rhs_block(blocked, ncols=3, seed=11)
        m = IdentityPreconditioner()
        block = block_pcg(blocked.permuted, F, preconditioner=m, eps=1e-6)
        total = sum(c.precond_applications for c in block.counters)
        assert total == m.counter.precond_applications

    def test_validation(self, system):
        _, blocked = system
        with pytest.raises(ValueError):
            block_pcg(blocked.permuted, np.zeros(blocked.n))  # 1-D rejected
        with pytest.raises(ValueError):
            block_pcg(blocked.permuted, np.zeros((blocked.n + 1, 2)))

    def test_result_is_a_block_result(self, system):
        _, blocked = system
        F = _rhs_block(blocked, ncols=2, seed=13)
        block = block_pcg(blocked.permuted, F, eps=1e-6)
        assert isinstance(block, BlockPCGResult)
        assert block.k == 2
        assert str(block)

    def test_padded_block_apply_matches_solos_and_counters(self, system):
        # The machine lockstep's shared-applicator trick: one apply over
        # cells of different m via top-zero-padded schedules, results AND
        # counters per column identical to solo applications.
        from repro.core.mstep import MStepPreconditioner
        from repro.core.splittings import SSORSplitting

        _, blocked = system
        rng = np.random.default_rng(21)
        R = np.ascontiguousarray(rng.normal(size=(blocked.n, 2)))
        short = np.array([1.3, 0.4])          # m = 2
        long = np.array([1.0, 0.9, 0.5, 0.2])  # m = 4
        padded = np.zeros((4, 2))
        padded[:2, 0] = short
        padded[:, 1] = long

        shared = MStepPreconditioner(
            SSORSplitting(blocked.permuted), np.ones(1)
        )
        out = np.array(
            shared.apply(R, coefficients=padded, column_steps=[2, 4])
        )
        expected_counts = None
        for j, schedule in enumerate((short, long)):
            solo = MStepPreconditioner(
                SSORSplitting(blocked.permuted), schedule
            )
            col = solo.apply(np.ascontiguousarray(R[:, j]))
            assert np.array_equal(out[:, j], col)
            if expected_counts is None:
                expected_counts = solo.counter.as_dict()
            else:
                for key, value in solo.counter.as_dict().items():
                    expected_counts[key] = expected_counts.get(key, 0) + value
        # Padding steps processed only zeros and charged nothing.
        assert shared.counter.as_dict() == expected_counts

    def test_u0_broadcast_and_block(self, system):
        _, blocked = system
        F = _rhs_block(blocked, ncols=2, seed=15)
        u0 = np.full(blocked.n, 0.1)
        block = block_pcg(blocked.permuted, F, u0=u0, eps=1e-6)
        for j in range(2):
            solo = cg(blocked.permuted, np.ascontiguousarray(F[:, j]),
                      u0=u0, eps=1e-6)
            _assert_column_matches(block.column(j), solo)
