"""The kernel backend layer: equivalence, structure detection, invariants.

The contract of :mod:`repro.kernels`: every ``"vectorized"`` fast path is
*provably* the same operator as the ``"reference"`` (paper-faithful,
row-sequential) formulation — agreement to ≤1e−12 on every splitting and
every (m, parametrized) cell of the Table-2/3 schedules — and the
instrumentation (operation counters, iteration counts, delta histories)
is invariant to the backend choice.
"""

import numpy as np
import pytest
import scipy.sparse as sp
from scipy.sparse.linalg import spsolve_triangular

from repro import plate_problem
from repro.core import neumann_coefficients
from repro.core.ichol import ICPreconditioner
from repro.core.mstep import MStepPreconditioner
from repro.core.pcg import pcg
from repro.core.splittings import (
    JacobiSplitting,
    RichardsonSplitting,
    SORSplitting,
    SSORSplitting,
)
from repro.driver import (
    TABLE2_SCHEDULE,
    TABLE3_SCHEDULE,
    build_blocked_system,
    mstep_coefficients,
    solve_mstep_ssor,
    ssor_interval,
)
from repro.kernels import (
    BACKENDS,
    REFERENCE,
    VECTORIZED,
    ColorBlockTriangularSolver,
    FactorizedTriangularSolver,
    ReferenceTriangularSolver,
    WorkspacePool,
    default_backend,
    detect_color_slices,
    make_triangular_solver,
    ops,
    resolve_backend,
    set_default_backend,
    use_backend,
)
from repro.multicolor import MStepSSOR

TOL = 1e-12

#: Every distinct (m, parametrized) cell of the paper's two schedules.
SCHEDULE_CELLS = sorted(
    {cell for cell in TABLE2_SCHEDULE + TABLE3_SCHEDULE if cell[0] >= 1}
)


@pytest.fixture(scope="module")
def problem():
    return plate_problem(6)


@pytest.fixture(scope="module")
def blocked(problem):
    return build_blocked_system(problem)


@pytest.fixture(scope="module")
def interval(blocked):
    return ssor_interval(blocked)


def rng_vector(n, seed=0):
    return np.random.default_rng(seed).normal(size=n)


# --------------------------------------------------------------------------
class TestBackendDispatch:
    def test_default_is_vectorized(self):
        assert default_backend() == VECTORIZED

    def test_resolve_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            resolve_backend("fortran")

    def test_use_backend_restores(self):
        with use_backend(REFERENCE):
            assert default_backend() == REFERENCE
            assert resolve_backend(None) == REFERENCE
        assert default_backend() == VECTORIZED

    def test_use_backend_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with use_backend(REFERENCE):
                raise RuntimeError("boom")
        assert default_backend() == VECTORIZED

    def test_set_default_backend(self):
        set_default_backend(REFERENCE)
        try:
            assert SSORSplitting(sp.identity(3, format="csr") * 2.0).backend == REFERENCE
        finally:
            set_default_backend(VECTORIZED)


# --------------------------------------------------------------------------
class TestStructureDetection:
    def test_detects_color_blocks_of_the_plate(self, blocked):
        splitting = SSORSplitting(blocked.permuted)
        slices = detect_color_slices(splitting._dl, lower=True)
        assert slices == blocked.group_slices
        slices_u = detect_color_slices(splitting._du, lower=False)
        assert slices_u == blocked.group_slices

    def test_natural_ordering_has_no_block_structure(self, problem):
        lower = sp.tril(problem.k, 0).tocsr()
        assert detect_color_slices(lower, lower=True, max_groups=4) is None

    def test_solver_factory_picks_paths(self, problem, blocked):
        splitting = SSORSplitting(blocked.permuted)
        fast = make_triangular_solver(splitting._dl, lower=True)
        assert isinstance(fast, ColorBlockTriangularSolver)
        assert fast.n_groups == blocked.n_groups

        natural = sp.tril(problem.k, 0).tocsr()
        fallback = make_triangular_solver(natural, lower=True, max_groups=4)
        assert isinstance(fallback, FactorizedTriangularSolver)

        pinned = make_triangular_solver(splitting._dl, lower=True, backend=REFERENCE)
        assert isinstance(pinned, ReferenceTriangularSolver)

    def test_diagonal_matrix_is_one_block(self):
        t = sp.diags([2.0, 3.0, 4.0]).tocsr()
        assert detect_color_slices(t, lower=True) == (slice(0, 3),)

    def test_all_solvers_agree_on_triangular_solve(self, blocked):
        splitting = SSORSplitting(blocked.permuted)
        r = rng_vector(blocked.n, seed=3)
        expected = spsolve_triangular(splitting._dl, r, lower=True)
        for solver in (
            ColorBlockTriangularSolver(splitting._dl, blocked.group_slices, lower=True),
            FactorizedTriangularSolver(splitting._dl, lower=True),
            ReferenceTriangularSolver(splitting._dl, lower=True),
        ):
            assert solver.solve(r) == pytest.approx(expected, rel=TOL, abs=TOL)

    def test_multi_rhs_matches_columnwise(self, blocked):
        splitting = SSORSplitting(blocked.permuted)
        solver = ColorBlockTriangularSolver(
            splitting._du, blocked.group_slices, lower=False
        )
        block = np.random.default_rng(4).normal(size=(blocked.n, 3))
        batched = solver.solve(block)
        for col in range(3):
            assert batched[:, col] == pytest.approx(
                solver.solve(block[:, col]), rel=TOL, abs=TOL
            )


# --------------------------------------------------------------------------
SPLITTING_FACTORIES = [
    lambda k, backend: JacobiSplitting(k, backend=backend),
    lambda k, backend: RichardsonSplitting(k, backend=backend),
    lambda k, backend: SSORSplitting(k, backend=backend),
    lambda k, backend: SSORSplitting(k, omega=1.4, backend=backend),
    lambda k, backend: SORSplitting(k, backend=backend),
]


class TestSplittingBackendEquivalence:
    @pytest.mark.parametrize("factory", SPLITTING_FACTORIES)
    @pytest.mark.parametrize("ordering", ["multicolor", "natural"])
    def test_apply_p_inv_matches_reference(self, factory, ordering, problem, blocked):
        k = blocked.permuted if ordering == "multicolor" else problem.k
        fast = factory(k, VECTORIZED)
        pin = factory(k, REFERENCE)
        r = rng_vector(k.shape[0], seed=5)
        scale = np.max(np.abs(pin.apply_p_inv(r)))
        assert np.max(
            np.abs(fast.apply_p_inv(r) - pin.apply_p_inv(r))
        ) <= TOL * max(scale, 1.0)

    @pytest.mark.parametrize("factory", SPLITTING_FACTORIES[:4])
    def test_w_factor_matches_reference(self, factory, blocked):
        k = blocked.permuted
        fast = factory(k, VECTORIZED)
        pin = factory(k, REFERENCE)
        x = rng_vector(k.shape[0], seed=6)
        for name in ("apply_w_inv", "apply_wt_inv"):
            got = getattr(fast, name)(x)
            want = getattr(pin, name)(x)
            assert np.max(np.abs(got - want)) <= TOL * max(np.max(np.abs(want)), 1.0)

    @pytest.mark.parametrize("factory", SPLITTING_FACTORIES)
    def test_batched_apply_matches_columnwise(self, factory, blocked):
        splitting = factory(blocked.permuted, VECTORIZED)
        block = np.random.default_rng(7).normal(size=(blocked.n, 4))
        batched = splitting.apply_p_inv(block)
        for col in range(block.shape[1]):
            single = splitting.apply_p_inv(block[:, col])
            assert np.max(np.abs(batched[:, col] - single)) <= TOL


# --------------------------------------------------------------------------
class TestScheduleBackendEquivalence:
    """The ISSUE's required sweep: every Table-2/3 cell, both backends."""

    @pytest.mark.parametrize("m,parametrized", SCHEDULE_CELLS)
    def test_mstep_apply_equivalent(self, m, parametrized, blocked, interval):
        coeffs = mstep_coefficients(m, parametrized, interval)
        r = rng_vector(blocked.n, seed=8)
        results = {}
        for backend in BACKENDS:
            precond = MStepPreconditioner(
                SSORSplitting(blocked.permuted, backend=backend), coeffs
            )
            results[backend] = precond.apply(r).copy()
        # ≤1e−12 relative to the Horner evaluation's intrinsic scale: the
        # recurrence sums m terms with coefficients αᵢ, so roundoff between
        # two exact formulations is bounded by Σ|αᵢ|·‖result‖·O(ε).
        scale = max(np.max(np.abs(results[REFERENCE])), 1.0) * max(
            float(np.sum(np.abs(coeffs))), 1.0
        )
        assert np.max(
            np.abs(results[VECTORIZED] - results[REFERENCE])
        ) <= TOL * scale

    @pytest.mark.parametrize("m,parametrized", SCHEDULE_CELLS[:4])
    def test_kernel_path_matches_multicolor_sweep(
        self, m, parametrized, blocked, interval
    ):
        # Cross-implementation: the Conrad–Wallach sweep and the kernel
        # Horner differ in summation order, so the tolerance is looser.
        coeffs = mstep_coefficients(m, parametrized, interval)
        r = rng_vector(blocked.n, seed=9)
        sweep = MStepSSOR(blocked, coeffs).apply(r)
        kernel = MStepPreconditioner(
            SSORSplitting(blocked.permuted), coeffs
        ).apply(r)
        assert kernel == pytest.approx(sweep, rel=1e-9, abs=1e-9)

    @pytest.mark.parametrize("m,parametrized", SCHEDULE_CELLS)
    def test_full_solve_equivalent(self, m, parametrized, problem, blocked, interval):
        solves = {
            backend: solve_mstep_ssor(
                problem, m, parametrized=parametrized, interval=interval,
                blocked=blocked, eps=1e-8,
                applicator="splitting", backend=backend,
            )
            for backend in BACKENDS
        }
        fast, pin = solves[VECTORIZED], solves[REFERENCE]
        assert fast.iterations == pin.iterations
        assert fast.result.converged and pin.result.converged
        assert np.max(np.abs(fast.u - pin.u)) <= 1e-10 * max(np.max(np.abs(pin.u)), 1.0)


# --------------------------------------------------------------------------
class TestCounterInvariance:
    """The fast path must not change what the instrumentation reports."""

    def test_solve_counters_identical_across_backends(self, problem, blocked, interval):
        counters = {}
        histories = {}
        for backend in BACKENDS:
            solve = solve_mstep_ssor(
                problem, 3, parametrized=True, interval=interval,
                blocked=blocked, eps=1e-8,
                applicator="splitting", backend=backend,
            )
            counters[backend] = solve.result.counter.as_dict()
            histories[backend] = solve.result.delta_history
        assert counters[VECTORIZED] == counters[REFERENCE]
        assert len(histories[VECTORIZED]) == len(histories[REFERENCE])

    def test_mstep_apply_counts_match_reference_formula(self, blocked):
        m = 4
        precond = MStepPreconditioner(
            SSORSplitting(blocked.permuted), neumann_coefficients(m)
        )
        precond.apply(rng_vector(blocked.n))
        counts = precond.counter.as_dict()
        assert counts["precond_applications"] == 1
        assert counts["precond_steps"] == m
        assert counts["p_solves"] == m
        assert counts["inner_matvecs"] == m - 1

    def test_batched_apply_counts_per_column(self, blocked):
        m = 3
        precond = MStepPreconditioner(
            SSORSplitting(blocked.permuted), neumann_coefficients(m)
        )
        precond.apply(np.random.default_rng(10).normal(size=(blocked.n, 5)))
        counts = precond.counter.as_dict()
        assert counts["precond_applications"] == 5
        assert counts["precond_steps"] == m * 5
        assert counts["p_solves"] == m * 5

    def test_mstep_ssor_block_counts_are_hoisted(self, blocked):
        # The cached per-color block lists must reproduce what the generator
        # used to count sweep by sweep.
        for c in range(blocked.n_groups):
            assert len(blocked.lower_block_list[c]) == sum(
                1 for j in range(c) if j in blocked.blocks[c]
            )
            assert len(blocked.upper_block_list[c]) == sum(
                1 for j in range(c + 1, blocked.n_groups) if j in blocked.blocks[c]
            )

    def test_mstep_ssor_multiplies_unchanged(self, blocked):
        applicator = MStepSSOR(blocked, neumann_coefficients(3))
        applicator.apply(rng_vector(blocked.n, seed=11))
        counts = applicator.counter.as_dict()
        nc = blocked.n_groups
        lower = sum(len(row) for row in blocked.lower_block_list)
        upper = sum(len(blocked.upper_block_list[c]) for c in range(1, nc - 1))
        closing = len(blocked.upper_block_list[0])
        per_step = lower + upper + closing
        assert counts["block_multiplies"] == 3 * per_step
        assert counts["diag_solves"] == 3 * (nc + (nc - 2)) + 1


# --------------------------------------------------------------------------
class TestICPreconditionerKernels:
    def test_backends_agree(self, problem):
        fast = ICPreconditioner(problem.k, backend=VECTORIZED)
        pin = ICPreconditioner(problem.k, backend=REFERENCE)
        assert fast.shift == pin.shift
        r = rng_vector(problem.n, seed=12)
        got, want = fast.apply(r), pin.apply(r)
        assert np.max(np.abs(got - want)) <= 1e-11 * max(np.max(np.abs(want)), 1.0)

    def test_color_ordered_ic_uses_color_sweep(self, blocked):
        precond = ICPreconditioner(blocked.permuted, backend=VECTORIZED)
        # IC(0) inherits tril(K)'s pattern, so the multicolor block
        # structure survives into the factor and the fast sweep applies.
        assert precond._lower_solver.kind == "color_block"


# --------------------------------------------------------------------------
class TestPCGInPlaceKernels:
    def test_pcg_matches_direct_solve(self, problem, blocked, interval):
        solve = solve_mstep_ssor(
            problem, 2, blocked=blocked, eps=1e-10, applicator="splitting"
        )
        residual = problem.k @ solve.u - problem.f
        assert np.max(np.abs(residual)) <= 1e-6 * max(np.max(np.abs(problem.f)), 1.0)

    def test_plain_cg_counter_shape_unchanged(self, problem):
        result = pcg(problem.k, problem.f, eps=1e-8)
        assert result.converged
        counts = result.counter.as_dict()
        # One matvec per iteration plus the initial residual.
        assert counts["matvecs"] == result.iterations + 1
        assert len(result.delta_history) == result.iterations

    def test_pcg_with_dense_operator(self):
        rng = np.random.default_rng(13)
        a = rng.normal(size=(12, 12))
        k = a @ a.T + 12 * np.eye(12)
        f = rng.normal(size=12)
        result = pcg(k, f, eps=1e-12)
        assert result.converged
        assert result.u == pytest.approx(np.linalg.solve(k, f), rel=1e-6, abs=1e-8)


# --------------------------------------------------------------------------
class TestOpsKernels:
    def test_axpy_bitwise(self):
        rng = np.random.default_rng(14)
        x, y = rng.normal(size=100), rng.normal(size=100)
        assert np.array_equal(ops.axpy(0.37, x, y), y + 0.37 * x)

    def test_xpay_into_bitwise(self):
        rng = np.random.default_rng(16)
        x, y = rng.normal(size=100), rng.normal(size=100)
        expected = x + 0.8 * y
        got = ops.xpay_into(x, 0.8, y.copy())
        assert np.array_equal(got, expected)

    def test_matvec_into_csr_matches_matmul(self, blocked):
        x = rng_vector(blocked.n, seed=17)
        out = np.empty(blocked.n)
        assert ops.supports_matvec_into(blocked.permuted, x, out)
        ops.matvec_into(blocked.permuted, x, out)
        assert np.array_equal(out, blocked.permuted @ x)

    def test_matvec_into_dense_and_fallback(self):
        rng = np.random.default_rng(18)
        a = rng.normal(size=(7, 7))
        x = rng.normal(size=7)
        out = np.empty(7)
        ops.matvec_into(a, x, out)
        assert out == pytest.approx(a @ x)
        coo = sp.coo_matrix(a)
        assert not ops.supports_matvec_into(coo, x, out)
        ops.matvec_into(coo, x, out)
        assert out == pytest.approx(a @ x)

    def test_row_scale_matrix(self):
        x = np.arange(12.0).reshape(4, 3)
        v = np.array([1.0, 2.0, 3.0, 4.0])
        assert np.array_equal(ops.row_scale(x, v), x * v[:, None])

    def test_matvec_accumulate_vector(self, blocked):
        # Accumulation runs term-by-term into `out` (not (a@x) + out), so
        # agreement is to reassociation roundoff, not bitwise.
        x = rng_vector(blocked.n, seed=20)
        out = np.random.default_rng(21).normal(size=blocked.n)
        expected = out + blocked.permuted @ x
        ops.matvec_accumulate(blocked.permuted, x, out)
        assert out == pytest.approx(expected, rel=1e-14, abs=1e-14)

    def test_matvec_accumulate_block(self, blocked):
        x = np.random.default_rng(22).normal(size=(blocked.n, 3))
        out = np.random.default_rng(23).normal(size=(blocked.n, 3))
        expected = out + blocked.permuted @ x
        ops.matvec_accumulate(blocked.permuted, x, out)
        assert out == pytest.approx(expected, rel=1e-14, abs=1e-14)

    def test_matvec_accumulate_fallback(self):
        rng = np.random.default_rng(24)
        a = rng.normal(size=(6, 6))
        coo = sp.coo_matrix(a)
        x = rng.normal(size=6)
        out = np.ones(6)
        ops.matvec_accumulate(coo, x, out)
        assert out == pytest.approx(1.0 + a @ x)


class TestColorBlockMergedSweep:
    """The kernel realization of Algorithm 2 the CYBER simulator routes to."""

    def make_sweep(self, blocked):
        from repro.kernels import ColorBlockMergedSweep

        splitting = SSORSplitting(blocked.permuted)
        return ColorBlockMergedSweep(
            ColorBlockTriangularSolver(
                splitting._dl, blocked.group_slices, lower=True
            ),
            ColorBlockTriangularSolver(
                splitting._du, blocked.group_slices, lower=False
            ),
        )

    @pytest.mark.parametrize("m", [1, 2, 4])
    def test_matches_mstep_ssor(self, blocked, m):
        sweep = self.make_sweep(blocked)
        coeffs = np.arange(1.0, m + 1.0)
        r = rng_vector(blocked.n, seed=25)
        expected = MStepSSOR(blocked, coeffs).apply(r)
        got = sweep.apply(coeffs, r)
        scale = max(float(np.max(np.abs(expected))), 1.0)
        assert np.max(np.abs(got - expected)) <= TOL * scale

    def test_batched_matches_columnwise(self, blocked):
        sweep = self.make_sweep(blocked)
        coeffs = np.array([1.0, 0.25, 2.0])
        block = np.random.default_rng(26).normal(size=(blocked.n, 3))
        batched = sweep.apply(coeffs, block).copy()
        for col in range(block.shape[1]):
            single = sweep.apply(coeffs, block[:, col].copy())
            assert np.max(np.abs(batched[:, col] - single)) <= TOL

    def test_steady_state_reuses_return_buffer(self, blocked):
        sweep = self.make_sweep(blocked)
        r = rng_vector(blocked.n, seed=27)
        first = sweep.apply(np.ones(2), r)
        second = sweep.apply(np.ones(2), r)
        assert second is first  # pooled workspace, by design

    def test_apply_of_own_pooled_output(self, blocked):
        # Feeding the pooled result back in must not zero the input.
        sweep = self.make_sweep(blocked)
        coeffs = np.ones(2)
        r = rng_vector(blocked.n, seed=30)
        expected = sweep.apply(coeffs, sweep.apply(coeffs, r).copy()).copy()
        composed = sweep.apply(coeffs, sweep.apply(coeffs, r))
        assert composed == pytest.approx(expected, rel=TOL, abs=TOL)

    def test_rejects_mismatched_factors(self, blocked):
        from repro.kernels import ColorBlockMergedSweep

        splitting = SSORSplitting(blocked.permuted)
        lower = ColorBlockTriangularSolver(
            splitting._dl, blocked.group_slices, lower=True
        )
        half = blocked.group_slices[: blocked.n_groups // 2] + (
            slice(blocked.group_slices[blocked.n_groups // 2].start, blocked.n),
        )
        upper = ColorBlockTriangularSolver(splitting._du, half, lower=False)
        with pytest.raises(ValueError, match="disagree"):
            ColorBlockMergedSweep(lower, upper)

    def test_rejects_mismatched_diagonals(self, blocked):
        from repro.kernels import ColorBlockMergedSweep

        splitting = SSORSplitting(blocked.permuted)
        lower = ColorBlockTriangularSolver(
            splitting._dl, blocked.group_slices, lower=True
        )
        upper = ColorBlockTriangularSolver(
            (2.0 * splitting._du).tocsr(), blocked.group_slices, lower=False
        )
        with pytest.raises(ValueError, match="diagonal"):
            ColorBlockMergedSweep(lower, upper)


class TestWorkspacePool:
    def test_reuses_buffers(self):
        pool = WorkspacePool()
        a = pool.get("a", 10)
        assert pool.get("a", 10) is a
        b = pool.get("a", 20)
        assert b is not a and b.shape == (20,)
        assert pool.allocated_bytes == b.nbytes

    def test_zeros(self):
        pool = WorkspacePool()
        z = pool.zeros("z", 4)
        z += 1.0
        assert np.array_equal(pool.zeros("z", 4), np.zeros(4))

    def test_mstep_apply_steady_state_reuses_return_buffer(self, blocked):
        precond = MStepPreconditioner(
            SSORSplitting(blocked.permuted), neumann_coefficients(3)
        )
        r = rng_vector(blocked.n, seed=19)
        first = precond.apply(r)
        second = precond.apply(r)
        assert second is first  # same workspace buffer, by design

    def test_get_list_names_and_reuses(self):
        pool = WorkspacePool()
        buffers = pool.get_list("y", [(3,), (5,)])
        assert [b.shape for b in buffers] == [(3,), (5,)]
        again = pool.zeros_list("y", [(3,), (5,)])
        assert all(a is b for a, b in zip(buffers, again))
        assert all(np.array_equal(b, np.zeros(b.shape)) for b in again)


class TestMStepSSORAllocationFree:
    """The ROADMAP-noted gap: the sweep applicator's ``y`` auxiliaries (and
    result vector) are pooled, so the pcg() steady state allocates nothing
    at the preconditioner boundary."""

    def test_apply_returns_pooled_buffer(self, blocked):
        applicator = MStepSSOR(blocked, neumann_coefficients(3))
        r = rng_vector(blocked.n, seed=28)
        first = applicator.apply(r)
        bytes_after_warmup = applicator.workspace.allocated_bytes
        second = applicator.apply(r)
        assert second is first
        assert applicator.workspace.allocated_bytes == bytes_after_warmup

    def test_apply_of_own_pooled_output(self, blocked):
        # Feeding the pooled result back in must not zero the input.
        applicator = MStepSSOR(blocked, neumann_coefficients(2))
        r = rng_vector(blocked.n, seed=31)
        expected = applicator.apply_reference(applicator.apply_reference(r))
        composed = applicator.apply(applicator.apply(r))
        assert composed == pytest.approx(expected, rel=1e-10, abs=1e-10)

    def test_zero_steady_state_allocations(self):
        import gc
        import tracemalloc

        # Large enough that any per-apply vector allocation (≥ n·8 bytes)
        # towers over the few hundred bytes of transient Python objects.
        problem = plate_problem(24)
        blocked = build_blocked_system(problem)
        applicator = MStepSSOR(blocked, neumann_coefficients(3))
        r = rng_vector(blocked.n, seed=29)
        applicator.apply(r)
        applicator.apply(r)  # warm every pooled buffer

        gc.collect()
        tracemalloc.start()
        try:
            base = tracemalloc.get_traced_memory()[0]
            tracemalloc.reset_peak()
            for _ in range(5):
                applicator.apply(r)
            peak = tracemalloc.get_traced_memory()[1]
        finally:
            tracemalloc.stop()
        # Peak transient memory stays below a single full-length vector:
        # no group vector, accumulator or result was freshly allocated.
        assert peak - base < blocked.n * 8


# --------------------------------------------------------------------------
class TestPerfReportCLI:
    def test_build_report_tiny_mesh(self, tmp_path):
        import importlib.util
        from pathlib import Path

        path = Path(__file__).parent.parent / "benchmarks" / "perf_report.py"
        spec = importlib.util.spec_from_file_location("perf_report", path)
        perf_report = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(perf_report)

        report = perf_report.build_report(meshes=[5], repeats=1, eps=1e-5)
        assert report["bench"] == "kernels"
        assert "a=5" in report["results"]["apply_p_inv"]
        assert "a=5" in report["results"]["table2_sweep"]
        assert report["results"]["table2_sweep"]["a=5"]["cells"] == len(TABLE2_SCHEDULE)
        for row in report["results"]["apply_p_inv"].values():
            assert row["vectorized_s"] > 0 and row["reference_s"] > 0

        out = tmp_path / "bench.json"
        rc = perf_report.main(["--meshes", "5", "--repeats", "1",
                               "--eps", "1e-5", "--out", str(out)])
        assert out.exists()
        assert rc in (0, 1)  # tiny meshes need not hit the speedup targets
