"""Tests for the generic m-step preconditioner and spectrum tools."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core import (
    IdentityPreconditioner,
    JacobiSplitting,
    MStepPreconditioner,
    RichardsonSplitting,
    SORSplitting,
    SSORSplitting,
    condition_number,
    full_splitting_spectrum,
    neumann_coefficients,
    preconditioned_condition_number,
    preconditioned_spectrum,
    spectrum_interval,
)
from repro.driver import build_blocked_system
from repro.fem import plate_problem
from repro.multicolor import MStepSSOR
from repro.util import is_symmetric


@pytest.fixture(scope="module")
def plate():
    return plate_problem(5)


@pytest.fixture(scope="module")
def plate_k(plate):
    return plate.k


def dense_mstep(splitting, coeffs):
    p = splitting.p_matrix().toarray()
    k = splitting.k.toarray()
    g = np.eye(k.shape[0]) - np.linalg.solve(p, k)
    acc = np.zeros_like(p)
    power = np.eye(k.shape[0])
    for a in coeffs:
        acc += a * power
        power = power @ g
    return acc @ np.linalg.inv(p)


class TestMStepPreconditioner:
    @pytest.mark.parametrize("m", [1, 2, 3, 4])
    def test_matches_closed_form_ssor(self, plate_k, m):
        rng = np.random.default_rng(m)
        coeffs = rng.uniform(-1.0, 2.0, size=m)
        splitting = SSORSplitting(plate_k)
        precond = MStepPreconditioner(splitting, coeffs)
        dense = dense_mstep(splitting, coeffs)
        r = rng.normal(size=plate_k.shape[0])
        assert precond.apply(r) == pytest.approx(dense @ r, rel=1e-9, abs=1e-9)

    @pytest.mark.parametrize("m", [1, 3])
    def test_matches_closed_form_jacobi(self, plate_k, m):
        rng = np.random.default_rng(m + 5)
        coeffs = rng.uniform(0.1, 2.0, size=m)
        splitting = JacobiSplitting(plate_k)
        precond = MStepPreconditioner(splitting, coeffs)
        dense = dense_mstep(splitting, coeffs)
        r = rng.normal(size=plate_k.shape[0])
        assert precond.apply(r) == pytest.approx(dense @ r, rel=1e-10, abs=1e-10)

    def test_operator_is_symmetric(self, plate_k):
        precond = MStepPreconditioner(SSORSplitting(plate_k), neumann_coefficients(3))
        assert is_symmetric(precond.as_dense_operator(), tol=1e-9)

    def test_rejects_nonsymmetric_splitting(self, plate_k):
        with pytest.raises(ValueError, match="nonsymmetric"):
            MStepPreconditioner(SORSplitting(plate_k), neumann_coefficients(2))
        # ...unless explicitly allowed for experimentation.
        MStepPreconditioner(
            SORSplitting(plate_k), neumann_coefficients(2), allow_nonsymmetric=True
        )

    def test_counts_solves_and_matvecs(self, plate_k):
        precond = MStepPreconditioner(SSORSplitting(plate_k), neumann_coefficients(4))
        precond.apply(np.ones(plate_k.shape[0]))
        assert precond.counter.precond_applications == 1
        assert precond.counter.precond_steps == 4
        assert precond.counter.extra["p_solves"] == 4
        assert precond.counter.extra["inner_matvecs"] == 3

    def test_matches_multicolor_sweep_implementation(self, plate):
        # The generic splitting path and the Conrad–Wallach sweep path are
        # the same operator on the multicolor-permuted matrix.
        blocked = build_blocked_system(plate)
        coeffs = np.array([1.5, -0.5, 2.0])
        sweeps = MStepSSOR(blocked, coeffs)
        generic = MStepPreconditioner(SSORSplitting(blocked.permuted), coeffs)
        rng = np.random.default_rng(9)
        r = rng.normal(size=blocked.n)
        assert sweeps.apply(r) == pytest.approx(generic.apply(r), rel=1e-9, abs=1e-9)

    def test_identity_preconditioner(self):
        ident = IdentityPreconditioner()
        r = np.array([1.0, -2.0])
        out = ident.apply(r)
        assert np.array_equal(out, r)
        out[0] = 99.0
        assert r[0] == 1.0  # copy, not view
        assert ident.counter.precond_applications == 1
        assert ident.m == 0


class TestSpectrum:
    def test_full_spectrum_positive_unit_bounded_for_ssor(self, plate_k):
        eigs = full_splitting_spectrum(SSORSplitting(plate_k))
        assert eigs.min() > 0
        assert eigs.max() <= 1.0 + 1e-10

    def test_interval_matches_full_spectrum_dense(self, plate_k):
        splitting = SSORSplitting(plate_k)
        eigs = full_splitting_spectrum(splitting)
        lo, hi = spectrum_interval(splitting)
        assert lo == pytest.approx(float(eigs.min()), rel=1e-8)
        assert hi == pytest.approx(float(eigs.max()), rel=1e-8)

    def test_iterative_path_agrees_with_dense(self, plate_k):
        # Force the Lanczos path by monkeypatching the dense limit.
        import repro.core.spectral as spectral

        splitting = SSORSplitting(plate_k)
        dense_lo, dense_hi = spectrum_interval(splitting)
        old = spectral._DENSE_LIMIT
        spectral._DENSE_LIMIT = 1
        try:
            lo, hi = spectrum_interval(splitting, tol=1e-10)
        finally:
            spectral._DENSE_LIMIT = old
        assert lo == pytest.approx(dense_lo, rel=1e-5)
        assert hi == pytest.approx(dense_hi, rel=1e-5)

    def test_safety_widens_interval(self, plate_k):
        splitting = SSORSplitting(plate_k)
        lo, hi = spectrum_interval(splitting)
        lo_s, hi_s = spectrum_interval(splitting, safety=0.05)
        assert lo_s <= lo and hi_s >= hi
        assert lo_s >= 0.0

    def test_condition_number_helpers(self):
        assert condition_number(np.array([0.5, 1.0, 2.0])) == 4.0
        assert condition_number((2.0, 10.0)) == 5.0
        assert condition_number(np.array([0.0, 1.0])) == float("inf")

    def test_nonsymmetric_splitting_rejected(self, plate_k):
        with pytest.raises(ValueError):
            spectrum_interval(SORSplitting(plate_k))


class TestAdams1982Bound:
    """κ(M_m⁻¹K) decreases with m and κ₁/κ_m ≤ m (Adams 1982, for SSOR)."""

    def test_condition_number_decreases_with_m(self, plate_k):
        splitting = SSORSplitting(plate_k)
        kappas = [
            preconditioned_condition_number(splitting, neumann_coefficients(m))
            for m in range(1, 7)
        ]
        assert all(b <= a + 1e-9 for a, b in zip(kappas, kappas[1:]))

    def test_ratio_bounded_by_m(self, plate_k):
        splitting = SSORSplitting(plate_k)
        kappa_1 = preconditioned_condition_number(splitting, neumann_coefficients(1))
        for m in range(2, 8):
            kappa_m = preconditioned_condition_number(
                splitting, neumann_coefficients(m)
            )
            assert kappa_1 / kappa_m <= m + 1e-9

    def test_mapped_spectrum_formula(self, plate_k):
        splitting = SSORSplitting(plate_k)
        eigs = full_splitting_spectrum(splitting)
        mapped = preconditioned_spectrum(eigs, neumann_coefficients(3))
        assert mapped == pytest.approx(np.sort(1.0 - (1.0 - eigs) ** 3), rel=1e-10)

    def test_richardson_m_step_is_polynomial_in_k(self):
        # For P = cI, M_m⁻¹K is a polynomial in K/c — sanity-check κ via a
        # tiny dense example.
        k = sp.csr_matrix(np.diag([1.0, 2.0, 3.0]))
        splitting = RichardsonSplitting(k, c=4.0)
        kappa_1 = preconditioned_condition_number(splitting, neumann_coefficients(1))
        assert kappa_1 == pytest.approx(3.0)
        kappa_3 = preconditioned_condition_number(splitting, neumann_coefficients(3))
        expected = (1 - (1 - 3 / 4) ** 3) / (1 - (1 - 1 / 4) ** 3)
        assert kappa_3 == pytest.approx(expected)
