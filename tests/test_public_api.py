"""Public-API integrity: everything advertised must exist and import."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.kernels",
    "repro.multicolor",
    "repro.fem",
    "repro.machines",
    "repro.analysis",
    "repro.util",
    "repro.pipeline",
    "repro.parallel",
    "repro.serving",
]


class TestPublicAPI:
    @pytest.mark.parametrize("package", PACKAGES)
    def test_all_entries_resolve(self, package):
        module = importlib.import_module(package)
        assert hasattr(module, "__all__"), f"{package} has no __all__"
        for name in module.__all__:
            assert hasattr(module, name), f"{package}.{name} advertised but missing"

    def test_version_present(self):
        import repro

        assert repro.__version__

    def test_top_level_quickstart_symbols(self):
        # The README quickstart must work with top-level imports alone.
        from repro import plate_problem, solve_mstep_ssor  # noqa: F401

    def test_docstrings_on_public_callables(self):
        # Every advertised callable/class carries a docstring.
        for package in PACKAGES:
            module = importlib.import_module(package)
            for name in module.__all__:
                obj = getattr(module, name)
                if callable(obj):
                    assert obj.__doc__, f"{package}.{name} lacks a docstring"

    def test_no_accidental_private_exports(self):
        for package in PACKAGES:
            module = importlib.import_module(package)
            for name in module.__all__:
                if name == "__version__":  # conventional dunder export
                    continue
                assert not name.startswith("_"), f"{package} exports private {name}"

    def test_driver_module(self):
        from repro import driver

        for name in driver.__all__:
            assert hasattr(driver, name)

    def test_cli_module_has_main(self):
        from repro import cli

        assert callable(cli.main)

    def test_machines_spmd_exports(self):
        from repro.machines import spmd

        for name in spmd.__all__:
            assert hasattr(spmd, name)
