"""Tests for the Finite Element Machine simulator (§3.2, Table 3)."""

import numpy as np
import pytest

from repro import plate_problem, solve_mstep_ssor
from repro.driver import build_blocked_system, mstep_coefficients, ssor_interval
from repro.machines import FEM_1983, FiniteElementMachine, speedup_table
from repro.machines.comm import CommLog


@pytest.fixture(scope="module")
def plate():
    return plate_problem(6)


@pytest.fixture(scope="module")
def blocked(plate):
    return build_blocked_system(plate)


@pytest.fixture(scope="module")
def interval(blocked):
    return ssor_interval(blocked)


@pytest.fixture(scope="module")
def machines(plate, blocked):
    return {p: FiniteElementMachine(plate, p, blocked=blocked) for p in (1, 2, 5)}


class TestNumericalInvariance:
    @pytest.mark.parametrize("m, par", [(0, False), (1, False), (3, True)])
    def test_iterations_independent_of_processor_count(
        self, machines, interval, m, par
    ):
        # Table 3's defining feature: the I column is identical for 1, 2 and
        # 5 processors.
        coeffs = mstep_coefficients(m, par, interval) if m else None
        iters = {machines[p].solve(m, coeffs).iterations for p in (1, 2, 5)}
        assert len(iters) == 1

    def test_solution_matches_reference(self, plate, machines, blocked):
        sim = machines[5].solve(2, np.ones(2), eps=1e-8)
        ref = solve_mstep_ssor(plate, 2, blocked=blocked, eps=1e-8)
        assert sim.iterations == ref.iterations
        assert sim.u_natural == pytest.approx(ref.u)

    def test_solution_solves_system(self, plate, machines):
        sim = machines[2].solve(3, np.ones(3), eps=1e-8)
        resid = np.max(np.abs(plate.f - plate.k @ sim.u_natural))
        assert resid < 1e-6


class TestTable3Shape:
    def test_speedups_in_paper_band(self, machines):
        res = {p: machines[p].solve(0) for p in (1, 2, 5)}
        su = speedup_table(res)
        assert su[1] == pytest.approx(1.0)
        assert 1.7 <= su[2] <= 2.0   # paper: 1.92
        assert 3.0 <= su[5] <= 3.9   # paper: 3.58

    def test_speedup_declines_with_m(self, machines, interval):
        # Observation (3): preconditioner communication dominates the
        # overhead, so speedup decreases as m grows.
        su_by_m = {}
        for m in (0, 2, 6):
            coeffs = mstep_coefficients(m, True, interval) if m else None
            res = {p: machines[p].solve(m, coeffs) for p in (1, 2, 5)}
            su_by_m[m] = speedup_table(res)
        assert su_by_m[0][2] > su_by_m[2][2] > su_by_m[6][2]
        assert su_by_m[0][5] > su_by_m[2][5] > su_by_m[6][5]

    def test_single_processor_minute_scale(self, machines):
        res = machines[1].solve(0)
        assert 30.0 < res.seconds < 120.0  # paper: 63.35 s

    def test_preconditioning_beats_cg_in_time(self, machines, interval):
        # 2P/3P beat m = 0 in wall time on every processor count (Table 3).
        for p in (1, 2, 5):
            base = machines[p].solve(0)
            coeffs = mstep_coefficients(3, True, interval)
            best = machines[p].solve(3, coeffs)
            assert best.seconds < base.seconds

    def test_preconditioner_comm_dominates_inner_product_comm(self, machines):
        # Observation (3): "for two and five processors the communications
        # for the preconditioner rather than for the inner products dominate
        # the overhead."  With the preconditioner on, border-exchange time
        # exceeds reduction time; with plain CG the reductions dominate.
        for p in (2, 5):
            cg_res = machines[p].solve(0)
            pcg_res = machines[p].solve(3, np.ones(3))
            assert cg_res.reduction_seconds > cg_res.comm_seconds
            assert pcg_res.comm_seconds > pcg_res.reduction_seconds
            # and PCG pays more overhead per iteration than CG:
            cg_overhead = (
                cg_res.comm_seconds + cg_res.reduction_seconds + cg_res.flag_seconds
            ) / cg_res.iterations
            pcg_overhead = (
                pcg_res.comm_seconds
                + pcg_res.reduction_seconds
                + pcg_res.flag_seconds
            ) / pcg_res.iterations
            assert pcg_overhead > cg_overhead


class TestAccounting:
    def test_no_comm_on_single_processor(self, machines):
        res = machines[1].solve(2, np.ones(2))
        assert res.comm_seconds == 0.0
        assert res.total_records == 0
        assert res.reduction_seconds == 0.0

    def test_records_scale_with_iterations_and_m(self, machines):
        short = machines[2].solve(0)
        long = machines[2].solve(4, np.ones(4))
        # Preconditioned runs take fewer iterations but many more records
        # per iteration (5 border exchanges per step).
        records_per_iter_short = short.total_records / short.iterations
        records_per_iter_long = long.total_records / long.iterations
        assert records_per_iter_long > records_per_iter_short

    def test_commlog_bookkeeping(self):
        log = CommLog(FEM_1983)
        t = log.add_record(0, 1, 10)
        assert t == pytest.approx(FEM_1983.record_time(10))
        assert log.add_record(0, 1, 0) == 0.0
        assert log.total_records == 1
        assert log.total_words == 10
        assert log.traffic_matrix(2)[0][1] == 10
        assert log.conservation_ok()

    def test_iteration_costs_model(self, machines):
        # A and B feed the (4.1)/(4.2) analysis; both positive, and B/A is
        # order one on this machine (Table 3's single-processor column).
        a, b = machines[1].iteration_costs(1)
        assert a > 0 and b > 0
        assert 0.4 < b / a < 2.5

    def test_reduction_mode_circuit_faster(self, plate, blocked):
        soft = FiniteElementMachine(plate, 5, blocked=blocked, reduction="software")
        circ = FiniteElementMachine(plate, 5, blocked=blocked, reduction="circuit")
        rs = soft.solve(0)
        rc = circ.solve(0)
        assert rc.seconds < rs.seconds
        assert rc.iterations == rs.iterations

    def test_invalid_reduction_mode(self, plate, blocked):
        with pytest.raises(ValueError):
            FiniteElementMachine(plate, 2, blocked=blocked, reduction="psychic")

    def test_speedup_table_needs_baseline(self, machines):
        res = {2: machines[2].solve(0)}
        with pytest.raises(ValueError):
            speedup_table(res)
