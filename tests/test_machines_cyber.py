"""Tests for the CYBER 203/205 simulator (§3.1)."""

import numpy as np
import pytest

from repro import plate_problem, solve_mstep_ssor
from repro.driver import build_blocked_system, mstep_coefficients, ssor_interval
from repro.machines import CYBER_203, CYBER_205, CyberMachine


@pytest.fixture(scope="module")
def plate():
    return plate_problem(8)


@pytest.fixture(scope="module")
def machine(plate):
    return CyberMachine(plate)


@pytest.fixture(scope="module")
def blocked(plate):
    return build_blocked_system(plate)


@pytest.fixture(scope="module")
def interval(blocked):
    return ssor_interval(blocked)


class TestLayout:
    def test_padded_vector_length_includes_constrained(self, plate, machine):
        # v ≈ a(b+1)/3: the whole point of numbering the constrained nodes.
        mesh = plate.mesh
        assert machine.max_vector_length == mesh.max_vector_length()
        assert machine.max_vector_length > mesh.a * mesh.b / 3

    def test_diagonal_counts_within_paper_bound(self, machine):
        # ≤ 14 diagonals per block row (the Figure-2 stencil by diagonals);
        # the uniform isotropic mesh cancels two of them exactly.
        counts = machine.diagonal_counts()
        assert set(counts) == {"Ru", "Rv", "Bu", "Bv", "Gu", "Gv"}
        for label, n_diags in counts.items():
            assert n_diags <= 14, label
            assert n_diags >= 10, label

    def test_cross_color_blocks_have_few_diagonals(self, machine):
        for c in range(6):
            for j, storage in machine.blocks[c].items():
                assert storage.n_diagonals <= 3, (c, j)

    def test_free_mask_matches_constraint_count(self, plate, machine):
        assert int(machine.free_mask.sum()) == plate.n
        assert machine.free_mask.size == 2 * plate.mesh.n_nodes

    def test_storage_report(self, plate, machine):
        report = machine.storage_report()
        n_padded = 2 * plate.mesh.n_nodes
        # Matrix words ≤ 14 per padded equation (Figure-2 stencil bound);
        # diagonals truncate at block edges so strictly fewer in practice.
        assert report["matrix_words"] <= 14 * n_padded
        assert report["matrix_words"] >= 8 * n_padded
        assert report["vector_words"] == 6 * n_padded
        assert report["total_words"] == (
            report["matrix_words"] + report["vector_words"]
        )
        assert 14 <= report["words_per_equation"] <= 20


class TestNumericalEquivalence:
    @pytest.mark.parametrize(
        "m, parametrized", [(0, False), (1, False), (2, False), (3, True), (5, True)]
    )
    def test_matches_reference_solver(
        self, plate, machine, blocked, interval, m, parametrized
    ):
        coeffs = mstep_coefficients(m, parametrized, interval) if m else None
        sim = machine.solve(m, coeffs, eps=1e-6)
        ref = solve_mstep_ssor(
            plate, m, parametrized=parametrized, interval=interval,
            blocked=blocked, eps=1e-6,
        )
        assert sim.converged
        # Identical math modulo padded-vector summation order: iteration
        # counts may differ by one near the threshold.
        assert abs(sim.iterations - ref.iterations) <= 1
        assert sim.u_natural == pytest.approx(ref.u, rel=1e-4, abs=1e-8)

    def test_solution_solves_system(self, plate, machine):
        sim = machine.solve(3, np.ones(3), eps=1e-8)
        resid = np.max(np.abs(plate.f - plate.k @ sim.u_natural))
        assert resid < 1e-6

    def test_constrained_slots_stay_zero(self, plate, machine):
        sim = machine.solve(2, np.ones(2), eps=1e-8)
        # The natural solution excludes them; re-check via the mask invariant
        # by solving once more and examining the padded result through the
        # matvec: masked rows contribute nothing.
        assert sim.u_natural.shape == (plate.n,)


class TestTiming:
    def test_inner_products_visible_in_breakdown(self, machine):
        res = machine.solve(0, eps=1e-6)
        kinds = dict(res.op_breakdown)
        assert "dot" in kinds and "diag_madd" in kinds
        n_dots, dot_seconds = kinds["dot"]
        # 2 per iteration + startup − final-iteration skip (Algorithm 1).
        assert n_dots == 2 * res.iterations
        assert dot_seconds > 0

    def test_preconditioner_seconds_split(self, machine):
        res = machine.solve(4, np.ones(4), eps=1e-6)
        assert 0 < res.preconditioner_seconds < res.seconds
        assert res.outer_seconds == pytest.approx(
            res.seconds - res.preconditioner_seconds
        )
        none = machine.solve(0, eps=1e-6)
        assert none.preconditioner_seconds == 0.0

    def test_faster_machine_is_faster(self, plate):
        res203 = CyberMachine(plate, CYBER_203).solve(2, np.ones(2), eps=1e-6)
        res205 = CyberMachine(plate, CYBER_205).solve(2, np.ones(2), eps=1e-6)
        assert res205.iterations == res203.iterations  # same math
        assert res205.seconds < res203.seconds

    def test_labels(self, machine, interval):
        assert machine.solve(0, eps=1e-4).label == "0"
        assert machine.solve(2, np.ones(2), eps=1e-4).label == "2"
        coeffs = mstep_coefficients(2, True, interval)
        assert machine.solve(2, coeffs, eps=1e-4).label == "2P"


class TestPaperObservations:
    """Table 2's two observations, on a reduced mesh for test speed."""

    def test_parametrized_beats_unparametrized(self, machine, interval):
        for m in (2, 3):
            plain = machine.solve(m, np.ones(m), eps=1e-6)
            fitted = machine.solve(m, mstep_coefficients(m, True, interval), eps=1e-6)
            assert fitted.iterations <= plain.iterations
            assert fitted.seconds <= plain.seconds

    def test_preconditioning_reduces_both_iterations_and_time(
        self, machine, interval
    ):
        base = machine.solve(0, eps=1e-6)
        best = machine.solve(4, mstep_coefficients(4, True, interval), eps=1e-6)
        assert best.iterations < base.iterations / 2
        assert best.seconds < base.seconds
