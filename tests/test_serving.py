"""The serving layer (ISSUE 7): daemon, session LRU, micro-batcher, client.

Covers the PR's acceptance contracts:

* **Batch split/merge** — columns coalesced into one
  :func:`~repro.core.pcg.block_pcg` lockstep come back **bitwise**
  identical to unbatched :meth:`SolverSession.solve_cell` runs, per
  column, whatever the batch width.
* **LRU eviction** — under capacity pressure the least-recently-used
  compiled session is evicted *and closed* (its shared-memory finalizer
  runs); hits/misses/evictions count correctly and a re-request
  recompiles.
* **Malformed-request rejection** — bad frames, bad fields, bad values
  and unknown scenarios produce ``ok: false`` error responses without
  killing the connection, the batch, or the daemon; a wrong-length
  ``rhs`` rejects only its own column.
* **Cancellation mid-batch** — a waiter that disappears before its batch
  flushes forfeits its column; the remaining columns solve bitwise
  unharmed.
* **Leak-free shutdown** — a full serve/solve/shutdown cycle under
  ``python -W error`` leaves zero live shared-memory segments (the
  ``tests/test_parallel_shm.py`` pattern).
"""

import asyncio
import socket
import subprocess
import sys

import numpy as np
import pytest

from repro.pipeline import (
    SolverPlan,
    SolverSession,
    build_scenario,
    synthetic_load_block,
)
from repro.serving import (
    MicroBatcher,
    ProtocolError,
    ServeClient,
    ServerStats,
    SessionCache,
    parse_solve_request,
    start_server_thread,
)
from repro.serving.protocol import decode_line, encode_line

EPS = 1e-6
M = 3
ROWS = 8


def solve_payload(**overrides) -> dict:
    payload = {"op": "solve", "scenario": "plate", "rows": ROWS, "m": M,
               "eps": EPS}
    payload.update(overrides)
    return payload


@pytest.fixture(scope="module")
def plate():
    return build_scenario("plate", nrows=ROWS)


@pytest.fixture(scope="module")
def reference(plate):
    """Serial unbatched solves of load cases 0..4 — the bitwise oracle."""
    session = SolverSession(plate, plan=SolverPlan.single(M, eps=EPS))
    out = {}
    for j in range(5):
        f = np.ascontiguousarray(synthetic_load_block(plate, j + 1)[:, j])
        out[j] = session.solve_cell(M, f=f).u
    return out


@pytest.fixture()
def server():
    handle = start_server_thread(batch_window=0.05, max_batch=8, capacity=4)
    yield handle
    handle.stop()


# ------------------------------------------------------------------ protocol
class TestProtocol:
    def test_round_trip(self):
        payload = solve_payload(load_case=2)
        assert decode_line(encode_line(payload)) == payload

    def test_request_defaults(self):
        req = parse_solve_request({"op": "solve"})
        assert req.scenario == "plate"
        assert req.m == 3
        assert req.load_case == 0
        assert req.system_key == ("plate", None, 3, False, 1.0, 1e-6, None)

    @pytest.mark.parametrize("payload, needle", [
        ({"scenario": 7}, "scenario"),
        ({"scenario": ""}, "scenario"),
        ({"rows": "twenty"}, "rows"),
        ({"rows": 1}, "rows"),
        ({"m": -1}, "m"),
        ({"m": "many"}, "m"),
        ({"m": True}, "m"),
        ({"parametrized": "yes"}, "parametrized"),
        ({"omega": 0.0}, "omega"),
        ({"omega": float("nan")}, "omega"),
        ({"eps": -1e-6}, "eps"),
        ({"backend": 3}, "backend"),
        ({"rhs": []}, "rhs"),
        ({"rhs": [1.0, "x"]}, "rhs"),
        ({"rhs": [1.0, float("inf")]}, "rhs"),
        ({"load_case": -1}, "load_case"),
        ({"load_case": 1.5}, "load_case"),
        ({"typo_field": 1}, "typo_field"),
    ])
    def test_rejections(self, payload, needle):
        with pytest.raises(ProtocolError, match=needle):
            parse_solve_request(solve_payload(**payload))

    def test_bad_frames(self):
        with pytest.raises(ProtocolError, match="not valid JSON"):
            decode_line(b"{nope\n")
        with pytest.raises(ProtocolError, match="JSON object"):
            decode_line(b"[1, 2]\n")

    def test_system_key_separates_numerics(self):
        base = parse_solve_request(solve_payload())
        for change in ({"m": 4}, {"eps": 1e-8}, {"omega": 1.2},
                       {"parametrized": True}, {"rows": ROWS + 2},
                       {"backend": "reference"}, {"m": "auto"}):
            assert parse_solve_request(
                solve_payload(**change)
            ).system_key != base.system_key
        # The RHS is value data, never compiled state: same key.
        assert parse_solve_request(
            solve_payload(load_case=3)
        ).system_key == base.system_key


# --------------------------------------------------------------- session LRU
class TestSessionCache:
    def test_hit_and_miss_counting(self):
        cache = SessionCache(capacity=2)
        req = parse_solve_request(solve_payload())
        entry, hit = cache.get(req)
        assert not hit and cache.stats.misses == 1
        again, hit = cache.get(req)
        assert hit and again is entry and cache.stats.hits == 1
        assert entry.session.stats.colorings == 1  # compiled exactly once

    def test_eviction_under_capacity_pressure_closes_sessions(self):
        cache = SessionCache(capacity=2)
        requests = [
            parse_solve_request(solve_payload(rows=rows))
            for rows in (6, 7, 8)
        ]
        entries = [cache.get(req)[0] for req in requests]
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        # Oldest key evicted, and its session's shm finalizer has run.
        assert requests[0].system_key not in cache.keys()
        assert not entries[0].session._shm_finalizer.alive
        assert entries[1].session._shm_finalizer.alive
        # Re-requesting the evicted system recompiles (a miss, not a hit).
        _, hit = cache.get(requests[0])
        assert not hit
        assert cache.stats.misses == 4
        assert cache.stats.evictions == 2

    def test_lru_order_is_refresh_on_hit(self):
        cache = SessionCache(capacity=2)
        a = parse_solve_request(solve_payload(rows=6))
        b = parse_solve_request(solve_payload(rows=7))
        c = parse_solve_request(solve_payload(rows=8))
        cache.get(a), cache.get(b)
        cache.get(a)  # refresh a: b is now the LRU entry
        cache.get(c)
        assert a.system_key in cache.keys()
        assert b.system_key not in cache.keys()

    def test_close_all(self):
        cache = SessionCache(capacity=2)
        entry, _ = cache.get(parse_solve_request(solve_payload()))
        cache.close_all()
        assert len(cache) == 0
        assert not entry.session._shm_finalizer.alive

    def test_auto_m_resolves_to_concrete_parametrized_cell(self):
        cache = SessionCache(capacity=2, auto_width=8)
        entry, _ = cache.get(parse_solve_request(solve_payload(m="auto")))
        assert isinstance(entry.m, int) and entry.m >= 1
        assert entry.parametrized
        assert entry.label.endswith("P")


# ------------------------------------------------------------- micro-batcher
def run_batcher(coro):
    return asyncio.run(coro)


def make_batcher(window=0.05, max_batch=8, capacity=4):
    stats = ServerStats()
    cache = SessionCache(capacity=capacity, stats=stats, auto_width=max_batch)
    return MicroBatcher(cache, stats, window=window, max_batch=max_batch)


class TestMicroBatcher:
    def test_batch_split_merge_bitwise(self, reference):
        """k coalesced columns ≡ k unbatched solves, bitwise, one batch."""
        batcher = make_batcher()

        async def scenario_run():
            futures = [
                batcher.submit(parse_solve_request(solve_payload(load_case=j)))
                for j in range(4)
            ]
            return await asyncio.gather(*futures)

        try:
            responses = run_batcher(scenario_run())
        finally:
            batcher.shutdown_executor()
        assert [r["batch_width"] for r in responses] == [4, 4, 4, 4]
        assert batcher.stats.batches == 1
        assert batcher.stats.batch_widths == {4: 1}
        for j, response in enumerate(responses):
            assert response["ok"] and response["converged"]
            assert np.array_equal(np.asarray(response["u"]), reference[j])

    def test_full_batch_flushes_before_window(self, reference):
        batcher = make_batcher(window=30.0, max_batch=2)

        async def scenario_run():
            futures = [
                batcher.submit(parse_solve_request(solve_payload(load_case=j)))
                for j in range(2)
            ]
            # A 30 s window would time the test out; only the size
            # trigger can flush this batch.
            return await asyncio.wait_for(asyncio.gather(*futures), timeout=20)

        try:
            responses = run_batcher(scenario_run())
        finally:
            batcher.shutdown_executor()
        assert [r["batch_width"] for r in responses] == [2, 2]

    def test_cancellation_mid_batch_leaves_other_columns_unharmed(
        self, reference
    ):
        batcher = make_batcher()

        async def scenario_run():
            futures = [
                batcher.submit(parse_solve_request(solve_payload(load_case=j)))
                for j in range(3)
            ]
            futures[1].cancel()
            done = await asyncio.gather(*futures, return_exceptions=True)
            return done

        try:
            results = run_batcher(scenario_run())
        finally:
            batcher.shutdown_executor()
        assert isinstance(results[1], asyncio.CancelledError)
        for j in (0, 2):
            assert results[j]["ok"]
            assert np.array_equal(np.asarray(results[j]["u"]), reference[j])

    def test_wrong_length_rhs_rejects_only_its_own_column(self, reference):
        batcher = make_batcher()

        async def scenario_run():
            good = batcher.submit(parse_solve_request(solve_payload(load_case=0)))
            bad = batcher.submit(
                parse_solve_request(solve_payload(rhs=[1.0, 2.0, 3.0]))
            )
            return await asyncio.gather(good, bad)

        try:
            good, bad = run_batcher(scenario_run())
        finally:
            batcher.shutdown_executor()
        assert good["ok"]
        assert np.array_equal(np.asarray(good["u"]), reference[0])
        assert good["batch_width"] == 1  # the bad column never solved
        assert not bad["ok"] and "length" in bad["error"]

    def test_unknown_scenario_fails_whole_batch_gracefully(self):
        batcher = make_batcher()

        async def scenario_run():
            future = batcher.submit(
                parse_solve_request(solve_payload(scenario="not-a-scenario"))
            )
            return await future

        try:
            response = run_batcher(scenario_run())
        finally:
            batcher.shutdown_executor()
        assert not response["ok"]
        assert "unknown scenario" in response["error"]
        assert batcher.stats.errors == 1


# ------------------------------------------------------------- TCP end to end
class TestDaemonOverTCP:
    def test_concurrent_requests_bitwise_and_batched(self, server, reference):
        import threading
        from concurrent.futures import ThreadPoolExecutor

        barrier = threading.Barrier(6)

        def fire(case):
            with ServeClient(port=server.port) as client:
                barrier.wait(timeout=30)
                return client.solve(rows=ROWS, m=M, eps=EPS, load_case=case)

        with ThreadPoolExecutor(max_workers=6) as pool:
            replies = list(pool.map(fire, [0, 1, 2, 3, 4, 0]))
        for case, reply in zip([0, 1, 2, 3, 4, 0], replies):
            assert reply.converged
            assert np.array_equal(reply.u, reference[case])
        with ServeClient(port=server.port) as client:
            counters = client.stats()["stats"]
        assert counters["solves"] == 6
        assert max(
            int(w) for w in counters["batch_width_hist"]
        ) > 1, counters

    def test_connection_survives_malformed_requests(self, server, reference):
        with ServeClient(port=server.port) as client:
            for payload, needle in [
                ({"op": "no-such-op"}, "unknown op"),
                (solve_payload(m=-2), "'m'"),
                (solve_payload(scenario="nope"), "unknown scenario"),
                (solve_payload(rhs=[0.0, 1.0]), "length"),
            ]:
                response = client.request(payload)
                assert response["ok"] is False
                assert needle in response["error"]
            # Raw garbage frames (not even JSON) answer with an error too.
            raw = socket.create_connection(("127.0.0.1", server.port))
            try:
                raw.sendall(b"this is not json\n")
                line = raw.makefile("rb").readline()
                assert decode_line(line)["ok"] is False
            finally:
                raw.close()
            # ... and the daemon still serves correct solves afterwards.
            reply = client.solve(rows=ROWS, m=M, eps=EPS, load_case=1)
            assert np.array_equal(reply.u, reference[1])

    def test_auto_m_over_the_wire(self, server):
        with ServeClient(port=server.port) as client:
            reply = client.solve(rows=ROWS, m="auto", eps=EPS)
            assert reply.converged
            assert reply.m_label.endswith("P")

    def test_stats_shape(self, server):
        with ServeClient(port=server.port) as client:
            client.solve(rows=ROWS, m=M, eps=EPS)
            stats = client.stats()
        assert stats["cache"]["capacity"] == 4
        assert stats["batcher"]["max_batch"] == 8
        assert stats["live_shm_segments"] == 0
        assert stats["stats"]["requests"]["solve"] >= 1

    def test_shutdown_stops_thread_and_closes_sessions(self):
        handle = start_server_thread(batch_window=0.0, max_batch=1, capacity=2)
        with ServeClient(port=handle.port) as client:
            reply = client.solve(rows=ROWS, m=M, eps=EPS)
            assert reply.batch_width == 1  # batching disabled end to end
        handle.stop()
        assert not handle.thread.is_alive()
        assert len(handle.server.cache) == 0


# ----------------------------------------------------------- leak freedom
_LEAK_SCRIPT = """
import numpy as np

def main():
    from repro.parallel import registry
    from repro.serving import ServeClient, start_server_thread

    handle = start_server_thread(batch_window=0.01, max_batch=4, capacity=2)
    with ServeClient(port=handle.port) as client:
        for case in range(3):
            reply = client.solve(rows=8, m=3, load_case=case)
            assert reply.converged
    handle.stop()
    assert not handle.thread.is_alive()
    assert registry().live_segments() == []
    print("OK")

if __name__ == "__main__":
    main()
"""


class TestNoLeaks:
    def test_serve_cycle_is_warning_clean(self, tmp_path):
        # -W error promotes the resource tracker's "leaked shared_memory
        # objects" shutdown report (and any other warning) to a failure —
        # the same leak-check pattern as tests/test_parallel_shm.py.
        script = tmp_path / "serve_leak_probe.py"
        script.write_text(_LEAK_SCRIPT)
        import os
        import pathlib

        import repro

        src = str(pathlib.Path(repro.__file__).resolve().parents[1])
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (src, env.get("PYTHONPATH")) if p
        )
        proc = subprocess.run(
            [sys.executable, "-W", "error", str(script)],
            capture_output=True, text=True, env=env, timeout=600,
        )
        assert proc.returncode == 0, proc.stderr
        assert "OK" in proc.stdout
        assert "resource_tracker" not in proc.stderr
        assert "leaked" not in proc.stderr
