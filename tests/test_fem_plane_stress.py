"""Unit and property tests for CST plane-stress assembly."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fem import ElasticMaterial, PlateMesh, assemble_plate, cst_stiffness
from repro.fem.plane_stress import edge_traction_loads
from repro.util import is_spd, is_symmetric


def rigid_body_modes(coords):
    """Columns: x-translation, y-translation, infinitesimal rotation."""
    modes = np.zeros((6, 3))
    modes[0::2, 0] = 1.0
    modes[1::2, 1] = 1.0
    modes[0::2, 2] = -coords[:, 1]
    modes[1::2, 2] = coords[:, 0]
    return modes


class TestMaterial:
    def test_d_matrix_known_values(self):
        mat = ElasticMaterial(youngs_modulus=1.0, poissons_ratio=0.0)
        assert mat.d_matrix == pytest.approx(np.diag([1.0, 1.0, 0.5]))

    def test_d_matrix_symmetric_positive(self):
        mat = ElasticMaterial(youngs_modulus=210e9, poissons_ratio=0.3)
        d = mat.d_matrix
        assert is_symmetric(d)
        assert np.all(np.linalg.eigvalsh(d) > 0)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            ElasticMaterial(youngs_modulus=-1.0)
        with pytest.raises(ValueError):
            ElasticMaterial(poissons_ratio=0.5)
        with pytest.raises(ValueError):
            ElasticMaterial(thickness=0.0)


class TestElementStiffness:
    unit_triangle = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0]])

    def test_symmetric(self):
        ke = cst_stiffness(self.unit_triangle, ElasticMaterial())
        assert np.array_equal(ke, ke.T)

    def test_positive_semidefinite_with_rank_3(self):
        ke = cst_stiffness(self.unit_triangle, ElasticMaterial())
        eigs = np.linalg.eigvalsh(ke)
        assert eigs[0] >= -1e-12
        assert np.sum(eigs > 1e-10) == 3  # 6 dofs − 3 rigid modes

    def test_rigid_modes_in_nullspace(self):
        ke = cst_stiffness(self.unit_triangle, ElasticMaterial())
        modes = rigid_body_modes(self.unit_triangle)
        assert np.max(np.abs(ke @ modes)) < 1e-12

    def test_rejects_clockwise_triangle(self):
        cw = self.unit_triangle[::-1]
        with pytest.raises(ValueError):
            cst_stiffness(cw, ElasticMaterial())

    def test_scales_linearly_with_E_and_t(self):
        base = cst_stiffness(self.unit_triangle, ElasticMaterial(youngs_modulus=1.0))
        scaled = cst_stiffness(
            self.unit_triangle,
            ElasticMaterial(youngs_modulus=7.0, thickness=2.0),
        )
        assert scaled == pytest.approx(14.0 * base)

    def test_translation_invariance(self):
        shifted = self.unit_triangle + np.array([3.0, -2.0])
        a = cst_stiffness(self.unit_triangle, ElasticMaterial())
        b = cst_stiffness(shifted, ElasticMaterial())
        assert b == pytest.approx(a)

    @given(
        st.floats(0.1, 10.0),
        st.floats(0.1, 10.0),
        st.floats(-5.0, 5.0),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=30)
    def test_random_triangles_keep_rigid_nullspace(self, sx, sy, shear, seed):
        coords = self.unit_triangle @ np.array([[sx, 0.0], [shear, sy]])
        # Keep CCW orientation; the map's determinant is sx·sy > 0.
        mat = ElasticMaterial(youngs_modulus=2.0, poissons_ratio=0.25)
        ke = cst_stiffness(coords, mat)
        modes = rigid_body_modes(coords)
        assert np.max(np.abs(ke @ modes)) < 1e-9 * max(1.0, np.max(np.abs(ke)))


class TestVectorizedAssemblyEqualsReference:
    @given(st.integers(3, 8), st.integers(3, 8), st.floats(0.05, 0.45))
    @settings(max_examples=8, deadline=None)
    def test_batched_einsum_matches_per_element_loop(self, nrows, ncols, nu):
        from repro.fem.plane_stress import assemble_from_triangles

        mesh = PlateMesh(nrows, ncols)
        mat = ElasticMaterial(poissons_ratio=nu, thickness=1.3)
        vec = assemble_from_triangles(
            mesh.coordinates, mesh.triangles, mat
        ).toarray()
        ref = np.zeros_like(vec)
        for tri in mesh.triangles:
            ke = cst_stiffness(mesh.coordinates[tri], mat)
            dofs = np.empty(6, dtype=int)
            dofs[0::2] = 2 * tri
            dofs[1::2] = 2 * tri + 1
            ref[np.ix_(dofs, dofs)] += ke
        assert vec == pytest.approx(ref, rel=1e-12, abs=1e-13)

    def test_empty_triangle_set(self):
        from repro.fem.plane_stress import assemble_from_triangles

        mesh = PlateMesh(3, 3)
        k = assemble_from_triangles(
            mesh.coordinates, mesh.triangles[:0], ElasticMaterial()
        )
        assert k.shape == (2 * mesh.n_nodes, 2 * mesh.n_nodes)
        assert k.nnz == 0


class TestAssembly:
    @pytest.fixture
    def system66(self):
        mesh = PlateMesh(nrows=6, ncols=6)
        k, f = assemble_plate(mesh)
        return mesh, k, f

    def test_dimension_matches_2ab(self, system66):
        mesh, k, f = system66
        assert k.shape == (60, 60)
        assert f.shape == (60,)

    def test_spd(self, system66):
        _, k, _ = system66
        assert is_spd(k)

    def test_at_most_14_nonzeros_per_row(self, system66):
        _, k, _ = system66
        assert int(np.diff(k.tocsr().indptr).max()) <= 14

    def test_interior_row_nonzeros(self):
        # The paper's Figure-2 stencil reserves 14 slots per equation.  On
        # the *uniform* isotropic mesh the u–u coupling across the '/'
        # diagonal cancels exactly between the two shared triangles, so the
        # numerical count is 12 — still within the paper's ≤14 bound, and all
        # seven stencil nodes remain coupled (through u or v).
        mesh = PlateMesh(nrows=7, ncols=7)
        k, _ = assemble_plate(mesh)
        row = mesh.dof_index(mesh.node_id(3, 3), 0)
        nnz = k.tocsr().getrow(row).nnz
        assert nnz == 12
        assert nnz <= 14

    def test_load_only_on_loaded_edge(self, system66):
        mesh, _, f = system66
        loaded_dofs = {mesh.dof_index(int(n), 0) for n in mesh.loaded_nodes}
        nonzero = set(np.flatnonzero(np.abs(f) > 0).tolist())
        assert nonzero == loaded_dofs

    def test_total_load_equals_traction_resultant(self, system66):
        mesh, _, f = system66
        material = ElasticMaterial()
        # Uniform unit x-traction over edge of length `height` and thickness t.
        assert float(f.sum()) == pytest.approx(material.thickness * mesh.height)

    def test_solution_pulls_plate_in_x(self, system66):
        mesh, k, f = system66
        u = sp.linalg.spsolve(k.tocsc(), f)
        ux = u[0::2]
        assert np.all(ux > -1e-12)
        # Displacement grows toward the loaded edge.
        cols = np.array([mesh.node_ij(int(n))[0] for n in mesh.unconstrained_nodes])
        mean_near = ux[cols == 1].mean()
        mean_far = ux[cols == mesh.ncols - 1].mean()
        assert mean_far > mean_near

    def test_traction_vector_orientation(self):
        mesh = PlateMesh(nrows=4, ncols=4)
        material = ElasticMaterial(thickness=2.0)
        f = edge_traction_loads(mesh, material, traction_x=0.0, traction_y=3.0)
        # y-loads only, summing to t·q·height.
        assert float(f[0::2].sum()) == 0.0
        assert float(f[1::2].sum()) == pytest.approx(2.0 * 3.0 * mesh.height)

    @given(st.integers(3, 9), st.integers(3, 9))
    @settings(max_examples=10, deadline=None)
    def test_assembled_matrix_symmetric_any_size(self, nrows, ncols):
        mesh = PlateMesh(nrows=nrows, ncols=ncols)
        k, _ = assemble_plate(mesh)
        assert is_symmetric(k)

    def test_free_floating_assembly_has_zero_row_sums(self):
        # Before constraints, translations are in the nullspace: K·1 = 0 for
        # each displacement direction.  Reassemble without eliminating by
        # using a mesh whose "constrained" column we re-add via full assembly.
        mesh = PlateMesh(nrows=5, ncols=5)
        material = ElasticMaterial()
        from repro.fem.plane_stress import cst_stiffness as ke_fn

        n_full = 2 * mesh.n_nodes
        k_full = np.zeros((n_full, n_full))
        for tri in mesh.triangles:
            ke = ke_fn(mesh.coordinates[tri], material)
            dofs = np.empty(6, dtype=int)
            dofs[0::2] = 2 * tri
            dofs[1::2] = 2 * tri + 1
            k_full[np.ix_(dofs, dofs)] += ke
        ones_x = np.zeros(n_full)
        ones_x[0::2] = 1.0
        ones_y = np.zeros(n_full)
        ones_y[1::2] = 1.0
        scale = np.max(np.abs(k_full))
        assert np.max(np.abs(k_full @ ones_x)) < 1e-12 * scale
        assert np.max(np.abs(k_full @ ones_y)) < 1e-12 * scale
