"""Deeper tests of the Finite Element Machine cost model internals."""

import numpy as np
import pytest

from repro import plate_problem
from repro.driver import build_blocked_system
from repro.machines import FEM_1983, ArrayTimingModel, FiniteElementMachine


@pytest.fixture(scope="module")
def plate():
    return plate_problem(6)


@pytest.fixture(scope="module")
def blocked(plate):
    return build_blocked_system(plate)


class TestIterationCosts:
    def test_a_scales_down_with_processors(self, plate, blocked):
        a1, _ = FiniteElementMachine(plate, 1, blocked=blocked).iteration_costs(1)
        a5, _ = FiniteElementMachine(plate, 5, blocked=blocked).iteration_costs(1)
        # Compute dominates on this machine: A shrinks with P (not ∝ 1/P —
        # reductions and exchanges grow).
        assert a5 < a1
        assert a5 > a1 / 5

    def test_b_includes_comm_only_for_multiproc(self, plate, blocked):
        m1 = FiniteElementMachine(plate, 1, blocked=blocked)
        m5 = FiniteElementMachine(plate, 5, blocked=blocked)
        _, b1 = m1.iteration_costs(1)
        _, b5 = m5.iteration_costs(1)
        # Per-step compute shrinks 5×, but the border exchanges keep B₅
        # well above B₁/5.
        assert b5 < b1
        assert b5 > b1 / 5

    def test_phase_fields_sum_to_total(self, plate, blocked):
        machine = FiniteElementMachine(plate, 5, blocked=blocked)
        res = machine.solve(3, np.ones(3))
        total = (
            res.compute_seconds
            + res.comm_seconds
            + res.reduction_seconds
            + res.flag_seconds
        )
        assert res.seconds == pytest.approx(total)

    def test_time_model_consistent_with_41(self, plate, blocked):
        # T ≈ startup + Σ phases: compare the solve's clock to (A + mB)·N
        # within the startup/final-iteration slack.
        machine = FiniteElementMachine(plate, 2, blocked=blocked)
        m = 2
        res = machine.solve(m, np.ones(m))
        a_cost, b_cost = machine.iteration_costs(m)
        predicted = (a_cost + m * b_cost) * res.iterations
        assert res.seconds == pytest.approx(predicted, rel=0.25)


class TestTimingModelVariants:
    def test_slower_links_hurt_multiproc_only(self, plate, blocked):
        slow_links = ArrayTimingModel(
            flop_time=FEM_1983.flop_time,
            record_latency=10 * FEM_1983.record_latency,
            word_time=10 * FEM_1983.word_time,
            flag_sync_time=FEM_1983.flag_sync_time,
            circuit_stage_time=FEM_1983.circuit_stage_time,
            ring_hop_time=FEM_1983.ring_hop_time,
            color_phase_overhead=FEM_1983.color_phase_overhead,
        )
        base_1 = FiniteElementMachine(plate, 1, blocked=blocked).solve(2, np.ones(2))
        slow_1 = FiniteElementMachine(
            plate, 1, timing=slow_links, blocked=blocked
        ).solve(2, np.ones(2))
        assert slow_1.seconds == pytest.approx(base_1.seconds)

        base_5 = FiniteElementMachine(plate, 5, blocked=blocked).solve(2, np.ones(2))
        slow_5 = FiniteElementMachine(
            plate, 5, timing=slow_links, blocked=blocked
        ).solve(2, np.ones(2))
        assert slow_5.seconds > base_5.seconds

    def test_faster_flops_shift_balance_to_comm(self, plate, blocked):
        fast_cpu = ArrayTimingModel(
            flop_time=FEM_1983.flop_time / 100,
            record_latency=FEM_1983.record_latency,
            word_time=FEM_1983.word_time,
            flag_sync_time=FEM_1983.flag_sync_time,
            circuit_stage_time=FEM_1983.circuit_stage_time,
            ring_hop_time=FEM_1983.ring_hop_time,
            color_phase_overhead=FEM_1983.color_phase_overhead,
        )
        machine = FiniteElementMachine(plate, 5, timing=fast_cpu, blocked=blocked)
        res = machine.solve(2, np.ones(2))
        overhead = res.comm_seconds + res.reduction_seconds + res.flag_seconds
        assert overhead > res.compute_seconds  # comm-bound once flops are free

    def test_records_independent_of_timing(self, plate, blocked):
        # Traffic is structural; the clock model must not change it.
        fast = ArrayTimingModel(flop_time=1e-9)
        a = FiniteElementMachine(plate, 5, blocked=blocked).solve(2, np.ones(2))
        b = FiniteElementMachine(plate, 5, timing=fast, blocked=blocked).solve(
            2, np.ones(2)
        )
        assert a.total_records == b.total_records
        assert a.total_words == b.total_words
