"""Tests for the real SPMD execution engine.

The engine distributes data and messages for real; these tests prove
(1) the distributed numerics agree with the reference solver,
(2) results are independent of the processor count,
(3) the *measured* message ledger matches the static border counts that
    the FiniteElementMachine cost model charges — cross-validating the
    Table-3 cost model through an independent code path.
"""

import numpy as np
import pytest

from repro import plate_problem, solve_mstep_ssor
from repro.driver import build_blocked_system, mstep_coefficients, ssor_interval
from repro.machines import Assignment, FiniteElementMachine, ProcessorGrid
from repro.machines.spmd import SPMDSolver


@pytest.fixture(scope="module")
def plate():
    return plate_problem(6)


@pytest.fixture(scope="module")
def blocked(plate):
    return build_blocked_system(plate)


@pytest.fixture(scope="module")
def interval(blocked):
    return ssor_interval(blocked)


def make_solver(plate, blocked, n_procs):
    grid = ProcessorGrid.for_count(n_procs, plate.mesh)
    assignment = Assignment.rectangles(plate.mesh, grid)
    return SPMDSolver(plate, assignment, blocked=blocked)


class TestDistributedCorrectness:
    @pytest.mark.parametrize("n_procs", [1, 2, 5])
    @pytest.mark.parametrize("m, par", [(0, False), (1, False), (3, True)])
    def test_matches_reference(self, plate, blocked, interval, n_procs, m, par):
        solver = make_solver(plate, blocked, n_procs)
        coeffs = mstep_coefficients(m, par, interval) if m else None
        sim = solver.solve(m, coeffs, eps=1e-6)
        ref = solve_mstep_ssor(
            plate, m, parametrized=par, interval=interval, blocked=blocked, eps=1e-6
        )
        assert sim.converged
        # Local kernels reorder column sums, so agreement is to roundoff.
        assert abs(sim.iterations - ref.iterations) <= 2
        assert sim.u_natural == pytest.approx(ref.u, rel=1e-4, abs=1e-7)

    @pytest.mark.parametrize("n_procs", [2, 3, 5])
    def test_solution_solves_system(self, plate, blocked, n_procs):
        solver = make_solver(plate, blocked, n_procs)
        sim = solver.solve(2, np.ones(2), eps=1e-8)
        resid = np.max(np.abs(plate.f - plate.k @ sim.u_natural))
        assert resid < 1e-6

    def test_scatter_gather_roundtrip(self, plate, blocked):
        solver = make_solver(plate, blocked, 5)
        rng = np.random.default_rng(0)
        x = rng.normal(size=solver.n)
        assert np.array_equal(solver.gather(solver.scatter(x)), x)

    def test_distributed_matvec_matches_global(self, plate, blocked):
        solver = make_solver(plate, blocked, 5)
        rng = np.random.default_rng(1)
        x = rng.normal(size=solver.n)
        xd = solver.scatter(x)
        yd = solver.matvec(xd, solver.new_halos())
        assert solver.gather(yd) == pytest.approx(blocked.permuted @ x, rel=1e-12)

    def test_distributed_precondition_matches_mstep_ssor(
        self, plate, blocked, interval
    ):
        from repro.multicolor import MStepSSOR

        solver = make_solver(plate, blocked, 5)
        coeffs = mstep_coefficients(3, True, interval)
        rng = np.random.default_rng(2)
        r = rng.normal(size=solver.n)
        rd = solver.scatter(r)
        rtd = solver.precondition(coeffs, rd)
        expected = MStepSSOR(blocked, coeffs).apply(r)
        assert solver.gather(rtd) == pytest.approx(expected, rel=1e-9, abs=1e-10)

    def test_single_processor_has_no_messages(self, plate, blocked):
        solver = make_solver(plate, blocked, 1)
        sim = solver.solve(2, np.ones(2), eps=1e-6)
        assert sim.converged
        assert sim.ledger.total_words == 0


class TestLedgerCrossValidation:
    """Measured SPMD traffic == static counts charged by the cost model."""

    @pytest.mark.parametrize("n_procs", [2, 5])
    def test_p_exchange_words_match_static_model(self, plate, blocked, n_procs):
        solver = make_solver(plate, blocked, n_procs)
        machine = FiniteElementMachine(plate, solver.assignment, blocked=blocked)
        # one matvec = one full halo exchange
        xd = solver.scatter(np.ones(solver.n))
        solver.matvec(xd, solver.new_halos())
        measured = dict(solver.ledger.words_by_pair)
        assert measured == machine._kp_exchange_words

    @pytest.mark.parametrize("n_procs", [2, 5])
    def test_precondition_words_match_static_model(self, plate, blocked, n_procs):
        solver = make_solver(plate, blocked, n_procs)
        machine = FiniteElementMachine(plate, solver.assignment, blocked=blocked)
        m = 3
        rd = solver.scatter(np.ones(solver.n))
        solver.precondition(np.ones(m), rd)
        measured_fwd = solver.ledger.words_by_kind.get("precond_fwd", 0)
        measured_bwd = solver.ledger.words_by_kind.get("precond_bwd", 0)
        static_fwd = m * sum(sum(w) for w in machine._fwd_words.values())
        static_bwd = m * sum(sum(w) for w in machine._bwd_words.values())
        assert measured_fwd == static_fwd
        assert measured_bwd == static_bwd

    def test_halo_is_node_granular(self, plate, blocked):
        # Both dofs of a referenced border node are in the halo (packaged
        # records), even where an exact stiffness cancellation drops one
        # coupling from the sparsity.
        solver = make_solver(plate, blocked, 5)
        mesh = plate.mesh
        ordering = blocked.ordering
        node_of_mc = mesh.dof_node[ordering.perm]
        for p in range(solver.n_procs):
            halo_nodes, counts = np.unique(
                node_of_mc[solver.halo_idx[p]], return_counts=True
            )
            assert np.all(counts == 2), f"proc {p} has a half-node halo"

    def test_iterations_invariant_across_procs(self, plate, blocked, interval):
        coeffs = mstep_coefficients(2, True, interval)
        iters = set()
        for n_procs in (1, 2, 5):
            solver = make_solver(plate, blocked, n_procs)
            iters.add(solver.solve(2, coeffs, eps=1e-6).iterations)
        # Partials are summed in rank order, so tiny rounding differences
        # may shift the stopping iteration by one at most.
        assert max(iters) - min(iters) <= 1
