"""Unit tests for repro.util.validation."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.util import check_spd, is_diagonal, is_spd, is_symmetric, require


class TestRequire:
    def test_passes_silently(self):
        require(True, "never raised")

    def test_raises_with_message(self):
        with pytest.raises(ValueError, match="broken invariant"):
            require(False, "broken invariant")


class TestIsSymmetric:
    def test_dense_symmetric(self):
        a = np.array([[2.0, 1.0], [1.0, 3.0]])
        assert is_symmetric(a)

    def test_dense_asymmetric(self):
        a = np.array([[2.0, 1.0], [0.0, 3.0]])
        assert not is_symmetric(a)

    def test_sparse_symmetric(self):
        a = sp.diags([1.0, 2.0, 3.0]).tocsr()
        assert is_symmetric(a)

    def test_sparse_asymmetric(self):
        a = sp.csr_matrix(np.array([[1.0, 5.0], [0.0, 1.0]]))
        assert not is_symmetric(a)

    def test_tolerance_is_relative(self):
        # Asymmetry of 1e-4 against unit-scale entries: rejected at 1e-10,
        # accepted at 1e-3.
        a = np.array([[1.0, 1.0], [1.0 + 1e-4, 1.0]])
        assert is_symmetric(a, tol=1e-10) is False
        assert is_symmetric(a, tol=1e-3)
        # Against 1e8-scale entries the same absolute asymmetry is within a
        # 1e-10 *relative* tolerance.
        b = np.array([[1e8, 1.0], [1.0 + 1e-4, 1e8]])
        assert is_symmetric(b, tol=1e-10)


class TestIsSpd:
    def test_identity(self):
        assert is_spd(np.eye(4))

    def test_indefinite(self):
        assert not is_spd(np.diag([1.0, -1.0]))

    def test_asymmetric_rejected(self):
        assert not is_spd(np.array([[2.0, 1.0], [0.0, 2.0]]))

    def test_sparse_laplacian(self):
        n = 20
        t = sp.diags([-np.ones(n - 1), 2 * np.ones(n), -np.ones(n - 1)], [-1, 0, 1])
        assert is_spd(t.tocsr())

    def test_large_path_uses_lanczos(self):
        n = 500
        t = sp.diags([-np.ones(n - 1), 2.5 * np.ones(n), -np.ones(n - 1)], [-1, 0, 1])
        assert is_spd(t.tocsr())

    def test_check_spd_raises_for_semidefinite(self):
        a = np.diag([1.0, 0.0])
        with pytest.raises(ValueError, match="positive definite"):
            check_spd(a, name="A")

    def test_check_spd_raises_for_asymmetric(self):
        with pytest.raises(ValueError, match="symmetric"):
            check_spd(np.array([[1.0, 2.0], [0.0, 1.0]]), name="A")


class TestIsDiagonal:
    def test_dense_diagonal(self):
        assert is_diagonal(np.diag([1.0, 2.0]))

    def test_dense_off_diagonal(self):
        assert not is_diagonal(np.array([[1.0, 0.1], [0.0, 1.0]]))

    def test_sparse_with_explicit_zero_offdiag(self):
        a = sp.csr_matrix(np.array([[1.0, 0.0], [0.0, 2.0]]))
        assert is_diagonal(a)

    def test_sparse_rectangular_blocks(self):
        a = sp.csr_matrix((3, 3))
        assert is_diagonal(a)

    def test_tolerance(self):
        a = np.eye(3)
        a[0, 1] = 1e-14
        assert not is_diagonal(a)
        assert is_diagonal(a, tol=1e-12)
