"""The plan → compile → execute pipeline (ISSUE 3).

Covers the PR's acceptance contracts:

* **Compile-once** — one :class:`SolverSession` compile serves many
  schedule cells and many right-hand sides with exactly one coloring, one
  interval measurement and one factorization per cell (counter-asserted).
* **Batched simulator pass** — the full Table-2 schedule through
  :meth:`CyberMachine.solve_schedule` is *bitwise* identical to the
  cell-at-a-time path: iteration counts, modeled clocks, preconditioner
  seconds, operation ledgers and iterates.
* **Registry** — every stock scenario builds, validates as a proper
  coloring, and solves; the new anisotropic/variable-coefficient
  scenarios behave as advertised.
"""

import numpy as np
import pytest

from repro.driver import TABLE2_SCHEDULE, solve_mstep_ssor
from repro.kernels import REFERENCE, VECTORIZED
from repro.machines import VectorMachine
from repro.multicolor.coloring import validate_groups
from repro.pipeline import (
    SolverPlan,
    SolverSession,
    available_scenarios,
    build_scenario,
    cell_label,
    register_scenario,
    scenario,
)

EPS = 1e-6


# ---------------------------------------------------------------- registry
class TestProblemSpecRegistry:
    def test_stock_scenarios_present(self):
        names = {spec.name for spec in available_scenarios()}
        assert {
            "plate", "stretched-plate", "variable-plate", "lshape",
            "perforated", "poisson", "anisotropic",
        } <= names

    @pytest.mark.parametrize(
        "name,params",
        [
            ("plate", {"nrows": 8}),
            ("stretched-plate", {"nrows": 8}),
            ("variable-plate", {"nrows": 8}),
            ("lshape", {"a": 9}),
            ("perforated", {"a": 9}),
            ("poisson", {"n_grid": 8}),
            ("anisotropic", {"n_grid": 8}),
        ],
    )
    def test_every_scenario_builds_colors_and_solves(self, name, params):
        problem = build_scenario(name, **params)
        validate_groups(problem.k, problem.group_of_unknown)
        solve = solve_mstep_ssor(problem, 2, eps=1e-7)
        assert solve.result.converged
        resid = np.max(np.abs(problem.f - problem.k @ solve.u))
        assert resid < 1e-4

    def test_unknown_scenario_raises_with_listing(self):
        with pytest.raises(KeyError, match="plate"):
            scenario("no-such-scenario")

    def test_defaults_and_overrides(self):
        spec = scenario("poisson")
        assert spec.defaults["n_grid"] == 16
        assert spec.size_param == "n_grid"
        assert build_scenario("poisson", n_grid=4).n == 16

    def test_registration_roundtrip(self):
        register_scenario(
            "tiny-poisson",
            lambda n_grid=4: build_scenario("poisson", n_grid=n_grid),
            "test-only entry",
            size_param="n_grid",
        )
        try:
            assert build_scenario("tiny-poisson").n == 16
        finally:
            from repro.pipeline import problems

            del problems._REGISTRY["tiny-poisson"]


class TestNewScenarios:
    def test_anisotropic_spectrum_is_harder(self):
        iso = build_scenario("poisson", n_grid=12)
        aniso = build_scenario("anisotropic", n_grid=12, epsilon=0.02)
        iso_cg = solve_mstep_ssor(iso, 0, eps=1e-7).iterations
        aniso_cg = solve_mstep_ssor(aniso, 0, eps=1e-7).iterations
        # Anisotropy stretches the condition number: plain CG suffers…
        assert aniso_cg > iso_cg
        # …and the parametrized m-step schedule pulls it back hard.
        aniso_4p = solve_mstep_ssor(aniso, 4, parametrized=True, eps=1e-7)
        assert aniso_4p.iterations < aniso_cg / 2

    def test_anisotropic_matches_direct(self):
        problem = build_scenario("anisotropic", n_grid=10, epsilon=0.05)
        solve = solve_mstep_ssor(problem, 3, parametrized=True, eps=1e-9)
        direct = problem.direct_solution()
        assert np.max(np.abs(solve.u - direct)) < 1e-6 * np.max(np.abs(direct))

    @pytest.mark.parametrize("pattern", ["graded", "inclusion"])
    def test_variable_plate_matches_direct(self, pattern):
        problem = build_scenario("variable-plate", nrows=8, pattern=pattern)
        assert problem.element_scale is not None
        assert problem.element_scale.min() >= 1.0
        solve = solve_mstep_ssor(problem, 3, parametrized=True, eps=1e-9)
        direct = problem.direct_solution()
        assert np.max(np.abs(solve.u - direct)) < 1e-6 * np.max(np.abs(direct))

    def test_variable_plate_differs_from_homogeneous(self):
        uniform = build_scenario("plate", nrows=8)
        graded = build_scenario("variable-plate", nrows=8, contrast=16.0)
        assert not np.allclose(
            uniform.direct_solution(), graded.direct_solution()
        )

    def test_cyber_machine_sees_the_variable_coefficients(self):
        problem = build_scenario("variable-plate", nrows=8)
        session = SolverSession(problem, plan=SolverPlan.single(3))
        res = session.cyber().solve(3, np.ones(3), eps=1e-9)
        direct = problem.direct_solution()
        assert np.max(np.abs(res.u_natural - direct)) < 1e-6


# ------------------------------------------------------------------- plans
class TestSolverPlan:
    def test_factories(self):
        assert len(SolverPlan.table2().schedule) == 13
        assert len(SolverPlan.table3().schedule) == 10
        assert SolverPlan.single(4, True).schedule == ((4, True),)

    def test_labels_and_interval_need(self):
        plan = SolverPlan(schedule=[(0, False), (2, True)])
        assert plan.labels == ("0", "2P")
        assert plan.needs_interval
        assert not SolverPlan(schedule=[(0, False), (3, False)]).needs_interval
        assert cell_label(3, True) == "3P"

    def test_validation(self):
        with pytest.raises(ValueError):
            SolverPlan(schedule=[])
        with pytest.raises(ValueError):
            SolverPlan(schedule=[(-1, False)])
        with pytest.raises(ValueError):
            SolverPlan(schedule=[(1, False)], applicator="magic")

    def test_with_overrides(self):
        plan = SolverPlan.table2().with_(eps=1e-9, backend=REFERENCE)
        assert plan.eps == 1e-9 and plan.backend == REFERENCE
        assert len(plan.schedule) == 13


# ----------------------------------------------------------------- session
class TestSessionCompileOnce:
    """The ISSUE acceptance criterion: one compile, ≥2 cells, ≥2 RHS,
    no re-coloring and no re-factorizing."""

    @pytest.fixture(scope="class")
    def session(self):
        plan = SolverPlan(
            schedule=[(2, True), (4, True), (0, False)], eps=1e-7
        )
        return SolverSession.from_scenario("plate", plan=plan, nrows=8).compile()

    def test_compile_counts_are_minimal(self, session):
        counts = session.stats.compile_counts()
        assert counts["colorings"] == 1
        assert counts["intervals"] == 1
        assert counts["applicator_builds"] == 2  # one per m ≥ 1 cell
        assert counts["coefficient_builds"] == 2

    def test_many_cells_many_rhs_no_recompile(self, session):
        before = session.stats.compile_counts()
        rng = np.random.default_rng(3)
        rhs = [session.problem.f, rng.normal(size=session.problem.n)]
        runs = session.execute_many(rhs)
        assert session.stats.compile_counts() == before  # nothing rebuilt
        assert len(runs) == 2 and all(len(r) == 3 for r in runs)
        for f, solves in zip(rhs, runs):
            for solve in solves:
                assert solve.result.converged
                assert np.max(np.abs(f - session.problem.k @ solve.u)) < 1e-4

    def test_compile_is_idempotent(self, session):
        before = session.stats.compile_counts()
        session.compile()
        assert session.stats.compile_counts() == before

    def test_matches_direct_driver_path(self, session):
        direct = solve_mstep_ssor(
            build_scenario("plate", nrows=8), 4, parametrized=True, eps=1e-7
        )
        via = session.solve_cell(4, True)
        assert via.iterations == direct.iterations
        assert np.array_equal(via.u, direct.u)

    def test_driver_function_is_a_one_cell_session(self):
        # The rewired driver must keep its exact observable behavior.
        problem = build_scenario("plate", nrows=6)
        solve = solve_mstep_ssor(problem, 3, parametrized=True, eps=1e-6)
        assert solve.label == "3P"
        assert solve.interval is not None
        assert solve.coefficients.shape == (3,)
        assert solve.blocked is not None


class TestSessionMachines:
    def test_machines_are_cached(self):
        session = SolverSession.from_scenario(
            "plate", plan=SolverPlan.table3(), nrows=6
        )
        assert session.cyber() is session.cyber()
        assert session.fem(5) is session.fem(5)
        assert session.fem(1) is not session.fem(5)
        assert session.stats.machine_builds == 3

    def test_fem_solve_uses_cached_applicator(self):
        session = SolverSession.from_scenario(
            "plate", plan=SolverPlan.table3(), nrows=6
        )
        first = session.fem_solve(3, True, n_procs=5)
        builds = session.stats.applicator_builds
        second = session.fem_solve(3, True, n_procs=5)
        assert session.stats.applicator_builds == builds  # reused
        assert first.iterations == second.iterations
        assert first.seconds == second.seconds

    def test_fem_solve_matches_standalone_machine(self):
        from repro.driver import (
            build_blocked_system,
            mstep_coefficients,
            ssor_interval,
        )
        from repro.machines import FiniteElementMachine

        problem = build_scenario("plate", nrows=6)
        session = SolverSession(problem, plan=SolverPlan.table3())
        machine = FiniteElementMachine(problem, 5)
        interval = ssor_interval(build_blocked_system(problem))
        for m, par in [(0, False), (3, True), (4, False)]:
            coeffs = mstep_coefficients(m, par, interval) if m else None
            standalone = machine.solve(m, coeffs, eps=1e-6)
            via = session.fem_solve(m, par, n_procs=5)
            assert via.iterations == standalone.iterations
            assert via.seconds == standalone.seconds


# ------------------------------------------------- batched simulator sweeps
class TestBatchedCyberSchedule:
    """The tentpole contract: the full Table-2 schedule through ONE
    lockstep simulator pass, bitwise identical to the per-column path."""

    @pytest.fixture(scope="class")
    def session(self):
        return SolverSession.from_scenario(
            "plate", plan=SolverPlan.table2(eps=EPS), nrows=8
        )

    @pytest.fixture(scope="class")
    def results(self, session):
        per_column = session.run_cyber_schedule(batched=False)
        batched = session.run_cyber_schedule(batched=True)
        return per_column, batched

    def test_one_simulator_layout_serves_both(self, session, results):
        assert session.stats.machine_builds == 1

    def test_iteration_counts_bitwise(self, results):
        per_column, batched = results
        assert [r.iterations for r in batched] == [
            r.iterations for r in per_column
        ]
        assert [r.label for r in batched] == [r.label for r in per_column]
        assert all(r.converged for r in batched)

    def test_modeled_clocks_bitwise(self, results):
        per_column, batched = results
        for pc, b in zip(per_column, batched):
            assert b.seconds == pc.seconds
            assert b.preconditioner_seconds == pc.preconditioner_seconds
            assert b.outer_seconds == pc.outer_seconds

    def test_operation_ledgers_bitwise(self, results):
        per_column, batched = results
        for pc, b in zip(per_column, batched):
            assert b.op_breakdown == pc.op_breakdown

    def test_iterates_bitwise(self, results):
        per_column, batched = results
        for pc, b in zip(per_column, batched):
            assert np.array_equal(b.u_natural, pc.u_natural)

    def test_schedule_covers_every_table2_cell(self, results):
        _, batched = results
        assert len(batched) == len(TABLE2_SCHEDULE)

    def test_reference_backend_plan_falls_back_to_per_column(self):
        plan = SolverPlan.table2(eps=1e-4, backend=REFERENCE).with_(
            schedule=((0, False), (2, True))
        )
        session = SolverSession.from_scenario("plate", plan=plan, nrows=6)
        results = session.run_cyber_schedule()
        vec = SolverSession.from_scenario(
            "plate",
            plan=plan.with_(backend=VECTORIZED),
            nrows=6,
        ).run_cyber_schedule()
        assert [r.iterations for r in results] == [r.iterations for r in vec]
        for a, b in zip(results, vec):
            assert a.seconds == b.seconds  # charge stream is structural


class TestSolveScheduleDirect:
    """solve_schedule edge cases at the machine level."""

    @pytest.fixture(scope="class")
    def machine(self):
        return SolverSession.from_scenario(
            "plate", plan=SolverPlan.single(0), nrows=6
        ).cyber()

    def test_empty_schedule(self, machine):
        assert machine.solve_schedule([]) == []

    def test_single_cell_matches_solve(self, machine):
        single = machine.solve(3, np.ones(3), eps=EPS)
        [batched] = machine.solve_schedule([(3, np.ones(3))], eps=EPS)
        assert batched.iterations == single.iterations
        assert batched.seconds == single.seconds
        assert batched.op_breakdown == single.op_breakdown
        assert np.array_equal(batched.u_natural, single.u_natural)

    def test_duplicate_m_different_coefficients(self, machine):
        # Cells sharing m but not α's batch through the per-column-α sweep.
        coeffs_a = np.ones(2)
        coeffs_b = np.array([1.7, 0.4])
        pair = machine.solve_schedule([(2, coeffs_a), (2, coeffs_b)], eps=EPS)
        singles = [
            machine.solve(2, coeffs_a, eps=EPS),
            machine.solve(2, coeffs_b, eps=EPS),
        ]
        for b, s in zip(pair, singles):
            assert b.iterations == s.iterations
            assert b.seconds == s.seconds
            assert np.array_equal(b.u_natural, s.u_natural)

    def test_maxiter_cap_respected(self, machine):
        [res] = machine.solve_schedule([(0, None)], eps=1e-14, maxiter=3)
        assert res.iterations == 3
        assert not res.converged
        capped = machine.solve(0, None, eps=1e-14, maxiter=3)
        assert res.seconds == capped.seconds

    def test_labels_override(self, machine):
        results = machine.solve_schedule(
            [(1, None), (2, None)], eps=EPS, labels=["first", None]
        )
        assert results[0].label == "first"
        assert results[1].label == "2"

    def test_rejects_negative_m(self, machine):
        with pytest.raises(ValueError):
            machine.solve_schedule([(-1, None)])


# ------------------------------------------------------- multi-RHS numerics
class TestSessionBlockExecution:
    """ISSUE 4: block-PCG as a first-class numeric path in the session."""

    @pytest.fixture(scope="class")
    def session(self):
        plan = SolverPlan(
            schedule=[(0, False), (3, True)], eps=1e-7, block_rhs=3
        )
        return SolverSession.from_scenario("plate", plan=plan, nrows=8).compile()

    @pytest.fixture(scope="class")
    def F(self, session):
        rng = np.random.default_rng(17)
        return np.stack(
            [np.asarray(session.problem.f, float),
             rng.normal(size=session.problem.n),
             rng.normal(size=session.problem.n)],
            axis=1,
        )

    def test_block_rhs_plan_field(self):
        assert SolverPlan.single(2, block_rhs=4).block_rhs == 4
        with pytest.raises(ValueError):
            SolverPlan.single(2, block_rhs=0)

    def test_solve_cell_block_columns_bitwise(self, session, F):
        block = session.solve_cell_block(3, True, F=F)
        assert block.k == 3 and block.label == "3P"
        assert block.result.all_converged
        for j in range(3):
            solo = session.solve_cell(3, True, f=F[:, j])
            col = block.column(j)
            assert col.iterations == solo.iterations
            assert np.array_equal(col.u, solo.u)
            assert (
                col.result.counter.as_dict() == solo.result.counter.as_dict()
            )

    def test_one_compile_for_any_k(self, session, F):
        before = session.stats.compile_counts()
        solves_before = session.stats.solves
        blocks_before = session.stats.block_solves
        runs = session.execute_block(F)
        assert session.stats.compile_counts() == before  # nothing rebuilt
        assert session.stats.solves == solves_before + 2 * 3  # 2 cells × k
        assert session.stats.block_solves == blocks_before + 2
        assert len(runs) == 2
        for cell in runs:
            assert cell.result.all_converged

    def test_execute_many_routes_through_block_pcg(self, session, F):
        rhs = [F[:, j] for j in range(3)]
        blocks_before = session.stats.block_solves
        per_rhs = session.execute_many(rhs)
        # One block_pcg pass per cell, not one solve per cell × RHS.
        assert session.stats.block_solves == blocks_before + 2
        assert len(per_rhs) == 3 and all(len(r) == 2 for r in per_rhs)
        for f, solves in zip(rhs, per_rhs):
            for solve in solves:
                assert solve.result.converged
                resid = np.max(np.abs(f - session.problem.k @ solve.u))
                assert resid < 1e-4

    def test_execute_many_matches_per_rhs_execution(self):
        # The rewired path must reproduce the old solve-at-a-time records.
        plan = SolverPlan(schedule=[(2, True)], eps=1e-7)
        rng = np.random.default_rng(23)
        a = SolverSession.from_scenario("plate", plan=plan, nrows=6)
        b = SolverSession.from_scenario("plate", plan=plan, nrows=6)
        rhs = [a.problem.f, rng.normal(size=a.problem.n)]
        via_block = a.execute_many(rhs)
        via_cells = [b.execute(f=f) for f in rhs]
        for row_a, row_b in zip(via_block, via_cells):
            for sa, sb in zip(row_a, row_b):
                assert sa.iterations == sb.iterations
                assert np.array_equal(sa.u, sb.u)

    def test_fortran_ordered_block_accepted(self, session, F):
        c_order = session.solve_cell_block(3, True, F=F)
        f_order = session.solve_cell_block(3, True, F=np.asfortranarray(F))
        assert np.array_equal(c_order.u, f_order.u)
        assert np.array_equal(c_order.iterations, f_order.iterations)

    def test_default_block_is_the_problem_load(self, session):
        block = session.solve_cell_block(3, True)
        assert block.k == 1
        solo = session.solve_cell(3, True)
        assert int(block.iterations[0]) == solo.iterations
        assert np.array_equal(block.column(0).u, solo.u)


class TestPerColumnCoefficientKernels:
    """The (m, k) coefficient extension of the batched sweep kernels."""

    @pytest.fixture(scope="class")
    def machine(self):
        return SolverSession.from_scenario(
            "plate", plan=SolverPlan.single(0), nrows=6
        ).cyber()

    def test_precondition_block_per_column_coefficients(self, machine):
        rng = np.random.default_rng(11)
        r = rng.normal(size=(machine.n_padded, 3))
        r[~machine.free_mask] = 0.0
        coeffs = np.column_stack([np.ones(2), [0.5, 2.0], [1.3, 0.1]])
        block = machine.precondition_block(coeffs, r)
        for col in range(3):
            vm = VectorMachine(machine.timing)
            single = machine._precondition(
                vm, coeffs[:, col], r[:, col].copy(), VECTORIZED
            )
            assert np.max(np.abs(block[:, col] - single)) == 0.0

    def test_precondition_block_reference_per_column(self, machine):
        rng = np.random.default_rng(12)
        r = rng.normal(size=(machine.n_padded, 2))
        r[~machine.free_mask] = 0.0
        coeffs = np.column_stack([np.ones(2), [0.5, 2.0]])
        fast = machine.precondition_block(coeffs, r, backend=VECTORIZED)
        pin = machine.precondition_block(coeffs, r, backend=REFERENCE)
        assert np.max(np.abs(fast - pin)) <= 1e-12 * max(np.max(np.abs(pin)), 1)

    def test_mismatched_column_counts_rejected(self, machine):
        with pytest.raises(ValueError):
            machine.precondition_block(
                np.ones((2, 3)), np.zeros((machine.n_padded, 2))
            )

    def test_matvec_block_matches_columns(self, machine):
        rng = np.random.default_rng(13)
        x = rng.normal(size=(machine.n_padded, 4))
        block = machine._matvec_block(x)
        for col in range(4):
            vm = VectorMachine(machine.timing)
            single = machine._matvec(vm, np.ascontiguousarray(x[:, col]))
            assert np.array_equal(block[:, col], single)
