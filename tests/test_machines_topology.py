"""Tests for processor topology and node assignment (Figures 3, 4, 5)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fem import PlateMesh
from repro.machines import Assignment, ProcessorGrid


@pytest.fixture(scope="module")
def mesh66():
    return PlateMesh(6, 6)


class TestProcessorGrid:
    def test_ids_roundtrip(self):
        grid = ProcessorGrid(3, 4)
        for p in range(12):
            pc, pr = grid.proc_rc(p)
            assert grid.proc_id(pc, pr) == p

    def test_for_count_matches_figure5(self, mesh66):
        # 2 processors → 2×1 (rows split 3+3); 5 → 1×5 (one column each).
        g2 = ProcessorGrid.for_count(2, mesh66)
        assert (g2.prows, g2.pcols) == (2, 1)
        g5 = ProcessorGrid.for_count(5, mesh66)
        assert (g5.prows, g5.pcols) == (1, 5)

    def test_for_count_rejects_oversubscription(self):
        mesh = PlateMesh(3, 3)
        with pytest.raises(ValueError):
            ProcessorGrid.for_count(50, mesh)

    def test_validation(self):
        with pytest.raises(ValueError):
            ProcessorGrid(0, 1)


class TestAssignment:
    @pytest.mark.parametrize("n_procs", [1, 2, 5])
    def test_every_unconstrained_node_assigned_once(self, mesh66, n_procs):
        assignment = Assignment.rectangles(
            mesh66, ProcessorGrid.for_count(n_procs, mesh66)
        )
        assert np.all(assignment.proc_of_node[mesh66.constrained_nodes] == -1)
        unassigned = assignment.proc_of_node[mesh66.unconstrained_nodes]
        assert np.all(unassigned >= 0)
        total = sum(len(nodes) for nodes in assignment.nodes_of_proc)
        assert total == mesh66.unconstrained_nodes.size

    @pytest.mark.parametrize("n_procs", [2, 5])
    def test_figure5_color_balance(self, mesh66, n_procs):
        # "each processor has an equal number of R, B, and G nodes as well
        #  as an equal number of border nodes to be communicated"
        assignment = Assignment.rectangles(
            mesh66, ProcessorGrid.for_count(n_procs, mesh66)
        )
        report = assignment.balance_report()
        assert report["max_nodes"] == report["min_nodes"]
        assert report["max_color_spread"] == 0

    def test_unknown_ownership_partition(self, mesh66):
        assignment = Assignment.rectangles(mesh66, ProcessorGrid(2, 1))
        owner = assignment.proc_of_unknown
        assert owner.shape == (60,)
        assert np.all(owner >= 0)
        for p in range(2):
            assert np.all(owner[assignment.unknowns_of_proc[p]] == p)

    def test_border_sets_symmetric_pairs(self, mesh66):
        assignment = Assignment.rectangles(mesh66, ProcessorGrid(2, 1))
        pairs = assignment.border_pairs
        assert (0, 1) in pairs and (1, 0) in pairs
        # 3+3 row split: each side's border is one full row of 5 nodes.
        assert pairs[(0, 1)].size == 5
        assert pairs[(1, 0)].size == 5

    def test_border_words_by_color(self, mesh66):
        assignment = Assignment.rectangles(mesh66, ProcessorGrid(2, 1))
        all_words = assignment.border_words(0, 1)
        assert all_words == 10  # 5 nodes × (u, v)
        per_color = sum(
            assignment.border_words(0, 1, colors=[c]) for c in range(3)
        )
        assert per_color == all_words

    def test_neighbors_of_proc(self, mesh66):
        assignment = Assignment.rectangles(mesh66, ProcessorGrid(1, 5))
        assert assignment.neighbors_of_proc(0) == [1]
        assert assignment.neighbors_of_proc(2) == [1, 3]

    def test_ascii_map_shape(self, mesh66):
        assignment = Assignment.rectangles(mesh66, ProcessorGrid(1, 5))
        lines = assignment.ascii_map().splitlines()
        assert len(lines) == 6
        assert "." in lines[0]  # constrained column rendered


class TestFigure4Links:
    def test_interior_processor_uses_six_links(self):
        # A 3×3 processor grid over a large plate: the '/'-stencil crosses
        # N, S, E, W, NW, SE boundaries but never NE or SW (Figure 4).
        mesh = PlateMesh(13, 14)  # 13 unconstrained columns
        assignment = Assignment.rectangles(mesh, ProcessorGrid(3, 3))
        used = assignment.links_used
        assert used == {"N", "S", "E", "W", "NW", "SE"}
        assert "NE" not in used and "SW" not in used

    def test_column_strip_uses_two_links(self):
        mesh = PlateMesh(6, 6)
        assignment = Assignment.rectangles(mesh, ProcessorGrid(1, 5))
        assert assignment.links_used == {"E", "W"}

    @given(st.integers(2, 4), st.integers(2, 4))
    @settings(max_examples=10, deadline=None)
    def test_property_links_subset_of_six(self, prows, pcols):
        mesh = PlateMesh(4 * prows + 1, 4 * pcols + 2)
        assignment = Assignment.rectangles(mesh, ProcessorGrid(prows, pcols))
        assert assignment.links_used <= {"N", "S", "E", "W", "NW", "SE"}


class TestFigure3Assignments:
    @pytest.mark.parametrize(
        "nrows, ncols, grid, nodes_per_proc",
        [
            (6, 10, (1, 3), 18),  # Figure 3a: 18 nodes/processor
            (6, 7, (2, 1), 18),
            (6, 10, (2, 3), 9),   # Figure 3c: 9 nodes/processor
        ],
    )
    def test_uniform_rectangles(self, nrows, ncols, grid, nodes_per_proc):
        mesh = PlateMesh(nrows, ncols)
        assignment = Assignment.rectangles(mesh, ProcessorGrid(*grid))
        sizes = {len(nodes) for nodes in assignment.nodes_of_proc}
        assert sizes == {nodes_per_proc}

    def test_near_balance_when_indivisible(self):
        mesh = PlateMesh(7, 7)
        assignment = Assignment.rectangles(mesh, ProcessorGrid(2, 2))
        report = assignment.balance_report()
        assert report["max_nodes"] - report["min_nodes"] <= 4
