"""The WorkloadSpec multi-load registry (ISSUE 5)."""

import numpy as np
import pytest

from repro.pipeline import (
    SolverPlan,
    SolverSession,
    available_workloads,
    build_scenario,
    build_workload,
    register_workload,
    workload,
)
from repro.pipeline.problems import PRESSURE_FACTORS


@pytest.fixture(scope="module")
def plate():
    return build_scenario("plate", nrows=8)


class TestWorkloadRegistry:
    def test_stock_workloads_present(self):
        names = {spec.name for spec in available_workloads()}
        assert {
            "plate-service", "pressure-family", "thermal-family",
            "point-family",
        } <= names

    def test_every_stock_workload_builds_its_block(self, plate):
        for spec in available_workloads():
            F = build_workload(spec.name, plate)
            assert F.shape == (plate.f.shape[0], spec.width)
            assert spec.width == len(spec.case_labels)
            assert np.all(np.isfinite(F))
            assert all(
                np.linalg.norm(F[:, j]) > 0 for j in range(spec.width)
            )

    def test_unknown_workload_raises_with_listing(self):
        with pytest.raises(KeyError, match="plate-service"):
            workload("no-such-workload")

    def test_pressure_family_is_the_documented_sweep(self, plate):
        F = build_workload("pressure-family", plate)
        f = np.asarray(plate.f, dtype=float)
        for j, factor in enumerate(PRESSURE_FACTORS):
            assert np.array_equal(F[:, j], factor * f)

    def test_plate_service_shear_is_not_a_pressure_rescale(self, plate):
        F = build_workload("plate-service", plate)
        pressure, shear = F[:, 0], F[:, 1]
        # A genuinely different load direction: nowhere near collinear.
        cosine = abs(
            float(pressure @ shear)
            / (np.linalg.norm(pressure) * np.linalg.norm(shear))
        )
        assert cosine < 0.5

    def test_solver_plan_compiles_width_to_block_rhs(self):
        spec = workload("plate-service")
        plan = spec.solver_plan()
        assert plan.block_rhs == spec.width
        custom = spec.solver_plan(SolverPlan.table2(), eps=1e-8)
        assert custom.block_rhs == spec.width
        assert custom.eps == 1e-8
        assert custom.schedule == SolverPlan.table2().schedule

    def test_registration_roundtrip(self, plate):
        def two_loads(problem):
            f = np.asarray(problem.f, dtype=float)
            return np.stack([f, -f], axis=1)

        register_workload(
            "test-two-loads", "plate", two_loads, "test-only entry",
            ("plus", "minus"),
        )
        try:
            F = build_workload("test-two-loads", plate)
            assert F.shape[1] == 2
            assert np.array_equal(F[:, 1], -F[:, 0])
        finally:
            from repro.pipeline import problems

            del problems._WORKLOADS["test-two-loads"]

    def test_wrong_shape_builder_is_rejected(self, plate):
        register_workload(
            "test-bad-shape", "plate",
            lambda problem: np.zeros((3, 1)), "broken entry", ("only",),
        )
        try:
            with pytest.raises(ValueError, match="test-bad-shape"):
                build_workload("test-bad-shape", plate)
        finally:
            from repro.pipeline import problems

            del problems._WORKLOADS["test-bad-shape"]

    def test_plate_service_needs_a_plate(self):
        poisson = build_scenario("poisson", n_grid=6)
        with pytest.raises(ValueError, match="plate scenario"):
            build_workload("plate-service", poisson)


class TestWorkloadSolves:
    def test_every_family_converges_through_the_block_path(self, plate):
        session = SolverSession(
            plate, plan=SolverPlan.single(3, True, eps=1e-7)
        )
        for spec in available_workloads():
            F = spec.build_block(plate)
            block = session.solve_cell_block(3, True, F=F)
            assert block.result.all_converged
            resid = float(np.max(np.abs(F - plate.k @ block.u)))
            assert resid < 1e-4
