"""The repro.parallel executor layer (ISSUE 5).

Covers the PR's acceptance contracts:

* **Bitwise sharding** — :func:`repro.parallel.sharded_block_pcg` over
  every tested worker/group partition (W ∈ {1, 2, 4}, g ∈ {1, 2, even
  split}) reproduces the single-process :func:`repro.core.pcg.block_pcg`
  *bitwise*: iterates, iteration counts, convergence flags, histories and
  per-column operation counters.
* **Block edge cases** — k = 0 empty blocks, single-column shard groups
  (g = 1 ≡ per-column ``pcg``), Fortran-ordered right-hand-side blocks,
  and more workers than columns.
* **Sharded machine schedules** — :func:`repro.parallel.sharded_schedule`
  reproduces the CYBER/FEM/SPMD ``solve_schedule`` records (clocks, op
  breakdowns, communication and message ledgers, iterates) for any cell
  partition.
* **Worker-dispatch picklability** — :class:`SolverPlan`,
  :class:`ProblemSpec`, :class:`WorkloadSpec` and the scenario problems
  round-trip through pickle (the regression the sharded paths depend on).
"""

import pickle

import numpy as np
import pytest

from repro.core.pcg import block_pcg, pcg
from repro.driver import build_blocked_system, build_mstep_applicator
from repro.parallel import (
    ApplicatorRecipe,
    column_groups,
    effective_workers,
    sharded_block_pcg,
    sharded_schedule,
)
from repro.pipeline import (
    SolverPlan,
    SolverSession,
    available_scenarios,
    available_workloads,
    build_scenario,
    build_workload,
    scenario,
    synthetic_load_block,
    workload,
)

EPS = 1e-7
M = 3
WORKER_COUNTS = (1, 2, 4)


@pytest.fixture(scope="module")
def plate():
    return build_scenario("plate", nrows=8)


@pytest.fixture(scope="module")
def plate_state(plate):
    blocked = build_blocked_system(plate)
    coeffs = np.ones(M)
    applicator = build_mstep_applicator(blocked, coeffs)
    recipe = ApplicatorRecipe(
        kind="sweep",
        coefficients=coeffs,
        groups=np.sort(blocked.ordering.groups),
        labels=tuple(blocked.ordering.labels),
    )
    F = np.ascontiguousarray(
        blocked.ordering.permute_vector(synthetic_load_block(plate, 6))
    )
    return blocked, applicator, recipe, F


def assert_block_results_bitwise(a, b):
    assert np.array_equal(a.u, b.u)
    assert np.array_equal(a.iterations, b.iterations)
    assert np.array_equal(a.converged, b.converged)
    assert a.delta_histories == b.delta_histories
    assert a.residual_histories == b.residual_histories
    assert [c.as_dict() for c in a.counters] == [c.as_dict() for c in b.counters]
    assert a.stop_rule == b.stop_rule


# ------------------------------------------------------------ column groups
class TestColumnGroups:
    def test_even_split(self):
        groups = column_groups(8, 4)
        assert [g.tolist() for g in groups] == [[0, 1], [2, 3], [4, 5], [6, 7]]

    def test_uneven_split_covers_every_column(self):
        groups = column_groups(7, 3)
        flat = np.concatenate(groups)
        assert flat.tolist() == list(range(7))

    def test_group_override(self):
        groups = column_groups(6, 2, group=1)
        assert len(groups) == 6
        assert all(g.size == 1 for g in groups)

    def test_more_workers_than_columns(self):
        groups = column_groups(3, 8)
        assert len(groups) == 3
        assert effective_workers(8, len(groups)) == 3

    def test_empty_block(self):
        assert column_groups(0, 4) == []


# ------------------------------------------------------- sharded block PCG
class TestShardedBlockPCG:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_bitwise_identical_for_every_worker_count(self, plate_state, workers):
        blocked, applicator, recipe, F = plate_state
        serial = block_pcg(blocked.permuted, F, preconditioner=applicator, eps=EPS)
        sharded = sharded_block_pcg(
            blocked.permuted, F, recipe=recipe, workers=workers, eps=EPS
        )
        assert_block_results_bitwise(sharded, serial)

    def test_single_column_groups_equal_per_column_pcg(self, plate_state):
        # g = 1: every shard is one column — must match solo pcg bitwise.
        blocked, applicator, recipe, F = plate_state
        sharded = sharded_block_pcg(
            blocked.permuted, F, recipe=recipe, workers=2, group=1, eps=EPS
        )
        for j in range(F.shape[1]):
            solo = pcg(
                blocked.permuted, F[:, j], preconditioner=applicator, eps=EPS
            )
            col = sharded.column(j)
            assert np.array_equal(col.u, solo.u)
            assert col.iterations == solo.iterations
            assert col.delta_history == solo.delta_history
            assert col.counter.as_dict() == solo.counter.as_dict()

    def test_fortran_ordered_block(self, plate_state):
        blocked, applicator, recipe, F = plate_state
        serial = block_pcg(blocked.permuted, F, preconditioner=applicator, eps=EPS)
        fortran = np.asfortranarray(F)
        sharded = sharded_block_pcg(
            blocked.permuted, fortran, recipe=recipe, workers=2, eps=EPS
        )
        assert_block_results_bitwise(sharded, serial)

    def test_more_workers_than_columns(self, plate_state):
        blocked, applicator, recipe, F = plate_state
        narrow = F[:, :3]
        serial = block_pcg(
            blocked.permuted, narrow, preconditioner=applicator, eps=EPS
        )
        sharded = sharded_block_pcg(
            blocked.permuted, narrow, recipe=recipe, workers=8, eps=EPS
        )
        assert_block_results_bitwise(sharded, serial)

    def test_empty_block_is_a_no_op(self, plate_state):
        blocked, _, recipe, _ = plate_state
        n = blocked.n
        result = sharded_block_pcg(
            blocked.permuted, np.zeros((n, 0)), recipe=recipe, workers=4, eps=EPS
        )
        assert result.u.shape == (n, 0)
        assert result.k == 0
        assert result.all_converged  # vacuously
        assert result.counters == []

    def test_splitting_recipe_bitwise(self, plate):
        blocked = build_blocked_system(plate)
        coeffs = np.ones(M)
        from repro.core.mstep import MStepPreconditioner
        from repro.core.splittings import SSORSplitting

        applicator = MStepPreconditioner(
            SSORSplitting(blocked.permuted), coeffs
        )
        F = np.ascontiguousarray(
            blocked.ordering.permute_vector(synthetic_load_block(plate, 4))
        )
        serial = block_pcg(blocked.permuted, F, preconditioner=applicator, eps=EPS)
        sharded = sharded_block_pcg(
            blocked.permuted, F,
            recipe=ApplicatorRecipe(kind="splitting", coefficients=coeffs),
            workers=2, eps=EPS,
        )
        assert_block_results_bitwise(sharded, serial)

    def test_plain_cg_and_track_residual(self, plate_state):
        blocked, _, _, F = plate_state
        serial = block_pcg(blocked.permuted, F, eps=EPS, track_residual=True)
        sharded = sharded_block_pcg(
            blocked.permuted, F, workers=2, eps=EPS, track_residual=True
        )
        assert_block_results_bitwise(sharded, serial)
        assert all(len(h) > 0 for h in sharded.residual_histories)

    def test_nonzero_start_block(self, plate_state):
        blocked, applicator, recipe, F = plate_state
        rng = np.random.default_rng(7)
        u0 = rng.normal(size=F.shape)
        serial = block_pcg(
            blocked.permuted, F, preconditioner=applicator, u0=u0, eps=EPS
        )
        sharded = sharded_block_pcg(
            blocked.permuted, F, recipe=recipe, workers=2, u0=u0, eps=EPS
        )
        assert_block_results_bitwise(sharded, serial)

    def test_live_preconditioner_rejected_across_processes(self, plate_state):
        blocked, applicator, _, F = plate_state
        with pytest.raises(ValueError, match="recipe"):
            sharded_block_pcg(
                blocked.permuted, F, preconditioner=applicator, workers=2,
                eps=EPS,
            )

    def test_preconditioner_and_recipe_together_rejected(self, plate_state):
        blocked, applicator, recipe, F = plate_state
        with pytest.raises(ValueError, match="not both"):
            sharded_block_pcg(
                blocked.permuted, F, preconditioner=applicator, recipe=recipe,
                workers=1, eps=EPS,
            )

    def test_inline_recipe_build(self, plate_state):
        # workers=1 with a recipe compiles the applicator locally.
        blocked, applicator, recipe, F = plate_state
        serial = block_pcg(blocked.permuted, F, preconditioner=applicator, eps=EPS)
        inline = sharded_block_pcg(
            blocked.permuted, F, recipe=recipe, workers=1, eps=EPS
        )
        assert_block_results_bitwise(inline, serial)


# ------------------------------------------------------- session threading
class TestSessionSharding:
    def test_solve_cell_block_sharded_bitwise(self, plate):
        session = SolverSession(
            plate, plan=SolverPlan.single(M, True, eps=EPS, block_rhs=6)
        )
        F = synthetic_load_block(plate, 6)
        serial = session.solve_cell_block(M, True, F=F)
        assert session.stats.shard_dispatches == 0
        sharded = session.solve_cell_block(M, True, F=F, sharding=(2, 2))
        assert_block_results_bitwise(sharded.result, serial.result)
        assert np.array_equal(sharded.u, serial.u)
        assert session.stats.shard_dispatches == 3  # 6 columns / group of 2
        # One compile served both paths.
        assert session.stats.compile_counts()["colorings"] == 1
        assert session.stats.compile_counts()["applicator_builds"] == 1

    def test_execute_block_sharded_over_plan(self, plate):
        plan = SolverPlan(schedule=((0, False), (2, True)), eps=EPS, block_rhs=4)
        session = SolverSession(plate, plan=plan)
        F = synthetic_load_block(plate, 4)
        serial = session.execute_block(F=F)
        sharded = session.execute_block(F=F, sharding=2)
        for a, b in zip(sharded, serial):
            assert_block_results_bitwise(a.result, b.result)

    def test_splitting_plan_sharded(self, plate):
        plan = SolverPlan.single(
            M, eps=EPS, applicator="splitting", block_rhs=4
        )
        session = SolverSession(plate, plan=plan)
        F = synthetic_load_block(plate, 4)
        serial = session.solve_cell_block(M, F=F)
        sharded = session.solve_cell_block(M, F=F, sharding=2)
        assert_block_results_bitwise(sharded.result, serial.result)

    def test_relaxed_omega_plan_sharded_bitwise(self, plate):
        # Regression: plan.omega must reach the serial splitting applicator
        # exactly as it reaches the workers' rebuild recipe — at ω ≠ 1 the
        # two paths used to diverge.
        plan = SolverPlan.single(
            2, eps=EPS, omega=1.4, applicator="splitting", block_rhs=4
        )
        session = SolverSession(plate, plan=plan)
        F = synthetic_load_block(plate, 4)
        serial = session.solve_cell_block(2, F=F)
        sharded = session.solve_cell_block(2, F=F, sharding=2)
        assert_block_results_bitwise(sharded.result, serial.result)
        # And the splitting the session built really is the relaxed one.
        applicator = session.applicator(2, False)
        assert applicator.splitting.omega == 1.4

    def test_degenerate_sharding_takes_the_serial_path(self, plate):
        # workers > 1 but one group (group ≥ k): no dispatch, no recipe.
        session = SolverSession(
            plate, plan=SolverPlan.single(M, eps=EPS, block_rhs=4)
        )
        F = synthetic_load_block(plate, 4)
        block = session.solve_cell_block(M, F=F, sharding=(4, 4))
        assert session.stats.shard_dispatches == 0
        assert block.result.all_converged

    def test_two_color_scenario_sharded(self):
        problem = build_scenario("poisson", n_grid=8)
        session = SolverSession(
            problem, plan=SolverPlan.single(2, eps=EPS, block_rhs=4)
        )
        F = synthetic_load_block(problem, 4)
        serial = session.solve_cell_block(2, F=F)
        sharded = session.solve_cell_block(2, F=F, sharding=4)
        assert_block_results_bitwise(sharded.result, serial.result)

    def test_workload_block_through_sharded_session(self, plate):
        spec = workload("plate-service")
        plan = spec.solver_plan(SolverPlan.single(M, True, eps=EPS))
        assert plan.block_rhs == spec.width
        session = SolverSession(plate, plan=plan)
        F = build_workload("plate-service", plate)
        serial = session.solve_cell_block(M, True, F=F)
        sharded = session.solve_cell_block(M, True, F=F, sharding=2)
        assert_block_results_bitwise(sharded.result, serial.result)


# ------------------------------------------------------- sharded schedules
class TestShardedSchedule:
    @pytest.fixture(scope="class")
    def schedule_session(self):
        problem = build_scenario("plate", nrows=8)
        session = SolverSession(problem, plan=SolverPlan.table3(eps=1e-6))
        return session, session.schedule_cells()

    @pytest.mark.parametrize("workers", (2, 4))
    def test_cyber_cells_bitwise(self, schedule_session, workers):
        session, cells = schedule_session
        direct = session.cyber().solve_schedule(cells, eps=1e-6)
        sharded = sharded_schedule(
            session.problem, cells, machine="cyber", workers=workers, eps=1e-6
        )
        for a, b in zip(sharded, direct):
            assert a.label == b.label
            assert a.iterations == b.iterations
            assert a.seconds == b.seconds
            assert a.preconditioner_seconds == b.preconditioner_seconds
            assert a.op_breakdown == b.op_breakdown
            assert np.array_equal(a.u_natural, b.u_natural)

    def test_fem_cells_bitwise_with_comm_ledger(self, schedule_session):
        session, cells = schedule_session
        direct = session.fem(2).solve_schedule(cells, eps=1e-6)
        sharded = sharded_schedule(
            session.problem, cells, machine="fem", workers=3, eps=1e-6,
            n_procs=2,
        )
        for a, b in zip(sharded, direct):
            assert a.iterations == b.iterations
            assert a.seconds == b.seconds
            assert a.comm_seconds == b.comm_seconds
            assert a.total_records == b.total_records
            assert a.total_words == b.total_words
            assert np.array_equal(a.u_natural, b.u_natural)

    def test_spmd_cells_bitwise_with_message_ledger(self, schedule_session):
        from repro.machines import Assignment, ProcessorGrid, SPMDSolver

        session, cells = schedule_session
        problem = session.problem
        grid = ProcessorGrid.for_count(2, problem.mesh)
        solver = SPMDSolver(problem, Assignment.rectangles(problem.mesh, grid))
        direct = solver.solve_schedule(cells, eps=1e-6)
        sharded = sharded_schedule(
            problem, cells, machine="spmd", workers=2, eps=1e-6, n_procs=2
        )
        for a, b in zip(sharded, direct):
            assert a.iterations == b.iterations
            assert a.converged == b.converged
            assert a.ledger.words_by_kind == b.ledger.words_by_kind
            assert a.ledger.words_by_pair == b.ledger.words_by_pair
            assert a.ledger.messages == b.ledger.messages
            assert np.array_equal(a.u_natural, b.u_natural)

    def test_session_run_cyber_schedule_workers(self, schedule_session):
        session, _ = schedule_session
        direct = session.run_cyber_schedule()
        sharded = session.run_cyber_schedule(workers=2)
        assert [r.seconds for r in sharded] == [r.seconds for r in direct]
        assert [r.iterations for r in sharded] == [r.iterations for r in direct]

    def test_session_run_fem_schedule_workers(self, schedule_session):
        session, _ = schedule_session
        direct = session.run_fem_schedule(n_procs=2)
        sharded = session.run_fem_schedule(n_procs=2, workers=2)
        assert [r.seconds for r in sharded] == [r.seconds for r in direct]
        assert [r.iterations for r in sharded] == [r.iterations for r in direct]

    def test_unknown_machine_kind_rejected(self, schedule_session):
        session, cells = schedule_session
        with pytest.raises(ValueError, match="machine"):
            sharded_schedule(session.problem, cells, machine="abacus")

    def test_empty_schedule(self, plate):
        assert sharded_schedule(plate, [], machine="cyber", workers=2) == []


# ------------------------------------------------ worker-dispatch pickling
class TestPicklability:
    def test_solver_plan_round_trips(self):
        plan = SolverPlan.table2(
            eps=1e-7, omega=1.2, applicator="splitting",
            backend="vectorized", block_rhs=8,
        )
        clone = pickle.loads(pickle.dumps(plan))
        assert clone == plan
        assert clone.schedule == plan.schedule
        assert clone.labels == plan.labels

    def test_every_registered_scenario_spec_round_trips(self):
        # Includes specs whose builders are lambdas/closures: the recipe
        # rebuild (__getstate__/__setstate__) must cover them all.
        for spec in available_scenarios():
            clone = pickle.loads(pickle.dumps(spec))
            assert clone.name == spec.name
            assert clone.builder is scenario(spec.name).builder
            assert clone.defaults == spec.defaults

    def test_every_registered_workload_spec_round_trips(self):
        for spec in available_workloads():
            clone = pickle.loads(pickle.dumps(spec))
            assert clone.name == spec.name
            assert clone.case_labels == spec.case_labels
            assert clone.builder is workload(spec.name).builder

    @pytest.mark.parametrize(
        "name,params",
        [
            ("plate", {"nrows": 6}),
            ("stretched-plate", {"nrows": 6}),
            ("poisson", {"n_grid": 6}),
        ],
    )
    def test_scenario_problems_round_trip(self, name, params):
        problem = build_scenario(name, **params)
        clone = pickle.loads(pickle.dumps(problem))
        assert np.array_equal(clone.f, problem.f)
        assert (clone.k != problem.k).nnz == 0
        assert np.array_equal(clone.group_of_unknown, problem.group_of_unknown)

    def test_recipe_round_trips_and_rebuilds(self, plate_state):
        blocked, applicator, recipe, F = plate_state
        clone = pickle.loads(pickle.dumps(recipe))
        rebuilt = clone.build(blocked.permuted)
        r = F[:, 0]
        assert np.array_equal(
            np.asarray(rebuilt.apply(r)), np.asarray(applicator.apply(r))
        )
