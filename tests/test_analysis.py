"""Tests for the Section-4 performance model, condition studies, reporting."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    PerformanceModel,
    Table,
    condition_study,
    fit_iteration_model,
    format_table,
    inequality_42,
    optimal_m,
)
from repro.core import SSORSplitting, least_squares_coefficients
from repro.fem import plate_problem


class TestPerformanceModel:
    def test_predicted_time_formula(self):
        model = PerformanceModel(a=2.0, b=0.5)
        assert model.predicted_time(0, 100) == 200.0
        assert model.predicted_time(4, 25) == (2.0 + 4 * 0.5) * 25

    def test_b_over_a(self):
        assert PerformanceModel(a=4.0, b=1.0).b_over_a == 0.25

    def test_validation(self):
        with pytest.raises(ValueError):
            PerformanceModel(a=0.0, b=1.0)
        with pytest.raises(ValueError):
            PerformanceModel(a=1.0, b=-0.1)
        with pytest.raises(ValueError):
            PerformanceModel(a=1.0, b=1.0).predicted_time(-1, 10)


class TestBlockWidthModel:
    """The block-width cost extension (PR 3): PerformanceModel priced from
    the machine's batched preconditioner agrees with the machine itself."""

    @pytest.fixture(scope="class")
    def machines(self):
        from repro.machines import FiniteElementMachine

        problem = plate_problem(6)
        return {p: FiniteElementMachine(problem, p) for p in (1, 2, 5)}

    @pytest.mark.parametrize("n_procs", [1, 2, 5])
    @pytest.mark.parametrize("width", [1, 4, 13])
    def test_predicted_block_time_matches_machine(self, machines, n_procs, width):
        # width 13 = the Table-2 schedule column count — the batched
        # multi-RHS sweep the session runs.
        machine = machines[n_procs]
        model = PerformanceModel.from_fem_machine(machine, m=3)
        for m in (1, 2, 5):
            assert model.preconditioner_block_time(m, width) == pytest.approx(
                machine.preconditioner_block_seconds(m, width), rel=1e-12
            )

    def test_width_one_is_the_paper_model(self, machines):
        machine = machines[5]
        a, b = machine.iteration_costs(3)
        model = PerformanceModel.from_fem_machine(machine, m=3)
        assert model.a == a and model.b == b
        assert model.step_cost(1) == b
        assert model.predicted_time(3, 20) == (a + 3 * b) * 20
        assert model.b_over_a_at(1) == model.b_over_a

    def test_per_rhs_cost_falls_with_width(self, machines):
        model = PerformanceModel.from_fem_machine(machines[5], m=2)
        assert model.amortizes
        per_rhs = [model.step_cost(w) / w for w in (1, 4, 13)]
        assert per_rhs[0] > per_rhs[1] > per_rhs[2] > model.b_marginal

    def test_batched_decision_widens_the_threshold(self, machines):
        model = PerformanceModel.from_fem_machine(machines[5], m=3)
        narrow = inequality_42(3, 20, 17, model)
        wide = inequality_42(3, 20, 17, model, width=13)
        assert wide.b_over_a < narrow.b_over_a
        assert wide.threshold == narrow.threshold  # iteration side unchanged
        assert wide.width == 13 and narrow.width == 1

    def test_unamortized_model_scales_linearly(self):
        model = PerformanceModel(a=2.0, b=0.5)  # no b_marginal given
        assert model.step_cost(4) == 4 * 0.5
        assert model.b_over_a_at(8) == model.b_over_a
        assert model.predicted_time(2, 10, width=3) == (2.0 * 3 + 2 * 1.5) * 10

    def test_validation(self):
        with pytest.raises(ValueError):
            PerformanceModel(a=1.0, b=0.5, b_marginal=0.6)  # marginal > b
        with pytest.raises(ValueError):
            PerformanceModel(a=1.0, b=0.5, b_marginal=-0.1)
        with pytest.raises(ValueError):
            PerformanceModel(a=1.0, b=0.5).step_cost(0)
        with pytest.raises(ValueError):
            PerformanceModel(a=1.0, b=0.5).preconditioner_block_time(0, 4)


class TestInequality42:
    def test_condition_1_fewer_inner_loops(self):
        # 9·33 = 297 → m+1 with 10·29 = 290 < 297: condition (1) holds.
        model = PerformanceModel(a=1.0, b=1.0)
        decision = inequality_42(9, 33, 29, model)
        assert decision.condition_1
        assert decision.beneficial
        assert decision.threshold == float("inf")

    def test_condition_2_threshold(self):
        # The paper's a=41 case at m=9: N₉=33, N₁₀=31 →
        # threshold = (33−31)/(10·31 − 9·33) = 2/13 ≈ 0.154.
        model_cheap = PerformanceModel(a=1.0, b=0.10)
        model_dear = PerformanceModel(a=1.0, b=0.81)
        d_cheap = inequality_42(9, 33, 31, model_cheap)
        d_dear = inequality_42(9, 33, 31, model_dear)
        assert d_cheap.threshold == pytest.approx(2 / 13)
        assert d_cheap.beneficial
        assert not d_dear.beneficial
        left, right = d_dear.sides()
        assert left == pytest.approx(0.81)
        assert right == pytest.approx(2 / 13)

    def test_equal_inner_loops_edge(self):
        model = PerformanceModel(a=1.0, b=0.5)
        d = inequality_42(1, 20, 10, model)  # 2·10 − 1·20 = 0, N drops
        assert d.beneficial
        d2 = inequality_42(1, 10, 10, model)  # no iteration change: 2·10−10>0
        assert not d2.beneficial

    def test_validation(self):
        model = PerformanceModel(a=1.0, b=0.5)
        with pytest.raises(ValueError):
            inequality_42(-1, 5, 4, model)
        with pytest.raises(ValueError):
            inequality_42(2, 0, 4, model)

    @given(
        st.integers(1, 12),
        st.integers(2, 500),
        st.floats(0.01, 3.0),
        st.floats(0.1, 3.0),
    )
    @settings(max_examples=40)
    def test_property_decision_matches_time_model(self, m, n_m, drop, b_over_a):
        # (4.2) must agree with directly comparing T_{m+1} and T_m.
        n_m1 = max(1, int(n_m / (1.0 + drop)))
        model = PerformanceModel(a=1.0, b=b_over_a)
        decision = inequality_42(m, n_m, n_m1, model)
        t_m = model.predicted_time(m, n_m)
        t_m1 = model.predicted_time(m + 1, n_m1)
        if abs(t_m1 - t_m) > 1e-9 * t_m:
            assert decision.beneficial == (t_m1 < t_m)


class TestOptimalM:
    def test_scans_profile(self):
        counts = {0: 100, 1: 45, 2: 30, 3: 24, 4: 21}
        cheap = PerformanceModel(a=1.0, b=0.05)
        dear = PerformanceModel(a=1.0, b=2.0)
        assert optimal_m(counts, cheap) >= 2
        assert optimal_m(counts, dear) <= 1

    def test_single_entry(self):
        assert optimal_m({0: 10}, PerformanceModel(a=1.0, b=1.0)) == 0

    def test_fit_iteration_model(self):
        # Exact power law is recovered.
        counts = {m: int(round(100 * m**-0.5)) for m in (1, 2, 4, 8, 16)}
        c, p = fit_iteration_model(counts)
        assert c == pytest.approx(100, rel=0.05)
        assert p == pytest.approx(0.5, abs=0.05)

    def test_fit_needs_two_points(self):
        with pytest.raises(ValueError):
            fit_iteration_model({1: 50})


class TestConditionStudy:
    @pytest.fixture(scope="class")
    def study(self):
        k = plate_problem(5).k
        return condition_study(SSORSplitting(k), m_max=6)

    def test_kappa_decreases(self, study):
        assert study.monotone_decreasing()

    def test_adams_bound(self, study):
        assert study.bound_satisfied()

    def test_preconditioning_beats_raw_kappa(self, study):
        assert study.kappas[1] < study.kappa_k

    def test_iteration_gain_reasonable(self, study):
        gain = study.expected_iteration_gain(4)
        assert 1.0 <= gain <= 2.0  # √(κ₁/κ₄) ≤ √4 = 2 by the bound

    def test_parametrized_study_improves(self):
        k = plate_problem(5).k
        splitting = SSORSplitting(k)
        from repro.core import full_splitting_spectrum

        eigs = full_splitting_spectrum(splitting)
        interval = (float(eigs.min()), float(eigs.max()))
        plain = condition_study(splitting, m_max=4)
        fitted = condition_study(
            splitting,
            m_max=4,
            coefficients_for=lambda m: least_squares_coefficients(m, interval),
        )
        for m in (2, 3, 4):
            assert fitted.kappas[m] <= plain.kappas[m] * 1.05

    def test_m_max_validation(self):
        k = plate_problem(4).k
        with pytest.raises(ValueError):
            condition_study(SSORSplitting(k), m_max=0)


class TestAsciiPlot:
    def test_markers_and_legend(self):
        from repro.analysis import ascii_plot

        xs = [0.0, 0.5, 1.0]
        out = ascii_plot("demo", xs, {"alpha": [0, 1, 0], "beta": [1, 0, 1]})
        assert "demo" in out
        assert "a = alpha" in out and "b = beta" in out
        assert "a" in out and "b" in out

    def test_constant_series_handled(self):
        from repro.analysis import ascii_plot

        out = ascii_plot("flat", [0, 1], {"c": [2.0, 2.0]})
        assert "flat" in out

    def test_validation(self):
        from repro.analysis import ascii_plot

        with pytest.raises(ValueError):
            ascii_plot("t", [0, 1], {})
        with pytest.raises(ValueError):
            ascii_plot("t", [0], {"x": [1]})
        with pytest.raises(ValueError):
            ascii_plot("t", [0, 1], {"x": [1]})


class TestReporting:
    def test_format_basic(self):
        out = format_table("Title", ["a", "b"], [[1, 2.5], [None, float("inf")]])
        assert "Title" in out
        assert "—" in out and "∞" in out
        assert "2.5" in out

    def test_table_row_width_checked(self):
        table = Table("t", ["x", "y"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_notes_rendered(self):
        table = Table("t", ["x"], [[1]])
        table.add_note("calibrated, not measured")
        assert "note: calibrated" in table.render()

    def test_bool_rendering(self):
        out = format_table("t", ["ok"], [[True], [False]])
        assert "yes" in out and "no" in out


class TestCyberCalibratedModel:
    """The CYBER-timing-model calibration (ISSUE 5 satellite):
    ``PerformanceModel.from_cyber_machine`` mirrors the FEM path."""

    @pytest.fixture(scope="class")
    def machine(self):
        from repro.machines import CyberMachine

        return CyberMachine(plate_problem(8))

    def test_iteration_costs_are_positive_and_step_scaled(self, machine):
        a, b = machine.iteration_costs()
        assert a > 0 and b > 0
        # m preconditioner steps charge m times the marginal step plus the
        # one-off final color solve.
        five = machine.preconditioner_block_seconds(5, 1)
        one = machine.preconditioner_block_seconds(1, 1)
        assert five == pytest.approx(one + 4 * b, rel=1e-12)

    def test_block_application_amortizes_pipe_startups(self, machine):
        one = machine.preconditioner_block_seconds(1, 1)
        eight = machine.preconditioner_block_seconds(1, 8)
        assert one < eight < 8 * one

    def test_from_cyber_machine_fields(self, machine):
        model = PerformanceModel.from_cyber_machine(machine)
        a, b = machine.iteration_costs()
        assert model.a == a and model.b == b
        assert model.amortizes
        assert 0 < model.b_marginal < model.b

    def test_recommendation_runs_off_the_cyber_model(self, machine):
        from repro.core.autotune import recommend_m
        from repro.core.spectral import spectrum_interval
        from repro.core.splittings import SSORSplitting
        from repro.driver import build_blocked_system

        blocked = build_blocked_system(machine.problem)
        interval = spectrum_interval(SSORSplitting(blocked.permuted))
        model = PerformanceModel.from_cyber_machine(machine)
        rec = recommend_m(interval, model, m_max=10, rel_tol=0.05)
        assert 1 <= rec.m <= 10
        wide = recommend_m(interval, model, m_max=10, width=13, rel_tol=0.05)
        assert wide.m >= rec.m  # batching amortizes steps → m never shrinks


class TestShardAwareStepCost:
    """Shard-aware (4.1) pricing: wall-clock follows the widest shard."""

    def test_shard_width(self):
        assert PerformanceModel.shard_width(8, 1) == 8
        assert PerformanceModel.shard_width(8, 4) == 2
        assert PerformanceModel.shard_width(7, 4) == 2
        assert PerformanceModel.shard_width(3, 8) == 1  # W > k clamps

    def test_sharded_step_cost_equals_narrow_block(self):
        model = PerformanceModel(a=1.0, b=0.7, b_marginal=0.2)
        assert model.step_cost(8, shards=4) == model.step_cost(2)
        assert model.step_cost(8, shards=8) == model.b
        assert model.step_cost(8, shards=1) == model.step_cost(8)

    def test_sharded_predicted_time_drops_with_workers(self):
        model = PerformanceModel(a=1.0, b=0.7, b_marginal=0.2)
        serial = model.predicted_time(3, 20, width=8)
        sharded = model.predicted_time(3, 20, width=8, shards=4)
        assert sharded < serial
        # Fully sharded = width-1 wall-clock per column.
        assert model.predicted_time(3, 20, width=8, shards=8) == (
            model.predicted_time(3, 20)
        )

    def test_sharding_walks_the_recommendation_back(self):
        from repro.core.autotune import recommend_m

        interval = (0.05, 1.0)
        model = PerformanceModel(a=1.0, b=0.7, b_marginal=0.05)
        wide = recommend_m(interval, model, m_max=10, width=16)
        sharded = recommend_m(interval, model, m_max=10, width=16, shards=16)
        narrow = recommend_m(interval, model, m_max=10)
        assert sharded.m == narrow.m  # per-worker width 1 = paper pricing
        assert wide.m >= sharded.m

    def test_b_over_a_at_shards(self):
        model = PerformanceModel(a=1.0, b=0.7, b_marginal=0.2)
        assert model.b_over_a_at(8, shards=8) == model.b_over_a
        assert model.b_over_a_at(8) < model.b_over_a_at(8, shards=4)
