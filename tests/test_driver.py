"""Integration tests for the end-to-end m-step SSOR PCG driver."""

import numpy as np
import pytest

from repro import plate_problem, poisson_problem, solve_mstep_ssor
from repro.driver import build_blocked_system, mstep_coefficients, ssor_interval


@pytest.fixture(scope="module")
def plate():
    return plate_problem(6)


@pytest.fixture(scope="module")
def blocked(plate):
    return build_blocked_system(plate)


@pytest.fixture(scope="module")
def interval(blocked):
    return ssor_interval(blocked)


class TestSolveCorrectness:
    @pytest.mark.parametrize(
        "m, parametrized", [(0, False), (1, False), (3, False), (3, True), (6, True)]
    )
    def test_solution_solves_system(self, plate, blocked, interval, m, parametrized):
        solve = solve_mstep_ssor(
            plate, m, parametrized=parametrized, interval=interval,
            blocked=blocked, eps=1e-8,
        )
        assert solve.result.converged
        resid = np.max(np.abs(plate.f - plate.k @ solve.u))
        assert resid < 1e-6 * max(1.0, float(np.max(np.abs(plate.f))))

    def test_all_methods_agree_on_solution(self, plate, blocked, interval):
        solutions = [
            solve_mstep_ssor(plate, m, parametrized=p, interval=interval,
                             blocked=blocked, eps=1e-9).u
            for m, p in [(0, False), (2, False), (4, True)]
        ]
        for other in solutions[1:]:
            assert other == pytest.approx(solutions[0], rel=1e-4, abs=1e-7)

    def test_poisson_problem_supported(self):
        prob = poisson_problem(8)
        solve = solve_mstep_ssor(prob, 2, eps=1e-8)
        assert solve.result.converged
        assert prob.k @ solve.u == pytest.approx(prob.f, rel=1e-5, abs=1e-5)


class TestPaperStructure:
    def test_iterations_decrease_with_m(self, plate, blocked, interval):
        iters = [
            solve_mstep_ssor(plate, m, interval=interval, blocked=blocked).iterations
            for m in range(0, 5)
        ]
        assert all(b < a for a, b in zip(iters[:2], iters[1:3]))  # sharp early drop
        assert iters[4] <= iters[1]

    def test_parametrized_beats_unparametrized(self, plate, blocked, interval):
        # The paper's CYBER observation (1), iteration-count half.
        for m in (2, 3, 4):
            plain = solve_mstep_ssor(
                plate, m, parametrized=False, blocked=blocked
            ).iterations
            fitted = solve_mstep_ssor(
                plate, m, parametrized=True, interval=interval, blocked=blocked
            ).iterations
            assert fitted <= plain

    def test_labels(self, plate, blocked, interval):
        assert solve_mstep_ssor(plate, 0, blocked=blocked).label == "0"
        assert solve_mstep_ssor(plate, 2, blocked=blocked).label == "2"
        assert (
            solve_mstep_ssor(
                plate, 2, parametrized=True, interval=interval, blocked=blocked
            ).label
            == "2P"
        )

    def test_table3_shape_for_60_equation_problem(self, plate, blocked, interval):
        """Iteration counts land in the neighbourhood of Table 3's column I.

        Paper: 48, 19, 13, 11, 11, 8, 10, 7, 5, 5 for
        m = 0, 1, 2, 2P, 3, 3P, 4, 4P, 5P, 6P (ε and material unstated, so we
        assert bands rather than exact values).
        """
        bands = {
            (0, False): (40, 60),
            (1, False): (15, 27),
            (2, False): (11, 19),
            (2, True): (9, 16),
            (3, False): (9, 16),
            (3, True): (7, 13),
            (4, False): (8, 14),
            (4, True): (6, 11),
            (5, True): (5, 10),
            (6, True): (4, 9),
        }
        for (m, par), (lo, hi) in bands.items():
            iters = solve_mstep_ssor(
                plate, m, parametrized=par, interval=interval, blocked=blocked,
                eps=1e-6,
            ).iterations
            assert lo <= iters <= hi, f"m={m}{'P' if par else ''}: {iters} not in [{lo},{hi}]"


class TestDriverHelpers:
    def test_interval_inside_unit(self, interval):
        lo, hi = interval
        assert 0 < lo < hi <= 1.0 + 1e-10

    def test_coefficients_unparametrized(self):
        assert np.array_equal(mstep_coefficients(3, False, None), np.ones(3))

    def test_coefficients_need_interval_when_parametrized(self):
        with pytest.raises(ValueError):
            mstep_coefficients(3, True, None)

    def test_coefficient_criteria(self, interval):
        ls = mstep_coefficients(3, True, interval, criterion="least_squares")
        mm = mstep_coefficients(3, True, interval, criterion="minmax")
        assert not np.allclose(ls, mm)
        with pytest.raises(ValueError):
            mstep_coefficients(3, True, interval, criterion="secret")

    def test_negative_m_rejected(self, plate):
        with pytest.raises(ValueError):
            solve_mstep_ssor(plate, -1)

    def test_interval_measured_when_absent(self, plate, blocked):
        solve = solve_mstep_ssor(plate, 2, parametrized=True, blocked=blocked)
        assert solve.interval is not None
        lo, hi = solve.interval
        assert 0 < lo < hi

    def test_custom_stopping_rule_respected(self, plate, blocked):
        from repro.core import RelativeResidual

        solve = solve_mstep_ssor(
            plate, 2, blocked=blocked, stopping=RelativeResidual(1e-12)
        )
        assert solve.result.converged
        resid = np.linalg.norm(plate.f - plate.k @ solve.u)
        assert resid <= 1e-11 * np.linalg.norm(plate.f)

    def test_maxiter_propagates(self, plate, blocked):
        solve = solve_mstep_ssor(plate, 0, blocked=blocked, eps=1e-14, maxiter=2)
        assert not solve.result.converged
        assert solve.iterations == 2

    def test_track_residual_propagates(self, plate, blocked):
        solve = solve_mstep_ssor(plate, 1, blocked=blocked, track_residual=True)
        assert len(solve.result.residual_history) >= solve.iterations
