"""Tests for the model problem factories and stencil extraction (Figure 2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fem import (
    node_stencil,
    plate_problem,
    poisson_problem,
    stencil_summary,
)
from repro.fem.stencil import max_row_nonzeros
from repro.util import is_spd


class TestPlateProblem:
    @pytest.fixture(scope="class")
    def prob(self):
        return plate_problem(6)

    def test_paper_sizes(self, prob):
        assert prob.n == 60
        assert prob.mesh.a == 6 and prob.mesh.b == 5

    def test_groups_partition_unknowns(self, prob):
        groups = prob.group_of_unknown
        assert groups.shape == (60,)
        assert set(np.unique(groups)) <= set(range(6))
        assert len(prob.group_labels) == 6

    def test_group_encodes_color_and_dof(self, prob):
        mesh = prob.mesh
        for idx in range(prob.n):
            node = int(mesh.dof_node[idx])
            dof = int(mesh.dof_component[idx])
            expected = 2 * int(mesh.node_colors[node]) + dof
            assert prob.group_of_unknown[idx] == expected

    def test_direct_solution_solves_system(self, prob):
        u = prob.direct_solution()
        r = prob.f - prob.k @ u
        assert np.max(np.abs(r)) < 1e-10 * max(1.0, np.max(np.abs(prob.f)))

    def test_rectangular_plate(self):
        prob = plate_problem(4, ncols=8, width=2.0)
        assert prob.n == 2 * 4 * 7
        assert is_spd(prob.k)

    @given(st.integers(3, 8))
    @settings(max_examples=6, deadline=None)
    def test_any_size_is_spd(self, a):
        assert is_spd(plate_problem(a).k)


class TestPoissonProblem:
    def test_matrix_is_scaled_5_point_stencil(self):
        prob = poisson_problem(3)
        h2 = (1.0 / 4.0) ** 2
        dense = prob.k.toarray() * h2
        assert dense[4, 4] == pytest.approx(4.0)
        assert dense[4, 1] == pytest.approx(-1.0)
        assert dense[4, 3] == pytest.approx(-1.0)
        assert dense[0, 4] == pytest.approx(0.0)

    def test_spd(self):
        assert is_spd(poisson_problem(8).k)

    def test_red_black_is_proper_two_coloring(self):
        prob = poisson_problem(7)
        colors = prob.group_of_unknown
        k = prob.k.tocoo()
        off = k.row != k.col
        assert np.all(colors[k.row[off]] != colors[k.col[off]])

    def test_rhs_variants(self):
        ones = poisson_problem(5, rhs="ones")
        peak = poisson_problem(5, rhs="peak")
        assert np.all(ones.f == 1.0)
        assert peak.f.max() == pytest.approx(1.0, abs=0.2)
        with pytest.raises(ValueError):
            poisson_problem(5, rhs="nope")

    def test_solution_positive_inside(self):
        prob = poisson_problem(10)
        u = prob.direct_solution()
        assert np.all(u > 0)


class TestStencil:
    def test_interior_stencil_is_figure_2(self):
        prob = plate_problem(7)
        mesh = prob.mesh
        node = mesh.node_id(3, 3)
        stencil = node_stencil(mesh, prob.k, node)
        assert set(stencil) == {
            (0, 0), (-1, 0), (1, 0), (0, -1), (0, 1), (-1, 1), (1, -1),
        }
        # ≤ two dofs per stencil node → ≤14 nonzeros; on the uniform
        # isotropic mesh the diagonal-neighbor u–u terms cancel exactly,
        # leaving one (v) coupling on the NW and SE offsets.
        assert sum(stencil.values()) <= 14
        assert stencil[(0, 0)] == 2
        assert stencil[(-1, 0)] == 2 and stencil[(1, 0)] == 2
        assert stencil[(0, -1)] == 2 and stencil[(0, 1)] == 2
        assert stencil[(-1, 1)] >= 1 and stencil[(1, -1)] >= 1

    def test_no_forbidden_diagonals(self):
        # The '/' triangulation couples NW/SE, never NE/SW.
        prob = plate_problem(7)
        mesh = prob.mesh
        stencil = node_stencil(mesh, prob.k, mesh.node_id(4, 2))
        assert (1, 1) not in stencil
        assert (-1, -1) not in stencil

    def test_constrained_node_rejected(self):
        prob = plate_problem(5)
        with pytest.raises(ValueError):
            node_stencil(prob.mesh, prob.k, prob.mesh.node_id(0, 2))

    def test_max_row_nonzeros_bound(self):
        prob = plate_problem(8)
        assert max_row_nonzeros(prob.k) <= 14

    def test_summary_mentions_count(self):
        prob = plate_problem(7)
        text = stencil_summary(prob.mesh, prob.k, prob.mesh.node_id(3, 3))
        assert "14" in text
        assert "(u,v)" in text
