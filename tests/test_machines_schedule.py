"""FEM and SPMD lockstep schedule passes (ISSUE 4).

The acceptance contract: ``FiniteElementMachine.solve_schedule`` runs the
whole Table-3 schedule through one batched pass with per-cell clocks,
communication ledgers and iterates **bitwise identical** to the per-cell
``solve`` path, across every cell; ``SPMDSolver.solve_schedule`` does the
same for the real distributed engine, down to the per-cell message
ledgers.
"""

import numpy as np
import pytest

from repro.driver import (
    TABLE3_SCHEDULE,
    build_blocked_system,
    mstep_coefficients,
    ssor_interval,
)
from repro.machines import FiniteElementMachine
from repro.machines.spmd import SPMDSolver
from repro.machines.topology import Assignment, ProcessorGrid
from repro.pipeline import SolverPlan, SolverSession, build_scenario

EPS = 1e-6


@pytest.fixture(scope="module")
def plate():
    problem = build_scenario("plate", nrows=8)
    blocked = build_blocked_system(problem)
    interval = ssor_interval(blocked)
    cells = [
        (m, mstep_coefficients(m, par, interval) if m >= 1 else None)
        for m, par in TABLE3_SCHEDULE
    ]
    return problem, blocked, cells


class TestFEMSolveSchedule:
    @pytest.fixture(scope="class", params=[1, 5])
    def results(self, request, plate):
        problem, blocked, cells = plate
        machine = FiniteElementMachine(problem, request.param, blocked=blocked)
        per_cell = [machine.solve(m, c, eps=EPS) for m, c in cells]
        batched = machine.solve_schedule(cells, eps=EPS)
        return per_cell, batched

    def test_iterations_and_labels_bitwise(self, results):
        per_cell, batched = results
        assert [r.iterations for r in batched] == [r.iterations for r in per_cell]
        assert [r.label for r in batched] == [r.label for r in per_cell]
        assert all(r.converged for r in batched)

    def test_clocks_bitwise(self, results):
        per_cell, batched = results
        for pc, b in zip(per_cell, batched):
            assert b.seconds == pc.seconds
            assert b.compute_seconds == pc.compute_seconds
            assert b.comm_seconds == pc.comm_seconds
            assert b.reduction_seconds == pc.reduction_seconds
            assert b.flag_seconds == pc.flag_seconds

    def test_comm_ledgers_bitwise(self, results):
        per_cell, batched = results
        for pc, b in zip(per_cell, batched):
            assert b.total_records == pc.total_records
            assert b.total_words == pc.total_words

    def test_iterates_bitwise(self, results):
        per_cell, batched = results
        for pc, b in zip(per_cell, batched):
            assert np.array_equal(b.u_natural, pc.u_natural)

    def test_covers_every_table3_cell(self, results):
        _, batched = results
        assert len(batched) == len(TABLE3_SCHEDULE)


class TestFEMScheduleEdgeCases:
    @pytest.fixture(scope="class")
    def machine(self, plate):
        problem, blocked, _ = plate
        return FiniteElementMachine(problem, 2, blocked=blocked)

    def test_empty_schedule(self, machine):
        assert machine.solve_schedule([]) == []

    def test_single_cell_matches_solve(self, machine):
        single = machine.solve(3, np.ones(3), eps=EPS)
        [batched] = machine.solve_schedule([(3, np.ones(3))], eps=EPS)
        assert batched.iterations == single.iterations
        assert batched.seconds == single.seconds
        assert np.array_equal(batched.u_natural, single.u_natural)

    def test_duplicate_m_different_coefficients(self, machine):
        coeffs_a = np.ones(2)
        coeffs_b = np.array([1.7, 0.4])
        pair = machine.solve_schedule([(2, coeffs_a), (2, coeffs_b)], eps=EPS)
        singles = [machine.solve(2, coeffs_a, eps=EPS),
                   machine.solve(2, coeffs_b, eps=EPS)]
        for b, s in zip(pair, singles):
            assert b.iterations == s.iterations
            assert b.seconds == s.seconds
            assert np.array_equal(b.u_natural, s.u_natural)

    def test_maxiter_cap(self, machine):
        [res] = machine.solve_schedule([(0, None)], eps=1e-14, maxiter=3)
        capped = machine.solve(0, None, eps=1e-14, maxiter=3)
        assert res.iterations == 3 and not res.converged
        assert res.seconds == capped.seconds

    def test_labels_override(self, machine):
        results = machine.solve_schedule(
            [(1, None), (2, None)], eps=EPS, labels=["first", None]
        )
        assert results[0].label == "first"
        assert results[1].label == "2"

    def test_rejects_negative_m(self, machine):
        with pytest.raises(ValueError):
            machine.solve_schedule([(-1, None)])


class TestSessionFEMSchedule:
    def test_run_fem_schedule_matches_per_cell(self):
        session = SolverSession.from_scenario(
            "plate", plan=SolverPlan.table3(eps=EPS), nrows=8
        )
        per_cell = session.run_fem_schedule(n_procs=5, batched=False)
        batched = session.run_fem_schedule(n_procs=5, batched=True)
        assert session.stats.machine_builds == 1  # one layout serves both
        for pc, b in zip(per_cell, batched):
            assert b.iterations == pc.iterations
            assert b.seconds == pc.seconds
            assert np.array_equal(b.u_natural, pc.u_natural)

    def test_reference_backend_plan_falls_back_to_per_cell(self):
        plan = SolverPlan(
            schedule=((0, False), (2, True)), eps=1e-4, backend="reference"
        )
        session = SolverSession.from_scenario("plate", plan=plan, nrows=6)
        results = session.run_fem_schedule(n_procs=2)
        vec = SolverSession.from_scenario(
            "plate", plan=plan.with_(backend="vectorized"), nrows=6
        ).run_fem_schedule(n_procs=2)
        assert [r.iterations for r in results] == [r.iterations for r in vec]
        for a, b in zip(results, vec):
            assert a.seconds == b.seconds  # charged clock is structural


class TestSPMDSolveSchedule:
    @pytest.fixture(scope="class")
    def distributed(self, plate):
        problem, blocked, cells = plate
        grid = ProcessorGrid.for_count(4, problem.mesh)
        assignment = Assignment.rectangles(problem.mesh, grid)
        return problem, blocked, assignment, cells

    @pytest.fixture(scope="class")
    def results(self, distributed):
        problem, blocked, assignment, cells = distributed
        solos = []
        for m, c in cells:
            # Fresh solver per solo run: the ledger is solver-lifetime.
            solver = SPMDSolver(problem, assignment, blocked=blocked)
            solos.append(solver.solve(m, c, eps=EPS))
        batched = SPMDSolver(problem, assignment, blocked=blocked).solve_schedule(
            cells, eps=EPS
        )
        return solos, batched

    def test_iterations_and_iterates_bitwise(self, results):
        solos, batched = results
        for so, b in zip(solos, batched):
            assert b.iterations == so.iterations
            assert b.converged == so.converged
            assert np.array_equal(b.u_natural, so.u_natural)

    def test_message_ledgers_bitwise(self, results):
        # Each cell's ledger must book exactly what its solo solve moved —
        # a batched exchange charges each live cell its own words only.
        solos, batched = results
        for so, b in zip(solos, batched):
            assert b.ledger.words_by_kind == so.ledger.words_by_kind
            assert b.ledger.words_by_pair == so.ledger.words_by_pair
            assert b.ledger.messages == so.ledger.messages

    def test_single_cell_schedule_matches_solve(self, distributed):
        problem, blocked, assignment, _ = distributed
        solo = SPMDSolver(problem, assignment, blocked=blocked).solve(
            3, np.ones(3), eps=EPS
        )
        [batched] = SPMDSolver(
            problem, assignment, blocked=blocked
        ).solve_schedule([(3, np.ones(3))], eps=EPS)
        assert batched.iterations == solo.iterations
        assert np.array_equal(batched.u_natural, solo.u_natural)
        assert batched.ledger.words_by_kind == solo.ledger.words_by_kind
