"""Additional accounting tests for comm and timing models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machines import CYBER_203, FEM_1983, VectorTimingModel
from repro.machines.comm import CommLog


class TestCommLogCounters:
    def test_reduction_and_flag_counters(self):
        log = CommLog(FEM_1983)
        t_red = log.add_reduction(8, "software")
        t_flag = log.add_flag_sync()
        assert log.reductions == 1
        assert log.flag_syncs == 1
        assert t_red == FEM_1983.reduction_time(8, "software")
        assert t_flag == FEM_1983.flag_sync_time

    def test_records_accumulate_per_pair(self):
        log = CommLog(FEM_1983)
        log.add_record(0, 1, 4)
        log.add_record(0, 1, 6)
        log.add_record(1, 0, 2)
        assert log.records[(0, 1)] == 2
        assert log.words[(0, 1)] == 10
        assert log.total_records == 3
        assert log.total_words == 12

    def test_traffic_matrix_shape(self):
        log = CommLog(FEM_1983)
        log.add_record(2, 0, 5)
        matrix = log.traffic_matrix(3)
        assert matrix[2][0] == 5
        assert matrix[0][2] == 0


class TestTimingProperties:
    @given(st.integers(1, 100_000))
    @settings(max_examples=30)
    def test_efficiency_monotone_in_length(self, n):
        model = CYBER_203
        assert model.efficiency(n + 1) >= model.efficiency(n)
        assert 0.0 < model.efficiency(n) < 1.0

    @given(st.integers(1, 50_000), st.integers(1, 50_000))
    @settings(max_examples=30)
    def test_vector_op_time_superadditive(self, n1, n2):
        # Splitting a long vector op into two shorter ones always costs
        # more (two startups) — the reason the paper pads with constrained
        # nodes to keep vectors long.
        model = CYBER_203
        assert model.vector_op_time(n1) + model.vector_op_time(n2) > (
            model.vector_op_time(n1 + n2)
        )

    @given(st.integers(2, 4096))
    @settings(max_examples=30)
    def test_circuit_never_slower_than_software(self, p):
        assert FEM_1983.reduction_time(p, "circuit") <= FEM_1983.reduction_time(
            p, "software"
        )

    def test_custom_model_dot_components(self):
        model = VectorTimingModel(
            startup_elements=10.0,
            element_time=1e-6,
            sum_startup_elements=20.0,
        )
        n = 64
        expected_multiply = (10.0 + n) * 1e-6
        stages = 6  # log2(64)
        expected_sum = (stages * 20.0 + n) * 1e-6
        assert model.dot_time(n) == pytest.approx(expected_multiply + expected_sum)


class TestPreconSpectrumProperties:
    @given(st.integers(1, 8), st.integers(0, 2**31 - 1))
    @settings(max_examples=20)
    def test_preconditioned_spectrum_sorted_and_mapped(self, m, seed):
        from repro.core import neumann_coefficients, preconditioned_spectrum

        rng = np.random.default_rng(seed)
        mu = rng.uniform(0.01, 1.0, size=12)
        mapped = preconditioned_spectrum(mu, neumann_coefficients(m))
        assert np.all(np.diff(mapped) >= 0)
        assert mapped == pytest.approx(
            np.sort(1.0 - (1.0 - mu) ** m), rel=1e-12
        )
