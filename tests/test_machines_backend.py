"""Machine-simulator backend equivalence and block-width cost models.

The ISSUE-2 contract: the CYBER and FEM simulators route their
preconditioning through the kernel layer's cached color-block sweeps, with
a ``backend=`` knob mirroring :func:`repro.driver.solve_mstep_ssor` — and
the ``"vectorized"`` and ``"reference"`` paths produce *identical* results
(iterates to ≤1e−12, operation counters and modeled seconds exactly)
across every (m, parametrized) cell of the paper's Table-2/3 schedules.

Alongside: the batched ``(n, k)`` preconditioner path and its block-width
cost model — one pipeline startup (CYBER) or one per-phase setup and one
link record (FEM) per color-block operation, amortized over the block.
"""

import numpy as np
import pytest

from repro import plate_problem
from repro.driver import (
    TABLE2_SCHEDULE,
    TABLE3_SCHEDULE,
    build_blocked_system,
    mstep_coefficients,
    ssor_interval,
)
from repro.kernels import BACKENDS, REFERENCE, VECTORIZED
from repro.machines import CYBER_203, CyberMachine, FiniteElementMachine, VectorMachine

TOL = 1e-12


@pytest.fixture(scope="module")
def cyber_plate():
    return plate_problem(8)


@pytest.fixture(scope="module")
def cyber_machine(cyber_plate):
    return CyberMachine(cyber_plate)


@pytest.fixture(scope="module")
def cyber_interval(cyber_plate):
    return ssor_interval(build_blocked_system(cyber_plate))


@pytest.fixture(scope="module")
def fem_plate():
    return plate_problem(6)


@pytest.fixture(scope="module")
def fem_blocked(fem_plate):
    return build_blocked_system(fem_plate)


@pytest.fixture(scope="module")
def fem_interval(fem_blocked):
    return ssor_interval(fem_blocked)


@pytest.fixture(scope="module")
def fem_machines(fem_plate, fem_blocked):
    return {p: FiniteElementMachine(fem_plate, p, blocked=fem_blocked) for p in (1, 5)}


# --------------------------------------------------------------------------
class TestCyberBackendEquivalence:
    """Every Table-2 cell: kernel-routed vs hand-rolled preconditioning."""

    @pytest.mark.parametrize("m,parametrized", TABLE2_SCHEDULE)
    def test_solve_equivalent(self, cyber_machine, cyber_interval, m, parametrized):
        coeffs = mstep_coefficients(m, parametrized, cyber_interval) if m else None
        results = {
            backend: cyber_machine.solve(m, coeffs, eps=1e-6, backend=backend)
            for backend in BACKENDS
        }
        fast, pin = results[VECTORIZED], results[REFERENCE]
        assert fast.iterations == pin.iterations
        assert fast.converged and pin.converged
        # The charge stream is structural, so the modeled clock and the
        # operation counters are *exactly* backend-invariant.
        assert fast.seconds == pin.seconds
        assert fast.preconditioner_seconds == pin.preconditioner_seconds
        assert fast.op_breakdown == pin.op_breakdown
        scale = max(float(np.max(np.abs(pin.u_natural))), 1.0)
        assert np.max(np.abs(fast.u_natural - pin.u_natural)) <= TOL * scale

    def test_kernel_path_routes_through_color_block_solver(self, cyber_machine):
        cyber_machine.solve(2, np.ones(2), eps=1e-4, backend=VECTORIZED)
        sweep = cyber_machine._sweep_kernel()
        assert sweep.lower.kind == "color_block"
        assert sweep.upper.kind == "color_block"
        assert sweep.n_groups == cyber_machine.n_groups

    def test_rejects_unknown_backend(self, cyber_machine):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            cyber_machine.solve(1, np.ones(1), backend="fortran")


class TestCyberBlockedPreconditioning:
    """Batched (n, k) Algorithm 2 and its block-width charging."""

    @pytest.fixture(scope="class")
    def r_block(self, cyber_machine):
        rng = np.random.default_rng(7)
        block = rng.normal(size=(cyber_machine.n_padded, 4))
        block[~cyber_machine.free_mask] = 0.0
        return block

    def test_backends_agree_columnwise(self, cyber_machine, r_block):
        coeffs = np.array([1.0, 0.5, 2.0])
        fast = cyber_machine.precondition_block(coeffs, r_block, backend=VECTORIZED)
        pin = cyber_machine.precondition_block(coeffs, r_block, backend=REFERENCE)
        scale = max(float(np.max(np.abs(pin))), 1.0)
        assert np.max(np.abs(fast - pin)) <= TOL * scale

    def test_block_matches_single_vector_applies(self, cyber_machine, r_block):
        coeffs = np.ones(2)
        batched = cyber_machine.precondition_block(coeffs, r_block)
        vm = VectorMachine(cyber_machine.timing)
        for col in range(r_block.shape[1]):
            single = cyber_machine._precondition(
                vm, coeffs, r_block[:, col].copy(), VECTORIZED
            )
            assert np.max(np.abs(batched[:, col] - single)) <= TOL
        assert batched.base is None  # a fresh array, not the pooled workspace

    def test_block_width_amortizes_startup(self, cyber_machine, r_block):
        """One pipeline startup per color-block op, not per right-hand side."""
        coeffs = np.ones(3)
        width = r_block.shape[1]
        vm_block = VectorMachine(cyber_machine.timing)
        cyber_machine.precondition_block(coeffs, r_block, vm=vm_block)
        vm_cols = VectorMachine(cyber_machine.timing)
        cyber_machine.precondition_block(
            coeffs, r_block, vm=vm_cols, backend=REFERENCE
        )
        assert vm_block.elapsed_seconds < vm_cols.elapsed_seconds
        # The block pays exactly the per-op startups of ONE charge stream;
        # the element traffic itself is identical.
        t = cyber_machine.timing
        n_ops = sum(count for count, _ in vm_block.log.breakdown().values())
        expected_gap = (width - 1) * n_ops * t.startup_elements * t.element_time
        measured_gap = vm_cols.elapsed_seconds - vm_block.elapsed_seconds
        assert measured_gap == pytest.approx(expected_gap, rel=1e-9)

    def test_block_timing_model(self):
        t = CYBER_203
        assert t.block_op_time(100, 1) == t.vector_op_time(100)
        assert t.block_op_time(100, 8) < 8 * t.vector_op_time(100)
        assert t.block_op_time(0, 4) == 0.0
        assert t.block_op_time(100, 0) == 0.0

    def test_rejects_bad_shapes(self, cyber_machine):
        with pytest.raises(ValueError):
            cyber_machine.precondition_block(
                np.ones(2), np.zeros(cyber_machine.n_padded)
            )


# --------------------------------------------------------------------------
class TestFEMBackendEquivalence:
    """Every Table-3 cell, one and five processors, both backends."""

    @pytest.mark.parametrize("m,parametrized", TABLE3_SCHEDULE)
    @pytest.mark.parametrize("n_procs", [1, 5])
    def test_solve_equivalent(
        self, fem_machines, fem_interval, m, parametrized, n_procs
    ):
        machine = fem_machines[n_procs]
        coeffs = mstep_coefficients(m, parametrized, fem_interval) if m else None
        results = {
            backend: machine.solve(m, coeffs, backend=backend)
            for backend in BACKENDS
        }
        fast, pin = results[VECTORIZED], results[REFERENCE]
        assert fast.iterations == pin.iterations
        assert fast.converged == pin.converged
        # The clock depends only on the iteration count and the static
        # partition, so the full cost decomposition is backend-invariant.
        assert fast.seconds == pin.seconds
        assert fast.compute_seconds == pin.compute_seconds
        assert fast.comm_seconds == pin.comm_seconds
        assert fast.reduction_seconds == pin.reduction_seconds
        assert fast.flag_seconds == pin.flag_seconds
        assert fast.total_records == pin.total_records
        assert fast.total_words == pin.total_words
        scale = max(float(np.max(np.abs(pin.u_natural))), 1.0)
        assert np.max(np.abs(fast.u_natural - pin.u_natural)) <= TOL * scale

    def test_sweep_applicator_reproduces_iterations(
        self, fem_machines, fem_interval
    ):
        # The pre-kernel path (Conrad–Wallach merged sweeps) stays available
        # and lands on the same iteration counts — the quantity the cost
        # model charges.
        coeffs = mstep_coefficients(3, True, fem_interval)
        for p, machine in fem_machines.items():
            kernel = machine.solve(3, coeffs)
            sweep = machine.solve(3, coeffs, applicator="sweep")
            assert sweep.iterations == kernel.iterations
            assert sweep.seconds == kernel.seconds


class TestFEMBlockCostModel:
    def test_width_one_is_the_solve_path_cost(self, fem_machines):
        machine = fem_machines[5]
        m = 3
        assert machine.preconditioner_block_seconds(m, 1) == pytest.approx(
            m * machine._precond_step_time(None)
        )

    @pytest.mark.parametrize("n_procs", [1, 5])
    def test_per_rhs_cost_falls_with_width(self, fem_machines, n_procs):
        machine = fem_machines[n_procs]
        per_rhs = [
            machine.preconditioner_block_seconds(2, w) / w for w in (1, 4, 16)
        ]
        assert per_rhs[0] > per_rhs[1] > per_rhs[2] > 0.0
        # Only the per-phase setup and per-record latency amortize; the flop
        # and word traffic scale with width, so the per-RHS cost stays above
        # the marginal (setup-free) cost of one more right-hand side.
        marginal = machine.preconditioner_block_seconds(
            2, 17
        ) - machine.preconditioner_block_seconds(2, 16)
        assert per_rhs[2] > marginal

    def test_width_validation(self, fem_machines):
        with pytest.raises(ValueError):
            fem_machines[1].preconditioner_block_seconds(0, 4)
        with pytest.raises(ValueError):
            fem_machines[1].preconditioner_block_seconds(2, 0)
