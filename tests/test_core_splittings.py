"""Tests for the splitting classes of Section 2."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    JacobiSplitting,
    RichardsonSplitting,
    SORSplitting,
    SSORSplitting,
)
from repro.fem import plate_problem
from repro.util import is_spd, is_symmetric


def small_spd(seed: int = 0, n: int = 12) -> sp.csr_matrix:
    rng = np.random.default_rng(seed)
    a = rng.normal(size=(n, n))
    m = a @ a.T + n * np.eye(n)
    return sp.csr_matrix(m)


@pytest.fixture(scope="module")
def plate_k():
    return plate_problem(5).k


ALL_SPLITTINGS = [
    lambda k: JacobiSplitting(k),
    lambda k: RichardsonSplitting(k),
    lambda k: SSORSplitting(k),
    lambda k: SSORSplitting(k, omega=1.4),
    lambda k: SORSplitting(k),
]


class TestPInverse:
    @pytest.mark.parametrize("factory", ALL_SPLITTINGS)
    def test_p_inv_matches_explicit_p(self, factory, plate_k):
        splitting = factory(plate_k)
        rng = np.random.default_rng(1)
        r = rng.normal(size=plate_k.shape[0])
        p = splitting.p_matrix().toarray()
        assert splitting.apply_p_inv(r) == pytest.approx(
            np.linalg.solve(p, r), rel=1e-10, abs=1e-10
        )

    @pytest.mark.parametrize("factory", ALL_SPLITTINGS)
    def test_g_action(self, factory, plate_k):
        splitting = factory(plate_k)
        rng = np.random.default_rng(2)
        x = rng.normal(size=plate_k.shape[0])
        p = splitting.p_matrix().toarray()
        q = p - plate_k.toarray()
        expected = np.linalg.solve(p, q @ x)
        assert splitting.apply_g(x) == pytest.approx(expected, rel=1e-9, abs=1e-9)

    def test_jacobi_p_is_diagonal(self, plate_k):
        splitting = JacobiSplitting(plate_k)
        assert splitting.p_matrix().toarray() == pytest.approx(
            np.diag(plate_k.diagonal())
        )

    def test_jacobi_rejects_zero_diagonal(self):
        k = sp.csr_matrix(np.array([[0.0, 1.0], [1.0, 2.0]]))
        with pytest.raises(ValueError):
            JacobiSplitting(k)


class TestSymmetryProperties:
    def test_ssor_p_is_spd(self, plate_k):
        for omega in (0.5, 1.0, 1.5):
            p = SSORSplitting(plate_k, omega=omega).p_matrix()
            assert is_spd(p)

    def test_sor_p_not_symmetric(self, plate_k):
        p = SORSplitting(plate_k).p_matrix()
        assert not is_symmetric(p)
        assert SORSplitting(plate_k).symmetric is False

    def test_omega_range_enforced(self, plate_k):
        for bad in (0.0, 2.0, -1.0):
            with pytest.raises(ValueError):
                SSORSplitting(plate_k, omega=bad)
            with pytest.raises(ValueError):
                SORSplitting(plate_k, omega=bad)

    def test_ssor_omega1_is_paper_form(self, plate_k):
        # P = (D − L) D⁻¹ (D − U) with no extra scaling at ω = 1.
        splitting = SSORSplitting(plate_k, omega=1.0)
        kd = plate_k.toarray()
        d = np.diag(np.diag(kd))
        lower = -np.tril(kd, -1)
        upper = -np.triu(kd, 1)
        expected = (d - lower) @ np.linalg.solve(d, d - upper)
        assert splitting.p_matrix().toarray() == pytest.approx(expected)


class TestWFactor:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda k: JacobiSplitting(k),
            lambda k: RichardsonSplitting(k),
            lambda k: SSORSplitting(k),
            lambda k: SSORSplitting(k, omega=0.8),
        ],
    )
    def test_w_factorizes_p(self, factory, plate_k):
        # Verify P⁻¹ = W⁻ᵀ W⁻¹ by comparing actions.
        splitting = factory(plate_k)
        rng = np.random.default_rng(3)
        x = rng.normal(size=plate_k.shape[0])
        via_w = splitting.apply_wt_inv(splitting.apply_w_inv(x))
        assert via_w == pytest.approx(splitting.apply_p_inv(x), rel=1e-9, abs=1e-9)

    def test_symmetric_operator_spectrum_matches_pencil(self, plate_k):
        # eig(W⁻¹KW⁻ᵀ) = eig(P⁻¹K).
        splitting = SSORSplitting(plate_k)
        n = plate_k.shape[0]
        s = np.empty((n, n))
        eye = np.eye(n)
        for col in range(n):
            s[:, col] = splitting.apply_w_inv(plate_k @ splitting.apply_wt_inv(eye[:, col]))
        import scipy.linalg as sla

        pencil = sla.eigh(
            plate_k.toarray(), splitting.p_matrix().toarray(), eigvals_only=True
        )
        direct = np.sort(np.linalg.eigvalsh(0.5 * (s + s.T)))
        assert direct == pytest.approx(pencil, rel=1e-8, abs=1e-8)

    def test_sor_has_no_w_factor(self, plate_k):
        with pytest.raises(NotImplementedError):
            SORSplitting(plate_k).apply_w_inv(np.ones(plate_k.shape[0]))


class TestStationaryConvergence:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda k: JacobiSplitting(k),
            lambda k: RichardsonSplitting(k),
            lambda k: SSORSplitting(k),
            lambda k: SORSplitting(k),
        ],
    )
    def test_iteration_converges_on_diagonally_dominant(self, factory):
        k = small_spd(seed=5)
        splitting = factory(k)
        rng = np.random.default_rng(6)
        b = rng.normal(size=k.shape[0])
        x = np.zeros(k.shape[0])
        for _ in range(400):
            x = splitting.apply_g(x) + splitting.apply_p_inv(b)
        assert k @ x == pytest.approx(b, rel=1e-6, abs=1e-6)

    def test_ssor_iteration_radius_below_one_on_plate(self, plate_k):
        splitting = SSORSplitting(plate_k)
        p = splitting.p_matrix().toarray()
        g = np.eye(plate_k.shape[0]) - np.linalg.solve(p, plate_k.toarray())
        rho = np.max(np.abs(np.linalg.eigvals(g)))
        assert rho < 1.0

    @given(st.integers(0, 2**31 - 1), st.floats(0.2, 1.8))
    @settings(max_examples=10, deadline=None)
    def test_property_ssor_eigs_in_unit_interval(self, seed, omega):
        # Eigenvalues of P⁻¹K for the SSOR splitting of an SPD matrix lie in
        # (0, 1] — the fact the whole parametrization section leans on.
        k = small_spd(seed=seed, n=10)
        splitting = SSORSplitting(k, omega=omega)
        import scipy.linalg as sla

        eigs = sla.eigh(k.toarray(), splitting.p_matrix().toarray(), eigvals_only=True)
        assert eigs.min() > 0
        assert eigs.max() <= 1.0 + 1e-10


class TestRichardson:
    def test_default_constant_is_gershgorin(self, plate_k):
        splitting = RichardsonSplitting(plate_k)
        lam_max = float(np.linalg.eigvalsh(plate_k.toarray())[-1])
        assert splitting.c >= lam_max

    def test_explicit_constant(self):
        k = small_spd(2)
        splitting = RichardsonSplitting(k, c=100.0)
        assert splitting.apply_p_inv(np.ones(k.shape[0])) == pytest.approx(
            np.full(k.shape[0], 0.01)
        )

    def test_rejects_nonpositive_constant(self):
        with pytest.raises(ValueError):
            RichardsonSplitting(small_spd(3), c=-2.0)
