#!/usr/bin/env python3
"""Block-RHS tour: several plate load cases in ONE lockstep block solve.

A structure is rarely analyzed under a single load.  This example builds
the paper's plate once, then solves four load cases — the distributed
edge load plus three concentrated point loads at different free nodes —
through one ``(n, 4)`` block solve (:meth:`SolverSession.solve_cell_block`,
the :func:`repro.core.pcg.block_pcg` lockstep): every outer iteration
runs one batched matrix product and one batched m-step SSOR application
over all still-active columns, and each column retires individually the
moment its own stopping test fires.

The block path's contract is exactness, not approximation: per-column
iterates and iteration counts are **bitwise identical** to solving each
load case alone — the example verifies that — while the session compiles
the coloring, the spectrum interval and the preconditioner factorization
exactly once for any number of load cases.

Run:  python examples/block_rhs_tour.py
"""

import numpy as np

from repro import SolverPlan, SolverSession
from repro.analysis import Table

M = 4  # preconditioner steps (parametrized least-squares schedule)


def load_cases(problem) -> tuple[np.ndarray, list[str]]:
    """The assembled edge load plus three unit point loads (free dofs)."""
    f = np.asarray(problem.f, dtype=float)
    n = f.shape[0]
    labels = ["edge load (paper)"]
    columns = [f]
    magnitude = float(np.max(np.abs(f)))
    for frac, name in [(0.25, "point @ n/4"), (0.5, "point @ n/2"),
                       (0.75, "point @ 3n/4")]:
        case = np.zeros(n)
        case[int(frac * n)] = magnitude
        columns.append(case)
        labels.append(name)
    return np.stack(columns, axis=1), labels


def main() -> None:
    session = SolverSession.from_scenario(
        "plate", plan=SolverPlan.single(M, True, eps=1e-7, block_rhs=4),
        nrows=16,
    )
    problem = session.problem
    F, labels = load_cases(problem)

    block = session.solve_cell_block(M, True, F=F)
    counts = session.stats.compile_counts()
    assert counts["colorings"] == 1 and counts["applicator_builds"] == 1

    table = Table(
        f"Four load cases, one {M}P block solve "
        f"({problem.mesh}, k = {block.k})",
        ["load case", "iterations", "converged", "‖f − K u‖∞"],
    )
    for j, label in enumerate(labels):
        resid = float(np.max(np.abs(F[:, j] - problem.k @ block.u[:, j])))
        table.add_row(
            label,
            int(block.iterations[j]),
            bool(block.result.converged[j]),
            resid,
        )
    table.add_note("one compile (coloring/interval/factorization) served all "
                   "columns; columns retire independently")
    print(table.render())

    # The block lockstep is bitwise identical to per-case solves.
    for j in range(block.k):
        solo = session.solve_cell(M, True, f=F[:, j])
        assert solo.iterations == int(block.iterations[j])
        assert np.array_equal(solo.u, block.column(j).u)
    print("verified: per-column iterates and iteration counts are bitwise "
          "identical to solo solves")
    spread = f"{int(block.iterations.min())}–{int(block.iterations.max())}"
    print(f"iteration spread across load cases: {spread} "
          "(each column stopped on its own test)")


if __name__ == "__main__":
    main()
