#!/usr/bin/env python3
"""Scenario tour: every registered problem through one plan.

The ProblemSpec registry (repro.pipeline.problems) names all workloads the
reproduction can build — the paper's plate, a stretched domain, a
variable-coefficient plate, irregular regions with greedy colorings, and
red/black stencil problems including a strongly anisotropic one.  This
example compiles the same small solver plan against each of them and
prints how hard plain CG finds the problem versus a parametrized 4-step
schedule — the method's value proposition across scenarios far from the
paper's benign unit square.

Run:  python examples/scenario_tour.py
"""

import numpy as np

from repro import SolverPlan, SolverSession, available_scenarios
from repro.analysis import Table

#: Small builds so the tour stays fast; keys are scenario names.
SIZES = {
    "plate": {"nrows": 12},
    "stretched-plate": {"nrows": 12},
    "variable-plate": {"nrows": 12, "contrast": 16.0},
    "lshape": {"a": 11},
    "perforated": {"a": 11},
    "poisson": {"n_grid": 14},
    "anisotropic": {"n_grid": 14, "epsilon": 0.05},
}

PLAN = SolverPlan(schedule=[(0, False), (4, True)], eps=1e-7)


def main() -> None:
    table = Table(
        "Every registered scenario under one plan (CG vs 4P)",
        ["scenario", "n", "colors", "CG iters", "4P iters", "CG/4P", "‖r‖∞ (4P)"],
    )
    for spec in available_scenarios():
        session = SolverSession.from_scenario(
            spec.name, plan=PLAN, **SIZES.get(spec.name, {})
        )
        problem = session.problem
        base, fitted = session.execute()
        resid = float(np.max(np.abs(problem.f - problem.k @ fitted.u)))
        table.add_row(
            spec.name,
            problem.n,
            problem.n_groups,
            base.iterations,
            fitted.iterations,
            base.iterations / fitted.iterations,
            resid,
        )
        counts = session.stats.compile_counts()
        assert counts["colorings"] == 1 and counts["applicator_builds"] == 1
    table.add_note("one SolverSession compile per scenario serves both cells")
    table.add_note("anisotropic/variable-coefficient rows: the new workloads "
                   "beyond the paper")
    print(table.render())


if __name__ == "__main__":
    main()
