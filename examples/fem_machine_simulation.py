#!/usr/bin/env python3
"""Finite Element Machine simulation: Table 3 plus machine internals.

Solves the paper's 60-equation plate on 1, 2, and 5 simulated processors
through one compiled SolverSession — the machines share the session's
blocked system and its cached preconditioner applicators — printing
iterations, simulated seconds, and speedups (Table 3), then shows what
the abstract numbers are made of: the processor assignments (Figure 5),
the local links in use (Figure 4), and the communication ledger.

Run:  python examples/fem_machine_simulation.py
"""

from repro import SolverPlan, SolverSession
from repro.analysis import Table
from repro.machines import speedup_table


def main() -> None:
    session = SolverSession.from_scenario(
        "plate", plan=SolverPlan.table3(eps=1e-6), nrows=6
    )
    machines = {p: session.fem(p) for p in (1, 2, 5)}

    for p in (2, 5):
        print(f"--- {p}-processor assignment (Figure 5) ---")
        print(machines[p].assignment.ascii_map())
        print(f"color balance: {machines[p].assignment.balance_report()}, "
              f"links used: {sorted(machines[p].assignment.links_used)}\n")

    table = Table(
        "Finite Element Machine, m-step SSOR PCG (paper Table 3)",
        ["m", "I", "T(P=1)", "T(P=2)", "speedup", "T(P=5)", "speedup"],
    )
    for m, parametrized in session.plan.schedule:
        results = {
            p: session.fem_solve(m, parametrized, n_procs=p) for p in (1, 2, 5)
        }
        speedups = speedup_table(results)
        table.add_row(
            results[1].label,
            results[1].iterations,
            results[1].seconds,
            results[2].seconds,
            speedups[2],
            results[5].seconds,
            speedups[5],
        )
    table.add_note("paper speedups: 1.92 → 1.80 (P=2), 3.58 → 3.06 (P=5)")
    print(table.render())

    # Where the overhead goes (observation 3 of Section 4).
    detail = Table(
        "Overhead decomposition on 5 processors",
        ["m", "compute s", "border-comm s", "reduction s", "flag s", "records"],
    )
    for m in (0, 3, 6):
        r = session.fem_solve(m, True, n_procs=5)
        detail.add_row(
            r.label, r.compute_seconds, r.comm_seconds,
            r.reduction_seconds, r.flag_seconds, r.total_records,
        )
    detail.add_note(
        "with m > 0 the preconditioner's border exchanges dominate the "
        "inner-product reductions — the paper's observation (3)"
    )
    print()
    print(detail.render())


if __name__ == "__main__":
    main()
