#!/usr/bin/env python3
"""Matrix-free at scale: the stencil backend on meshes CSR regrets.

The regular-mesh scenarios are a handful of constant diagonals — the
grid stencil of the paper's Figure 2 — so the solver never needs the
assembled matrix at all.  ``backend="stencil"`` applies K·x fused from
the stencil and runs the Conrad–Wallach merged SSOR sweeps color-wise
straight off it: no CSR, no permuted color blocks, no factors.  With
``assemble=False`` the sparse matrix is never even built, which is the
point at large n: the peak allocation of the whole pipeline drops to
the vectors the iteration actually touches.

Run:  python examples/stencil_large_mesh.py
"""

import tracemalloc

from repro import SolverPlan, SolverSession, build_scenario
from repro.analysis import Table

N_GRID = 192  # n = 36,864 unknowns — 11× the paper's largest plate system
M = 2


def run(assemble: bool, backend: str) -> tuple[float, int]:
    """Cold end-to-end solve; returns (peak MiB, PCG iterations)."""
    tracemalloc.start()
    try:
        problem = build_scenario("poisson", n_grid=N_GRID, assemble=assemble)
        session = SolverSession(
            problem, plan=SolverPlan.single(M, eps=1e-6, backend=backend)
        )
        solve = session.solve_cell(M)
        assert solve.result.converged
        return tracemalloc.get_traced_memory()[1] / 2**20, solve.iterations
    finally:
        tracemalloc.stop()


def main() -> None:
    print(f"Poisson {N_GRID}×{N_GRID}: {N_GRID * N_GRID} unknowns, "
          f"m = {M} multicolor SSOR PCG\n")

    csr_peak, csr_iters = run(assemble=True, backend="vectorized")
    st_peak, st_iters = run(assemble=False, backend="stencil")

    table = Table(
        "assembled CSR pipeline vs matrix-free stencil backend",
        ["path", "peak MiB", "iterations"],
    )
    table.add_row("assembled (CSR + color blocks)", f"{csr_peak:.1f}", csr_iters)
    table.add_row("matrix-free (stencil)", f"{st_peak:.1f}", st_iters)
    table.add_note("same solver: identical iteration counts, iterates to ≤1e-12")
    table.add_note("stencil path built with assemble=False — no matrix ever exists")
    print(table.render())

    ratio = csr_peak / st_peak
    print(f"\npeak-allocation advantage: {ratio:.2f}× "
          f"(the assembled path's CSR, permuted blocks and factors simply "
          f"never exist)")
    assert csr_iters == st_iters, "backends must agree on the iteration count"


if __name__ == "__main__":
    main()
