#!/usr/bin/env python3
"""Structural-engineering scenario: a loaded plate across mesh refinements.

The workload the paper's introduction motivates: plane-stress displacement
of a rectangular plate, fixed along one edge and pulled along the opposite
one.  This example refines the mesh, solves each system with the m-step
SSOR PCG method, and reports

* the tip displacement (does the physics converge under refinement?),
* CG vs preconditioned iteration growth (CG grows like the mesh dimension,
  the m-step method much more slowly),
* the stress at the fixed edge via displacement gradients.

Run:  python examples/plane_stress_plate.py
"""

import numpy as np

from repro import ElasticMaterial, SolverPlan, SolverSession, build_scenario
from repro.analysis import Table


def tip_displacement(problem, u: np.ndarray) -> float:
    """Mean x-displacement of the loaded edge."""
    mesh = problem.mesh
    tips = [
        problem.mesh.dof_index(int(node), 0)
        for node in mesh.loaded_nodes
        if mesh.node_rank[node] >= 0
    ]
    return float(np.mean(u[tips]))


def main() -> None:
    material = ElasticMaterial(youngs_modulus=1.0, poissons_ratio=0.3)
    table = Table(
        "Plate refinement study (uniform x-traction, E=1, ν=0.3)",
        ["a (rows)", "unknowns", "CG iters", "3-step iters", "4P iters", "tip ux"],
    )
    plan = SolverPlan(
        schedule=[(0, False), (3, False), (4, True)], eps=1e-7
    )
    for a in (6, 10, 14, 20):
        session = SolverSession.from_scenario(
            "plate", plan=plan, nrows=a, material=material
        )
        problem = session.problem
        base, three, fitted = session.execute()
        table.add_row(
            a,
            problem.n,
            base.iterations,
            three.iterations,
            fitted.iterations,
            tip_displacement(problem, base.u),
        )
    table.add_note("CG iterations grow ∝ a; preconditioned growth is much slower")
    print(table.render())

    # Simple post-processing: reaction check — total applied load equals the
    # x-reaction transmitted through any vertical cut (equilibrium).
    problem = build_scenario("plate", nrows=10, material=material)
    session = SolverSession(problem, plan=SolverPlan.single(3, eps=1e-9))
    solve = session.solve_cell(3)
    applied = float(problem.f.sum())
    internal = float(problem.f @ solve.u)  # work done by the load
    print(f"\napplied load resultant: {applied:.6f}")
    print(f"external work f·u:       {internal:.6f} (strain energy ×2)")
    print("equilibrium residual:    "
          f"{np.max(np.abs(problem.k @ solve.u - problem.f)):.2e}")


if __name__ == "__main__":
    main()
