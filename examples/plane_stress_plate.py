#!/usr/bin/env python3
"""Structural-engineering scenario: a loaded plate across mesh refinements.

The workload the paper's introduction motivates: plane-stress displacement
of a rectangular plate, fixed along one edge and pulled along the opposite
one.  This example refines the mesh, solves each system with the m-step
SSOR PCG method, and reports

* the tip displacement (does the physics converge under refinement?),
* CG vs preconditioned iteration growth (CG grows like the mesh dimension,
  the m-step method much more slowly),
* the stress at the fixed edge via displacement gradients.

Run:  python examples/plane_stress_plate.py
"""

import numpy as np

from repro import ElasticMaterial, plate_problem, solve_mstep_ssor
from repro.analysis import Table
from repro.driver import build_blocked_system, ssor_interval


def tip_displacement(problem, u: np.ndarray) -> float:
    """Mean x-displacement of the loaded edge."""
    mesh = problem.mesh
    tips = [
        problem.mesh.dof_index(int(node), 0)
        for node in mesh.loaded_nodes
        if mesh.node_rank[node] >= 0
    ]
    return float(np.mean(u[tips]))


def main() -> None:
    material = ElasticMaterial(youngs_modulus=1.0, poissons_ratio=0.3)
    table = Table(
        "Plate refinement study (uniform x-traction, E=1, ν=0.3)",
        ["a (rows)", "unknowns", "CG iters", "3-step iters", "4P iters", "tip ux"],
    )
    for a in (6, 10, 14, 20):
        problem = plate_problem(a, material=material)
        blocked = build_blocked_system(problem)
        interval = ssor_interval(blocked)
        base = solve_mstep_ssor(problem, 0, blocked=blocked, eps=1e-7)
        three = solve_mstep_ssor(problem, 3, blocked=blocked, eps=1e-7)
        fitted = solve_mstep_ssor(
            problem, 4, parametrized=True, interval=interval,
            blocked=blocked, eps=1e-7,
        )
        table.add_row(
            a,
            problem.n,
            base.iterations,
            three.iterations,
            fitted.iterations,
            tip_displacement(problem, base.u),
        )
    table.add_note("CG iterations grow ∝ a; preconditioned growth is much slower")
    print(table.render())

    # Simple post-processing: reaction check — total applied load equals the
    # x-reaction transmitted through any vertical cut (equilibrium).
    problem = plate_problem(10, material=material)
    solve = solve_mstep_ssor(problem, 3, eps=1e-9)
    applied = float(problem.f.sum())
    internal = float(problem.f @ solve.u)  # work done by the load
    print(f"\napplied load resultant: {applied:.6f}")
    print(f"external work f·u:       {internal:.6f} (strain energy ×2)")
    print("equilibrium residual:    "
          f"{np.max(np.abs(problem.k @ solve.u - problem.f)):.2e}")


if __name__ == "__main__":
    main()
