#!/usr/bin/env python3
"""Irregular regions: the paper's open problem, end to end.

The conclusions of Adams (1983) flag irregular domains as future work —
"the grid must be colored and for array machines must also be distributed
to the processors in light of this coloring."  This example does both
halves on an L-shaped plate:

1. color the irregular mesh with greedy multicoloring (no closed-form
   R/B/G rule exists here) and run the unchanged m-step SSOR PCG method;
2. recover the stress field and locate the re-entrant-corner concentration
   (the reason engineers care about L-shaped domains).

Run:  python examples/irregular_region.py
"""

import numpy as np

from repro.analysis import Table
from repro import SolverPlan, SolverSession
from repro.fem.stress import nodal_stresses, von_mises

SCHEDULE = [(0, False), (1, False), (2, False), (2, True), (4, True), (6, True)]


def main() -> None:
    session = SolverSession.from_scenario(
        "lshape", plan=SolverPlan(schedule=SCHEDULE, eps=1e-8),
        a=13, notch_fraction=0.5,
    )
    problem = session.problem
    print("L-shaped domain ('x' clamped, '#' active, '.' removed):")
    print(problem.domain_ascii())
    print(f"\n{problem.n} unknowns, greedy coloring found "
          f"{problem.n_groups} color groups\n")

    table = Table(
        "m-step SSOR PCG on the L-shaped plate",
        ["m", "iterations", "‖r‖∞"],
    )
    best = None
    for solve in session.execute():
        resid = float(np.max(np.abs(problem.f - problem.k @ solve.u)))
        table.add_row(solve.label, solve.iterations, resid)
        best = solve
    print(table.render())

    # Stress hot spot: the re-entrant corner. Map the reduced solution back
    # to the full mesh for recovery (inactive nodes stay at zero).
    mesh = problem.mesh
    u_full_mesh = np.zeros(mesh.n_unknowns)
    rank = mesh.node_rank
    for local, node in enumerate(problem.free_nodes):
        r = int(rank[node])
        u_full_mesh[2 * r] = best.u[2 * local]
        u_full_mesh[2 * r + 1] = best.u[2 * local + 1]
    nodal = nodal_stresses(mesh, problem.material, u_full_mesh)
    vm = von_mises(nodal)
    active = problem.active_nodes
    hot = active[np.argmax(vm[active])]
    i, j = mesh.node_ij(int(hot))
    print(f"\npeak von Mises stress {vm[hot]:.3f} at grid node (col {i}, row {j})")
    print("(on the reduced section next to the notch, where the load "
          "concentrates — the engineering answer)")


if __name__ == "__main__":
    main()
