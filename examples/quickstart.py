#!/usr/bin/env python3
"""Quickstart: the m-step SSOR preconditioned CG method in five lines.

Builds the paper's 60-equation plane-stress plate (6 rows × 6 columns of
nodes, left edge fixed, right edge loaded) from the scenario registry,
compiles a solver plan against it once — coloring, blocked system,
spectrum, cached kernels — and executes the full Table-3 m-schedule
against that compiled state, printing the iteration counts that Table 3's
I column reports.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import SolverPlan, SolverSession
from repro.analysis import Table


def main() -> None:
    # plan → compile → execute: one session serves every schedule cell.
    session = SolverSession.from_scenario(
        "plate", plan=SolverPlan.table3(eps=1e-6), nrows=6
    )
    problem = session.problem
    print(f"Problem: {problem.mesh}")
    print(f"Coloring (Figure 1):\n{problem.mesh.coloring_ascii()}\n")

    session.compile()
    interval = session.interval
    print(f"spectrum of P⁻¹K: [{interval[0]:.4f}, {interval[1]:.4f}]")
    print(f"compiled once: {session.stats.compile_counts()}\n")

    table = Table(
        "m-step SSOR PCG on the 60-equation plate (paper Table 3, I column)",
        ["m", "iterations", "inner products", "residual"],
    )
    for solve in session.execute():
        residual = float(np.max(np.abs(problem.f - problem.k @ solve.u)))
        table.add_row(
            solve.label,
            solve.iterations,
            solve.result.counter.inner_products,
            residual,
        )
    table.add_note("paper reports I = 48, 19, 13, 11, 11, 8, 10, 7, 5, 5")
    print(table.render())


if __name__ == "__main__":
    main()
