#!/usr/bin/env python3
"""Quickstart: the m-step SSOR preconditioned CG method in five lines.

Builds the paper's 60-equation plane-stress plate (6 rows × 6 columns of
nodes, left edge fixed, right edge loaded), then solves it with plain CG
and with the m-step multicolor SSOR preconditioner — unparametrized and
parametrized — printing the iteration counts that Table 3's I column
reports.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import plate_problem, solve_mstep_ssor
from repro.analysis import Table
from repro.driver import build_blocked_system, ssor_interval


def main() -> None:
    problem = plate_problem(6)
    print(f"Problem: {problem.mesh}")
    print(f"Coloring (Figure 1):\n{problem.mesh.coloring_ascii()}\n")

    # Reusable pieces: the blocked color system and the spectrum of P⁻¹K.
    blocked = build_blocked_system(problem)
    interval = ssor_interval(blocked)
    print(f"spectrum of P⁻¹K: [{interval[0]:.4f}, {interval[1]:.4f}]\n")

    table = Table(
        "m-step SSOR PCG on the 60-equation plate (paper Table 3, I column)",
        ["m", "iterations", "inner products", "residual"],
    )
    for m, parametrized in [
        (0, False), (1, False), (2, False), (2, True), (3, False),
        (3, True), (4, False), (4, True), (5, True), (6, True),
    ]:
        solve = solve_mstep_ssor(
            problem, m, parametrized=parametrized,
            interval=interval, blocked=blocked, eps=1e-6,
        )
        residual = float(np.max(np.abs(problem.f - problem.k @ solve.u)))
        table.add_row(
            solve.label,
            solve.iterations,
            solve.result.counter.inner_products,
            residual,
        )
    table.add_note("paper reports I = 48, 19, 13, 11, 11, 8, 10, 7, 5, 5")
    print(table.render())


if __name__ == "__main__":
    main()
