#!/usr/bin/env python3
"""Parallel tour: real worker processes, bitwise-identical numerics.

Everything the machine simulators *model* — cheap local work amortizing
the expensive global operations across processors — the ``repro.parallel``
layer now *does*, on this machine's cores:

1. a registered multi-load **workload** (``plate-service``: edge pressure,
   assembled shear, two point loads) compiles to an ``(n, k)`` block whose
   width sizes the plan (``WorkloadSpec.solver_plan``);
2. the block's column groups solve on **worker processes**
   (:meth:`SolverSession.solve_cell_block` with ``sharding=``, i.e.
   :func:`repro.parallel.sharded_block_pcg`) — workers rebuild the
   preconditioner from a picklable recipe, never from a pickled live
   applicator — and the result is verified **bitwise identical** to the
   serial lockstep, column for column;
3. a CYBER Table-2 schedule fans its cells across workers
   (:func:`repro.parallel.sharded_schedule`), reproducing the exact
   simulated clocks and op ledgers of the single-process pass.

Run:  python examples/parallel_tour.py
"""

import numpy as np

from repro import SolverPlan, SolverSession
from repro.analysis import Table
from repro.parallel import available_workers
from repro.pipeline import workload

M = 3  # preconditioner steps (parametrized least-squares schedule)
WORKERS = 2


def main() -> None:
    spec = workload("plate-service")
    plan = spec.solver_plan(SolverPlan.single(M, True, eps=1e-7))
    session = SolverSession.from_scenario("plate", plan=plan, nrows=12)
    problem = session.problem
    F = spec.build_block(problem)

    print(f"workload {spec.name!r}: {spec.width} load cases "
          f"(plan block_rhs = {plan.block_rhs}); "
          f"host cores available: {available_workers()}")

    serial = session.solve_cell_block(M, True, F=F)
    sharded = session.solve_cell_block(M, True, F=F, sharding=WORKERS)

    table = Table(
        f"Workload {spec.name!r} sharded over {WORKERS} worker processes "
        f"({problem.mesh})",
        ["load case", "iterations", "converged", "‖f − K u‖∞"],
    )
    for j, label in enumerate(spec.case_labels):
        resid = float(np.max(np.abs(F[:, j] - problem.k @ sharded.u[:, j])))
        table.add_row(
            label,
            int(sharded.iterations[j]),
            bool(sharded.result.converged[j]),
            resid,
        )
    table.add_note(f"shard dispatches: {session.stats.shard_dispatches}; "
                   "workers rebuilt the applicator from its recipe")
    print(table.render())

    assert np.array_equal(serial.u, sharded.u)
    assert np.array_equal(serial.iterations, sharded.iterations)
    assert [c.as_dict() for c in serial.result.counters] == [
        c.as_dict() for c in sharded.result.counters
    ]
    print("verified: sharded iterates, iteration counts and per-column op "
          "counters are bitwise identical to the serial block lockstep")

    # A whole simulated Table-2 schedule, cells fanned across workers.
    schedule_session = SolverSession(
        problem, plan=SolverPlan.table2(eps=1e-6)
    )
    direct = schedule_session.run_cyber_schedule()
    fanned = schedule_session.run_cyber_schedule(workers=WORKERS)
    assert all(
        a.iterations == b.iterations and a.seconds == b.seconds
        for a, b in zip(direct, fanned)
    )
    rows = ", ".join(f"{r.label}:{r.iterations}" for r in fanned[:5])
    print(f"CYBER schedule cells sharded over {WORKERS} workers reproduce "
          f"the simulated clocks exactly (first rows: {rows}, …)")


if __name__ == "__main__":
    main()
