#!/usr/bin/env python3
"""Polynomial preconditioner zoo: splittings × parametrizations.

Section 2 generalizes Johnson–Micchelli–Paul's parametrized Neumann series
from the Jacobi splitting to *any* splitting.  This example compares, on
one plate problem:

* the truncated Neumann series (Jacobi splitting, αᵢ = 1 — Dubois,
  Greenbaum & Rodrigue 1979),
* the parametrized Jacobi method (Johnson–Micchelli–Paul),
* the unparametrized and parametrized m-step SSOR methods (the paper), and
* least-squares versus min–max parametrizations,

reporting the exact condition number κ(M_m⁻¹K) and measured PCG iterations
for each.

Run:  python examples/polynomial_preconditioners.py
"""

import numpy as np

from repro import build_scenario
from repro.analysis import Table, ascii_plot
from repro.core import (
    JacobiSplitting,
    MStepPreconditioner,
    SSORSplitting,
    full_splitting_spectrum,
    least_squares_coefficients,
    minmax_coefficients,
    neumann_coefficients,
    pcg,
    preconditioned_condition_number,
)


def coefficient_sets(m: int, interval) -> dict[str, np.ndarray]:
    return {
        "unparametrized": neumann_coefficients(m),
        "least-squares": least_squares_coefficients(m, interval),
        "min–max": minmax_coefficients(m, interval),
    }


def main() -> None:
    problem = build_scenario("plate", nrows=6)
    k, f = problem.k, problem.f
    m = 4

    table = Table(
        f"m = {m} step preconditioners on the 60-equation plate",
        ["splitting", "parametrization", "κ(M⁻¹K)", "PCG iterations"],
    )
    base = pcg(k, f, eps=1e-8)
    table.add_row("—", "none (plain CG)", None, base.iterations)

    for splitting_cls, name in ((JacobiSplitting, "Jacobi"), (SSORSplitting, "SSOR")):
        splitting = splitting_cls(k)
        eigs = full_splitting_spectrum(splitting)
        interval = (float(eigs.min()), float(eigs.max()))
        for label, coeffs in coefficient_sets(m, interval).items():
            kappa = preconditioned_condition_number(splitting, coeffs)
            precond = MStepPreconditioner(splitting, coeffs)
            result = pcg(k, f, preconditioner=precond, eps=1e-8)
            table.add_row(name, label, kappa, result.iterations)
    table.add_note("Jacobi + unparametrized = truncated Neumann series (Dubois et al.)")
    table.add_note("Jacobi + parametrized = Johnson–Micchelli–Paul")
    print(table.render())

    # How the SSOR interval shrinks the polynomial's job: Jacobi spectra
    # span (0, 2), SSOR spectra live inside (0, 1].
    for splitting_cls, name in ((JacobiSplitting, "Jacobi"), (SSORSplitting, "SSOR")):
        eigs = full_splitting_spectrum(splitting_cls(k))
        print(f"{name:>7} splitting spectrum: [{eigs.min():.4f}, {eigs.max():.4f}]")

    # The eigenvalue maps themselves: why least squares clusters and
    # min–max equioscillates.
    ssor = SSORSplitting(k)
    eigs = full_splitting_spectrum(ssor)
    interval = (float(eigs.min()), float(eigs.max()))
    mu = np.linspace(interval[0], interval[1], 80)
    from repro.core import eigenvalue_map

    print()
    print(
        ascii_plot(
            f"q(μ) for m = {m} on the SSOR interval",
            mu,
            {
                "unparametrized": eigenvalue_map(neumann_coefficients(m))(mu).tolist(),
                "least-squares": eigenvalue_map(
                    least_squares_coefficients(m, interval)
                )(mu).tolist(),
                "min–max": eigenvalue_map(minmax_coefficients(m, interval))(mu).tolist(),
            },
            width=70,
            height=14,
        )
    )


if __name__ == "__main__":
    main()
