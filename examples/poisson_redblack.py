#!/usr/bin/env python3
"""Beyond the plate: red/black Poisson with the same machinery.

The paper notes Algorithm 2 "can easily be modified to solve problems whose
domains are discretized by more complicated finite elements or finite
differences as long as a multicolor ordering is used."  This example runs
the identical code path — scenario registry, solver plan, compiled session
— on the 5-point Poisson problem, whose multicolor ordering is the
classical red/black checkerboard (two colors instead of six).

Run:  python examples/poisson_redblack.py
"""

import numpy as np

from repro import SolverPlan, SolverSession, build_scenario
from repro.analysis import Table
from repro.multicolor import greedy_multicolor

SCHEDULE = [(0, False), (1, False), (2, False), (2, True), (4, True), (6, True)]


def main() -> None:
    for n in (16, 32):
        session = SolverSession.from_scenario(
            "poisson", plan=SolverPlan(schedule=SCHEDULE, eps=1e-8), n_grid=n
        )
        problem = session.problem
        interval = session.interval
        print(f"Poisson {n}×{n}: {problem.n} unknowns, "
              f"2 colors, spectrum of P⁻¹K ⊂ [{interval[0]:.4f}, {interval[1]:.4f}]")

        table = Table(
            f"red/black m-step SSOR PCG, {n}×{n} Poisson",
            ["m", "iterations", "‖r‖∞"],
        )
        for solve in session.execute():
            table.add_row(
                solve.label,
                solve.iterations,
                float(np.max(np.abs(problem.f - problem.k @ solve.u))),
            )
        print(table.render())
        print()

    # The greedy coloring fallback (for irregular regions — the paper's
    # concluding open problem) discovers the two-coloring by itself.
    problem = build_scenario("poisson", n_grid=12)
    colors = greedy_multicolor(problem.k)
    print(f"greedy coloring found {colors.max() + 1} colors "
          f"(red/black rediscovered)")


if __name__ == "__main__":
    main()
