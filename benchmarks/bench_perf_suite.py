"""Kernel-backend perf suite (pytest-benchmark flavor of perf_report.py).

Every test carries the ``perf`` marker, which tier-1 excludes by default
(see pytest.ini); run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_perf_suite.py -m perf

The machine-readable trajectory artifact is produced by
``python benchmarks/perf_report.py`` instead — this suite is for
interactive comparison runs (``--benchmark-compare`` etc.).
"""

import numpy as np
import pytest

from repro.core import neumann_coefficients
from repro.core.mstep import MStepPreconditioner
from repro.core.splittings import SSORSplitting
from repro.driver import TABLE2_SCHEDULE, solve_mstep_ssor
from repro.multicolor import MStepSSOR

from _common import cached_blocked, cached_interval, cached_plate

pytestmark = pytest.mark.perf

APPLY_MESH = 41
SWEEP_MESH = 20


@pytest.fixture(params=["vectorized", "reference"])
def backend(request):
    return request.param


def test_ssor_apply_p_inv(benchmark, backend):
    blocked = cached_blocked(APPLY_MESH)
    splitting = SSORSplitting(blocked.permuted, backend=backend)
    r = np.random.default_rng(0).normal(size=blocked.n)
    splitting.apply_p_inv(r)  # build the cached solvers outside the timing
    out = benchmark(splitting.apply_p_inv, r)
    assert out.shape == r.shape


def test_mstep_apply(benchmark, backend):
    blocked = cached_blocked(APPLY_MESH)
    precond = MStepPreconditioner(
        SSORSplitting(blocked.permuted, backend=backend), neumann_coefficients(4)
    )
    r = np.random.default_rng(1).normal(size=blocked.n)
    precond.apply(r)
    out = benchmark(precond.apply, r)
    assert out.shape == r.shape


def test_mstep_ssor_sweep(benchmark):
    blocked = cached_blocked(APPLY_MESH)
    applicator = MStepSSOR(blocked, neumann_coefficients(4))
    r = np.random.default_rng(1).normal(size=blocked.n)
    out = benchmark(applicator.apply, r)
    assert out.shape == r.shape


def test_full_pcg(benchmark, backend):
    problem = cached_plate(SWEEP_MESH)
    blocked = cached_blocked(SWEEP_MESH)

    def run():
        return solve_mstep_ssor(
            problem, 3, blocked=blocked, eps=1e-6,
            applicator="splitting", backend=backend,
        )

    solve = benchmark(run)
    assert solve.result.converged


def test_table2_schedule(benchmark, backend):
    problem = cached_plate(SWEEP_MESH)
    blocked = cached_blocked(SWEEP_MESH)
    interval = cached_interval(SWEEP_MESH)

    def run():
        total = 0
        for m, parametrized in TABLE2_SCHEDULE:
            solve = solve_mstep_ssor(
                problem, m, parametrized=parametrized, interval=interval,
                blocked=blocked, eps=1e-6,
                applicator="splitting", backend=backend,
            )
            assert solve.result.converged
            total += solve.iterations
        return total

    total = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=1)
    assert total > 0
