"""Kernel-backend perf suite (pytest-benchmark flavor of perf_report.py).

Every test carries the ``perf`` marker, which tier-1 excludes by default
(see pytest.ini); run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_perf_suite.py -m perf

The machine-readable trajectory artifact is produced by
``python benchmarks/perf_report.py`` instead — this suite is for
interactive comparison runs (``--benchmark-compare`` etc.).
"""

import numpy as np
import pytest

from repro.core import neumann_coefficients
from repro.core.mstep import MStepPreconditioner
from repro.core.splittings import SSORSplitting
from repro.driver import TABLE2_SCHEDULE, solve_mstep_ssor
from repro.multicolor import MStepSSOR

from _common import cached_blocked, cached_interval, cached_plate

pytestmark = pytest.mark.perf

APPLY_MESH = 41
SWEEP_MESH = 20


@pytest.fixture(params=["vectorized", "reference"])
def backend(request):
    return request.param


def test_ssor_apply_p_inv(benchmark, backend):
    blocked = cached_blocked(APPLY_MESH)
    splitting = SSORSplitting(blocked.permuted, backend=backend)
    r = np.random.default_rng(0).normal(size=blocked.n)
    splitting.apply_p_inv(r)  # build the cached solvers outside the timing
    out = benchmark(splitting.apply_p_inv, r)
    assert out.shape == r.shape


def test_mstep_apply(benchmark, backend):
    blocked = cached_blocked(APPLY_MESH)
    precond = MStepPreconditioner(
        SSORSplitting(blocked.permuted, backend=backend), neumann_coefficients(4)
    )
    r = np.random.default_rng(1).normal(size=blocked.n)
    precond.apply(r)
    out = benchmark(precond.apply, r)
    assert out.shape == r.shape


def test_mstep_ssor_sweep(benchmark):
    blocked = cached_blocked(APPLY_MESH)
    applicator = MStepSSOR(blocked, neumann_coefficients(4))
    r = np.random.default_rng(1).normal(size=blocked.n)
    out = benchmark(applicator.apply, r)
    assert out.shape == r.shape


def test_full_pcg(benchmark, backend):
    problem = cached_plate(SWEEP_MESH)
    blocked = cached_blocked(SWEEP_MESH)

    def run():
        return solve_mstep_ssor(
            problem, 3, blocked=blocked, eps=1e-6,
            applicator="splitting", backend=backend,
        )

    solve = benchmark(run)
    assert solve.result.converged


def test_block_pcg_lockstep(benchmark):
    """BLOCK-width multi-RHS solve through one block_pcg lockstep."""
    from repro.pipeline import SolverPlan, SolverSession, synthetic_load_block

    problem = cached_plate(SWEEP_MESH)
    blocked = cached_blocked(SWEEP_MESH)
    width = 6
    session = SolverSession(
        problem, plan=SolverPlan.single(3, block_rhs=width), blocked=blocked
    ).compile()
    F = synthetic_load_block(problem, width)

    block = benchmark(session.solve_cell_block, 3, F=F)
    assert block.result.all_converged


def test_fem_schedule_lockstep(benchmark):
    """The full Table-3 schedule through one batched FEM simulator pass."""
    from repro.driver import TABLE3_SCHEDULE, mstep_coefficients
    from repro.machines import FiniteElementMachine

    problem = cached_plate(SWEEP_MESH)
    blocked = cached_blocked(SWEEP_MESH)
    interval = cached_interval(SWEEP_MESH)
    machine = FiniteElementMachine(problem, 4, blocked=blocked)
    cells = [
        (m, mstep_coefficients(m, par, interval) if m >= 1 else None)
        for m, par in TABLE3_SCHEDULE
    ]

    results = benchmark.pedantic(
        machine.solve_schedule, args=(cells,), kwargs={"eps": 1e-6},
        rounds=1, iterations=1, warmup_rounds=1,
    )
    assert all(r.converged for r in results)


def test_table2_schedule(benchmark, backend):
    problem = cached_plate(SWEEP_MESH)
    blocked = cached_blocked(SWEEP_MESH)
    interval = cached_interval(SWEEP_MESH)

    def run():
        total = 0
        for m, parametrized in TABLE2_SCHEDULE:
            solve = solve_mstep_ssor(
                problem, m, parametrized=parametrized, interval=interval,
                blocked=blocked, eps=1e-6,
                applicator="splitting", backend=backend,
            )
            assert solve.result.converged
            total += solve.iterations
        return total

    total = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=1)
    assert total > 0
