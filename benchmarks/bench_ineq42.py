"""Section 4's performance analysis — equations (4.1) and (4.2).

The paper evaluates inequality (2) of (4.2) at m = 9 to explain when ten
preconditioner steps beat nine: "the values of the left and right side …
for a = 41, 62, and 80 respectively.  Hence, ten steps are preferable to
nine only for a = 80."

This bench regenerates that analysis from *measured* quantities: iteration
counts N_m from real solves, and A (outer iteration cost) and B (cost per
preconditioner step) fitted from the CYBER simulator's clock.  It prints
the decision table for every consecutive m-pair, plus the time-optimal m
per mesh — both the raw argmin and the plateau-tolerant version (the T_m
curves are nearly flat near their minimum; the paper's own a = 20 column
spreads only 0.350/0.347/0.348 s across 4P/5P/6P).
"""

import numpy as np

from repro.analysis import (
    PerformanceModel,
    Table,
    effective_optimal_m,
    inequality_42,
)
from repro.driver import mstep_coefficients
from repro.machines import CyberMachine

from _common import TABLE2_EPS, cached_interval, cached_plate, emit, run_once, table2_meshes

M_VALUES = list(range(0, 11))


def measure_mesh(a: int):
    problem = cached_plate(a)
    interval = cached_interval(a)
    machine = CyberMachine(problem)
    counts: dict[int, int] = {}
    times: dict[int, float] = {}
    precond: dict[int, float] = {}
    for m in M_VALUES:
        coeffs = mstep_coefficients(m, m >= 2, interval) if m else None
        res = machine.solve(m, coeffs, eps=TABLE2_EPS)
        counts[m] = res.iterations
        times[m] = res.seconds
        precond[m] = res.preconditioner_seconds
    # A: outer cost per iteration (measured on the m = 0 run);
    # B: preconditioner cost per step per iteration, averaged over m ≥ 1.
    a_cost = (times[0]) / counts[0]
    b_samples = [
        precond[m] / (m * counts[m]) for m in M_VALUES if m >= 1
    ]
    b_cost = float(np.mean(b_samples))
    return counts, times, PerformanceModel(a=a_cost, b=b_cost)


def build_table():
    meshes = table2_meshes()
    table = Table(
        "Inequality (4.2): when do m+1 preconditioner steps beat m? (CYBER model)",
        ["a", "m", "N_m", "N_{m+1}", "B/A (left)", "threshold (right)", "take m+1?"],
    )
    argmin_m = {}
    plateau_m = {}
    for a in meshes:
        counts, times, model = measure_mesh(a)
        argmin_m[a] = min(times, key=times.__getitem__)
        plateau_m[a] = effective_optimal_m(times, rel_tol=0.02)
        for m in range(1, 10):
            decision = inequality_42(m, counts[m], counts[m + 1], model)
            left, right = decision.sides()
            table.add_row(
                a, m, counts[m], counts[m + 1], left, right, decision.beneficial
            )
    table.add_note(f"time-optimal m per mesh (argmin):  {argmin_m}")
    table.add_note(f"time-optimal m per mesh (2% plateau): {plateau_m}")
    table.add_note("paper: at m = 9 only the largest mesh justifies a tenth step")
    return table.render(), argmin_m, plateau_m


def test_ineq42(benchmark):
    text, argmin_m, plateau_m = run_once(benchmark, build_table)
    emit("ineq42_optimal_m", text)
    meshes = sorted(plateau_m)
    # Observation (2): the beneficial number of steps grows with problem
    # size.  The T_m plateau is noisy at the top (the paper's own pairs at
    # m = 9 are non-monotone across meshes: 0.15, 0.5, 6), so assert the
    # overall trend plus at-most-one-step local dips.
    values = [plateau_m[a] for a in meshes]
    if len(values) >= 2:
        assert values[-1] > values[0], values
        assert all(b >= a - 1 for a, b in zip(values, values[1:])), values
    assert all(argmin_m[a] >= plateau_m[a] for a in meshes)
