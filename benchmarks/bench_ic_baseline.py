"""Baseline — ICCG versus the m-step SSOR method on the vector machine.

The serial state of the art around the paper (Concus–Golub–O'Leary 1976,
Chandra 1978) preconditions CG with incomplete factorizations.  The paper's
implicit claim is architectural: IC's triangular solves are first-order
recurrences that run on the *scalar* unit of a vector machine, while every
operation of the m-step multicolor SSOR sweep streams at vector length.

This bench measures both sides: iteration counts (ICCG is competitive or
better serially) and simulated CYBER time per iteration, where the IC
application costs ``2·nnz(L)`` scalar operations against the sweep's
vector-length work — flipping the verdict exactly as the paper's design
assumes.
"""

from repro.analysis import Table
from repro.core import (
    AbsoluteResidual,
    MStepPreconditioner,
    SSORSplitting,
    neumann_coefficients,
    pcg,
)
from repro.core.ichol import ICPreconditioner
from repro.driver import mstep_coefficients
from repro.machines import CYBER_203, CyberMachine

from _common import cached_interval, cached_plate, emit, run_once


def build_table():
    rows = []
    for a in (11, 20):
        problem = cached_plate(a)
        interval = cached_interval(a)
        machine = CyberMachine(problem)
        stop = AbsoluteResidual(1e-8)

        # ICCG: measured iterations + modeled CYBER cost per application.
        ic = ICPreconditioner(problem.k)
        ic_result = pcg(problem.k, problem.f, preconditioner=ic, stopping=stop)
        matvec_probe = machine.solve(0, eps=1e-7)
        outer_per_iter = matvec_probe.seconds / matvec_probe.iterations
        ic_seconds = ic_result.iterations * (
            outer_per_iter + ic.cyber_apply_seconds(CYBER_203)
        )

        # 1-step SSOR: IC's iteration-count league (one sweep ≈ one
        # incomplete factor application), same stopping rule.
        ssor1 = MStepPreconditioner(
            SSORSplitting(problem.k), neumann_coefficients(1)
        )
        ssor1_result = pcg(
            problem.k, problem.f, preconditioner=ssor1, stopping=stop
        )

        # 4P-step SSOR on the simulated machine: the paper's method.
        coeffs = mstep_coefficients(4, True, interval)
        ssor_result = machine.solve(4, coeffs, eps=1e-7)

        rows.append(
            {
                "a": a,
                "ic_iters": ic_result.iterations,
                "ic_seconds": ic_seconds,
                "ssor1_iters": ssor1_result.iterations,
                "ssor_iters": ssor_result.iterations,
                "ssor_seconds": ssor_result.seconds,
            }
        )

    table = Table(
        "ICCG (scalar triangular solves) vs m-step SSOR on the simulated CYBER 203",
        ["a", "ICCG iters", "1-step SSOR iters", "ICCG T (s)",
         "4P iters", "4P T (s)", "SSOR wins?"],
    )
    for row in rows:
        table.add_row(
            row["a"], row["ic_iters"], row["ssor1_iters"], row["ic_seconds"],
            row["ssor_iters"], row["ssor_seconds"],
            row["ssor_seconds"] < row["ic_seconds"],
        )
    table.add_note("IC application modeled as 2·nnz(L) scalar ops (recurrences don't vectorize)")
    table.add_note("the architectural argument behind the paper: fewer iterations ≠ faster on the pipes")
    return table.render(), rows


def test_ic_baseline(benchmark):
    text, rows = run_once(benchmark, build_table)
    emit("baseline_iccg", text)
    for row in rows:
        # Serially, ICCG's iterations sit in the 1-step SSOR league…
        assert row["ic_iters"] <= 1.3 * row["ssor1_iters"]
        # …but on the vector machine the m-step method wins in time.
        assert row["ssor_seconds"] < row["ic_seconds"]
