"""Figure 5 — processor assignments for the Table-3 runs.

Two processors: the 6×5 unconstrained grid split into two 3×5 rectangles.
Five processors: one column of 6 nodes each.  Both give every processor an
equal number of R, B, G nodes *and* equal border-node counts — the paper's
argument that ideal speedups of 2 and 5 would be achievable without
communication costs.
"""

from repro.fem import PlateMesh
from repro.machines import Assignment, ProcessorGrid

from _common import emit, run_once


def build_figure() -> str:
    mesh = PlateMesh(6, 6)
    sections = []
    for n_procs in (2, 5):
        grid = ProcessorGrid.for_count(n_procs, mesh)
        assignment = Assignment.rectangles(mesh, grid)
        report = assignment.balance_report()
        borders = {
            pair: int(nodes.size) for pair, nodes in assignment.border_pairs.items()
        }
        sections += [
            f"Figure 5 — {n_procs}-processor assignment "
            f"(grid {grid.prows}×{grid.pcols})",
            "-" * 60,
            assignment.ascii_map(),
            "color counts per processor: "
            f"{[tuple(int(c) for c in assignment.color_counts(p)) for p in range(n_procs)]}",
            f"border nodes per directed pair: {borders}",
            f"balance: {report}",
            "",
        ]
    return "\n".join(sections).rstrip()


def test_fig5(benchmark):
    text = run_once(benchmark, build_figure)
    emit("fig5_assignments", text)
    # Perfect balance for both Table-3 partitions.
    assert "'max_color_spread': 0" in text
    assert "2-processor" in text and "5-processor" in text
