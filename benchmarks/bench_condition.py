"""Ablation — κ(M_m⁻¹K) versus m, and the Adams-1982 bound.

Section 2.1's theoretical backdrop: for the SSOR splitting the condition
number of the preconditioned operator decreases with m, but the ratio
κ(K̂₁)/κ(K̂_m) is at most m — so unparametrized steps hit diminishing
returns, and the parametrization is what makes larger m pay (Section 4
verifies in time; this bench verifies in spectra).
"""

from repro.analysis import Table, condition_study
from repro.core import SSORSplitting, least_squares_coefficients

from _common import cached_blocked, cached_interval, cached_plate, emit, run_once


def build_table():
    problem = cached_plate(8)
    splitting = SSORSplitting(cached_blocked(8).permuted)
    interval = cached_interval(8)
    plain = condition_study(splitting, m_max=8)
    fitted = condition_study(
        splitting,
        m_max=8,
        coefficients_for=lambda m: least_squares_coefficients(m, interval),
    )
    table = Table(
        f"κ(M_m⁻¹K) versus m — SSOR splitting, a = 8 plate (κ(K) = {plain.kappa_k:.1f})",
        ["m", "κ unparametrized", "κ₁/κ_m", "bound m", "κ least-squares", "√(κ₁/κ_m)"],
    )
    for m in sorted(plain.kappas):
        table.add_row(
            m,
            plain.kappas[m],
            plain.ratio(m),
            m,
            fitted.kappas[m],
            plain.expected_iteration_gain(m),
        )
    table.add_note("Adams 1982: κ decreases with m and κ₁/κ_m ≤ m (both visible)")
    table.add_note("the least-squares column shows why parametrized m keeps paying")
    return table.render(), plain, fitted


def test_condition_study(benchmark):
    text, plain, fitted = run_once(benchmark, build_table)
    emit("ablation_condition_vs_m", text)
    assert plain.monotone_decreasing()
    assert plain.bound_satisfied()
    for m in (3, 5, 8):
        assert fitted.kappas[m] <= plain.kappas[m] * 1.05


def test_spectrum_interval_speed(benchmark):
    """Micro-benchmark: measuring [λ₁, λ_n] of P⁻¹K on the a = 20 plate."""
    from repro.core import spectrum_interval

    splitting = SSORSplitting(cached_blocked(20).permuted)
    lo, hi = benchmark(spectrum_interval, splitting)
    assert 0 < lo < hi <= 1.0 + 1e-9
