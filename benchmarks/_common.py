"""Shared infrastructure for the benchmark harness.

Every bench regenerates one of the paper's tables or figures.  The rendered
text is written to ``benchmarks/out/<name>.txt`` (EXPERIMENTS.md quotes
these artifacts) and printed, while pytest-benchmark records the runtime of
the regeneration itself.

Mesh sizes for the heavy Table-2 sweep can be overridden with the
``REPRO_TABLE2_MESHES`` environment variable (comma-separated ``a`` values)
— e.g. ``REPRO_TABLE2_MESHES=11,20`` for a quick pass.
"""

from __future__ import annotations

import os
from functools import lru_cache
from pathlib import Path

from repro.driver import (
    TABLE2_EPS,  # noqa: F401 - re-exported for the benches
    TABLE2_SCHEDULE,  # noqa: F401 - re-exported for the benches
    TABLE3_SCHEDULE,  # noqa: F401 - re-exported for the benches
)
from repro.pipeline import SolverPlan, SolverSession, build_scenario

OUT_DIR = Path(__file__).parent / "out"


def table2_meshes() -> list[int]:
    raw = os.environ.get("REPRO_TABLE2_MESHES", "20,41,62,80")
    return [int(tok) for tok in raw.split(",") if tok.strip()]


# TABLE2_EPS lives in repro.driver (next to the schedules) and is
# re-exported above so the benches and the CLI share one definition.


def emit(name: str, text: str) -> str:
    """Persist a rendered table/figure and echo it to stdout."""
    OUT_DIR.mkdir(parents=True, exist_ok=True)
    path = OUT_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[written to {path}]")
    return text


@lru_cache(maxsize=None)
def cached_plate(a: int):
    return build_scenario("plate", nrows=a)


@lru_cache(maxsize=None)
def cached_session(a: int) -> SolverSession:
    """One compiled Table-2 session per mesh — every bench shares its
    coloring, blocked system, interval, coefficients and kernels."""
    return SolverSession(
        cached_plate(a), plan=SolverPlan.table2(eps=TABLE2_EPS)
    )


def cached_blocked(a: int):
    return cached_session(a).blocked


def cached_interval(a: int) -> tuple[float, float]:
    return cached_session(a).interval


def run_once(benchmark, fn):
    """Benchmark a heavy regeneration exactly once (no repeat rounds)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
