"""Shared infrastructure for the benchmark harness.

Every bench regenerates one of the paper's tables or figures.  The rendered
text is written to ``benchmarks/out/<name>.txt`` (EXPERIMENTS.md quotes
these artifacts) and printed, while pytest-benchmark records the runtime of
the regeneration itself.

Mesh sizes for the heavy Table-2 sweep can be overridden with the
``REPRO_TABLE2_MESHES`` environment variable (comma-separated ``a`` values)
— e.g. ``REPRO_TABLE2_MESHES=11,20`` for a quick pass.
"""

from __future__ import annotations

import os
from functools import lru_cache
from pathlib import Path

from repro import plate_problem
from repro.driver import (
    TABLE2_SCHEDULE,  # noqa: F401 - re-exported for the benches
    TABLE3_SCHEDULE,  # noqa: F401 - re-exported for the benches
    build_blocked_system,
    ssor_interval,
)

OUT_DIR = Path(__file__).parent / "out"


def table2_meshes() -> list[int]:
    raw = os.environ.get("REPRO_TABLE2_MESHES", "20,41,62,80")
    return [int(tok) for tok in raw.split(",") if tok.strip()]


#: Stopping tolerance for the Table-2 sweep.  The paper's ε is unstated;
#: ‖Δu‖_∞ < 10⁻⁷ delivers a uniform ~10⁻⁶ *relative* solution accuracy
#: across all four meshes (an absolute 10⁻⁶ lets the test fire on a CG
#: stall at a = 62/80, breaking the paper's I ∝ a scaling).
TABLE2_EPS = 1e-7


def emit(name: str, text: str) -> str:
    """Persist a rendered table/figure and echo it to stdout."""
    OUT_DIR.mkdir(parents=True, exist_ok=True)
    path = OUT_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[written to {path}]")
    return text


@lru_cache(maxsize=None)
def cached_plate(a: int):
    return plate_problem(a)


@lru_cache(maxsize=None)
def cached_blocked(a: int):
    return build_blocked_system(cached_plate(a))


@lru_cache(maxsize=None)
def cached_interval(a: int) -> tuple[float, float]:
    return ssor_interval(cached_blocked(a))


def run_once(benchmark, fn):
    """Benchmark a heavy regeneration exactly once (no repeat rounds)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
