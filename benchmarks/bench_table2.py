"""Table 2 — CYBER 203 iterations and timings, m-step SSOR PCG.

Regenerates the paper's main table: for unit-square plates a = 20, 41, 62,
80 (maximum vector lengths v ≈ a²/3), the iteration count I and simulated
time T for m = 0 (plain CG), unparametrized m = 1–3, and parametrized
m = 2P–10P.

Shape targets (EXPERIMENTS.md quantifies each):
* I decreases steeply with m; parametrized beats unparametrized at equal m
  in both I and T (paper observation 1);
* T has an interior minimum in m, and the time-optimal m grows with the
  vector length (paper observation 2);
* CG iterations grow ∝ a.

``REPRO_TABLE2_MESHES=11,20`` shrinks the sweep for a quick run.
"""

from repro.analysis import Table

from _common import (
    TABLE2_SCHEDULE,
    cached_session,
    emit,
    run_once,
    table2_meshes,
)


def solve_mesh(a: int) -> list[dict]:
    """One mesh's 13 schedule cells — one batched lockstep simulator pass.

    The compiled session drives :meth:`CyberMachine.solve_schedule`:
    iteration counts, clocks and iterates are bitwise those of the
    cell-at-a-time pass (pinned in tests/test_pipeline.py), at a fraction
    of the wall time.
    """
    session = cached_session(a)
    rows = []
    for (m, _), res in zip(TABLE2_SCHEDULE, session.run_cyber_schedule()):
        rows.append(
            {
                "label": res.label,
                "m": m,
                "I": res.iterations,
                "T": res.seconds,
                "v": res.max_vector_length,
            }
        )
    return rows


def build_table() -> tuple[str, dict]:
    meshes = table2_meshes()
    per_mesh = {a: solve_mesh(a) for a in meshes}
    columns = ["m"]
    for a in meshes:
        v = per_mesh[a][0]["v"]
        columns += [f"I(a={a})", f"T(v={v})"]
    table = Table(
        "Table 2 — CYBER 203 iterations and simulated timings, m-step SSOR PCG",
        columns,
    )
    n_rows = len(TABLE2_SCHEDULE)
    for i in range(n_rows):
        row = [per_mesh[meshes[0]][i]["label"]]
        for a in meshes:
            row += [per_mesh[a][i]["I"], per_mesh[a][i]["T"]]
        table.add_row(*row)
    table.add_note("T = simulated seconds (calibrated CYBER 203 cost model)")
    table.add_note("paper m=0 row: I = 271, 536, 788, 929 for a = 20, 41, 62, 80")
    return table.render(), per_mesh


def test_table2(benchmark):
    text, per_mesh = run_once(benchmark, build_table)
    emit("table2_cyber", text)

    meshes = sorted(per_mesh)
    for a, rows in per_mesh.items():
        by_label = {r["label"]: r for r in rows}
        # Observation (1): parametrized beats unparametrized, I and T.
        for m in (2, 3):
            assert by_label[f"{m}P"]["I"] <= by_label[f"{m}"]["I"]
            assert by_label[f"{m}P"]["T"] <= by_label[f"{m}"]["T"]
        # Preconditioning wins outright over CG in simulated time.
        assert min(r["T"] for r in rows[1:]) < by_label["0"]["T"]
    # CG iteration growth ∝ a.
    if len(meshes) >= 2:
        small, large = meshes[0], meshes[-1]
        i_small = per_mesh[small][0]["I"]
        i_large = per_mesh[large][0]["I"]
        ratio = i_large / i_small
        expected = large / small
        assert 0.6 * expected <= ratio <= 1.5 * expected


def test_cyber_matvec_kernel(benchmark):
    """Micro-benchmark: one K·p by diagonals on the a = 20 machine."""
    import numpy as np

    from repro.machines.vector import VectorMachine

    machine = cached_session(20).cyber()
    vm = VectorMachine(machine.timing)
    x = np.random.default_rng(0).normal(size=machine.n_padded)

    benchmark(machine._matvec, vm, x)
