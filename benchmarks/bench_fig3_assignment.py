"""Figures 3a/3b/3c — color-balanced node-to-processor rectangles.

The paper shows three assignments with 18, 12, and 9 nodes per processor.
Regenerates equivalent assignments, prints the maps, and checks the
property the figures illustrate: each processor holds (as nearly as
possible) equal numbers of R, B and G unconstrained nodes.
"""

from repro.fem import PlateMesh
from repro.machines import Assignment, ProcessorGrid

from _common import emit, run_once

CASES = [
    ("Figure 3a — 18 nodes/processor", PlateMesh(6, 10), ProcessorGrid(1, 3)),
    ("Figure 3b — 12 nodes/processor", PlateMesh(6, 7), ProcessorGrid(1, 3)),
    ("Figure 3c — 9 nodes/processor", PlateMesh(6, 10), ProcessorGrid(2, 3)),
]


def build_figure() -> str:
    sections = []
    for title, mesh, grid in CASES:
        assignment = Assignment.rectangles(mesh, grid)
        report = assignment.balance_report()
        per_proc = [
            tuple(int(c) for c in assignment.color_counts(p))
            for p in range(assignment.n_procs)
        ]
        sections += [
            title,
            "-" * 60,
            assignment.ascii_map(),
            f"nodes/processor: {report['min_nodes']}–{report['max_nodes']}, "
            f"color counts per processor (R,B,G): {per_proc}",
            f"max per-color spread: {report['max_color_spread']}",
            "",
        ]
    return "\n".join(sections).rstrip()


def test_fig3(benchmark):
    text = run_once(benchmark, build_figure)
    emit("fig3_assignments", text)
    assert "18 nodes/processor" in text


def test_assignment_construction_speed(benchmark):
    """Micro-benchmark: border analysis of a 16-processor assignment."""
    mesh = PlateMesh(41, 41)

    def run():
        assignment = Assignment.rectangles(mesh, ProcessorGrid(4, 4))
        return assignment.border_pairs

    pairs = benchmark(run)
    assert len(pairs) > 0
