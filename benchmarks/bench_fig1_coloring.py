"""Figure 1 — the R/B/G coloring of the triangulated plate.

Regenerates the coloring picture for the paper's 6×6 plate and validates
the property the figure illustrates: every triangle's three vertices carry
three distinct colors, so the equations decouple color by color.
"""


from _common import cached_plate, emit, run_once


def build_figure() -> str:
    mesh = cached_plate(6).mesh
    mesh.validate_coloring()
    counts = mesh.color_counts()
    art = mesh.coloring_ascii()
    lines = [
        "Figure 1 — plate coloring (R/B/G, '/'-diagonal triangular elements)",
        "-" * 68,
        art,
        "-" * 68,
        f"nodes per color (R, B, G): {tuple(int(c) for c in counts)}",
        f"triangles: {mesh.n_triangles}, all tri-colored: True",
        "sequential row-wrap numbering valid (ncols ≡ 2 mod 3): "
        f"{mesh.sequential_wrap_consistent}",
    ]
    return "\n".join(lines)


def test_fig1(benchmark):
    text = run_once(benchmark, build_figure)
    emit("fig1_coloring", text)
    assert "R B G" in text or "R" in text.splitlines()[2]


def test_coloring_validation_speed(benchmark):
    """Micro-benchmark: tri-coloring validation of an 80×80 plate."""
    mesh = cached_plate(80).mesh

    def run():
        mesh.validate_coloring()
        return mesh.color_counts()

    counts = benchmark(run)
    assert int(counts.sum()) == mesh.n_nodes


def test_greedy_coloring_speed(benchmark):
    """Micro-benchmark: greedy multicolor of the a = 20 stiffness graph."""
    from repro.multicolor import greedy_multicolor, validate_groups

    k = cached_plate(20).k
    colors = benchmark(greedy_multicolor, k)
    validate_groups(k, colors)
