"""Kernel micro-benchmarks: the primitives every table is built from.

Not a paper artifact — these keep the library's own hot paths honest:
matvec by diagonals versus CSR, the Conrad–Wallach m-step application
versus the naive double-sweep reference, and a full PCG solve.
"""

import numpy as np

from repro.core import SSORSplitting, neumann_coefficients, pcg
from repro.core.mstep import MStepPreconditioner
from repro.driver import solve_mstep_ssor
from repro.multicolor import MStepSSOR

from _common import cached_blocked, cached_plate


def test_csr_matvec(benchmark):
    blocked = cached_blocked(20)
    x = np.random.default_rng(0).normal(size=blocked.n)
    y = benchmark(blocked.matvec, x)
    assert y.shape == x.shape


def test_blockwise_matvec(benchmark):
    blocked = cached_blocked(20)
    x = np.random.default_rng(0).normal(size=blocked.n)
    y = benchmark(blocked.matvec_blockwise, x)
    assert y.shape == x.shape


def test_mstep_ssor_merged_apply(benchmark):
    blocked = cached_blocked(20)
    applicator = MStepSSOR(blocked, neumann_coefficients(4))
    r = np.random.default_rng(1).normal(size=blocked.n)
    out = benchmark(applicator.apply, r)
    assert out.shape == r.shape


def test_mstep_ssor_reference_apply(benchmark):
    # The naive double sweep: should clock ≈2× the merged path's block work.
    blocked = cached_blocked(20)
    applicator = MStepSSOR(blocked, neumann_coefficients(4))
    r = np.random.default_rng(1).normal(size=blocked.n)
    out = benchmark(applicator.apply_reference, r)
    assert out.shape == r.shape


def test_generic_mstep_apply(benchmark):
    # Triangular-solve-based path (scipy spsolve_triangular) for contrast.
    blocked = cached_blocked(20)
    precond = MStepPreconditioner(
        SSORSplitting(blocked.permuted), neumann_coefficients(4)
    )
    r = np.random.default_rng(2).normal(size=blocked.n)
    out = benchmark(precond.apply, r)
    assert out.shape == r.shape


def test_full_pcg_solve(benchmark):
    problem = cached_plate(14)
    blocked = cached_blocked(14)

    def run():
        return solve_mstep_ssor(problem, 3, blocked=blocked, eps=1e-6)

    solve = benchmark(run)
    assert solve.result.converged


def test_plain_cg_solve(benchmark):
    problem = cached_plate(14)
    result = benchmark(lambda: pcg(problem.k, problem.f, eps=1e-6))
    assert result.converged
