"""Figure 2 — the grid-point stencil (≤ 14 nonzeros per equation).

Regenerates the stencil picture from the *assembled* operator: an interior
node couples to itself and its six mesh neighbors (W, E, S, N, NW, SE),
two displacement unknowns each.
"""

from repro.fem import stencil_summary
from repro.fem.stencil import max_row_nonzeros

from _common import cached_plate, emit, run_once


def build_figure() -> str:
    problem = cached_plate(8)
    mesh = problem.mesh
    node = mesh.node_id(4, 4)
    summary = stencil_summary(mesh, problem.k, node)
    lines = [
        "Figure 2 — grid point stencil of the assembled plane-stress operator",
        "-" * 68,
        summary,
        "-" * 68,
        f"max nonzeros over all rows: {max_row_nonzeros(problem.k)} (paper bound: 14)",
        "the u–u coupling across the '/' diagonal cancels exactly on the",
        "uniform isotropic mesh, so 12 of the 14 reserved slots are nonzero",
    ]
    return "\n".join(lines)


def test_fig2(benchmark):
    text = run_once(benchmark, build_figure)
    emit("fig2_stencil", text)
    assert "(u,v)" in text


def test_assembly_speed(benchmark):
    """Micro-benchmark: assembling the a = 20 plate system."""
    from repro.fem import PlateMesh, assemble_plate

    mesh = PlateMesh(20, 20)
    k, f = benchmark(assemble_plate, mesh)
    assert k.shape[0] == f.shape[0] == 2 * 20 * 19
