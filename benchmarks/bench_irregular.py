"""Extension — irregular regions (the paper's concluding open problem).

"A problem still remains in applying the method to irregular regions since
the grid must be colored…"  This bench colors an L-shaped and a perforated
plate with the greedy multicoloring, runs the identical m-step SSOR PCG
machinery on the resulting (more-than-six-group) block systems, and shows
the preconditioner delivers the same iteration collapse as on the paper's
rectangle.
"""

import numpy as np

from repro.analysis import Table
from repro.driver import build_blocked_system, solve_mstep_ssor, ssor_interval
from repro.fem import l_shaped_problem, perforated_problem

from _common import emit, run_once


def build_table():
    cases = [
        ("L-shaped (a = 12)", l_shaped_problem(12)),
        ("perforated (a = 12)", perforated_problem(12)),
    ]
    table = Table(
        "m-step SSOR PCG on irregular regions (greedy multicoloring)",
        ["domain", "n", "groups", "m", "iterations", "‖r‖∞"],
    )
    reductions = {}
    domains = []
    for name, problem in cases:
        domains.append((name, problem.domain_ascii()))
        blocked = build_blocked_system(problem)
        interval = ssor_interval(blocked)
        iters = {}
        for m, par in [(0, False), (1, False), (2, True), (4, True)]:
            solve = solve_mstep_ssor(
                problem, m, parametrized=par, interval=interval,
                blocked=blocked, eps=1e-7,
            )
            resid = float(np.max(np.abs(problem.f - problem.k @ solve.u)))
            table.add_row(
                name, problem.n, problem.n_groups, solve.label,
                solve.iterations, resid,
            )
            iters[solve.label] = solve.iterations
        reductions[name] = iters["0"] / iters["4P"]
    table.add_note("same machinery as the rectangle — only the coloring changed")
    parts = [table.render(), ""]
    for name, art in domains:
        parts += [name, art, ""]
    return "\n".join(parts).rstrip(), reductions


def test_irregular(benchmark):
    text, reductions = run_once(benchmark, build_table)
    emit("extension_irregular_regions", text)
    for name, gain in reductions.items():
        assert gain > 3.0, f"{name}: 4P should cut iterations ≥3×, got {gain:.1f}"
