"""Table 3 — Finite Element Machine iterations, timings, speedups.

Regenerates the paper's array-machine table: the 60-equation plate (6 rows
× 6 columns of nodes) solved on 1, 2, and 5 simulated processors with
m = 0 … 6P.

Shape targets:
* iteration counts identical across processor counts (the defining feature
  of Table 3 — the math is unchanged by distribution);
* speedups near 2 and near 3.6 at m = 0, declining as m grows because the
  preconditioner's border exchanges dominate the overhead (observation 3);
* the effectiveness ordering of m is the same for 1, 2 and 5 processors
  (observation 1).
"""

from repro.analysis import Table
from repro.driver import mstep_coefficients
from repro.machines import FiniteElementMachine, speedup_table

from _common import TABLE3_SCHEDULE, cached_blocked, cached_interval, cached_plate, emit, run_once

PAPER_ITERATIONS = {"0": 48, "1": 19, "2": 13, "2P": 11, "3": 11,
                    "3P": 8, "4": 10, "4P": 7, "5P": 5, "6P": 5}


def build_table() -> tuple[str, list[dict]]:
    problem = cached_plate(6)
    blocked = cached_blocked(6)
    interval = cached_interval(6)
    machines = {
        p: FiniteElementMachine(problem, p, blocked=blocked) for p in (1, 2, 5)
    }
    table = Table(
        "Table 3 — Finite Element Machine iterations, simulated timings, speedups",
        ["m", "I", "I(paper)", "T(P=1)", "T(P=2)", "speedup", "T(P=5)", "speedup"],
    )
    rows = []
    for m, parametrized in TABLE3_SCHEDULE:
        coeffs = mstep_coefficients(m, parametrized, interval) if m else None
        results = {p: machines[p].solve(m, coeffs, eps=1e-6) for p in (1, 2, 5)}
        speedups = speedup_table(results)
        label = results[1].label
        table.add_row(
            label,
            results[1].iterations,
            PAPER_ITERATIONS[label],
            results[1].seconds,
            results[2].seconds,
            speedups[2],
            results[5].seconds,
            speedups[5],
        )
        rows.append(
            {
                "label": label,
                "iters": {p: results[p].iterations for p in (1, 2, 5)},
                "seconds": {p: results[p].seconds for p in (1, 2, 5)},
                "speedups": speedups,
            }
        )
    table.add_note("paper: T(P=1) = 63.35 s at m = 0; speedups 1.92/3.58 → 1.80/3.06")
    return table.render(), rows


def test_table3(benchmark):
    text, rows = run_once(benchmark, build_table)
    emit("table3_fem_machine", text)

    for row in rows:
        # Iteration counts identical across processor counts.
        assert len(set(row["iters"].values())) == 1
        assert 0.9 < row["speedups"][1] <= 1.0 + 1e-9
    # Speedups in the paper's neighbourhood at m = 0, declining with m.
    first, last = rows[0], rows[-1]
    assert 1.7 <= first["speedups"][2] <= 2.0
    assert 3.1 <= first["speedups"][5] <= 3.9
    assert last["speedups"][2] < first["speedups"][2]
    assert last["speedups"][5] < first["speedups"][5]
    # Effectiveness ordering identical across P: same I ordering trivially
    # (iterations are P-invariant); check the best time beats CG everywhere.
    for p in (1, 2, 5):
        cg_time = rows[0]["seconds"][p]
        assert min(r["seconds"][p] for r in rows[1:]) < cg_time


def test_fem_machine_solve_kernel(benchmark):
    """Micro-benchmark: one full 2P solve on the 5-processor machine."""
    problem = cached_plate(6)
    blocked = cached_blocked(6)
    interval = cached_interval(6)
    machine = FiniteElementMachine(problem, 5, blocked=blocked)
    coeffs = mstep_coefficients(2, True, interval)
    result = benchmark(machine.solve, 2, coeffs)
    assert result.converged
