"""Ablation — processor scaling and the sum/max circuit (§4 discussion).

The paper's closing analysis: keeping nodes-per-processor fixed while
adding processors, the preconditioner's (local) communication stays flat
while the inner products' (global) reduction grows — with software
reductions like O(P), with the sum/max circuit like O(log₂ P).  "As the
number of processors increases … the value of B/A in (4.2) will continue
to decrease until [more] steps of the preconditioner will be optimal."

This bench scales the plate with the processor count (fixed ~24 unknowns
per processor), measures A and B on the simulated machine under both
reduction modes, and shows B/A falling — the paper's predicted mechanism
for ever-larger optimal m.
"""

from repro import build_scenario
from repro.analysis import Table
from repro.machines import FiniteElementMachine

from _common import emit, run_once

CASES = [
    # (a rows, ncols, processor count): ~12 unconstrained nodes/processor.
    # The machine under construction targeted 36 processors first and an
    # expanded array later; the tail of this sweep is that future machine.
    (4, 4, 1),
    (4, 7, 2),
    (7, 7, 4),
    (7, 13, 8),
    (13, 13, 16),
    (13, 25, 32),
    (25, 25, 64),
]


def build_table():
    table = Table(
        "B/A versus processor count at fixed nodes/processor "
        "(software vs sum/max reductions)",
        ["P", "unknowns", "B/A software", "B/A circuit",
         "reduction µs soft", "reduction µs circuit"],
    )
    ratios = {"software": [], "circuit": []}
    for nrows, ncols, n_procs in CASES:
        problem = build_scenario("plate", nrows=nrows, ncols=ncols)
        row = [n_procs, problem.n]
        for mode in ("software", "circuit"):
            machine = FiniteElementMachine(problem, n_procs, reduction=mode)
            a_cost, b_cost = machine.iteration_costs(1)
            ratios[mode].append(b_cost / a_cost)
            row.append(b_cost / a_cost)
        for mode in ("software", "circuit"):
            machine = FiniteElementMachine(problem, n_procs, reduction=mode)
            row.append(machine.timing.reduction_time(n_procs, mode) * 1e6)
        table.add_row(*row)
    table.add_note("B/A falls as P grows → larger optimal m (paper's §4 closing claim)")
    table.add_note("the sum/max circuit keeps reductions cheap, so B/A falls less steeply")
    return table.render(), ratios


def test_scaling(benchmark):
    text, ratios = run_once(benchmark, build_table)
    emit("ablation_scaling_sum_max", text)
    soft = ratios["software"]
    # With software reductions, growing P inflates A (global reductions)
    # faster than B (local exchanges): B/A decreases from few to many procs.
    assert soft[-1] < soft[0]
    # The circuit keeps reductions near-free, so its B/A stays above the
    # software ratio once P is large.
    assert ratios["circuit"][-1] >= soft[-1]
