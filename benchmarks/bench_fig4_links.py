"""Figure 4 — six of the eight FEM local links carry this stencil's traffic.

An interior processor of a 3×3 array exchanges border values with N, S, E,
W, NW and SE neighbors; the '/' triangulation never couples across NE/SW.
Regenerates the link-usage picture and the per-link word counts.
"""

from repro.analysis import Table
from repro.fem import PlateMesh
from repro.machines import Assignment, LINK_DIRECTIONS, ProcessorGrid

from _common import emit, run_once


def build_figure() -> str:
    mesh = PlateMesh(13, 14)
    grid = ProcessorGrid(3, 3)
    assignment = Assignment.rectangles(mesh, grid)
    center = grid.proc_id(1, 1)

    inverse = {offset: name for name, offset in LINK_DIRECTIONS.items()}
    words_by_link = {}
    for (p, q), nodes in assignment.border_pairs.items():
        if p != center:
            continue
        pc, pr = grid.proc_rc(p)
        qc, qr = grid.proc_rc(q)
        link = inverse[(qc - pc, qr - pr)]
        words_by_link[link] = 2 * nodes.size

    rows = []
    for name in ("N", "NE", "E", "SE", "S", "SW", "W", "NW"):
        rows.append([name, name in words_by_link, words_by_link.get(name, 0)])
    table = Table(
        "Figure 4 — FEM local links used by the center processor (3×3 array)",
        ["link", "used", "words per p-exchange"],
        rows,
    )
    table.add_note("the '/' stencil uses 6 of the 8 links; NE and SW stay idle")
    picture = [
        "        NW   N   NE",
        "          \\  |  /",
        "     W  ---  P  ---  E",
        "          /  |  \\",
        "        SW   S   SE",
        "",
        f"active: {sorted(assignment.links_used)}",
    ]
    return table.render() + "\n" + "\n".join(picture)


def test_fig4(benchmark):
    text = run_once(benchmark, build_figure)
    emit("fig4_links", text)
    assert "NE" in text
    # the figure's claim, asserted:
    assert "active: ['E', 'N', 'NW', 'S', 'SE', 'W']" in text
