"""Ablation — CYBER 203 versus CYBER 205 (the paper's two targets).

The paper's implementation section covers both pipes ("the CYBER 203/205");
only 203 timings are tabulated.  This bench runs the same sweep under the
205 model (faster stream, shorter startup) and shows what transfers: the
iteration counts are machine-independent, every simulated time shrinks,
and — because shorter startups improve *short* vectors most, cutting the
preconditioner's relative cost — the time-optimal m does not decrease.
"""

from repro.analysis import Table, effective_optimal_m
from repro.driver import mstep_coefficients
from repro.machines import CYBER_203, CYBER_205, CyberMachine

from _common import cached_interval, cached_plate, emit, run_once

M_SCHEDULE = [(0, False), (1, False), (2, True), (4, True), (6, True), (8, True)]


def build_table():
    problem = cached_plate(20)
    interval = cached_interval(20)
    machines = {
        "203": CyberMachine(problem, CYBER_203),
        "205": CyberMachine(problem, CYBER_205),
    }
    table = Table(
        "CYBER 203 vs 205, m-step SSOR PCG (a = 20 plate)",
        ["m", "I", "T 203 (s)", "T 205 (s)", "205 gain"],
    )
    times = {"203": {}, "205": {}}
    for m, par in M_SCHEDULE:
        coeffs = mstep_coefficients(m, par, interval) if m else None
        res = {
            name: machine.solve(m, coeffs, eps=1e-7)
            for name, machine in machines.items()
        }
        assert res["203"].iterations == res["205"].iterations
        label = res["203"].label
        times["203"][m] = res["203"].seconds
        times["205"][m] = res["205"].seconds
        table.add_row(
            label,
            res["203"].iterations,
            res["203"].seconds,
            res["205"].seconds,
            res["203"].seconds / res["205"].seconds,
        )
    table.add_note("same iterations on both machines; the 205 only rescales time")
    return table.render(), times


def test_cyber_205(benchmark):
    text, times = run_once(benchmark, build_table)
    emit("ablation_cyber205", text)
    for m in times["203"]:
        assert times["205"][m] < times["203"][m]
    # Shorter startups make short-vector (preconditioner) work relatively
    # cheaper: the plateau-optimal m does not decrease on the 205.
    opt203 = effective_optimal_m(times["203"], rel_tol=0.02)
    opt205 = effective_optimal_m(times["205"], rel_tol=0.02)
    assert opt205 >= opt203 - 1
