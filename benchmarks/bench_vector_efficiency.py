"""Ablation — the CYBER vector-efficiency curve and inner-product penalty.

Section 3.1's machine characterization: "For vectors of length 1000 around
90% efficiency is obtained, but this drops to approximately 50% or less for
vectors of length 100 and 10% for vectors of length 10."  The single
startup constant s = 100 reproduces all three (efficiency = n/(n+100)).
The second table shows the inner product's relative cost — the paper's
motivation for reducing the number of CG iterations in the first place.
"""

from repro.analysis import Table
from repro.machines import CYBER_203

from _common import emit, run_once


def build_table():
    model = CYBER_203
    eff = Table(
        "CYBER vector efficiency e(n) = n/(n + s), s = 100",
        ["n", "efficiency", "paper quote"],
    )
    for n, quote in ((10, "≈10%"), (100, "≈50%"), (1000, "≈90%"),
                     (132, "—"), (561, "—"), (1282, "—"), (2134, "—")):
        eff.add_row(n, model.efficiency(n), quote)

    dot = Table(
        "Inner-product penalty: dot(n) / vector_op(n)",
        ["n", "vector op (µs)", "dot (µs)", "ratio"],
    )
    for n in (10, 100, 132, 561, 1000, 1282, 2134, 10000):
        t_op = model.vector_op_time(n) * 1e6
        t_dot = model.dot_time(n) * 1e6
        dot.add_row(n, t_op, t_dot, t_dot / t_op)
    dot.add_note("the log₂-halving partial-sum phase dominates at short lengths")
    return eff.render() + "\n\n" + dot.render(), model


def test_vector_efficiency(benchmark):
    text, model = run_once(benchmark, build_table)
    emit("ablation_vector_efficiency", text)
    assert abs(model.efficiency(1000) - 0.9) < 0.02
    assert abs(model.efficiency(100) - 0.5) < 0.01
    assert abs(model.efficiency(10) - 0.1) < 0.01
    # dot is always the slow operation, and relatively slower when short.
    assert model.dot_time(100) / model.vector_op_time(100) > model.dot_time(
        10000
    ) / model.vector_op_time(10000)
