"""Table 1 — α values for the m-step SSOR PCG method.

**Exact reproduction.**  The paper's printed coefficients are the
uniform-weight least-squares fit of ``q(μ) = μ·Σ αᵢ(1−μ)ⁱ ≈ 1`` on the
theoretical SSOR interval [0, 1] (the spectrum of ``P⁻¹K`` always lies in
(0, 1] for the ω = 1 SSOR splitting of an SPD matrix), normalized so
α₀ = 1 — a scaling PCG is invariant under.  Every digit of the scan
matches:

    m = 2:  1.00,  5.00
    m = 3:  1.00, −2.00,   7.00
    m = 4:  1.00,  7.00, −24.50, 31.50

The second block shows the *measured-interval* fit the solver actually
uses (tighter interval → better conditioned q), which is why our Tables
2/3 parametrized rows converge at least as fast as the paper's.
"""

import numpy as np

from repro.analysis import Table
from repro.core import (
    PAPER_TABLE1,
    fit_report,
    least_squares_coefficients,
    minmax_coefficients,
    normalize_leading,
)

from _common import cached_interval, emit, run_once


def build_table() -> tuple[str, bool]:
    table = Table(
        "Table 1 — α values for the m-step SSOR PCG method "
        "(uniform least squares on [0, 1], normalized α₀ = 1)",
        ["m", "α₀", "α₁", "α₂", "α₃", "paper row", "exact match"],
    )
    all_match = True
    for m, paper in PAPER_TABLE1.items():
        ours = normalize_leading(least_squares_coefficients(m, (0.0, 1.0)))
        match = bool(np.allclose(ours, paper, atol=5e-3))
        all_match &= match
        padded = [round(float(v), 4) for v in ours] + [None] * (4 - m)
        table.add_row(m, *padded, ", ".join(f"{v:g}" for v in paper), match)
    table.add_note("PCG is invariant under the α₀ = 1 normalization")

    interval = cached_interval(20)
    measured = Table(
        "Solver variant: fit on the measured spectrum "
        f"[{interval[0]:.4f}, {interval[1]:.4f}] of the a = 20 plate",
        ["m", "criterion", "α₀", "α₁", "α₂", "α₃", "max|1−q|", "κ bound"],
    )
    for m in (2, 3, 4):
        for criterion, fitter in (
            ("least-squares", least_squares_coefficients),
            ("min–max", minmax_coefficients),
        ):
            coeffs = fitter(m, interval)
            report = fit_report(coeffs, interval)
            padded = list(coeffs) + [None] * (4 - len(coeffs))
            measured.add_row(
                m, criterion, *padded, report.max_deviation, report.condition_bound
            )
    measured.add_note("q must stay positive on the interval (SPD M) — all rows do")
    return table.render() + "\n\n" + measured.render(), all_match


def test_table1(benchmark):
    text, all_match = run_once(benchmark, build_table)
    emit("table1_alpha_values", text)
    assert all_match, "Table 1 no longer reproduces exactly"


def test_least_squares_fit_speed(benchmark):
    """Micro-benchmark: one least-squares coefficient fit (m = 4)."""
    interval = cached_interval(20)
    coeffs = benchmark(least_squares_coefficients, 4, interval)
    assert coeffs.shape == (4,)
