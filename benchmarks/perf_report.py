#!/usr/bin/env python
"""Machine-readable perf harness for the kernel backend layer.

Times the solver stack's hot primitives on the plate problem —
``apply_p_inv`` (the SSOR triangular application), the m-step
preconditioner application (kernel path and Conrad–Wallach sweep), a full
PCG solve, and the end-to-end Table-2 m-schedule sweep — for both kernel
backends, and writes ``BENCH_kernels.json`` at the repo root.  That file
is the perf-trajectory baseline: future PRs rerun this script and diff.

Usage (no pytest required)::

    python benchmarks/perf_report.py                 # default meshes 20,41
    python benchmarks/perf_report.py --meshes 11,20 --repeats 3
    python benchmarks/perf_report.py --out /tmp/bench.json

``--check BASELINE.json`` is the perf-regression gate (CI runs it against
the committed ``BENCH_kernels.json``): it re-measures with the baseline's
own configuration, writes the fresh report to ``BENCH_kernels.fresh.json``
at the repo root (override with ``--out``), and exits nonzero
if any recorded backend speedup falls below ``--check-tolerance`` times
its baseline value, if the Table-2 iteration counts drift (a silent
numerics change), or if the absolute speedup targets are missed::

    python benchmarks/perf_report.py --check BENCH_kernels.json

Speedups are reference÷vectorized ratios measured in the same process, so
they are stable across machines in a way absolute seconds are not — the
tolerance only has to absorb scheduler noise.

The benchmark-fixture variant of the same measurements lives in
``benchmarks/bench_perf_suite.py`` (pytest marker ``perf``).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
import tracemalloc
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402
import scipy  # noqa: E402

from repro import plate_problem  # noqa: E402
from repro.core.mstep import MStepPreconditioner  # noqa: E402
from repro.core.polynomial import neumann_coefficients  # noqa: E402
from repro.core.splittings import SSORSplitting  # noqa: E402
from repro.driver import (  # noqa: E402
    TABLE2_SCHEDULE,
    TABLE3_SCHEDULE,
    build_blocked_system,
    mstep_coefficients,
    solve_mstep_ssor,
    ssor_interval,
)
from repro.kernels import BACKENDS, REFERENCE, VECTORIZED  # noqa: E402
from repro.multicolor import MStepSSOR  # noqa: E402

#: Acceptance thresholds recorded alongside the measurements.
TARGET_APPLY_P_INV_SPEEDUP = 5.0
TARGET_TABLE2_SPEEDUP = 2.0
#: The batched lockstep CYBER sweep must beat the cell-at-a-time pass by
#: at least this factor (measured ~1.9× at a = 20).
TARGET_CYBER_BATCHED_SPEEDUP = 1.3
#: block_pcg over BLOCK_WIDTH simultaneous right-hand sides must beat
#: per-column pcg by at least this factor (ISSUE 4: ≥1.3× at k ≥ 4).
TARGET_BLOCK_PCG_SPEEDUP = 1.3
#: The batched FEM Table-3 lockstep must beat per-cell solves likewise.
TARGET_FEM_SCHEDULE_SPEEDUP = 1.3
#: Sharding a wide RHS block over SHARD_WORKERS processes must beat the
#: serial block lockstep by this factor (ISSUE 5: ≥1.5× at k ≥ 8, W = 4).
#: Real-parallel speedups need real cores, so the absolute target is
#: enforced only on hosts with at least SHARDED_MIN_CORES of them; the
#: measurement itself is recorded (and iteration-drift-checked) everywhere.
TARGET_SHARDED_BLOCK_PCG_SPEEDUP = 1.5
SHARDED_MIN_CORES = 4
#: The fused matrix-free stencil product must beat the assembled CSR
#: matvec outright at the largest common size (ISSUE 8: ≥2× at g = 256,
#: where both representations still fit comfortably).
TARGET_STENCIL_MATVEC_SPEEDUP = 2.0
#: The matrix-free solve must hold at least this peak-allocation
#: advantage over the assembled pipeline, end to end (build + compile +
#: solve) at the same size — the whole point of never forming CSR.
#: Measured ~1.9× at g = 256 (tracemalloc peaks are deterministic);
#: 1.5 leaves headroom for allocator-layout jitter across platforms.
TARGET_STENCIL_SOLVE_MEMORY_RATIO = 1.5
#: The fused native multicolor sweep must at least match the merged CSR
#: sweep per application (measured ~1.3× vector, ~1.4–1.5× block on the
#: reference host) — the matrix-free path no longer trades speed for
#: memory.
TARGET_STENCIL_SWEEP_SPEEDUP = 1.0
STENCIL_GRID = 256  # Poisson n_grid for the stencil rows (n = 65,536 = 20× a=41)
STENCIL_M = 2  # preconditioner steps for the stencil sweep/solve rows
STENCIL_BLOCK_WIDTHS = (4, 8)  # RHS widths for the block-sweep rows

M_APPLY = 4  # the m used for preconditioner-application timings
M_PCG = 3  # the m used for full-solve timings
BLOCK_WIDTH = 6  # right-hand sides in the block-PCG benchmark
FEM_PROCS = 4  # processor count for the FEM-schedule benchmark
SHARD_WIDTH = 16  # right-hand sides in the sharded block-PCG benchmark (k ≥ 8)
SHARD_WORKERS = 4  # worker-process pool for the sharded benchmark
#: Columns per shard.  The 2-D shard grid decouples this from the pool
#: size: 8-wide groups halve the per-apply fixed costs a narrow lockstep
#: pays (the compiled CSR kernels lose ~2× throughput at width 4), which
#: is what keeps the single-core dispatch-overhead ratio near 1.0 while
#: multi-core hosts still fan the groups out across the pool.
SHARD_GROUP = 8


def _time_call(fn, repeats: int, min_seconds: float = 0.02) -> float:
    """Best-of-``repeats`` per-call seconds, inner-looped for short calls."""
    fn()  # warm caches (factorizations, workspaces)
    t0 = time.perf_counter()
    fn()
    once = max(time.perf_counter() - t0, 1e-9)
    inner = max(1, int(min_seconds / once))
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        for _ in range(inner):
            fn()
        best = min(best, (time.perf_counter() - t0) / inner)
    return best


def _peak_mb(fn) -> float:
    """Peak incremental allocation (MiB) of one ``fn()``, via tracemalloc.

    Only allocations made *during* the call count — pre-existing state
    (compiled sessions, cached factors) is the caller's to include or
    exclude by choosing what ``fn`` rebuilds.  Recorded per benchmark row
    so the report tracks memory next to time.
    """
    tracemalloc.start()
    try:
        fn()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak / 2**20


def bench_apply_p_inv(blocked, repeats: int) -> dict:
    """SSOR ``P⁻¹r`` per backend: color-block sweeps vs spsolve_triangular."""
    r = np.random.default_rng(0).normal(size=blocked.n)
    out = {}
    for backend in BACKENDS:
        splitting = SSORSplitting(blocked.permuted, backend=backend)
        out[f"{backend}_s"] = _time_call(lambda: splitting.apply_p_inv(r), repeats)
    out["speedup"] = out[f"{REFERENCE}_s"] / out[f"{VECTORIZED}_s"]
    fast = SSORSplitting(blocked.permuted, backend=VECTORIZED)
    out["peak_mb"] = _peak_mb(lambda: fast.apply_p_inv(r))
    return out


def bench_mstep_apply(blocked, repeats: int) -> dict:
    """m-step application: kernel Horner per backend + the merged sweep."""
    coeffs = neumann_coefficients(M_APPLY)
    r = np.random.default_rng(1).normal(size=blocked.n)
    out = {}
    for backend in BACKENDS:
        precond = MStepPreconditioner(
            SSORSplitting(blocked.permuted, backend=backend), coeffs
        )
        out[f"{backend}_s"] = _time_call(lambda: precond.apply(r), repeats)
    sweep = MStepSSOR(blocked, coeffs)
    out["sweep_s"] = _time_call(lambda: sweep.apply(r), repeats)
    out["speedup"] = out[f"{REFERENCE}_s"] / out[f"{VECTORIZED}_s"]
    out["peak_mb"] = _peak_mb(lambda: sweep.apply(r))
    return out


def bench_pcg(problem, blocked, repeats: int, eps: float) -> dict:
    """Full m-step PCG solve per backend (splitting applicator) + sweep."""
    out = {}
    for backend in BACKENDS:
        def run(backend=backend):
            solve = solve_mstep_ssor(
                problem, M_PCG, blocked=blocked, eps=eps,
                applicator="splitting", backend=backend,
            )
            assert solve.result.converged
            return solve

        out[f"{backend}_s"] = _time_call(run, repeats)

    def run_sweep():
        solve = solve_mstep_ssor(problem, M_PCG, blocked=blocked, eps=eps)
        assert solve.result.converged

    out["sweep_s"] = _time_call(run_sweep, repeats)
    out["speedup"] = out[f"{REFERENCE}_s"] / out[f"{VECTORIZED}_s"]
    out["peak_mb"] = _peak_mb(run_sweep)
    return out


def bench_table2_sweep(problem, blocked, repeats: int, eps: float) -> dict:
    """The full Table-2 m-schedule, end to end, per backend."""
    interval = ssor_interval(blocked)
    # Iteration counts recorded per backend: the perf gate diffs them
    # against the baseline, so drift in *either* backend's numerics is
    # caught (a shared dict would let the last-measured backend mask it).
    iterations: dict[str, dict[str, int]] = {}

    def run_schedule(backend: str) -> None:
        cells = iterations.setdefault(backend, {})
        for m, parametrized in TABLE2_SCHEDULE:
            solve = solve_mstep_ssor(
                problem, m, parametrized=parametrized, interval=interval,
                blocked=blocked, eps=eps,
                applicator="splitting", backend=backend,
            )
            assert solve.result.converged
            cells[solve.label] = solve.iterations

    out = {}
    for backend in BACKENDS:
        out[f"{backend}_s"] = _time_call(
            lambda backend=backend: run_schedule(backend), repeats
        )
    out["speedup"] = out[f"{REFERENCE}_s"] / out[f"{VECTORIZED}_s"]
    out["peak_mb"] = _peak_mb(lambda: run_schedule(VECTORIZED))
    out["iterations"] = iterations
    out["cells"] = len(TABLE2_SCHEDULE)
    return out


def bench_cyber_schedule(problem, repeats: int, eps: float) -> dict:
    """The CYBER Table-2 sweep: cell-at-a-time vs one batched lockstep pass.

    Both passes share one compiled :class:`SolverSession` (same machine
    layout, same cached kernels); the recorded ``speedup`` is the wall-time
    win of :meth:`CyberMachine.solve_schedule` over per-cell ``solve``
    calls.  Iteration counts are recorded per mode — the gate flags any
    drift between them (they are bitwise identical by contract) or against
    the baseline.
    """
    from repro.pipeline import SolverPlan, SolverSession

    session = SolverSession(problem, plan=SolverPlan.table2(eps=eps))
    iterations: dict[str, dict[str, int]] = {}

    def run_schedule(batched: bool, key: str) -> None:
        cells = iterations.setdefault(key, {})
        for res in session.run_cyber_schedule(batched=batched):
            assert res.converged
            cells[res.label] = res.iterations

    out = {
        "percolumn_s": _time_call(
            lambda: run_schedule(False, "percolumn"), repeats
        ),
        "batched_s": _time_call(lambda: run_schedule(True, "batched"), repeats),
    }
    if iterations["batched"] != iterations["percolumn"]:
        raise AssertionError(
            "batched and per-column CYBER sweeps disagree on iterations"
        )
    out["speedup"] = out["percolumn_s"] / out["batched_s"]
    out["peak_mb"] = _peak_mb(lambda: run_schedule(True, "batched"))
    out["iterations"] = iterations
    out["cells"] = len(TABLE2_SCHEDULE)
    return out


def bench_block_pcg(problem, blocked, repeats: int, eps: float) -> dict:
    """Multi-RHS block-PCG vs per-column solves on one compiled session.

    ``BLOCK_WIDTH`` load cases (the scenario's own plus seeded synthetic
    ones) through one :func:`repro.core.pcg.block_pcg` lockstep versus
    one :meth:`SolverSession.solve_cell` per column — same compiled
    caches either way, so the recorded ``speedup`` is the pure win of the
    batched ``(n, k)`` numerics.  Per-column iteration counts are
    recorded for both modes; they are bitwise identical by contract and
    the gate flags any drift.
    """
    from repro.pipeline import SolverPlan, SolverSession, synthetic_load_block

    session = SolverSession(
        problem,
        plan=SolverPlan.single(M_PCG, eps=eps, block_rhs=BLOCK_WIDTH),
        blocked=blocked,
    )
    session.compile()
    F = synthetic_load_block(problem, BLOCK_WIDTH)
    iterations: dict[str, dict[str, int]] = {}

    def run_percolumn() -> None:
        cells = iterations.setdefault("percolumn", {})
        for j in range(BLOCK_WIDTH):
            solve = session.solve_cell(M_PCG, f=F[:, j])
            assert solve.result.converged
            cells[str(j)] = solve.iterations

    def run_block() -> None:
        cells = iterations.setdefault("block", {})
        block = session.solve_cell_block(M_PCG, F=F)
        assert block.result.all_converged
        for j in range(BLOCK_WIDTH):
            cells[str(j)] = int(block.iterations[j])

    out = {
        "percolumn_s": _time_call(run_percolumn, repeats),
        "block_s": _time_call(run_block, repeats),
    }
    if iterations["block"] != iterations["percolumn"]:
        raise AssertionError(
            "block and per-column PCG disagree on iteration counts"
        )
    out["speedup"] = out["percolumn_s"] / out["block_s"]
    out["peak_mb"] = _peak_mb(run_block)
    out["iterations"] = iterations
    out["width"] = BLOCK_WIDTH
    return out


def bench_sharded_block_pcg(
    problem, blocked, repeats: int, eps: float, steady: bool = True
) -> dict:
    """Sharded vs serial block-PCG on one compiled session.

    A ``SHARD_WIDTH``-wide load block through
    :meth:`SolverSession.solve_cell_block` serially (one ``block_pcg``
    lockstep) versus sharded over ``SHARD_WORKERS`` worker processes in
    ``SHARD_GROUP``-column groups (:func:`repro.parallel.sharded_block_pcg`).

    ``steady`` (the default) measures the service-loop steady state: the
    session pre-publishes the operator's shared-memory segments and
    pre-warms the pool (:meth:`SolverSession.prewarm_sharding`), then one
    full warm-up dispatch — the one that pays segment attachment and
    first-touch page faults — runs *excluded from timing*, so the
    recorded ``speedup`` is the recurring dispatch + parallel compute
    against serial compute.  ``steady=False`` (``--sharded-cold``) skips
    both and folds the one-time costs into the measurement.

    The row also records the per-dispatch pickled payload of both
    transports (``dispatch_bytes_shm`` vs ``dispatch_bytes_pickled``) —
    the zero-copy plan's bytes-on-the-pipe win, independent of timing
    noise.  Per-column iteration counts are bitwise identical by
    contract; the benchmark itself asserts it and the gate flags any
    drift.  The absolute ≥1.5× target is enforced only on hosts with at
    least ``SHARDED_MIN_CORES`` cores (``requires_cores`` in the row) — a
    single-core box can only measure dispatch overhead, not parallelism.
    """
    import pickle

    from repro.parallel import build_shard_specs, column_groups
    from repro.parallel.shards import matrix_token
    from repro.pipeline import SolverPlan, SolverSession, synthetic_load_block

    session = SolverSession(
        problem,
        plan=SolverPlan.single(M_PCG, eps=eps, block_rhs=SHARD_WIDTH),
        blocked=blocked,
    )
    session.compile()
    F = synthetic_load_block(problem, SHARD_WIDTH)
    sharding = (SHARD_WORKERS, SHARD_GROUP)
    if steady:
        session.prewarm_sharding(sharding)
        # One full warm-up dispatch, excluded from the timed repeats:
        # first-touch costs (segment publication, worker attachment, page
        # faults) are one-time, not steady-state.
        session.solve_cell_block(M_PCG, F=F, sharding=sharding)
    iterations: dict[str, dict[str, int]] = {}

    def run_serial() -> None:
        block = session.solve_cell_block(M_PCG, F=F)
        assert block.result.all_converged
        iterations["serial"] = {
            str(j): int(block.iterations[j]) for j in range(SHARD_WIDTH)
        }

    def run_sharded() -> None:
        block = session.solve_cell_block(M_PCG, F=F, sharding=sharding)
        assert block.result.all_converged
        iterations["sharded"] = {
            str(j): int(block.iterations[j]) for j in range(SHARD_WIDTH)
        }

    out = {
        "serial_s": _time_call(run_serial, repeats),
        "sharded_s": _time_call(run_sharded, repeats),
    }
    if iterations["sharded"] != iterations["serial"]:
        raise AssertionError(
            "sharded and serial block-PCG disagree on iteration counts"
        )
    out["speedup"] = out["serial_s"] / out["sharded_s"]
    out["peak_mb"] = _peak_mb(run_sharded)  # parent-process allocations only
    out["mode"] = "steady" if steady else "cold"
    # Bytes each dispatch actually pickles onto the worker pipe, per
    # transport (the zero-copy plan ships handles; the fallback ships the
    # flat CSR arrays and the RHS slice with every spec).
    k = blocked.permuted
    f_mc = np.ascontiguousarray(
        blocked.ordering.permute_vector(np.asarray(F, dtype=float))
    )
    groups = column_groups(SHARD_WIDTH, SHARD_WORKERS, SHARD_GROUP)
    recipe = session._shard_recipe(M_PCG, False)
    light, _ = build_shard_specs(k, f_mc, recipe, groups, eps=eps, use_shm=True)
    heavy, _ = build_shard_specs(k, f_mc, recipe, groups, eps=eps, use_shm=False)
    out["dispatch_bytes_shm"] = sum(len(pickle.dumps(s)) for s in light)
    out["dispatch_bytes_pickled"] = sum(len(pickle.dumps(s)) for s in heavy)
    out["iterations"] = iterations
    out["width"] = SHARD_WIDTH
    out["workers"] = SHARD_WORKERS
    out["group"] = SHARD_GROUP
    out["requires_cores"] = SHARDED_MIN_CORES
    session._shm_tokens.add(matrix_token(k))
    session.close()
    return out


def bench_fem_schedule(problem, blocked, repeats: int, eps: float) -> dict:
    """The FEM Table-3 schedule: per-cell solves vs one lockstep pass.

    Both modes share one machine layout and blocked system; the batched
    pass (:meth:`FiniteElementMachine.solve_schedule`) stacks active
    cells into ``(n, k)`` blocks and shares one zero-padded splitting
    applicator, bitwise identical to per-cell ``solve`` calls in
    iterations, clocks and ledgers (the gate flags iteration drift).
    """
    from repro.machines import FiniteElementMachine

    interval = ssor_interval(blocked)
    machine = FiniteElementMachine(problem, FEM_PROCS, blocked=blocked)
    cells = [
        (m, mstep_coefficients(m, parametrized, interval) if m >= 1 else None)
        for m, parametrized in TABLE3_SCHEDULE
    ]
    iterations: dict[str, dict[str, int]] = {}

    def run_percell() -> None:
        results = [machine.solve(m, coeffs, eps=eps) for m, coeffs in cells]
        iterations["percell"] = {r.label: r.iterations for r in results}
        assert all(r.converged for r in results)

    def run_batched() -> None:
        results = machine.solve_schedule(cells, eps=eps)
        iterations["batched"] = {r.label: r.iterations for r in results}
        assert all(r.converged for r in results)

    out = {
        "percell_s": _time_call(run_percell, repeats),
        "batched_s": _time_call(run_batched, repeats),
    }
    if iterations["batched"] != iterations["percell"]:
        raise AssertionError(
            "batched and per-cell FEM schedules disagree on iterations"
        )
    out["speedup"] = out["percell_s"] / out["batched_s"]
    out["peak_mb"] = _peak_mb(run_batched)
    out["iterations"] = iterations
    out["cells"] = len(TABLE3_SCHEDULE)
    return out


def bench_stencil_apply(repeats: int) -> dict:
    """Fused matrix-free ``K·x`` vs the assembled CSR matvec.

    Both products are bitwise identical (the benchmark asserts it before
    timing); the recorded ``speedup`` is pure kernel speed, gated
    absolutely at ``TARGET_STENCIL_MATVEC_SPEEDUP``.  The row also
    records each representation's operator footprint.
    """
    from repro.fem.matrixfree import stencil_operator
    from repro.pipeline import build_scenario

    problem = build_scenario("poisson", n_grid=STENCIL_GRID)
    op = stencil_operator(problem)
    k = problem.k
    x = np.random.default_rng(8).normal(size=op.n)
    buf = np.empty(op.n)
    op.matvec_into(x, buf)
    if not np.array_equal(k @ x, buf):
        raise AssertionError("stencil K·x is not bitwise equal to the CSR matvec")
    out = {
        "csr_s": _time_call(lambda: k @ x, repeats),
        "stencil_s": _time_call(lambda: op.matvec_into(x, buf), repeats),
    }
    out["speedup"] = out["csr_s"] / out["stencil_s"]
    out["n"] = op.n
    out["csr_mb"] = (k.data.nbytes + k.indices.nbytes + k.indptr.nbytes) / 2**20
    out["stencil_mb"] = op.memory_bytes() / 2**20
    out["peak_mb"] = _peak_mb(lambda: op.matvec_into(x, buf))
    return out


def bench_stencil_sweep(repeats: int) -> dict:
    """Multicolor m-step SSOR: fused native sweep vs the merged CSR sweep.

    Gated absolutely at ``TARGET_STENCIL_SWEEP_SPEEDUP``: since the whole
    m-step schedule moved into one native kernel walking the color plan
    in-kernel, the matrix-free sweep must at least match ``MStepSSOR``
    per application — the solve row below still carries the memory
    headline.
    """
    from repro.driver import mstep_coefficients
    from repro.fem.matrixfree import stencil_operator
    from repro.kernels.stencil import StencilSSOR
    from repro.pipeline import build_scenario

    problem = build_scenario("poisson", n_grid=STENCIL_GRID)
    blocked = build_blocked_system(problem)
    coeffs = mstep_coefficients(STENCIL_M, False, ssor_interval(blocked))
    csr_sweep = MStepSSOR(blocked, coeffs)
    st_sweep = StencilSSOR(stencil_operator(problem), coeffs)
    r = np.random.default_rng(9).normal(size=blocked.n)
    out = {
        "csr_s": _time_call(lambda: csr_sweep.apply(r), repeats),
        "stencil_s": _time_call(lambda: st_sweep.apply(r), repeats),
    }
    out["speedup"] = out["csr_s"] / out["stencil_s"]
    out["m"] = STENCIL_M
    out["peak_mb"] = _peak_mb(lambda: st_sweep.apply(r))
    return out


def bench_stencil_block_sweep(repeats: int) -> dict:
    """The fused native *block* sweep vs the merged CSR block sweep.

    One row per RHS width in ``STENCIL_BLOCK_WIDTHS``; every row is gated
    absolutely at ``TARGET_STENCIL_SWEEP_SPEEDUP``, same bar as the
    vector sweep.
    """
    from repro.driver import mstep_coefficients
    from repro.fem.matrixfree import stencil_operator
    from repro.kernels.stencil import StencilSSOR
    from repro.pipeline import build_scenario

    problem = build_scenario("poisson", n_grid=STENCIL_GRID)
    blocked = build_blocked_system(problem)
    coeffs = mstep_coefficients(STENCIL_M, False, ssor_interval(blocked))
    csr_sweep = MStepSSOR(blocked, coeffs)
    st_sweep = StencilSSOR(stencil_operator(problem), coeffs)
    rows: dict[str, dict] = {}
    for k in STENCIL_BLOCK_WIDTHS:
        R = np.ascontiguousarray(
            np.random.default_rng(10 + k).normal(size=(blocked.n, k))
        )
        row = {
            "csr_s": _time_call(lambda: csr_sweep.apply(R), repeats),
            "stencil_s": _time_call(lambda: st_sweep.apply(R), repeats),
        }
        row["speedup"] = row["csr_s"] / row["stencil_s"]
        row["m"] = STENCIL_M
        row["peak_mb"] = _peak_mb(lambda: st_sweep.apply(R))
        rows[f"k={k}"] = row
    return rows


def bench_stencil_solve(repeats: int, eps: float) -> dict:
    """End-to-end solve, assembled pipeline vs matrix-free stencil.

    Each call rebuilds the problem, compiles a fresh session and solves
    one cell — exactly what a cold request pays.  The recorded
    ``speedup`` is the **peak-allocation ratio** (assembled / stencil),
    gated absolutely at ``TARGET_STENCIL_SOLVE_MEMORY_RATIO``: the
    matrix-free path must make the memory the assembled path spends on
    CSR + multicolor factors simply not exist.  Wall time is recorded
    alongside (``solve_speedup``, informational).
    """
    from repro.pipeline import SolverPlan, SolverSession, build_scenario

    iterations: dict[str, int] = {}

    def run_csr() -> None:
        problem = build_scenario("poisson", n_grid=STENCIL_GRID)
        session = SolverSession(problem, plan=SolverPlan.single(STENCIL_M, eps=eps))
        solve = session.solve_cell(STENCIL_M)
        assert solve.result.converged
        iterations["csr"] = solve.iterations

    def run_stencil() -> None:
        problem = build_scenario("poisson", n_grid=STENCIL_GRID, assemble=False)
        session = SolverSession(
            problem, plan=SolverPlan.single(STENCIL_M, eps=eps, backend="stencil")
        )
        solve = session.solve_cell(STENCIL_M)
        assert solve.result.converged
        iterations["stencil"] = solve.iterations

    out = {
        "csr_s": _time_call(run_csr, repeats),
        "stencil_s": _time_call(run_stencil, repeats),
        "csr_peak_mb": _peak_mb(run_csr),
        "stencil_peak_mb": _peak_mb(run_stencil),
    }
    out["speedup"] = out["csr_peak_mb"] / out["stencil_peak_mb"]
    out["solve_speedup"] = out["csr_s"] / out["stencil_s"]
    out["peak_mb"] = out["stencil_peak_mb"]
    out["iterations"] = iterations
    out["m"] = STENCIL_M
    return out


def build_report(
    meshes=(20, 41),
    repeats: int = 3,
    eps: float = 1e-6,
    table2_mesh: int | None = None,
    sharded_steady: bool = True,
) -> dict:
    """Run every measurement and assemble the JSON-ready report dict."""
    meshes = list(meshes)
    if table2_mesh is None:
        table2_mesh = meshes[0]
    if table2_mesh not in meshes:
        raise ValueError(
            f"table2_mesh {table2_mesh} must be one of the benchmarked meshes {meshes}"
        )
    results: dict = {
        "apply_p_inv": {},
        "mstep_apply": {},
        "pcg": {},
        "table2_sweep": {},
        "cyber_schedule": {},
        "block_pcg": {},
        "sharded_block_pcg": {},
        "fem_schedule": {},
        "stencil_apply": {},
        "stencil_sweep": {},
        "stencil_block_sweep": {},
        "stencil_solve": {},
    }
    for a in meshes:
        problem = plate_problem(a)
        blocked = build_blocked_system(problem)
        key = f"a={a}"
        results["apply_p_inv"][key] = bench_apply_p_inv(blocked, repeats)
        results["mstep_apply"][key] = bench_mstep_apply(blocked, repeats)
        results["pcg"][key] = bench_pcg(problem, blocked, repeats, eps)
        if a == table2_mesh:
            results["table2_sweep"][key] = bench_table2_sweep(
                problem, blocked, repeats, eps
            )
            results["cyber_schedule"][key] = bench_cyber_schedule(
                problem, repeats, eps
            )
            results["block_pcg"][key] = bench_block_pcg(
                problem, blocked, repeats, eps
            )
            results["fem_schedule"][key] = bench_fem_schedule(
                problem, blocked, repeats, eps
            )
        if a == max(meshes):
            # Sharding pays off when each shard carries real compute, so
            # the parallel benchmark runs on the largest mesh.
            results["sharded_block_pcg"][key] = bench_sharded_block_pcg(
                problem, blocked, repeats, eps, steady=sharded_steady
            )

    gkey = f"g={STENCIL_GRID}"
    results["stencil_apply"][gkey] = bench_stencil_apply(repeats)
    results["stencil_sweep"][gkey] = bench_stencil_sweep(repeats)
    results["stencil_block_sweep"] = bench_stencil_block_sweep(repeats)
    results["stencil_solve"][gkey] = bench_stencil_solve(repeats, eps)

    largest = f"a={max(meshes)}"
    table2_key = f"a={table2_mesh}"
    apply_speedup = results["apply_p_inv"][largest]["speedup"]
    table2_speedup = results["table2_sweep"][table2_key]["speedup"]
    cyber_batched_speedup = results["cyber_schedule"][table2_key]["speedup"]
    block_pcg_speedup = results["block_pcg"][table2_key]["speedup"]
    sharded_speedup = results["sharded_block_pcg"][largest]["speedup"]
    fem_schedule_speedup = results["fem_schedule"][table2_key]["speedup"]
    stencil_matvec_speedup = results["stencil_apply"][gkey]["speedup"]
    stencil_sweep_speedup = results["stencil_sweep"][gkey]["speedup"]
    stencil_block_sweep_speedup = min(
        row["speedup"] for row in results["stencil_block_sweep"].values()
    )
    stencil_memory_ratio = results["stencil_solve"][gkey]["speedup"]
    cpu_count = os.cpu_count() or 1
    sharded_enforced = cpu_count >= SHARDED_MIN_CORES
    return {
        "bench": "kernels",
        "created_unix": time.time(),
        "versions": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "scipy": scipy.__version__,
        },
        "host": {"cpu_count": cpu_count},
        "config": {
            "meshes": meshes,
            "repeats": repeats,
            "eps": eps,
            "m_apply": M_APPLY,
            "m_pcg": M_PCG,
            "table2_mesh": table2_mesh,
            "sharded_mode": "steady" if sharded_steady else "cold",
            "stencil_grid": STENCIL_GRID,
            "stencil_m": STENCIL_M,
        },
        "results": results,
        "targets": {
            "apply_p_inv_speedup_min": TARGET_APPLY_P_INV_SPEEDUP,
            "apply_p_inv_speedup": apply_speedup,
            "table2_speedup_min": TARGET_TABLE2_SPEEDUP,
            "table2_speedup": table2_speedup,
            "cyber_batched_speedup_min": TARGET_CYBER_BATCHED_SPEEDUP,
            "cyber_batched_speedup": cyber_batched_speedup,
            "block_pcg_speedup_min": TARGET_BLOCK_PCG_SPEEDUP,
            "block_pcg_speedup": block_pcg_speedup,
            "sharded_block_pcg_speedup_min": TARGET_SHARDED_BLOCK_PCG_SPEEDUP,
            "sharded_block_pcg_speedup": sharded_speedup,
            # Real-parallel targets need real cores; single-core hosts
            # record the measurement but do not enforce the absolute bar.
            "sharded_block_pcg_enforced": sharded_enforced,
            "fem_schedule_speedup_min": TARGET_FEM_SCHEDULE_SPEEDUP,
            "fem_schedule_speedup": fem_schedule_speedup,
            "stencil_matvec_speedup_min": TARGET_STENCIL_MATVEC_SPEEDUP,
            "stencil_matvec_speedup": stencil_matvec_speedup,
            "stencil_sweep_speedup_min": TARGET_STENCIL_SWEEP_SPEEDUP,
            "stencil_sweep_speedup": stencil_sweep_speedup,
            "stencil_block_sweep_speedup_min": TARGET_STENCIL_SWEEP_SPEEDUP,
            "stencil_block_sweep_speedup": stencil_block_sweep_speedup,
            "stencil_solve_memory_ratio_min": TARGET_STENCIL_SOLVE_MEMORY_RATIO,
            "stencil_solve_memory_ratio": stencil_memory_ratio,
            "met": bool(
                apply_speedup >= TARGET_APPLY_P_INV_SPEEDUP
                and table2_speedup >= TARGET_TABLE2_SPEEDUP
                and cyber_batched_speedup >= TARGET_CYBER_BATCHED_SPEEDUP
                and block_pcg_speedup >= TARGET_BLOCK_PCG_SPEEDUP
                and (
                    not sharded_enforced
                    or sharded_speedup >= TARGET_SHARDED_BLOCK_PCG_SPEEDUP
                )
                and fem_schedule_speedup >= TARGET_FEM_SCHEDULE_SPEEDUP
                and stencil_matvec_speedup >= TARGET_STENCIL_MATVEC_SPEEDUP
                and stencil_sweep_speedup >= TARGET_STENCIL_SWEEP_SPEEDUP
                and stencil_block_sweep_speedup >= TARGET_STENCIL_SWEEP_SPEEDUP
                and stencil_memory_ratio >= TARGET_STENCIL_SOLVE_MEMORY_RATIO
            ),
        },
    }


def render(report: dict) -> str:
    lines = ["kernel perf report (seconds per call; best of repeats)", ""]
    for section, by_mesh in report["results"].items():
        for key, row in by_mesh.items():
            cells = ", ".join(
                f"{name}={value:.3e}" if name.endswith("_s")
                else f"{name}={value:.2f}" if name == "speedup"
                else f"{name}={value:.1f}" if name.endswith("peak_mb")
                else ""
                for name, value in row.items()
                if name.endswith("_s") or name == "speedup"
                or name.endswith("peak_mb")
            ).strip(", ")
            lines.append(f"  {section:<14s} {key:<6s} {cells}")
    t = report["targets"]
    lines += [
        "",
        f"  targets: apply_p_inv ≥{t['apply_p_inv_speedup_min']:.0f}× "
        f"(measured {t['apply_p_inv_speedup']:.1f}×), "
        f"table2 ≥{t['table2_speedup_min']:.0f}× "
        f"(measured {t['table2_speedup']:.1f}×), "
        f"batched cyber sweep ≥{t['cyber_batched_speedup_min']:.1f}× "
        f"(measured {t['cyber_batched_speedup']:.1f}×), "
        f"block pcg ≥{t['block_pcg_speedup_min']:.1f}× "
        f"(measured {t['block_pcg_speedup']:.1f}×), "
        f"sharded block pcg ≥{t['sharded_block_pcg_speedup_min']:.1f}× "
        f"(measured {t['sharded_block_pcg_speedup']:.2f}×"
        + (
            ""
            if t["sharded_block_pcg_enforced"]
            else ", recorded only — host has too few cores"
        )
        + "), "
        f"fem schedule ≥{t['fem_schedule_speedup_min']:.1f}× "
        f"(measured {t['fem_schedule_speedup']:.1f}×), "
        f"stencil matvec ≥{t['stencil_matvec_speedup_min']:.0f}× "
        f"(measured {t['stencil_matvec_speedup']:.1f}×), "
        f"stencil sweep ≥{t['stencil_sweep_speedup_min']:.1f}× "
        f"(measured {t['stencil_sweep_speedup']:.2f}× vector, "
        f"{t['stencil_block_sweep_speedup']:.2f}× block), "
        f"stencil solve memory ≥{t['stencil_solve_memory_ratio_min']:.1f}× "
        f"(measured {t['stencil_solve_memory_ratio']:.1f}×) — "
        + ("MET" if t["met"] else "NOT MET"),
    ]
    return "\n".join(lines)


def check_against_baseline(
    baseline: dict, report: dict, tolerance: float
) -> list[str]:
    """Regression verdicts: every baseline speedup must survive × tolerance.

    Also flags Table-2 iteration-count drift (the gate doubles as a cheap
    silent-numerics-change detector) and the absolute speedup targets.
    """
    failures: list[str] = []
    fresh_cores = report.get("host", {}).get("cpu_count", os.cpu_count() or 1)
    for section, by_mesh in baseline.get("results", {}).items():
        for key, row in by_mesh.items():
            base_speedup = row.get("speedup")
            if base_speedup is None:
                continue
            fresh_row = report["results"].get(section, {}).get(key)
            if fresh_row is None:
                failures.append(f"{section}[{key}]: missing from the fresh report")
                continue
            fresh_speedup = fresh_row["speedup"]
            floor = tolerance * base_speedup
            # Rows whose speedup needs real cores (the sharded benchmarks
            # carry requires_cores) are regression-checked only on hosts
            # that actually have them; iteration drift is checked always.
            requires_cores = row.get("requires_cores", 1)
            if fresh_speedup < floor and fresh_cores >= requires_cores:
                failures.append(
                    f"{section}[{key}]: speedup {fresh_speedup:.2f}× < "
                    f"{floor:.2f}× (= {tolerance:g} × baseline "
                    f"{base_speedup:.2f}×)"
                )
            base_iters = row.get("iterations")
            if base_iters is not None and fresh_row.get("iterations") != base_iters:
                failures.append(
                    f"{section}[{key}]: iteration counts drifted from the "
                    "baseline — numerics changed, not just speed"
                )
    if not report["targets"]["met"]:
        t = report["targets"]
        failures.append(
            "absolute targets missed: apply_p_inv "
            f"{t['apply_p_inv_speedup']:.1f}× (need "
            f"≥{t['apply_p_inv_speedup_min']:g}×), table2 "
            f"{t['table2_speedup']:.1f}× (need ≥{t['table2_speedup_min']:g}×), "
            f"batched cyber sweep {t['cyber_batched_speedup']:.1f}× "
            f"(need ≥{t['cyber_batched_speedup_min']:g}×), "
            f"block pcg {t['block_pcg_speedup']:.1f}× "
            f"(need ≥{t['block_pcg_speedup_min']:g}×), "
            f"sharded block pcg {t['sharded_block_pcg_speedup']:.2f}× "
            f"(need ≥{t['sharded_block_pcg_speedup_min']:g}× when enforced; "
            f"enforced={t['sharded_block_pcg_enforced']}), "
            f"fem schedule {t['fem_schedule_speedup']:.1f}× "
            f"(need ≥{t['fem_schedule_speedup_min']:g}×), "
            f"stencil matvec {t['stencil_matvec_speedup']:.1f}× "
            f"(need ≥{t['stencil_matvec_speedup_min']:g}×), "
            f"stencil sweep {t['stencil_sweep_speedup']:.2f}× vector / "
            f"{t['stencil_block_sweep_speedup']:.2f}× block "
            f"(need ≥{t['stencil_sweep_speedup_min']:g}×), "
            f"stencil solve memory {t['stencil_solve_memory_ratio']:.1f}× "
            f"(need ≥{t['stencil_solve_memory_ratio_min']:g}×)"
        )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--meshes", default=None,
        help="comma-separated plate sizes a (default 20,41; in --check mode "
        "the baseline's own meshes)",
    )
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument("--eps", type=float, default=None)
    parser.add_argument(
        "--table2-mesh", type=int, default=None,
        help="mesh for the end-to-end Table-2 sweep (default: smallest mesh)",
    )
    parser.add_argument(
        "--check", metavar="BASELINE", default=None,
        help="regression-gate mode: re-measure with BASELINE's config and "
        "fail if any recorded speedup regresses beyond the tolerance",
    )
    parser.add_argument(
        "--sharded-cold", action="store_true",
        help="measure the sharded block-PCG benchmark cold (no pool "
        "pre-warm, no excluded warm-up dispatch) instead of the default "
        "steady-state mode",
    )
    parser.add_argument(
        "--check-tolerance", type=float, default=0.5,
        help="a fresh speedup may not fall below this fraction of its "
        "baseline value (default 0.5)",
    )
    parser.add_argument(
        "--out", default=None,
        help="output JSON path (default BENCH_kernels.json at the repo "
        "root, or BENCH_kernels.fresh.json in --check mode)",
    )
    args = parser.parse_args(argv)

    baseline = None
    if args.check is not None:
        baseline_path = Path(args.check)
        if not baseline_path.exists():
            parser.error(f"--check baseline {baseline_path} does not exist")
        baseline = json.loads(baseline_path.read_text())
        base_config = baseline.get("config", {})
        if args.meshes is None and "meshes" in base_config:
            args.meshes = ",".join(str(a) for a in base_config["meshes"])
        if args.repeats is None:
            args.repeats = base_config.get("repeats", 3)
        if args.eps is None:
            args.eps = base_config.get("eps", 1e-6)
        if args.table2_mesh is None:
            table2_mesh = base_config.get("table2_mesh")
            if table2_mesh is not None and str(table2_mesh) in (
                args.meshes or ""
            ).split(","):
                args.table2_mesh = table2_mesh

    if args.meshes is None:
        args.meshes = "20,41"
    if args.repeats is None:
        args.repeats = 3
    if args.eps is None:
        args.eps = 1e-6
    try:
        meshes = [int(tok) for tok in args.meshes.split(",") if tok.strip()]
    except ValueError:
        parser.error(f"--meshes must be comma-separated integers, got {args.meshes!r}")
    if not meshes:
        parser.error("--meshes needs at least one plate size")
    if args.table2_mesh is not None and args.table2_mesh not in meshes:
        parser.error(
            f"--table2-mesh {args.table2_mesh} must be one of --meshes {meshes}"
        )
    if args.out is None:
        name = "BENCH_kernels.fresh.json" if args.check else "BENCH_kernels.json"
        args.out = str(REPO_ROOT / name)

    report = build_report(
        meshes=meshes, repeats=args.repeats, eps=args.eps,
        table2_mesh=args.table2_mesh,
        sharded_steady=not args.sharded_cold,
    )
    out_path = Path(args.out)
    out_path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(render(report))
    print(f"\n[written to {out_path}]")

    if baseline is not None:
        failures = check_against_baseline(baseline, report, args.check_tolerance)
        print()
        if failures:
            print("PERF GATE: FAIL")
            for line in failures:
                print(f"  - {line}")
            return 1
        print(
            "PERF GATE: PASS — no speedup below "
            f"{args.check_tolerance:g}× its baseline, iteration counts "
            "unchanged, targets met"
        )
        return 0
    return 0 if report["targets"]["met"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
