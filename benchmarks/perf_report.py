#!/usr/bin/env python
"""Machine-readable perf harness for the kernel backend layer.

Times the solver stack's hot primitives on the plate problem —
``apply_p_inv`` (the SSOR triangular application), the m-step
preconditioner application (kernel path and Conrad–Wallach sweep), a full
PCG solve, and the end-to-end Table-2 m-schedule sweep — for both kernel
backends, and writes ``BENCH_kernels.json`` at the repo root.  That file
is the perf-trajectory baseline: future PRs rerun this script and diff.

Usage (no pytest required)::

    python benchmarks/perf_report.py                 # default meshes 20,41
    python benchmarks/perf_report.py --meshes 11,20 --repeats 3
    python benchmarks/perf_report.py --out /tmp/bench.json

The benchmark-fixture variant of the same measurements lives in
``benchmarks/bench_perf_suite.py`` (pytest marker ``perf``).
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402
import scipy  # noqa: E402

from repro import plate_problem  # noqa: E402
from repro.core.mstep import MStepPreconditioner  # noqa: E402
from repro.core.polynomial import neumann_coefficients  # noqa: E402
from repro.core.splittings import SSORSplitting  # noqa: E402
from repro.driver import (  # noqa: E402
    TABLE2_SCHEDULE,
    build_blocked_system,
    solve_mstep_ssor,
    ssor_interval,
)
from repro.kernels import BACKENDS, REFERENCE, VECTORIZED  # noqa: E402
from repro.multicolor import MStepSSOR  # noqa: E402

#: Acceptance thresholds recorded alongside the measurements.
TARGET_APPLY_P_INV_SPEEDUP = 5.0
TARGET_TABLE2_SPEEDUP = 2.0

M_APPLY = 4  # the m used for preconditioner-application timings
M_PCG = 3  # the m used for full-solve timings


def _time_call(fn, repeats: int, min_seconds: float = 0.02) -> float:
    """Best-of-``repeats`` per-call seconds, inner-looped for short calls."""
    fn()  # warm caches (factorizations, workspaces)
    t0 = time.perf_counter()
    fn()
    once = max(time.perf_counter() - t0, 1e-9)
    inner = max(1, int(min_seconds / once))
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        for _ in range(inner):
            fn()
        best = min(best, (time.perf_counter() - t0) / inner)
    return best


def bench_apply_p_inv(blocked, repeats: int) -> dict:
    """SSOR ``P⁻¹r`` per backend: color-block sweeps vs spsolve_triangular."""
    r = np.random.default_rng(0).normal(size=blocked.n)
    out = {}
    for backend in BACKENDS:
        splitting = SSORSplitting(blocked.permuted, backend=backend)
        out[f"{backend}_s"] = _time_call(lambda: splitting.apply_p_inv(r), repeats)
    out["speedup"] = out[f"{REFERENCE}_s"] / out[f"{VECTORIZED}_s"]
    return out


def bench_mstep_apply(blocked, repeats: int) -> dict:
    """m-step application: kernel Horner per backend + the merged sweep."""
    coeffs = neumann_coefficients(M_APPLY)
    r = np.random.default_rng(1).normal(size=blocked.n)
    out = {}
    for backend in BACKENDS:
        precond = MStepPreconditioner(
            SSORSplitting(blocked.permuted, backend=backend), coeffs
        )
        out[f"{backend}_s"] = _time_call(lambda: precond.apply(r), repeats)
    sweep = MStepSSOR(blocked, coeffs)
    out["sweep_s"] = _time_call(lambda: sweep.apply(r), repeats)
    out["speedup"] = out[f"{REFERENCE}_s"] / out[f"{VECTORIZED}_s"]
    return out


def bench_pcg(problem, blocked, repeats: int, eps: float) -> dict:
    """Full m-step PCG solve per backend (splitting applicator) + sweep."""
    out = {}
    for backend in BACKENDS:
        def run(backend=backend):
            solve = solve_mstep_ssor(
                problem, M_PCG, blocked=blocked, eps=eps,
                applicator="splitting", backend=backend,
            )
            assert solve.result.converged
            return solve

        out[f"{backend}_s"] = _time_call(run, repeats)

    def run_sweep():
        solve = solve_mstep_ssor(problem, M_PCG, blocked=blocked, eps=eps)
        assert solve.result.converged

    out["sweep_s"] = _time_call(run_sweep, repeats)
    out["speedup"] = out[f"{REFERENCE}_s"] / out[f"{VECTORIZED}_s"]
    return out


def bench_table2_sweep(problem, blocked, repeats: int, eps: float) -> dict:
    """The full Table-2 m-schedule, end to end, per backend."""
    interval = ssor_interval(blocked)
    iterations: dict[str, int] = {}

    def run_schedule(backend: str) -> None:
        for m, parametrized in TABLE2_SCHEDULE:
            solve = solve_mstep_ssor(
                problem, m, parametrized=parametrized, interval=interval,
                blocked=blocked, eps=eps,
                applicator="splitting", backend=backend,
            )
            assert solve.result.converged
            iterations[solve.label] = solve.iterations

    out = {}
    for backend in BACKENDS:
        out[f"{backend}_s"] = _time_call(
            lambda backend=backend: run_schedule(backend), repeats
        )
    out["speedup"] = out[f"{REFERENCE}_s"] / out[f"{VECTORIZED}_s"]
    out["iterations"] = iterations
    out["cells"] = len(TABLE2_SCHEDULE)
    return out


def build_report(
    meshes=(20, 41), repeats: int = 3, eps: float = 1e-6, table2_mesh: int | None = None
) -> dict:
    """Run every measurement and assemble the JSON-ready report dict."""
    meshes = list(meshes)
    if table2_mesh is None:
        table2_mesh = meshes[0]
    if table2_mesh not in meshes:
        raise ValueError(
            f"table2_mesh {table2_mesh} must be one of the benchmarked meshes {meshes}"
        )
    results: dict = {
        "apply_p_inv": {},
        "mstep_apply": {},
        "pcg": {},
        "table2_sweep": {},
    }
    for a in meshes:
        problem = plate_problem(a)
        blocked = build_blocked_system(problem)
        key = f"a={a}"
        results["apply_p_inv"][key] = bench_apply_p_inv(blocked, repeats)
        results["mstep_apply"][key] = bench_mstep_apply(blocked, repeats)
        results["pcg"][key] = bench_pcg(problem, blocked, repeats, eps)
        if a == table2_mesh:
            results["table2_sweep"][key] = bench_table2_sweep(
                problem, blocked, repeats, eps
            )

    largest = f"a={max(meshes)}"
    table2_key = f"a={table2_mesh}"
    apply_speedup = results["apply_p_inv"][largest]["speedup"]
    table2_speedup = results["table2_sweep"][table2_key]["speedup"]
    return {
        "bench": "kernels",
        "created_unix": time.time(),
        "versions": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "scipy": scipy.__version__,
        },
        "config": {
            "meshes": meshes,
            "repeats": repeats,
            "eps": eps,
            "m_apply": M_APPLY,
            "m_pcg": M_PCG,
            "table2_mesh": table2_mesh,
        },
        "results": results,
        "targets": {
            "apply_p_inv_speedup_min": TARGET_APPLY_P_INV_SPEEDUP,
            "apply_p_inv_speedup": apply_speedup,
            "table2_speedup_min": TARGET_TABLE2_SPEEDUP,
            "table2_speedup": table2_speedup,
            "met": bool(
                apply_speedup >= TARGET_APPLY_P_INV_SPEEDUP
                and table2_speedup >= TARGET_TABLE2_SPEEDUP
            ),
        },
    }


def render(report: dict) -> str:
    lines = ["kernel perf report (seconds per call; best of repeats)", ""]
    for section, by_mesh in report["results"].items():
        for key, row in by_mesh.items():
            cells = ", ".join(
                f"{name}={value:.3e}" if name.endswith("_s")
                else f"{name}={value:.2f}" if name == "speedup"
                else ""
                for name, value in row.items()
                if name.endswith("_s") or name == "speedup"
            ).strip(", ")
            lines.append(f"  {section:<14s} {key:<6s} {cells}")
    t = report["targets"]
    lines += [
        "",
        f"  targets: apply_p_inv ≥{t['apply_p_inv_speedup_min']:.0f}× "
        f"(measured {t['apply_p_inv_speedup']:.1f}×), "
        f"table2 ≥{t['table2_speedup_min']:.0f}× "
        f"(measured {t['table2_speedup']:.1f}×) — "
        + ("MET" if t["met"] else "NOT MET"),
    ]
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--meshes", default="20,41",
        help="comma-separated plate sizes a (default 20,41)",
    )
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--eps", type=float, default=1e-6)
    parser.add_argument(
        "--table2-mesh", type=int, default=None,
        help="mesh for the end-to-end Table-2 sweep (default: smallest mesh)",
    )
    parser.add_argument(
        "--out", default=str(REPO_ROOT / "BENCH_kernels.json"),
        help="output JSON path (default BENCH_kernels.json at the repo root)",
    )
    args = parser.parse_args(argv)
    try:
        meshes = [int(tok) for tok in args.meshes.split(",") if tok.strip()]
    except ValueError:
        parser.error(f"--meshes must be comma-separated integers, got {args.meshes!r}")
    if not meshes:
        parser.error("--meshes needs at least one plate size")
    if args.table2_mesh is not None and args.table2_mesh not in meshes:
        parser.error(
            f"--table2-mesh {args.table2_mesh} must be one of --meshes {meshes}"
        )

    report = build_report(
        meshes=meshes, repeats=args.repeats, eps=args.eps,
        table2_mesh=args.table2_mesh,
    )
    out_path = Path(args.out)
    out_path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(render(report))
    print(f"\n[written to {out_path}]")
    return 0 if report["targets"]["met"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
