"""Ablation — the relaxation parameter ω (§5's closing remark).

"This method does not face the usual difficulty in choosing the optimal
relaxation parameter ω for the multicolor SSOR method, since for this
ordering and few colors ω = 1 is a good choice" (citing Adams 1983).

This bench sweeps ω for the one-step SSOR preconditioner on the plate and
shows the condition number κ(M⁻¹K) — and the resulting PCG iterations —
are nearly flat around ω = 1, justifying the paper's choice of fixing
ω = 1 in Algorithm 2.
"""

from repro.analysis import Table
from repro.core import (
    MStepPreconditioner,
    SSORSplitting,
    neumann_coefficients,
    pcg,
    preconditioned_condition_number,
)

from _common import cached_plate, emit, run_once

OMEGAS = [0.6, 0.8, 0.9, 1.0, 1.1, 1.2, 1.4, 1.6]


def build_table():
    problem = cached_plate(8)
    k, f = problem.k, problem.f
    table = Table(
        "ω-sensitivity of one-step multicolor SSOR PCG (a = 8 plate)",
        ["ω", "κ(M₁⁻¹K)", "PCG iterations"],
    )
    kappas = {}
    iters = {}
    for omega in OMEGAS:
        splitting = SSORSplitting(k, omega=omega)
        kappa = preconditioned_condition_number(splitting, neumann_coefficients(1))
        precond = MStepPreconditioner(splitting, neumann_coefficients(1))
        result = pcg(k, f, preconditioner=precond, eps=1e-7)
        kappas[omega] = kappa
        iters[omega] = result.iterations
        table.add_row(omega, kappa, result.iterations)
    table.add_note("flat near ω = 1 — the paper's 'ω = 1 is a good choice'")
    return table.render(), kappas, iters


def test_omega_flat_near_one(benchmark):
    text, kappas, iters = run_once(benchmark, build_table)
    emit("ablation_omega", text)
    # ω = 1 is within one iteration of the best ω in the sweep — no tuning
    # needed, which is the paper's point ("does not face the usual
    # difficulty in choosing the optimal relaxation parameter").
    assert iters[1.0] <= min(iters.values()) + 1
    # κ at ω = 1 is within 30% of the best κ over the sweep.
    best = min(kappas.values())
    assert kappas[1.0] <= 1.30 * best
    # The whole sweep spans a modest range (no SOR-style cliff).
    assert max(iters.values()) <= 1.5 * min(iters.values())
