#!/usr/bin/env python
"""Serving-layer load generator and perf gate (``BENCH_serving.json``).

Drives a real in-process ``repro serve`` daemon (asyncio front end, TCP
clients, the works) through three traffic regimes and records requests/sec
and p50/p99 latency for each:

* **cold** — the first request against a never-seen system key pays the
  full compile (scenario build, coloring, factorized kernels): the cost
  the daemon exists to amortize, measured per fresh key;
* **hot serial** — one client, batching disabled, every request a cache
  hit: the per-request floor of the unbatched serving path;
* **batched** — ``CONCURRENCY`` concurrent clients against the
  micro-batcher: same-system requests coalesce into ``(n, k)``
  block-PCG locksteps, so throughput rises while per-column numerics
  stay bitwise identical (the daemon asserts it; this benchmark
  cross-checks iteration counts between regimes).

Usage::

    python benchmarks/bench_serving.py                # write BENCH_serving.json
    python benchmarks/bench_serving.py --check BENCH_serving.json

``--check BASELINE.json`` is the regression gate CI runs: re-measure with
the baseline's configuration, fail if the batched-over-hot throughput
ratio falls below ``--check-tolerance`` times its baseline value, if the
absolute ≥{TARGET}× target is missed, or if iteration counts drift (a
silent numerics change).  The ratio is measured in one process on one
host, so it transfers across machines the way the kernel-bench speedups
do; it needs no extra cores — batching wins by vectorized width, not by
parallelism.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402
import scipy  # noqa: E402

from repro.serving import ServeClient, start_server_thread  # noqa: E402

#: Batched throughput must beat hot-serial throughput by at least this
#: factor at CONCURRENCY concurrent clients (the ISSUE 7 gate).
TARGET_BATCHED_VS_HOT = 2.0

SCENARIO = "plate"
ROWS = 20
M = 3
EPS = 1e-6
CONCURRENCY = 8  # concurrent clients in the batched regime
MAX_BATCH = 8
BATCH_WINDOW = 0.004
LOAD_CASES = 8  # request mix cycles through deterministic load cases
HOT_REQUESTS = 64  # sequential requests per hot-serial round
BATCHED_REQUESTS = 128  # total requests per batched round
COLD_ROWS = (16, 18, 20)  # distinct system keys for the cold regime


def _percentile(samples: list[float], q: float) -> float:
    return float(np.percentile(np.asarray(samples, dtype=float), q))


def _latency_stats(samples: list[float]) -> dict:
    return {
        "p50_s": _percentile(samples, 50),
        "p99_s": _percentile(samples, 99),
        "mean_s": float(np.mean(samples)),
        "n": len(samples),
    }


def bench_cold() -> dict:
    """First-request latency per fresh system key (the full compile cost)."""
    handle = start_server_thread(batch_window=0.0, max_batch=1, capacity=8)
    per_key = {}
    try:
        with ServeClient(port=handle.port) as client:
            for rows in COLD_ROWS:
                t0 = time.perf_counter()
                reply = client.solve(
                    scenario=SCENARIO, rows=rows, m=M, eps=EPS, load_case=0
                )
                latency = time.perf_counter() - t0
                assert reply.converged and not reply.cache_hit
                per_key[f"rows={rows}"] = latency
            # The same key again, now hot — the amortization headline.
            t0 = time.perf_counter()
            reply = client.solve(
                scenario=SCENARIO, rows=COLD_ROWS[-1], m=M, eps=EPS,
                load_case=0,
            )
            hot_after = time.perf_counter() - t0
            assert reply.cache_hit
    finally:
        handle.stop()
    cold_mean = float(np.mean(list(per_key.values())))
    return {
        "per_key_s": per_key,
        "mean_s": cold_mean,
        "hot_after_s": hot_after,
        "cold_over_hot": cold_mean / hot_after,
    }


def _run_hot_round() -> tuple[float, list[float], dict[str, int]]:
    handle = start_server_thread(batch_window=0.0, max_batch=1, capacity=8)
    latencies: list[float] = []
    iterations: dict[str, int] = {}
    try:
        with ServeClient(port=handle.port) as client:
            client.solve(scenario=SCENARIO, rows=ROWS, m=M, eps=EPS)  # warm
            t0 = time.perf_counter()
            for i in range(HOT_REQUESTS):
                case = i % LOAD_CASES
                t1 = time.perf_counter()
                reply = client.solve(
                    scenario=SCENARIO, rows=ROWS, m=M, eps=EPS,
                    load_case=case,
                )
                latencies.append(time.perf_counter() - t1)
                assert reply.converged and reply.cache_hit
                assert reply.batch_width == 1
                iterations[str(case)] = reply.iterations
            total = time.perf_counter() - t0
    finally:
        handle.stop()
    return HOT_REQUESTS / total, latencies, iterations


def _run_batched_round() -> tuple[float, list[float], dict[str, int], dict]:
    handle = start_server_thread(
        batch_window=BATCH_WINDOW, max_batch=MAX_BATCH, capacity=8
    )
    per_client = BATCHED_REQUESTS // CONCURRENCY
    barrier = threading.Barrier(CONCURRENCY)
    iterations: dict[str, int] = {}
    lock = threading.Lock()

    def worker(wid: int) -> list[float]:
        samples = []
        with ServeClient(port=handle.port) as client:
            barrier.wait(timeout=60)
            for i in range(per_client):
                case = (wid + i * CONCURRENCY) % LOAD_CASES
                t1 = time.perf_counter()
                reply = client.solve(
                    scenario=SCENARIO, rows=ROWS, m=M, eps=EPS,
                    load_case=case,
                )
                samples.append(time.perf_counter() - t1)
                assert reply.converged
                with lock:
                    iterations[str(case)] = reply.iterations
        return samples

    try:
        with ServeClient(port=handle.port) as client:
            client.solve(scenario=SCENARIO, rows=ROWS, m=M, eps=EPS)  # warm
        t0 = time.perf_counter()
        with ThreadPoolExecutor(max_workers=CONCURRENCY) as pool:
            all_samples = list(pool.map(worker, range(CONCURRENCY)))
        total = time.perf_counter() - t0
        with ServeClient(port=handle.port) as client:
            counters = client.stats()["stats"]
    finally:
        handle.stop()
    latencies = [s for samples in all_samples for s in samples]
    widths = {w: c for w, c in counters["batch_width_hist"].items()}
    return BATCHED_REQUESTS / total, latencies, iterations, widths


def _best_of(rounds: int, run) -> tuple:
    """The round with the highest throughput (first tuple element)."""
    best = None
    for _ in range(rounds):
        result = run()
        if best is None or result[0] > best[0]:
            best = result
    return best


def build_report(repeats: int = 3) -> dict:
    results: dict = {"cold": bench_cold()}

    hot_rps, hot_lat, hot_iters = _best_of(repeats, _run_hot_round)
    results["hot_serial"] = {
        "rps": hot_rps,
        **_latency_stats(hot_lat),
        "iterations": hot_iters,
        "requests": HOT_REQUESTS,
    }

    batched_rps, batched_lat, batched_iters, widths = _best_of(
        repeats, _run_batched_round
    )
    results["batched"] = {
        "rps": batched_rps,
        **_latency_stats(batched_lat),
        "iterations": batched_iters,
        "requests": BATCHED_REQUESTS,
        "concurrency": CONCURRENCY,
        "batch_width_hist": widths,
    }

    if batched_iters != hot_iters:
        raise AssertionError(
            "batched and hot-serial solves disagree on iteration counts — "
            "the block path's bitwise contract is broken"
        )

    speedup = batched_rps / hot_rps
    return {
        "bench": "serving",
        "created_unix": time.time(),
        "versions": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "scipy": scipy.__version__,
        },
        "host": {"cpu_count": os.cpu_count() or 1},
        "config": {
            "scenario": SCENARIO,
            "rows": ROWS,
            "m": M,
            "eps": EPS,
            "repeats": repeats,
            "concurrency": CONCURRENCY,
            "max_batch": MAX_BATCH,
            "batch_window_s": BATCH_WINDOW,
            "hot_requests": HOT_REQUESTS,
            "batched_requests": BATCHED_REQUESTS,
            "load_cases": LOAD_CASES,
            "cold_rows": list(COLD_ROWS),
        },
        "results": results,
        "targets": {
            "batched_vs_hot_min": TARGET_BATCHED_VS_HOT,
            "batched_vs_hot": speedup,
            "met": bool(speedup >= TARGET_BATCHED_VS_HOT),
        },
    }


def render(report: dict) -> str:
    r = report["results"]
    t = report["targets"]
    lines = [
        "serving perf report (in-process daemon, real TCP clients)",
        "",
        f"  cold     first-request latency {r['cold']['mean_s'] * 1e3:8.1f} ms"
        f"  ({r['cold']['cold_over_hot']:.0f}x the hot request that follows)",
        f"  hot      {r['hot_serial']['rps']:8.1f} req/s   "
        f"p50 {r['hot_serial']['p50_s'] * 1e3:6.2f} ms   "
        f"p99 {r['hot_serial']['p99_s'] * 1e3:6.2f} ms   (serial, unbatched)",
        f"  batched  {r['batched']['rps']:8.1f} req/s   "
        f"p50 {r['batched']['p50_s'] * 1e3:6.2f} ms   "
        f"p99 {r['batched']['p99_s'] * 1e3:6.2f} ms   "
        f"(concurrency {r['batched']['concurrency']}, "
        f"widths {r['batched']['batch_width_hist']})",
        "",
        f"  target: batched ≥{t['batched_vs_hot_min']:g}× hot-serial "
        f"throughput (measured {t['batched_vs_hot']:.2f}×) — "
        + ("MET" if t["met"] else "NOT MET"),
    ]
    return "\n".join(lines)


def check_against_baseline(
    baseline: dict, report: dict, tolerance: float
) -> list[str]:
    failures: list[str] = []
    base = baseline["targets"]["batched_vs_hot"]
    fresh = report["targets"]["batched_vs_hot"]
    floor = tolerance * base
    if fresh < floor:
        failures.append(
            f"batched_vs_hot {fresh:.2f}× < {floor:.2f}× "
            f"(= {tolerance:g} × baseline {base:.2f}×)"
        )
    if not report["targets"]["met"]:
        failures.append(
            f"absolute target missed: batched_vs_hot {fresh:.2f}× "
            f"(need ≥{report['targets']['batched_vs_hot_min']:g}×)"
        )
    for regime in ("hot_serial", "batched"):
        base_iters = baseline["results"].get(regime, {}).get("iterations")
        if base_iters is not None and (
            report["results"][regime]["iterations"] != base_iters
        ):
            failures.append(
                f"{regime}: iteration counts drifted from the baseline — "
                "numerics changed, not just speed"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeats", type=int, default=None,
                        help="rounds per regime; the best round counts")
    parser.add_argument(
        "--check", metavar="BASELINE", default=None,
        help="regression-gate mode: re-measure with BASELINE's repeats and "
        "fail on regression, missed target, or iteration drift",
    )
    parser.add_argument(
        "--check-tolerance", type=float, default=0.5,
        help="the fresh batched-over-hot ratio may not fall below this "
        "fraction of its baseline value (default 0.5)",
    )
    parser.add_argument(
        "--out", default=None,
        help="output JSON path (default BENCH_serving.json at the repo "
        "root, or BENCH_serving.fresh.json in --check mode)",
    )
    args = parser.parse_args(argv)

    baseline = None
    if args.check is not None:
        baseline_path = Path(args.check)
        if not baseline_path.exists():
            parser.error(f"--check baseline {baseline_path} does not exist")
        baseline = json.loads(baseline_path.read_text())
        if args.repeats is None:
            args.repeats = baseline.get("config", {}).get("repeats", 3)
    if args.repeats is None:
        args.repeats = 3
    if args.out is None:
        name = "BENCH_serving.fresh.json" if args.check else "BENCH_serving.json"
        args.out = str(REPO_ROOT / name)

    report = build_report(repeats=args.repeats)
    out_path = Path(args.out)
    out_path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(render(report))
    print(f"\n[written to {out_path}]")

    if baseline is not None:
        failures = check_against_baseline(baseline, report, args.check_tolerance)
        print()
        if failures:
            print("SERVING GATE: FAIL")
            for line in failures:
                print(f"  - {line}")
            return 1
        print(
            "SERVING GATE: PASS — batched-over-hot ratio within "
            f"{args.check_tolerance:g}× of baseline, iteration counts "
            "unchanged, absolute target met"
        )
        return 0
    return 0 if report["targets"]["met"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
