"""High-level driver: the m-step multicolor SSOR PCG method end to end.

Ties the layers together the way Section 3 describes: color the problem,
permute into the block form (3.1), build the m-step SSOR preconditioner
(optionally parametrized from the measured spectrum of ``P⁻¹K``), run
Algorithm 1, and hand back the solution in natural ordering with full
instrumentation.  This is the API the examples and the Table-2/Table-3
benchmarks drive.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.convergence import StoppingRule
from repro.core.mstep import MStepPreconditioner
from repro.core.pcg import PCGResult
from repro.core.polynomial import (
    least_squares_coefficients,
    minmax_coefficients,
    neumann_coefficients,
)
from repro.core.spectral import spectrum_interval
from repro.core.splittings import SSORSplitting
from repro.multicolor.blocked import BlockedMatrix
from repro.multicolor.ordering import MulticolorOrdering
from repro.multicolor.sor import MStepSSOR
from repro.util import require

__all__ = [
    "TABLE2_EPS",
    "TABLE2_SCHEDULE",
    "TABLE3_SCHEDULE",
    "MStepSolve",
    "build_blocked_system",
    "build_mstep_applicator",
    "mstep_coefficients",
    "ssor_interval",
    "solve_mstep_ssor",
]

#: The m-schedule of Tables 2 and 3: ``(m, parametrized)`` in paper row
#: order.  Canonical here so the benchmarks, the perf harness and the
#: backend-equivalence suite sweep exactly the same cells.
TABLE2_SCHEDULE = [
    (0, False), (1, False), (2, False), (2, True), (3, False), (3, True),
    (4, True), (5, True), (6, True), (7, True), (8, True), (9, True),
    (10, True),
]
TABLE3_SCHEDULE = [
    (0, False), (1, False), (2, False), (2, True), (3, False), (3, True),
    (4, False), (4, True), (5, True), (6, True),
]

#: Stopping tolerance of the Table-2 regeneration (CLI and benchmarks —
#: and, through them, the gated iteration counts in BENCH_kernels.json).
#: The paper's ε is unstated; ‖Δu‖∞ < 10⁻⁷ delivers a uniform ~10⁻⁶
#: *relative* solution accuracy across all four meshes (an absolute 10⁻⁶
#: lets the test fire on a CG stall at a = 62/80, breaking the paper's
#: I ∝ a scaling).
TABLE2_EPS = 1e-7


def build_blocked_system(problem) -> BlockedMatrix:
    """Color-order a model problem into the block system (3.1).

    ``problem`` is any object exposing ``k``, ``f``, ``group_of_unknown``
    and ``group_labels`` (see :mod:`repro.fem.model_problems`).
    """
    ordering = MulticolorOrdering.from_groups(
        problem.group_of_unknown, problem.group_labels
    )
    return BlockedMatrix.from_matrix(problem.k, ordering)


def ssor_interval(
    blocked: BlockedMatrix, omega: float = 1.0, safety: float = 0.0
) -> tuple[float, float]:
    """``[λ₁, λ_n]`` of ``P⁻¹K`` for the SSOR splitting on the blocked system."""
    splitting = SSORSplitting(blocked.permuted, omega=omega)
    return spectrum_interval(splitting, safety=safety)


def mstep_coefficients(
    m: int,
    parametrized: bool,
    interval: tuple[float, float] | None,
    criterion: str = "least_squares",
    weight: str = "uniform",
) -> np.ndarray:
    """The ``αᵢ`` for an m-step method.

    Unparametrized → all ones; parametrized → fitted on ``interval`` by the
    requested criterion (``"least_squares"`` or ``"minmax"``), as in
    Section 2.2.
    """
    require(m >= 1, "m must be at least 1")
    if not parametrized:
        return neumann_coefficients(m)
    require(interval is not None, "parametrized coefficients need the interval")
    if criterion == "least_squares":
        return least_squares_coefficients(m, interval, weight=weight)
    if criterion == "minmax":
        return minmax_coefficients(m, interval)
    raise ValueError(f"unknown parametrization criterion {criterion!r}")


def build_mstep_applicator(
    blocked: BlockedMatrix,
    coefficients: np.ndarray,
    applicator: str = "sweep",
    backend: str | None = None,
    omega: float = 1.0,
):
    """The m-step SSOR realization shared by the driver and the machines.

    ``"sweep"`` is the Conrad–Wallach merged multicolor sweep of
    Algorithm 2 (:class:`MStepSSOR`, the paper's ω = 1 formulation);
    ``"splitting"`` routes through :class:`MStepPreconditioner` over the
    ω-parametrized SSOR splitting, whose triangular solves dispatch on
    the kernel ``backend`` (``"vectorized"`` cached color-block sweeps or
    the ``"reference"`` row-sequential pin).  At ω = 1 all paths apply
    the same operator to ≤1e−12.
    """
    require(applicator in ("sweep", "splitting"),
            "applicator must be 'sweep' or 'splitting'")
    if applicator == "sweep":
        return MStepSSOR(blocked, coefficients)
    return MStepPreconditioner(
        SSORSplitting(blocked.permuted, omega=omega, backend=backend),
        coefficients,
    )


@dataclass
class MStepSolve:
    """Full record of one m-step SSOR PCG solve."""

    result: PCGResult
    u: np.ndarray  # natural ordering
    m: int
    parametrized: bool
    coefficients: np.ndarray | None
    interval: tuple[float, float] | None
    #: The permuted block system the solve ran on — ``None`` for the
    #: matrix-free ``"stencil"`` backend, which never permutes.
    blocked: BlockedMatrix | None

    @property
    def iterations(self) -> int:
        return self.result.iterations

    @property
    def label(self) -> str:
        """Table-2/3 row label: ``0``, ``1``, …, or ``2P``, ``3P``, …"""
        if self.m == 0:
            return "0"
        return f"{self.m}P" if self.parametrized else f"{self.m}"


def solve_mstep_ssor(
    problem,
    m: int,
    parametrized: bool = False,
    criterion: str = "least_squares",
    weight: str = "uniform",
    eps: float = 1e-6,
    stopping: StoppingRule | None = None,
    interval: tuple[float, float] | None = None,
    blocked: BlockedMatrix | None = None,
    maxiter: int | None = None,
    track_residual: bool = False,
    applicator: str = "sweep",
    backend: str | None = None,
) -> MStepSolve:
    """Solve a model problem with the m-step multicolor SSOR PCG method.

    ``m = 0`` runs unpreconditioned CG (the paper's first table row).  For
    parametrized runs the eigenvalue interval is measured from the operator
    unless supplied (benchmarks compute it once per mesh and pass it in).

    ``applicator`` selects the preconditioner realization: ``"sweep"``
    (default) is the Conrad–Wallach merged multicolor sweep of Algorithm 2;
    ``"splitting"`` routes through :class:`MStepPreconditioner` over the
    SSOR splitting, whose triangular solves dispatch on the kernel
    ``backend`` (``"vectorized"`` color-block sweeps or the ``"reference"``
    row-sequential pin — see :mod:`repro.kernels`).  All three paths apply
    the same operator; the test-suite holds them to ≤1e−12 of each other.

    Since the pipeline refactor this is a thin veneer over a one-cell
    :class:`~repro.pipeline.SolverSession` — multi-cell or multi-RHS work
    should build a session (and a :class:`~repro.pipeline.SolverPlan`)
    directly so the compiled state is reused instead of rebuilt per call;
    for many right-hand sides use
    :meth:`~repro.pipeline.SolverSession.solve_cell_block` /
    :meth:`~repro.pipeline.SolverSession.execute_block`, which run one
    :func:`repro.core.pcg.block_pcg` lockstep per cell (per-column
    bitwise identical to repeated calls of this function).
    """
    require(m >= 0, "m must be non-negative")
    require(applicator in ("sweep", "splitting"),
            "applicator must be 'sweep' or 'splitting'")
    from repro.pipeline import SolverPlan, SolverSession

    plan = SolverPlan.single(
        m,
        parametrized,
        eps=eps,
        criterion=criterion,
        weight=weight,
        applicator=applicator,
        backend=backend,
        maxiter=maxiter,
    )
    session = SolverSession(problem, plan=plan, blocked=blocked, interval=interval)
    return session.solve_cell(
        m, parametrized, stopping=stopping, track_residual=track_residual
    )
