"""End-to-end serving smoke check: a real daemon, concurrent clients,
bitwise answers, leak-free shutdown.

``python -m repro.serving.smoke`` (CI's ``serving-smoke`` job):

1. starts ``python -W error -m repro serve --port 0`` as a subprocess
   (``-W error`` turns the stdlib resource tracker's "leaked
   shared_memory objects" shutdown report — and any other warning —
   into a hard failure, the pattern of ``tests/test_parallel_shm.py``);
2. fires waves of concurrent solve requests from parallel client
   connections (barrier-released, so they land inside the batch window
   and exercise the micro-batcher for real);
3. asserts every response is **bitwise** equal to a local serial
   :meth:`~repro.pipeline.session.SolverSession.solve_cell` of the same
   load case — the serving layer's core contract: batching is invisible;
4. asserts the daemon's stats show real coalescing (some batch wider
   than one column) and cache reuse (hits after the first wave);
5. sends ``shutdown`` and asserts the daemon exits 0 with zero live
   shared-memory segments and a warning-clean stderr.
"""

from __future__ import annotations

import os
import pathlib
import re
import subprocess
import sys
import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np

SCENARIO = "plate"
ROWS = 10
M = 3
EPS = 1e-6
WAVES = 3
WAVE_WIDTH = 8  # concurrent clients per wave (= the daemon's max batch)
LOAD_CASES = 5  # request mix cycles through load cases 0..LOAD_CASES-1


def _reference_solutions() -> dict[int, np.ndarray]:
    """Serial single-RHS solves of every load case, computed locally."""
    from repro.pipeline import (
        SolverPlan,
        SolverSession,
        build_scenario,
        synthetic_load_block,
    )

    problem = build_scenario(SCENARIO, nrows=ROWS)
    session = SolverSession(problem, plan=SolverPlan.single(M, eps=EPS))
    out = {}
    for j in range(LOAD_CASES):
        f = np.ascontiguousarray(synthetic_load_block(problem, j + 1)[:, j])
        out[j] = session.solve_cell(M, f=f).u
    return out


def _start_daemon() -> tuple[subprocess.Popen, int]:
    src = str(pathlib.Path(__file__).resolve().parents[2])
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (src, env.get("PYTHONPATH")) if p
    )
    proc = subprocess.Popen(
        [
            sys.executable, "-W", "error", "-m", "repro", "serve",
            "--port", "0", "--batch-window", "0.05", "--max-batch",
            str(WAVE_WIDTH), "--capacity", "4",
        ],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, env=env,
    )
    banner = proc.stdout.readline()
    match = re.search(r"listening on [\w.]+:(\d+)", banner)
    if not match:
        proc.kill()
        raise RuntimeError(f"daemon did not announce a port: {banner!r}")
    return proc, int(match.group(1))


def main() -> int:
    from repro.serving import ServeClient

    print(f"serving smoke: {WAVES} waves x {WAVE_WIDTH} concurrent requests "
          f"({SCENARIO}, rows={ROWS}, m={M})")
    reference = _reference_solutions()
    proc, port = _start_daemon()
    try:
        replies = []
        barrier = threading.Barrier(WAVE_WIDTH)

        def fire(case: int):
            # One connection per concurrent client; the barrier releases
            # a whole wave inside the daemon's batch window.
            with ServeClient("127.0.0.1", port) as client:
                barrier.wait(timeout=30)
                return case, client.solve(
                    scenario=SCENARIO, rows=ROWS, m=M, eps=EPS,
                    load_case=case,
                )

        with ThreadPoolExecutor(max_workers=WAVE_WIDTH) as pool:
            for wave in range(WAVES):
                cases = [
                    (wave * WAVE_WIDTH + i) % LOAD_CASES
                    for i in range(WAVE_WIDTH)
                ]
                replies.extend(pool.map(fire, cases))

        for case, reply in replies:
            assert reply.converged, f"load case {case} did not converge"
            assert np.array_equal(reply.u, reference[case]), (
                f"load case {case}: daemon solution differs from the "
                "serial SolverSession solve (bitwise contract broken)"
            )

        with ServeClient("127.0.0.1", port) as client:
            stats = client.stats()
            counters = stats["stats"]
            widths = {
                int(w): c for w, c in counters["batch_width_hist"].items()
            }
            total = WAVES * WAVE_WIDTH
            assert counters["solves"] == total, counters
            assert max(widths) > 1, (
                f"no request was ever batched: width histogram {widths}"
            )
            # One compiled-session miss for the first batch, hits after
            # (the cache is consulted once per batch, not per column).
            assert counters["misses"] == 1, counters
            assert counters["hits"] == counters["batches"] - 1, counters
            assert stats["live_shm_segments"] == 0, stats
            print(f"  {total} solves in {counters['batches']} batches, "
                  f"width histogram {widths}, cache hits "
                  f"{counters['hits']}/{counters['hits'] + counters['misses']}")
            client.shutdown()

        proc.wait(timeout=60)
        stdout, stderr = proc.stdout.read(), proc.stderr.read()
        assert proc.returncode == 0, (
            f"daemon exited {proc.returncode}\nstdout: {stdout}\n"
            f"stderr: {stderr}"
        )
        assert "0 live shm segments" in stdout, stdout
        for marker in ("resource_tracker", "leaked", "Warning"):
            assert marker not in stderr, (
                f"daemon stderr not clean ({marker}):\n{stderr}"
            )
        print("  shutdown clean: exit 0, zero live shm segments, "
              "warning-free stderr")
        print("serving smoke: OK")
        return 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30)


if __name__ == "__main__":
    raise SystemExit(main())
