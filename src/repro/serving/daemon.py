"""The ``repro serve`` daemon: compiled sessions held hot, requests batched.

Every CLI invocation pays the compile-once cost —
coloring, permutation, factorized color-block kernels — that
:class:`~repro.pipeline.session.SolverSession` exists to amortize.  This
module keeps that state resident in a long-lived process and coalesces
concurrent work into the batched numerics the block layer already ships:

* :class:`SessionCache` — a capacity-bounded LRU of **compiled** sessions
  keyed by :attr:`~repro.serving.protocol.SolveRequest.system_key`.  A hit
  serves with zero compile work; eviction closes the session, releasing
  any shared-memory publications it owns.
* :class:`MicroBatcher` — requests for the *same* compiled system that
  land within ``batch_window`` seconds (or until ``max_batch`` of them
  are waiting) ride **one** ``(n, k)``
  :meth:`~repro.pipeline.session.SolverSession.solve_cell_block`
  lockstep; per-column results split back to their callers.  Block-PCG's
  per-column contract makes every batched answer bitwise identical to an
  unbatched solve — batching is a pure throughput move, never a numerics
  change (the same dynamic-batching economics inference servers run on).
* :class:`ReproServer` — the asyncio front end: newline-delimited JSON
  over TCP (:mod:`repro.serving.protocol`), one reader task per
  connection, solves executed on a single dedicated worker thread so the
  event loop never blocks and cached sessions are never touched
  concurrently.  ``stats`` exposes hits/misses/evictions, the batch-width
  histogram, and live shared-memory segment counts; ``shutdown`` drains
  in-flight batches, closes every cached session, and tears down worker
  pools (:func:`repro.parallel.shutdown_pools`) so a clean exit leaks
  nothing.

:func:`start_server_thread` runs the whole daemon inside the calling
process (tests, benchmarks); ``python -m repro serve`` runs it as a
process of its own.
"""

from __future__ import annotations

import asyncio
import collections
import os
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.parallel import shm, shutdown_pools
from repro.pipeline import SolverPlan, SolverSession, build_scenario, scenario
from repro.pipeline.problems import synthetic_load_block
from repro.serving.protocol import (
    MAX_LINE_BYTES,
    OPS,
    ProtocolError,
    SolveRequest,
    decode_line,
    encode_line,
    error_response,
    parse_solve_request,
)

__all__ = [
    "ReproServer",
    "ServerHandle",
    "ServerStats",
    "SessionCache",
    "SessionEntry",
    "MicroBatcher",
    "start_server_thread",
]


@dataclass
class ServerStats:
    """Counter block behind the ``stats`` op (one instance per daemon)."""

    started_unix: float = field(default_factory=time.time)
    requests: collections.Counter = field(default_factory=collections.Counter)
    errors: int = 0
    solves: int = 0  # right-hand-side columns served
    batches: int = 0  # block_pcg lockstep passes those columns rode in
    batch_widths: collections.Counter = field(default_factory=collections.Counter)
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    queue_seconds: float = 0.0
    solve_seconds: float = 0.0
    #: Lockstep passes per operator representation ("csr"/"stencil") —
    #: mirrors :attr:`repro.pipeline.SessionStats.operator_backend`.
    operator_backends: collections.Counter = field(
        default_factory=collections.Counter
    )

    def as_dict(self) -> dict:
        return {
            "uptime_s": time.time() - self.started_unix,
            "requests": dict(self.requests),
            "errors": self.errors,
            "solves": self.solves,
            "batches": self.batches,
            "batch_width_hist": {
                str(w): c for w, c in sorted(self.batch_widths.items())
            },
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "queue_seconds": self.queue_seconds,
            "solve_seconds": self.solve_seconds,
            "operator_backends": dict(self.operator_backends),
        }


@dataclass
class SessionEntry:
    """One cached compiled system: the session plus its resolved cell."""

    key: tuple
    session: SolverSession
    m: int
    parametrized: bool
    n: int

    @property
    def label(self) -> str:
        if self.m == 0:
            return "0"
        return f"{self.m}P" if self.parametrized else f"{self.m}"


class SessionCache:
    """Capacity-bounded LRU of compiled sessions, keyed by system key.

    ``get`` compiles on miss (the *entire* cold cost: scenario build,
    coloring, interval iff parametrized, applicator factorization) and
    evicts least-recently-used entries beyond ``capacity``, closing each
    evicted session so its shared-memory publications are released the
    moment it leaves the cache.  All access happens on the daemon's
    single solve thread, so no locking is needed; the class itself is
    also usable directly (the unit tests do).
    """

    def __init__(self, capacity: int = 8, stats: ServerStats | None = None,
                 auto_width: int = 8):
        if capacity < 1:
            raise ValueError("cache capacity must be at least 1")
        self.capacity = capacity
        self.stats = stats if stats is not None else ServerStats()
        #: Block width ``m = "auto"`` is priced at — the batcher's
        #: ``max_batch``, since that is the width hot requests ride at.
        self.auto_width = auto_width
        self._entries: OrderedDict[tuple, SessionEntry] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def keys(self) -> list[tuple]:
        return list(self._entries)

    def get(self, request: SolveRequest) -> tuple[SessionEntry, bool]:
        """The compiled entry for the request's system (``(entry, hit)``)."""
        key = request.system_key
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return entry, True
        self.stats.misses += 1
        entry = self._build(key, request)
        self._entries[key] = entry
        while len(self._entries) > self.capacity:
            _, evicted = self._entries.popitem(last=False)
            evicted.session.close()
            self.stats.evictions += 1
        return entry, False

    def _build(self, key: tuple, request: SolveRequest) -> SessionEntry:
        spec = scenario(request.scenario)  # unknown name raises here
        params = {}
        if request.rows is not None:
            if spec.size_param is None:
                raise ProtocolError(
                    f"scenario {request.scenario!r} has no size parameter; "
                    "omit 'rows'"
                )
            params[spec.size_param] = request.rows
        if not spec.supports_backend(request.backend):
            raise ProtocolError(
                f"scenario {request.scenario!r} does not support backend "
                f"{request.backend!r}; supported: {', '.join(spec.backends)}"
            )
        if request.backend == "stencil":
            # Matrix-free systems: serve off the stencil, never assemble.
            params["assemble"] = False
        problem = build_scenario(request.scenario, **params)
        m, parametrized = request.m, request.parametrized
        if m == "auto":
            m, parametrized = self._resolve_auto_m(problem, request)
        plan = SolverPlan.single(
            m,
            parametrized,
            eps=request.eps,
            omega=request.omega,
            backend=request.backend,
            block_rhs=self.auto_width,
        )
        session = SolverSession(problem, plan=plan).compile()
        return SessionEntry(
            key=key, session=session, m=m, parametrized=parametrized,
            n=int(np.asarray(problem.f).shape[0]),
        )

    def _resolve_auto_m(self, problem, request: SolveRequest) -> tuple[int, bool]:
        """``m = "auto"`` → the width-aware (4.2) recommendation.

        Priced once per cached system at the batcher's width — the width
        hot traffic actually rides at — using the FEM-machine-calibrated
        model when the scenario carries a plate mesh (the same resolution
        the CLI's ``--m auto`` performs, via
        :meth:`SolverSession.calibrated_model`).
        """
        from repro.analysis import PerformanceModel
        from repro.core.autotune import recommend_m

        probe = SolverSession(
            problem,
            plan=SolverPlan.single(
                0, eps=request.eps, omega=request.omega,
                backend=request.backend,
            ),
        )
        model = probe.calibrated_model()
        if model is None:
            model = PerformanceModel(a=1.0, b=0.7)
        rec = recommend_m(
            probe.interval, model, m_max=10, width=self.auto_width,
            rel_tol=0.05,
        )
        return rec.m, True

    def close_all(self) -> None:
        """Close every cached session (shutdown path; idempotent)."""
        while self._entries:
            _, entry = self._entries.popitem(last=False)
            entry.session.close()


class _PendingBatch:
    __slots__ = ("items", "handle")

    def __init__(self):
        self.items: list[tuple[SolveRequest, asyncio.Future, float]] = []
        self.handle: asyncio.TimerHandle | None = None


class MicroBatcher:
    """Coalesce same-system solve requests into one block lockstep.

    The first request for a system key opens a batch and arms a
    ``window``-second timer; later requests for the same key join it.  A
    full batch (``max_batch`` columns) flushes immediately; ``window <=
    0`` or ``max_batch == 1`` degenerates to solve-per-request (the
    benchmark's "hot serial" regime).  Flushing hands the batch to the
    daemon's solve thread: one
    :meth:`~repro.pipeline.session.SolverSession.solve_cell_block` over
    the stacked ``(n, k)`` right-hand sides, then per-column results are
    delivered to each waiter's future.  A waiter that disappeared
    mid-batch (cancelled future, dropped connection) is simply skipped —
    the other columns are unaffected, which the tests pin.
    """

    def __init__(
        self,
        cache: SessionCache,
        stats: ServerStats,
        window: float = 0.005,
        max_batch: int = 8,
    ):
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        self.cache = cache
        self.stats = stats
        self.window = window
        self.max_batch = max_batch
        self._pending: dict[tuple, _PendingBatch] = {}
        self._inflight: set[asyncio.Task] = set()
        # One worker thread: sessions are compiled and solved on it
        # exclusively, so cache and kernel workspaces need no locks.
        self._loop: asyncio.AbstractEventLoop | None = None
        import concurrent.futures

        self._executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-solve"
        )

    def submit(self, request: SolveRequest) -> asyncio.Future:
        """Enqueue one request; the future resolves to its response dict."""
        loop = asyncio.get_running_loop()
        self._loop = loop
        future: asyncio.Future = loop.create_future()
        key = request.system_key
        batch = self._pending.get(key)
        if batch is None:
            batch = _PendingBatch()
            self._pending[key] = batch
            if self.window > 0 and self.max_batch > 1:
                batch.handle = loop.call_later(self.window, self._flush, key)
        batch.items.append((request, future, time.perf_counter()))
        if len(batch.items) >= self.max_batch or self.window <= 0:
            self._flush(key)
        return future

    def _flush(self, key: tuple) -> None:
        batch = self._pending.pop(key, None)
        if batch is None:  # already flushed by the size trigger
            return
        if batch.handle is not None:
            batch.handle.cancel()
        task = asyncio.get_running_loop().create_task(self._run(batch.items))
        self._inflight.add(task)
        task.add_done_callback(self._inflight.discard)

    async def _run(self, items) -> None:
        loop = asyncio.get_running_loop()
        requests = [request for request, _, _ in items]
        enqueued = [t for _, _, t in items]
        try:
            responses = await loop.run_in_executor(
                self._executor, self._solve_batch, requests, enqueued
            )
        except (ProtocolError, KeyError) as exc:
            # Requests in one batch share a system key, so a bad system
            # (unknown scenario, bad backend) fails them all alike.
            self.stats.errors += len(items)
            message = str(exc.args[0]) if exc.args else str(exc)
            for _, future, _ in items:
                if not future.done():
                    future.set_result(error_response(message))
            return
        except Exception as exc:
            self.stats.errors += len(items)
            message = f"{type(exc).__name__}: {exc}"
            for _, future, _ in items:
                if not future.done():
                    future.set_result(error_response(message))
            return
        for (_, future, _), response in zip(items, responses):
            if not future.done():  # cancelled waiters forfeit their column
                future.set_result(response)

    # ------------------------------------------------------ solve thread
    def _solve_batch(self, requests, enqueued) -> list[dict]:
        """Runs on the dedicated solve thread: one lockstep for the batch.

        A request whose right-hand side fails validation (wrong length)
        gets its own error response; the other columns of the batch solve
        normally — one bad request never poisons its co-batched peers.
        """
        t_start = time.perf_counter()
        entry, hit = self.cache.get(requests[0])
        responses: list[dict | None] = [None] * len(requests)
        columns, solvable = [], []
        for i, request in enumerate(requests):
            try:
                columns.append(self._resolve_rhs(entry, request))
                solvable.append(i)
            except ProtocolError as exc:
                self.stats.errors += 1
                responses[i] = error_response(str(exc))
        if solvable:
            F = np.stack(columns, axis=1)
            block = entry.session.solve_cell_block(
                entry.m, entry.parametrized, F=F
            )
            solve_s = time.perf_counter() - t_start
            k = len(solvable)
            self.stats.solves += k
            self.stats.batches += 1
            self.stats.batch_widths[k] += 1
            self.stats.solve_seconds += solve_s
            self.stats.operator_backends[
                entry.session.stats.operator_backend
            ] += 1
            for j, i in enumerate(solvable):
                queue_s = t_start - enqueued[i]
                self.stats.queue_seconds += queue_s
                responses[i] = {
                    "ok": True,
                    "op": "solve",
                    "u": np.asarray(block.u[:, j], dtype=float).tolist(),
                    "iterations": int(block.iterations[j]),
                    "converged": bool(block.result.converged[j]),
                    "m": entry.label,
                    "scenario": requests[i].scenario,
                    "batch_width": k,
                    "cache_hit": hit,
                    "queue_s": queue_s,
                    "solve_s": solve_s,
                }
        return responses

    @staticmethod
    def _resolve_rhs(entry: SessionEntry, request: SolveRequest) -> np.ndarray:
        if request.rhs is not None:
            rhs = np.asarray(request.rhs, dtype=float)
            if rhs.shape != (entry.n,):
                raise ProtocolError(
                    f"'rhs' must have length n = {entry.n} for this system, "
                    f"got {rhs.shape[0]}"
                )
            return rhs
        j = request.load_case
        # Column j of the deterministic synthetic load family (column 0
        # is the scenario's own assembled load) — the construction is
        # seeded, so clients can rebuild the identical vector locally.
        return np.ascontiguousarray(
            synthetic_load_block(entry.session.problem, j + 1)[:, j]
        )

    async def drain(self) -> None:
        """Flush every pending batch and await all in-flight solves."""
        for key in list(self._pending):
            self._flush(key)
        while self._inflight:
            await asyncio.gather(*list(self._inflight), return_exceptions=True)

    def shutdown_executor(self) -> None:
        self._executor.shutdown(wait=True)


class ReproServer:
    """The asyncio front end binding cache + batcher to a TCP endpoint."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        batch_window: float = 0.005,
        max_batch: int = 8,
        capacity: int = 8,
    ):
        self.host = host
        self.port = port  # 0 → ephemeral; replaced by the bound port
        self.stats = ServerStats()
        self.cache = SessionCache(
            capacity=capacity, stats=self.stats, auto_width=max_batch
        )
        self.batcher = MicroBatcher(
            self.cache, self.stats, window=batch_window, max_batch=max_batch
        )
        self._server: asyncio.AbstractServer | None = None
        self._closing = asyncio.Event()
        self._closed = asyncio.Event()

    # ------------------------------------------------------------ lifecycle
    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port, limit=MAX_LINE_BYTES
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_until_shutdown(self) -> None:
        """Serve until a ``shutdown`` op (or :meth:`request_shutdown`)."""
        if self._server is None:
            await self.start()
        async with self._server:
            await self._closing.wait()
            await self._shutdown()

    def request_shutdown(self) -> None:
        self._closing.set()

    async def _shutdown(self) -> None:
        """Drain, close sessions, tear down pools — the no-leak exit."""
        self._server.close()
        await self._server.wait_closed()
        await self.batcher.drain()
        self.batcher.shutdown_executor()
        self.cache.close_all()
        shutdown_pools()
        self._closed.set()

    def live_shm_segments(self) -> int:
        return len(shm.registry().live_segments())

    # ----------------------------------------------------------- connection
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while not self._closing.is_set():
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    writer.write(encode_line(error_response(
                        f"request line exceeds {MAX_LINE_BYTES} bytes"
                    )))
                    await writer.drain()
                    break
                if not line:
                    break
                response = await self._dispatch(line)
                writer.write(encode_line(response))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away; any batch columns it owned are skipped
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _dispatch(self, line: bytes) -> dict:
        try:
            payload = decode_line(line)
            op = payload.get("op", "solve")
            if op not in OPS:
                raise ProtocolError(
                    f"unknown op {op!r}; expected one of {', '.join(OPS)}"
                )
            self.stats.requests[op] += 1
            if op == "ping":
                return {"ok": True, "op": "ping", "pid": os.getpid()}
            if op == "stats":
                return {
                    "ok": True,
                    "op": "stats",
                    "stats": self.stats.as_dict(),
                    "cache": {
                        "size": len(self.cache),
                        "capacity": self.cache.capacity,
                    },
                    "batcher": {
                        "window_s": self.batcher.window,
                        "max_batch": self.batcher.max_batch,
                    },
                    "live_shm_segments": self.live_shm_segments(),
                }
            if op == "shutdown":
                self.request_shutdown()
                return {"ok": True, "op": "shutdown", "shutting_down": True}
            request = parse_solve_request(payload)
            return await self.batcher.submit(request)
        except ProtocolError as exc:
            self.stats.errors += 1
            return error_response(str(exc))
        except KeyError as exc:  # unknown scenario from the registry
            self.stats.errors += 1
            return error_response(str(exc.args[0]) if exc.args else str(exc))
        except Exception as exc:  # keep serving: one bad request ≠ dead daemon
            self.stats.errors += 1
            return error_response(f"{type(exc).__name__}: {exc}")


async def _serve_main(server: ReproServer, ready=None, banner: bool = True):
    await server.start()
    if banner:
        print(
            f"repro serve listening on {server.host}:{server.port} "
            f"(batch window {server.batcher.window * 1e3:g} ms, "
            f"max batch {server.batcher.max_batch}, "
            f"cache capacity {server.cache.capacity})",
            flush=True,
        )
    if ready is not None:
        ready.set()
    try:
        loop = asyncio.get_running_loop()
        import signal

        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, server.request_shutdown)
            except (NotImplementedError, RuntimeError):
                pass  # non-main thread or platform without signal support
    except Exception:
        pass
    await server.serve_until_shutdown()
    if banner:
        leftovers = server.live_shm_segments()
        print(
            f"repro serve: shutdown clean "
            f"({server.stats.solves} solves in {server.stats.batches} "
            f"batches, {leftovers} live shm segments)",
            flush=True,
        )
        if leftovers:
            raise SystemExit(
                f"repro serve: {leftovers} shared-memory segments leaked"
            )


class ServerHandle:
    """A daemon running inside this process, on its own thread + loop.

    The handle the tests and the serving benchmark drive: ``host``/
    ``port`` to connect to, :meth:`stop` for a graceful shutdown (sends
    the ``shutdown`` op, then joins the thread).  Context-manager use
    stops the server on exit.
    """

    def __init__(self, server: ReproServer, thread: threading.Thread):
        self.server = server
        self.thread = thread

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    def stop(self, timeout: float = 30.0) -> None:
        if self.thread.is_alive():
            from repro.serving.client import ServeClient

            try:
                with ServeClient(self.host, self.port, timeout=timeout) as client:
                    client.shutdown()
            except OSError:
                self.server.request_shutdown()
        self.thread.join(timeout)
        if self.thread.is_alive():  # pragma: no cover - watchdog path
            raise RuntimeError("repro serve thread did not stop in time")

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


def start_server_thread(
    host: str = "127.0.0.1",
    port: int = 0,
    batch_window: float = 0.005,
    max_batch: int = 8,
    capacity: int = 8,
) -> ServerHandle:
    """Start a daemon on a background thread; returns once it is bound."""
    server = ReproServer(
        host=host, port=port, batch_window=batch_window,
        max_batch=max_batch, capacity=capacity,
    )
    ready = threading.Event()
    failure: list[BaseException] = []

    def run() -> None:
        async def main():
            await _serve_main(server, ready=ready, banner=False)

        try:
            asyncio.run(main())
        except BaseException as exc:  # pragma: no cover - surfaced via stop()
            failure.append(exc)
            ready.set()

    thread = threading.Thread(target=run, name="repro-serve", daemon=True)
    thread.start()
    ready.wait(30.0)
    if failure:
        raise RuntimeError(f"repro serve failed to start: {failure[0]!r}")
    if not ready.is_set():
        raise RuntimeError("repro serve did not become ready in time")
    return ServerHandle(server, thread)


def main(argv=None) -> int:
    """``python -m repro serve`` entry point (argparse in repro.cli)."""
    import argparse

    parser = argparse.ArgumentParser(description="repro solver daemon")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7083)
    parser.add_argument("--batch-window", type=float, default=0.005)
    parser.add_argument("--max-batch", type=int, default=8)
    parser.add_argument("--capacity", type=int, default=8)
    args = parser.parse_args(argv)
    return run_daemon(
        host=args.host, port=args.port, batch_window=args.batch_window,
        max_batch=args.max_batch, capacity=args.capacity,
    )


def run_daemon(
    host: str = "127.0.0.1",
    port: int = 7083,
    batch_window: float = 0.005,
    max_batch: int = 8,
    capacity: int = 8,
) -> int:
    """Run a daemon in the foreground until shutdown (the CLI's engine)."""
    server = ReproServer(
        host=host, port=port, batch_window=batch_window,
        max_batch=max_batch, capacity=capacity,
    )
    asyncio.run(_serve_main(server, banner=True))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
