"""Wire protocol of the serving layer: newline-delimited JSON over TCP.

One request is one JSON object on one line; one response is one JSON
object on one line.  The framing is deliberately primitive — no HTTP, no
third-party dependency, nothing the stdlib cannot parse — because the
interesting machinery lives behind it (the session cache and the
micro-batcher of :mod:`repro.serving.daemon`).

Operations
----------
``{"op": "solve", ...}``
    One right-hand side against one compiled system.  The system is named
    by ``(scenario, rows, m, parametrized, omega, eps, backend)`` — the
    :meth:`SolveRequest.system_key` the daemon caches compiled
    :class:`~repro.pipeline.session.SolverSession` objects under.  The
    right-hand side is either an explicit ``"rhs": [floats]`` vector or a
    deterministic named ``"load_case"`` index (``0`` is the scenario's own
    assembled load; case ``j > 0`` is column ``j`` of
    :func:`repro.pipeline.synthetic_load_block`, identical on client and
    server by construction).  ``"m"`` may be ``"auto"``: the daemon
    resolves it once per cached system from the width-aware
    inequality-(4.2) cost model, priced at the batcher's width.
``{"op": "ping"}`` / ``{"op": "stats"}`` / ``{"op": "shutdown"}``
    Health probe, counter snapshot, graceful shutdown.

Responses carry ``"ok": true`` plus op-specific fields, or ``"ok": false``
with an ``"error"`` message; a malformed request never kills the
connection, let alone the daemon.  Floats survive the JSON round trip
bitwise (``repr``-exact serialization on both sides), which is what lets
the serving smoke test assert *bitwise* equality against a local
:class:`~repro.pipeline.session.SolverSession` solve.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass

from repro.kernels.backend import SOLVER_BACKENDS

__all__ = [
    "MAX_LINE_BYTES",
    "ProtocolError",
    "SolveRequest",
    "decode_line",
    "encode_line",
    "error_response",
    "parse_solve_request",
]

#: Upper bound on one framed line (a solve response carries an n-vector of
#: floats; the largest registered scenarios stay far below this).
MAX_LINE_BYTES = 16 * 1024 * 1024

#: Operations a daemon accepts.
OPS = ("solve", "ping", "stats", "shutdown")


class ProtocolError(ValueError):
    """A request that cannot be honored (bad frame, bad field, bad value)."""


def encode_line(obj: dict) -> bytes:
    """One JSON object → one newline-terminated wire frame."""
    return json.dumps(obj, separators=(",", ":")).encode("utf-8") + b"\n"


def decode_line(line: bytes) -> dict:
    """One wire frame → the request/response dict (strictly one object)."""
    try:
        obj = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"request is not valid JSON: {exc}") from None
    if not isinstance(obj, dict):
        raise ProtocolError(
            f"request must be a JSON object, got {type(obj).__name__}"
        )
    return obj


def error_response(message: str) -> dict:
    return {"ok": False, "error": str(message)}


@dataclass(frozen=True)
class SolveRequest:
    """A validated solve request, ready for the daemon's batcher.

    ``rhs`` is a plain list of floats (or ``None`` when ``load_case``
    names the column) so requests stay picklable and hashable-free; the
    daemon materializes the numpy column against the cached problem.
    """

    scenario: str
    rows: int | None
    m: int | str  # an int, or "auto" (resolved per cached system)
    parametrized: bool
    omega: float
    eps: float
    backend: str | None
    rhs: tuple | None
    load_case: int

    @property
    def system_key(self) -> tuple:
        """The compiled-state identity: everything value-independent.

        Two requests with equal keys can share one compiled
        :class:`~repro.pipeline.session.SolverSession` *and* ride the same
        :func:`~repro.core.pcg.block_pcg` lockstep — the key is exactly
        the daemon's LRU-cache and batching granularity.
        """
        return (
            self.scenario,
            self.rows,
            self.m,
            self.parametrized,
            self.omega,
            self.eps,
            self.backend,
        )


def parse_solve_request(payload: dict) -> SolveRequest:
    """Validate a ``solve`` payload field by field (:class:`ProtocolError`
    on the first offense — the daemon turns it into an error response)."""
    known = {
        "op", "scenario", "rows", "m", "parametrized", "omega", "eps",
        "backend", "rhs", "load_case",
    }
    unknown = sorted(set(payload) - known)
    if unknown:
        raise ProtocolError(f"unknown request fields: {', '.join(unknown)}")

    scenario = payload.get("scenario", "plate")
    if not isinstance(scenario, str) or not scenario:
        raise ProtocolError(f"'scenario' must be a non-empty string, got {scenario!r}")

    rows = payload.get("rows")
    if rows is not None and (isinstance(rows, bool) or not isinstance(rows, int)):
        raise ProtocolError(f"'rows' must be an integer, got {rows!r}")
    if rows is not None and rows < 2:
        raise ProtocolError(f"'rows' must be at least 2, got {rows}")

    m = payload.get("m", 3)
    if m != "auto" and (isinstance(m, bool) or not isinstance(m, int)):
        raise ProtocolError(f"'m' must be a non-negative integer or 'auto', got {m!r}")
    if isinstance(m, int) and m < 0:
        raise ProtocolError(f"'m' must be non-negative, got {m}")

    parametrized = payload.get("parametrized", False)
    if not isinstance(parametrized, bool):
        raise ProtocolError(f"'parametrized' must be a boolean, got {parametrized!r}")

    omega = payload.get("omega", 1.0)
    if isinstance(omega, bool) or not isinstance(omega, (int, float)):
        raise ProtocolError(f"'omega' must be a number, got {omega!r}")
    if not (omega > 0) or not math.isfinite(omega):
        raise ProtocolError(f"'omega' must be positive and finite, got {omega!r}")

    eps = payload.get("eps", 1e-6)
    if isinstance(eps, bool) or not isinstance(eps, (int, float)):
        raise ProtocolError(f"'eps' must be a number, got {eps!r}")
    if not (eps > 0) or not math.isfinite(eps):
        raise ProtocolError(f"'eps' must be positive and finite, got {eps!r}")

    backend = payload.get("backend")
    if backend is not None and not isinstance(backend, str):
        raise ProtocolError(f"'backend' must be a string or null, got {backend!r}")
    if backend is not None and backend not in SOLVER_BACKENDS:
        raise ProtocolError(
            f"unknown solver backend {backend!r}; valid choices: "
            + ", ".join(repr(b) for b in SOLVER_BACKENDS)
        )

    rhs = payload.get("rhs")
    if rhs is not None:
        if not isinstance(rhs, (list, tuple)) or not rhs:
            raise ProtocolError("'rhs' must be a non-empty array of numbers")
        for v in rhs:
            if isinstance(v, bool) or not isinstance(v, (int, float)):
                raise ProtocolError(f"'rhs' entries must be numbers, got {v!r}")
            if not math.isfinite(v):
                raise ProtocolError(f"'rhs' entries must be finite, got {v!r}")
        rhs = tuple(float(v) for v in rhs)

    load_case = payload.get("load_case", 0)
    if isinstance(load_case, bool) or not isinstance(load_case, int):
        raise ProtocolError(f"'load_case' must be an integer, got {load_case!r}")
    if load_case < 0:
        raise ProtocolError(f"'load_case' must be non-negative, got {load_case}")

    return SolveRequest(
        scenario=scenario,
        rows=rows,
        m=m,
        parametrized=parametrized,
        omega=float(omega),
        eps=float(eps),
        backend=backend,
        rhs=rhs,
        load_case=load_case,
    )
