"""Structural analysis as a service: the ``repro serve`` daemon layer.

The serving layer turns the repo from a toolkit into a service: a
long-lived daemon holds compiled
:class:`~repro.pipeline.session.SolverSession` state hot in a
capacity-bounded LRU and coalesces concurrent requests for the same
compiled system into one :func:`~repro.core.pcg.block_pcg` lockstep —
dynamic batching in the inference-server sense, numerically invisible by
block-PCG's per-column bitwise contract.

* :mod:`repro.serving.daemon` — :class:`ReproServer` (asyncio JSON-over-
  TCP front end), :class:`SessionCache`, :class:`MicroBatcher`,
  :func:`start_server_thread` for in-process daemons;
* :mod:`repro.serving.client` — :class:`ServeClient`, the blocking-socket
  Python API behind ``repro request``;
* :mod:`repro.serving.protocol` — the wire format and request validation;
* :mod:`repro.serving.smoke` — the end-to-end smoke check CI runs against
  a real daemon subprocess.
"""

from repro.serving.client import ServeClient, SolveReply
from repro.serving.daemon import (
    MicroBatcher,
    ReproServer,
    ServerHandle,
    ServerStats,
    SessionCache,
    SessionEntry,
    run_daemon,
    start_server_thread,
)
from repro.serving.protocol import (
    ProtocolError,
    SolveRequest,
    parse_solve_request,
)

__all__ = [
    "ServeClient",
    "SolveReply",
    "MicroBatcher",
    "ReproServer",
    "ServerHandle",
    "ServerStats",
    "SessionCache",
    "SessionEntry",
    "run_daemon",
    "start_server_thread",
    "ProtocolError",
    "SolveRequest",
    "parse_solve_request",
]
