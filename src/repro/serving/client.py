"""Client side of the serving layer: a small Python API + ``repro request``.

:class:`ServeClient` speaks the newline-delimited JSON protocol of
:mod:`repro.serving.protocol` over a blocking socket — one connection, any
number of sequential requests.  Concurrency is per-connection: a load
generator opens one client per worker thread, and the daemon's
micro-batcher coalesces whatever lands inside its window.

``repro request`` (see :mod:`repro.cli`) wraps this class for one-off
command-line calls against a running daemon.
"""

from __future__ import annotations

import socket
from dataclasses import dataclass

import numpy as np

from repro.serving.protocol import (
    MAX_LINE_BYTES,
    ProtocolError,
    decode_line,
    encode_line,
)

__all__ = ["ServeClient", "SolveReply"]


@dataclass(frozen=True)
class SolveReply:
    """One solve response, with the solution as a numpy vector.

    ``u`` round-trips the daemon's floats bitwise (JSON serializes floats
    ``repr``-exactly), so comparing against a local
    :meth:`~repro.pipeline.session.SolverSession.solve_cell` is a strict
    ``np.array_equal`` — the serving smoke test's contract.
    """

    u: np.ndarray
    iterations: int
    converged: bool
    m_label: str
    batch_width: int
    cache_hit: bool
    queue_s: float
    solve_s: float
    raw: dict

    @classmethod
    def from_response(cls, response: dict) -> "SolveReply":
        return cls(
            u=np.asarray(response["u"], dtype=float),
            iterations=int(response["iterations"]),
            converged=bool(response["converged"]),
            m_label=str(response["m"]),
            batch_width=int(response["batch_width"]),
            cache_hit=bool(response["cache_hit"]),
            queue_s=float(response["queue_s"]),
            solve_s=float(response["solve_s"]),
            raw=response,
        )


class ServeClient:
    """One TCP connection to a ``repro serve`` daemon."""

    def __init__(self, host: str = "127.0.0.1", port: int = 7083,
                 timeout: float = 120.0):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rb")
        self.host = host
        self.port = port

    # ------------------------------------------------------------- transport
    def request(self, payload: dict) -> dict:
        """Send one request object, return the daemon's response object."""
        self._sock.sendall(encode_line(payload))
        line = self._file.readline(MAX_LINE_BYTES + 1)
        if not line:
            raise ConnectionError("daemon closed the connection")
        return decode_line(line)

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------- ops
    def ping(self) -> dict:
        return self._checked(self.request({"op": "ping"}))

    def stats(self) -> dict:
        return self._checked(self.request({"op": "stats"}))

    def shutdown(self) -> dict:
        return self._checked(self.request({"op": "shutdown"}))

    def solve(
        self,
        scenario: str = "plate",
        rows: int | None = None,
        m: int | str = 3,
        parametrized: bool = False,
        omega: float = 1.0,
        eps: float = 1e-6,
        backend: str | None = None,
        rhs=None,
        load_case: int = 0,
    ) -> SolveReply:
        """One right-hand side against the daemon's cached compiled state.

        Raises :class:`~repro.serving.protocol.ProtocolError` when the
        daemon rejects the request; returns a :class:`SolveReply`
        otherwise.  ``rhs`` (an explicit length-n vector) takes precedence
        over ``load_case`` (a deterministic named case; ``0`` is the
        scenario's own load).
        """
        payload = {
            "op": "solve",
            "scenario": scenario,
            "m": m,
            "parametrized": parametrized,
            "omega": omega,
            "eps": eps,
            "load_case": load_case,
        }
        if rows is not None:
            payload["rows"] = rows
        if backend is not None:
            payload["backend"] = backend
        if rhs is not None:
            payload["rhs"] = [float(v) for v in np.asarray(rhs, dtype=float)]
        return SolveReply.from_response(self._checked(self.request(payload)))

    @staticmethod
    def _checked(response: dict) -> dict:
        if not response.get("ok"):
            raise ProtocolError(response.get("error", "daemon error"))
        return response
