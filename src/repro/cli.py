"""Command-line interface: ``python -m repro <command>``.

Regenerates the paper's artifacts and runs one-off solves without writing
any code, all driven through the plan → compile → execute pipeline:

```
python -m repro table1                      # α values (exact reproduction)
python -m repro table2 --meshes 20,41       # CYBER Table 2 (batched sweep)
python -m repro table3                      # Finite Element Machine table
python -m repro fig1 --rows 6 --cols 6      # plate coloring
python -m repro solve --rows 20 --m 4 -P    # one m-step SSOR PCG solve
python -m repro solve --scenario anisotropic --rows 24 --m 4 -P
python -m repro cyber --rows 20 --m 5 -P    # one simulated CYBER solve
python -m repro recommend --rows 20 --b-over-a 0.7
python -m repro scenarios                   # the ProblemSpec registry
```

``solve``/``cyber``/``table2`` accept ``--backend vectorized|reference``
(the kernel dispatch of :mod:`repro.kernels`); ``solve`` and ``recommend``
accept any registered ``--scenario``, with ``--rows`` mapped onto the
scenario's own size parameter.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

__all__ = ["main"]


def _build_session(args, schedule=None):
    """A compiled SolverSession for the requested scenario and plan."""
    from repro.pipeline import SolverPlan, SolverSession, scenario

    spec = scenario(getattr(args, "scenario", "plate"))
    params = {}
    if spec.size_param is not None and getattr(args, "rows", None):
        params[spec.size_param] = args.rows
    if spec.size_param == "nrows" and getattr(args, "cols", None):
        params["ncols"] = args.cols
    plan_kwargs = {
        "eps": getattr(args, "eps", 1e-6),
        "backend": getattr(args, "backend", None),
    }
    if schedule is not None:
        plan = SolverPlan(schedule=schedule, **plan_kwargs)
    else:
        plan = SolverPlan.single(
            getattr(args, "m", 0), getattr(args, "parametrized", False),
            **plan_kwargs,
        )
    return SolverSession(spec.build(**params), plan=plan)


def _cmd_table1(args) -> int:
    from repro.analysis import Table
    from repro.core import (
        PAPER_TABLE1,
        least_squares_coefficients,
        normalize_leading,
    )

    table = Table(
        "Table 1 — α values (uniform least squares on [0, 1], α₀ = 1)",
        ["m", "computed", "paper", "match"],
    )
    for m, paper in PAPER_TABLE1.items():
        ours = normalize_leading(least_squares_coefficients(m, (0.0, 1.0)))
        match = bool(np.allclose(ours, paper, atol=5e-3))
        table.add_row(
            m,
            ", ".join(f"{v:.2f}" for v in ours),
            ", ".join(f"{v:g}" for v in paper),
            match,
        )
    print(table.render())
    return 0


def _cmd_solve(args) -> int:
    session = _build_session(args)
    problem = session.problem
    solve = session.solve_cell(args.m, args.parametrized)
    resid = float(np.max(np.abs(problem.f - problem.k @ solve.u)))
    desc = getattr(problem, "mesh", None)
    if desc is None:
        desc = f"{type(problem).__name__}(n={problem.n})"
    print(f"problem : {desc}")
    print(f"method  : m = {solve.label} ({solve.result.stop_rule})")
    print(f"iterations: {solve.iterations}  converged: {solve.result.converged}")
    print(f"‖f − K u‖∞: {resid:.3e}")
    print(f"inner products: {solve.result.counter.inner_products}")
    return 0 if solve.result.converged else 1


def _cmd_cyber(args) -> int:
    session = _build_session(args)
    machine = session.cyber()
    coeffs = session.coefficients(args.m, args.parametrized) if args.m else None
    res = machine.solve(args.m, coeffs, eps=args.eps, backend=args.backend)
    print(f"CYBER 203 simulation: {session.problem.mesh} "
          f"(v = {res.max_vector_length})")
    print(f"m = {res.label}: I = {res.iterations}, T = {res.seconds:.4f} s")
    print(f"preconditioner share: {res.preconditioner_seconds / res.seconds:.1%}"
          if res.seconds else "")
    return 0 if res.converged else 1


def _cmd_table2(args) -> int:
    from repro.analysis import Table
    from repro.pipeline import SolverPlan, SolverSession, build_scenario

    try:
        meshes = [int(tok) for tok in args.meshes.split(",") if tok.strip()]
    except ValueError:
        print(f"--meshes must be comma-separated integers, got {args.meshes!r}",
              file=sys.stderr)
        return 2
    if not meshes:
        print("--meshes needs at least one plate size", file=sys.stderr)
        return 2

    # The reference backend has no batched sweep; the session then runs
    # cell-at-a-time regardless of --per-column, so derive the banner from
    # the path actually taken.
    batched = not args.per_column and args.backend != "reference"
    per_mesh = {}
    all_converged = True
    for a in meshes:
        session = SolverSession(
            build_scenario("plate", nrows=a),
            plan=SolverPlan.table2(eps=args.eps, backend=args.backend),
        )
        results = session.run_cyber_schedule(batched=batched)
        all_converged &= all(r.converged for r in results)
        per_mesh[a] = results

    columns = ["m"]
    for a in meshes:
        v = per_mesh[a][0].max_vector_length
        columns += [f"I(a={a})", f"T(v={v})"]
    mode = "one batched simulator pass" if batched else "per-column pass"
    table = Table(
        "Table 2 — CYBER 203 iterations and simulated timings, "
        f"m-step SSOR PCG ({mode})",
        columns,
    )
    for i in range(len(per_mesh[meshes[0]])):
        row = [per_mesh[meshes[0]][i].label]
        for a in meshes:
            row += [per_mesh[a][i].iterations, per_mesh[a][i].seconds]
        table.add_row(*row)
    table.add_note("T = simulated seconds (calibrated CYBER 203 cost model)")
    table.add_note("paper m=0 row: I = 271, 536, 788, 929 for a = 20, 41, 62, 80")
    print(table.render())
    return 0 if all_converged else 1


def _cmd_table3(args) -> int:
    from repro.analysis import Table
    from repro.driver import TABLE3_SCHEDULE
    from repro.machines import speedup_table
    from repro.pipeline import SolverPlan, SolverSession, build_scenario

    session = SolverSession(
        build_scenario("plate", nrows=6), plan=SolverPlan.table3()
    )
    table = Table(
        "Finite Element Machine (Table 3)",
        ["m", "I", "T(P=1)", "T(P=2)", "su", "T(P=5)", "su"],
    )
    for m, par in TABLE3_SCHEDULE:
        res = {p: session.fem_solve(m, par, n_procs=p) for p in (1, 2, 5)}
        su = speedup_table(res)
        table.add_row(res[1].label, res[1].iterations, res[1].seconds,
                      res[2].seconds, su[2], res[5].seconds, su[5])
    print(table.render())
    return 0


def _cmd_fig1(args) -> int:
    from repro.fem import PlateMesh

    mesh = PlateMesh(args.rows, args.cols or args.rows)
    mesh.validate_coloring()
    print(mesh.coloring_ascii())
    counts = mesh.color_counts()
    print(f"colors (R, B, G): {tuple(int(c) for c in counts)}; "
          f"max vector length v = {mesh.max_vector_length()}")
    return 0


def _cmd_recommend(args) -> int:
    from repro.analysis import PerformanceModel, Table
    from repro.core.autotune import recommend_m

    session = _build_session(args)
    interval = session.interval
    model = PerformanceModel(a=1.0, b=args.b_over_a)
    rec = recommend_m(interval, model, m_max=args.m_max)
    table = Table(
        f"Model-predicted cost (A = 1, B/A = {args.b_over_a}) on the "
        f"{args.scenario} scenario (rows = {args.rows})",
        ["m", "κ bound", "(A+mB)·√κ"],
    )
    for m in sorted(rec.scores):
        table.add_row(m, rec.kappas[m], rec.scores[m])
    table.add_note(f"recommended m = {rec.m}")
    print(table.render())
    return 0


def _cmd_scenarios(args) -> int:
    from repro.analysis import Table
    from repro.pipeline import available_scenarios

    table = Table(
        "Registered scenarios (repro.pipeline.problems)",
        ["name", "defaults", "description"],
    )
    for spec in available_scenarios():
        defaults = ", ".join(f"{k}={v}" for k, v in spec.defaults.items())
        table.add_row(spec.name, defaults or "—", spec.description)
    table.add_note("build with build_scenario(name, **overrides) or "
                   "`repro solve --scenario <name>`")
    print(table.render())
    return 0


def main(argv: list[str] | None = None) -> int:
    from repro.driver import TABLE2_EPS
    from repro.kernels import BACKENDS
    from repro.pipeline import available_scenarios

    scenario_names = [spec.name for spec in available_scenarios()]
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Adams (1983) m-step preconditioned CG — reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_backend_arg(p):
        p.add_argument(
            "--backend", choices=list(BACKENDS), default=None,
            help="kernel backend for the numerics (default: vectorized)",
        )

    def add_plate_args(p, with_m=True, with_scenario=False):
        p.add_argument("--rows", type=int, default=20, help="rows of nodes (a)")
        p.add_argument("--cols", type=int, default=None, help="columns (default a)")
        if with_scenario:
            p.add_argument(
                "--scenario", choices=scenario_names, default="plate",
                help="registered scenario to build (--rows maps onto its "
                "size parameter)",
            )
        if with_m:
            p.add_argument("--m", type=int, default=3, help="preconditioner steps")
            p.add_argument(
                "-P", "--parametrized", action="store_true",
                help="least-squares parametrized coefficients",
            )
            p.add_argument("--eps", type=float, default=1e-6, help="‖Δu‖∞ tolerance")

    sub.add_parser("table1", help="Table 1 α values (exact reproduction)")

    p_table2 = sub.add_parser(
        "table2", help="CYBER Table 2 (batched simulator sweep)"
    )
    p_table2.add_argument(
        "--meshes", default="20,41",
        help="comma-separated plate sizes a (paper: 20,41,62,80)",
    )
    p_table2.add_argument("--eps", type=float, default=TABLE2_EPS,
                          help="‖Δu‖∞ tolerance")
    p_table2.add_argument(
        "--per-column", action="store_true",
        help="run cell-at-a-time instead of the batched lockstep pass "
        "(identical results, slower)",
    )
    add_backend_arg(p_table2)

    sub.add_parser("table3", help="Finite Element Machine table")
    p_solve = sub.add_parser("solve", help="one m-step SSOR PCG solve")
    add_plate_args(p_solve, with_scenario=True)
    add_backend_arg(p_solve)
    p_cyber = sub.add_parser("cyber", help="one simulated CYBER 203 solve")
    add_plate_args(p_cyber)
    add_backend_arg(p_cyber)
    p_fig1 = sub.add_parser("fig1", help="plate coloring (Figure 1)")
    add_plate_args(p_fig1, with_m=False)
    p_rec = sub.add_parser("recommend", help="model-based m recommendation")
    add_plate_args(p_rec, with_m=False, with_scenario=True)
    p_rec.add_argument("--b-over-a", type=float, default=0.7,
                       help="preconditioner-step to CG-iteration cost ratio")
    p_rec.add_argument("--m-max", type=int, default=10)
    sub.add_parser("scenarios", help="list the ProblemSpec registry")

    args = parser.parse_args(argv)
    handlers = {
        "table1": _cmd_table1,
        "table2": _cmd_table2,
        "table3": _cmd_table3,
        "solve": _cmd_solve,
        "cyber": _cmd_cyber,
        "fig1": _cmd_fig1,
        "recommend": _cmd_recommend,
        "scenarios": _cmd_scenarios,
    }
    if not hasattr(args, "parametrized"):
        args.parametrized = False
    if not hasattr(args, "scenario"):
        args.scenario = "plate"
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
