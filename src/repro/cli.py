"""Command-line interface: ``python -m repro <command>``.

Regenerates the paper's artifacts and runs one-off solves without writing
any code:

```
python -m repro table1                      # α values (exact reproduction)
python -m repro table3                      # Finite Element Machine table
python -m repro fig1 --rows 6 --cols 6      # plate coloring
python -m repro solve --rows 20 --m 4 -P    # one m-step SSOR PCG solve
python -m repro cyber --rows 20 --m 5 -P    # one simulated CYBER solve
python -m repro recommend --rows 20 --b-over-a 0.7
```

(The heavyweight Table-2 sweep lives in ``benchmarks/bench_table2.py``.)
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

__all__ = ["main"]


def _cmd_table1(args) -> int:
    from repro.analysis import Table
    from repro.core import (
        PAPER_TABLE1,
        least_squares_coefficients,
        normalize_leading,
    )

    table = Table(
        "Table 1 — α values (uniform least squares on [0, 1], α₀ = 1)",
        ["m", "computed", "paper", "match"],
    )
    for m, paper in PAPER_TABLE1.items():
        ours = normalize_leading(least_squares_coefficients(m, (0.0, 1.0)))
        match = bool(np.allclose(ours, paper, atol=5e-3))
        table.add_row(
            m,
            ", ".join(f"{v:.2f}" for v in ours),
            ", ".join(f"{v:g}" for v in paper),
            match,
        )
    print(table.render())
    return 0


def _build_plate(args):
    from repro import plate_problem
    from repro.driver import build_blocked_system, ssor_interval

    problem = plate_problem(args.rows, ncols=args.cols)
    blocked = build_blocked_system(problem)
    interval = ssor_interval(blocked) if args.parametrized else None
    return problem, blocked, interval


def _cmd_solve(args) -> int:
    from repro.driver import solve_mstep_ssor

    problem, blocked, interval = _build_plate(args)
    solve = solve_mstep_ssor(
        problem,
        args.m,
        parametrized=args.parametrized,
        interval=interval,
        blocked=blocked,
        eps=args.eps,
    )
    resid = float(np.max(np.abs(problem.f - problem.k @ solve.u)))
    print(f"problem : {problem.mesh}")
    print(f"method  : m = {solve.label} ({solve.result.stop_rule})")
    print(f"iterations: {solve.iterations}  converged: {solve.result.converged}")
    print(f"‖f − K u‖∞: {resid:.3e}")
    print(f"inner products: {solve.result.counter.inner_products}")
    return 0 if solve.result.converged else 1


def _cmd_cyber(args) -> int:
    from repro.driver import mstep_coefficients
    from repro.machines import CyberMachine

    problem, _, interval = _build_plate(args)
    machine = CyberMachine(problem)
    coeffs = (
        mstep_coefficients(args.m, args.parametrized, interval)
        if args.m
        else None
    )
    res = machine.solve(args.m, coeffs, eps=args.eps)
    print(f"CYBER 203 simulation: {problem.mesh} (v = {res.max_vector_length})")
    print(f"m = {res.label}: I = {res.iterations}, T = {res.seconds:.4f} s")
    print(f"preconditioner share: {res.preconditioner_seconds / res.seconds:.1%}"
          if res.seconds else "")
    return 0 if res.converged else 1


def _cmd_table3(args) -> int:
    from repro.analysis import Table
    from repro.driver import mstep_coefficients, ssor_interval, build_blocked_system
    from repro import plate_problem
    from repro.machines import FiniteElementMachine, speedup_table

    problem = plate_problem(6)
    blocked = build_blocked_system(problem)
    interval = ssor_interval(blocked)
    machines = {
        p: FiniteElementMachine(problem, p, blocked=blocked) for p in (1, 2, 5)
    }
    table = Table(
        "Finite Element Machine (Table 3)",
        ["m", "I", "T(P=1)", "T(P=2)", "su", "T(P=5)", "su"],
    )
    for m, par in [(0, False), (1, False), (2, False), (2, True), (3, False),
                   (3, True), (4, False), (4, True), (5, True), (6, True)]:
        coeffs = mstep_coefficients(m, par, interval) if m else None
        res = {p: machines[p].solve(m, coeffs) for p in (1, 2, 5)}
        su = speedup_table(res)
        table.add_row(res[1].label, res[1].iterations, res[1].seconds,
                      res[2].seconds, su[2], res[5].seconds, su[5])
    print(table.render())
    return 0


def _cmd_fig1(args) -> int:
    from repro.fem import PlateMesh

    mesh = PlateMesh(args.rows, args.cols or args.rows)
    mesh.validate_coloring()
    print(mesh.coloring_ascii())
    counts = mesh.color_counts()
    print(f"colors (R, B, G): {tuple(int(c) for c in counts)}; "
          f"max vector length v = {mesh.max_vector_length()}")
    return 0


def _cmd_recommend(args) -> int:
    from repro.analysis import PerformanceModel, Table
    from repro.core.autotune import recommend_m

    _, _, interval = _build_plate(args)
    model = PerformanceModel(a=1.0, b=args.b_over_a)
    rec = recommend_m(interval, model, m_max=args.m_max)
    table = Table(
        f"Model-predicted cost (A = 1, B/A = {args.b_over_a}) on the "
        f"a = {args.rows} plate",
        ["m", "κ bound", "(A+mB)·√κ"],
    )
    for m in sorted(rec.scores):
        table.add_row(m, rec.kappas[m], rec.scores[m])
    table.add_note(f"recommended m = {rec.m}")
    print(table.render())
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Adams (1983) m-step preconditioned CG — reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_plate_args(p, with_m=True):
        p.add_argument("--rows", type=int, default=20, help="rows of nodes (a)")
        p.add_argument("--cols", type=int, default=None, help="columns (default a)")
        if with_m:
            p.add_argument("--m", type=int, default=3, help="preconditioner steps")
            p.add_argument(
                "-P", "--parametrized", action="store_true",
                help="least-squares parametrized coefficients",
            )
            p.add_argument("--eps", type=float, default=1e-6, help="‖Δu‖∞ tolerance")

    sub.add_parser("table1", help="Table 1 α values (exact reproduction)")
    sub.add_parser("table3", help="Finite Element Machine table")
    p_solve = sub.add_parser("solve", help="one m-step SSOR PCG solve")
    add_plate_args(p_solve)
    p_cyber = sub.add_parser("cyber", help="one simulated CYBER 203 solve")
    add_plate_args(p_cyber)
    p_fig1 = sub.add_parser("fig1", help="plate coloring (Figure 1)")
    add_plate_args(p_fig1, with_m=False)
    p_rec = sub.add_parser("recommend", help="model-based m recommendation")
    add_plate_args(p_rec, with_m=False)
    p_rec.add_argument("--b-over-a", type=float, default=0.7,
                       help="preconditioner-step to CG-iteration cost ratio")
    p_rec.add_argument("--m-max", type=int, default=10)
    p_rec.add_argument("--parametrized", action="store_true", default=True,
                       help=argparse.SUPPRESS)

    args = parser.parse_args(argv)
    handlers = {
        "table1": _cmd_table1,
        "table3": _cmd_table3,
        "solve": _cmd_solve,
        "cyber": _cmd_cyber,
        "fig1": _cmd_fig1,
        "recommend": _cmd_recommend,
    }
    if args.command in ("solve", "cyber") and not hasattr(args, "parametrized"):
        args.parametrized = False
    if args.command in ("fig1",):
        args.parametrized = False
    if args.command == "recommend":
        args.parametrized = True
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
