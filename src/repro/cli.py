"""Command-line interface: ``python -m repro <command>``.

Regenerates the paper's artifacts and runs one-off solves without writing
any code, all driven through the plan → compile → execute pipeline:

```
python -m repro table1                      # α values (exact reproduction)
python -m repro table2 --meshes 20,41       # CYBER Table 2 (batched sweep)
python -m repro table2 --m auto             # + model-recommended m per mesh
python -m repro table2 --workers 2          # schedule cells across processes
python -m repro table3                      # Finite Element Machine table
python -m repro fig1 --rows 6 --cols 6      # plate coloring
python -m repro solve --rows 20 --m 4 -P    # one m-step SSOR PCG solve
python -m repro solve --rows 20 --m auto --rhs 4   # block solve, autotuned m
python -m repro solve --workload plate-service --workers 2   # sharded block
python -m repro solve --scenario anisotropic --rows 24 --m 4 -P
python -m repro cyber --rows 20 --m 5 -P    # one simulated CYBER solve
python -m repro recommend --rows 20 --b-over-a 0.7
python -m repro scenarios                   # the ProblemSpec registry
python -m repro workloads                   # the WorkloadSpec registry
python -m repro serve --port 7083           # long-lived batching solver daemon
python -m repro request --rows 20 --m 4     # one solve against the daemon
python -m repro request --stats             # daemon counters (hits, batches)
```

``cyber``/``table2`` accept ``--backend vectorized|reference`` (the kernel
dispatch of :mod:`repro.kernels`); ``solve`` and ``request`` additionally
accept ``--backend stencil`` — the matrix-free operator path for the
regular-mesh scenarios, which never assembles a matrix at all
(``repro scenarios`` lists which scenarios support it).  ``solve`` and
``recommend`` accept any registered ``--scenario``, with ``--rows`` mapped
onto the scenario's own size parameter.

Multi-RHS and autotuning: ``solve --rhs K`` solves ``K`` load cases in one
:func:`repro.core.pcg.block_pcg` lockstep (the scenario's load plus K−1
deterministic synthetic cases); ``--workload NAME`` swaps in a registered
multi-load case family (:class:`repro.pipeline.WorkloadSpec`) instead.
``--m auto`` picks m from the width-aware inequality-(4.2) cost model —
``--auto-model fem`` (default) calibrates on the Finite Element Machine,
``--auto-model cyber`` on the CYBER vector timing model
(:meth:`repro.analysis.models.PerformanceModel.from_cyber_machine`).
``table2 --m auto`` prints the model recommendation next to each mesh's
measured optimum.

Real parallelism: ``solve --workers W`` shards the right-hand-side block's
column groups across worker processes
(:func:`repro.parallel.sharded_block_pcg`), and ``table2 --workers W``
fans the schedule's cells likewise (:func:`repro.parallel.sharded_schedule`)
— results bitwise identical to the serial paths in both cases.

Serving: ``serve`` runs the long-lived daemon of :mod:`repro.serving` —
compiled sessions held hot in an LRU, concurrent same-system requests
coalesced into one block-PCG lockstep — and ``request`` is its one-shot
client (``--ping``/``--stats``/``--shutdown`` for the control ops).
"""

from __future__ import annotations

import argparse
import os
import sys

import numpy as np

__all__ = ["main"]


def _build_session(args, schedule=None):
    """A compiled SolverSession for the requested scenario and plan."""
    from repro.pipeline import SolverPlan, SolverSession, scenario

    spec = scenario(getattr(args, "scenario", "plate"))
    backend = getattr(args, "backend", None)
    if not spec.supports_backend(backend):
        print(
            f"scenario {spec.name!r} does not support backend {backend!r}; "
            f"supported: {', '.join(spec.backends)}",
            file=sys.stderr,
        )
        raise SystemExit(2)
    params = {}
    if spec.size_param is not None and getattr(args, "rows", None):
        params[spec.size_param] = args.rows
    if spec.size_param == "nrows" and getattr(args, "cols", None):
        params["ncols"] = args.cols
    if backend == "stencil":
        # The matrix-free path's whole point: never assemble at all.
        params["assemble"] = False
    plan_kwargs = {
        "eps": getattr(args, "eps", 1e-6),
        "backend": backend,
        "block_rhs": max(getattr(args, "rhs", 1) or 1, 1),
    }
    if schedule is not None:
        plan = SolverPlan(schedule=schedule, **plan_kwargs)
    else:
        m = getattr(args, "m", 0)
        if not isinstance(m, int):  # "--m auto": resolved after compiling
            m = 0
        plan = SolverPlan.single(
            m, getattr(args, "parametrized", False), **plan_kwargs
        )
    return SolverSession(spec.build(**params), plan=plan)


def _calibrated_model(session, which: str = "fem"):
    """(A, B, B_marginal) calibrated from a simulated machine layout —
    :meth:`repro.pipeline.SolverSession.calibrated_model`, shared with the
    serving daemon's ``m = "auto"`` resolution."""
    return session.calibrated_model(which)


def _rhs_block(problem, width: int):
    """The scenario's own load plus ``width − 1`` deterministic synthetic
    load cases (the shared construction of
    :func:`repro.pipeline.synthetic_load_block`)."""
    from repro.pipeline import synthetic_load_block

    return synthetic_load_block(problem, width)


def _cmd_table1(args) -> int:
    from repro.analysis import Table
    from repro.core import (
        PAPER_TABLE1,
        least_squares_coefficients,
        normalize_leading,
    )

    table = Table(
        "Table 1 — α values (uniform least squares on [0, 1], α₀ = 1)",
        ["m", "computed", "paper", "match"],
    )
    for m, paper in PAPER_TABLE1.items():
        ours = normalize_leading(least_squares_coefficients(m, (0.0, 1.0)))
        match = bool(np.allclose(ours, paper, atol=5e-3))
        table.add_row(
            m,
            ", ".join(f"{v:.2f}" for v in ours),
            ", ".join(f"{v:g}" for v in paper),
            match,
        )
    print(table.render())
    return 0


def _cmd_solve(args) -> int:
    workload_spec = None
    if args.workload is not None:
        from repro.pipeline import workload

        workload_spec = workload(args.workload)
        if workload_spec.scenario != args.scenario:
            print(
                f"workload {workload_spec.name!r} is registered for scenario "
                f"{workload_spec.scenario!r}, not {args.scenario!r}",
                file=sys.stderr,
            )
            return 2
        args.rhs = workload_spec.width
    session = _build_session(args)
    problem = session.problem
    width = max(args.rhs, 1)
    workers = max(args.workers, 1)
    m, parametrized = args.m, args.parametrized
    if m == "auto":
        from repro.analysis import PerformanceModel
        from repro.core.autotune import recommend_m

        model = _calibrated_model(session, args.auto_model)
        if model is None:
            model = PerformanceModel(a=1.0, b=0.7)
            source = "default B/A = 0.7; scenario has no machine layout"
        else:
            source = f"{args.auto_model.upper()}-machine calibrated A, B, B_marginal"
        rec = recommend_m(
            session.interval, model, m_max=10, width=width,
            shards=workers, rel_tol=0.05,
        )
        m, parametrized = rec.m, True
        print(f"auto-tuned m = {m} for RHS width {width} ({source})")
    desc = getattr(problem, "mesh", None)
    if desc is None:
        desc = f"{type(problem).__name__}(n={problem.n})"
    print(f"problem : {desc}")
    if workload_spec is not None:
        print(f"workload: {workload_spec.name} "
              f"({', '.join(workload_spec.case_labels)})")
    operator = problem.k if problem.k is not None else session.stencil()
    if width == 1 and workload_spec is None:
        solve = session.solve_cell(m, parametrized)
        resid = float(np.max(np.abs(problem.f - operator @ solve.u)))
        print(f"method  : m = {solve.label} ({solve.result.stop_rule})")
        print(f"iterations: {solve.iterations}  converged: {solve.result.converged}")
        print(f"‖f − K u‖∞: {resid:.3e}")
        print(f"inner products: {solve.result.counter.inner_products}")
        return 0 if solve.result.converged else 1
    # A workload always solves through the block path, whatever its width
    # — its columns are the loads, never the scenario's own f.
    if workload_spec is not None:
        F = workload_spec.build_block(problem)
    else:
        F = _rhs_block(problem, width)
    sharding = workers if workers > 1 else None
    if sharding is not None:
        # Publish the operator segments and warm the pool before the
        # solve: the dispatch then ships only column indices.
        session.prewarm_sharding(sharding)
    block = session.solve_cell_block(m, parametrized, F=F, sharding=sharding)
    resid = float(np.max(np.abs(F - operator @ block.u)))
    iters = ", ".join(str(int(i)) for i in block.iterations)
    mode = (
        f"sharded over {workers} worker processes"
        if workers > 1
        else "one lockstep"
    )
    print(f"method  : m = {block.label} ({block.result.stop_rule}), "
          f"block of {width} right-hand sides in {mode}")
    print(f"iterations per column: {iters}")
    print(f"all converged: {block.result.all_converged}")
    print(f"max ‖f − K u‖∞ over columns: {resid:.3e}")
    print(f"compiles: {session.stats.compile_counts()} "
          f"(one of each for any k); block solves: {session.stats.block_solves}"
          + (f"; shard dispatches: {session.stats.shard_dispatches}"
             if workers > 1 else ""))
    return 0 if block.result.all_converged else 1


def _cmd_cyber(args) -> int:
    session = _build_session(args)
    machine = session.cyber()
    coeffs = session.coefficients(args.m, args.parametrized) if args.m else None
    res = machine.solve(args.m, coeffs, eps=args.eps, backend=args.backend)
    print(f"CYBER 203 simulation: {session.problem.mesh} "
          f"(v = {res.max_vector_length})")
    print(f"m = {res.label}: I = {res.iterations}, T = {res.seconds:.4f} s")
    print(f"preconditioner share: {res.preconditioner_seconds / res.seconds:.1%}"
          if res.seconds else "")
    return 0 if res.converged else 1


def _cmd_table2(args) -> int:
    from repro.analysis import Table
    from repro.pipeline import SolverPlan, SolverSession, build_scenario

    try:
        meshes = [int(tok) for tok in args.meshes.split(",") if tok.strip()]
    except ValueError:
        print(f"--meshes must be comma-separated integers, got {args.meshes!r}",
              file=sys.stderr)
        return 2
    if not meshes:
        print("--meshes needs at least one plate size", file=sys.stderr)
        return 2

    # The reference backend has no batched sweep; the session then runs
    # cell-at-a-time regardless of --per-column, so derive the banner from
    # the path actually taken.
    batched = not args.per_column and args.backend != "reference"
    workers = max(args.workers, 1)
    per_mesh = {}
    sessions = {}
    all_converged = True
    for a in meshes:
        session = SolverSession(
            build_scenario("plate", nrows=a),
            plan=SolverPlan.table2(eps=args.eps, backend=args.backend),
        )
        results = session.run_cyber_schedule(batched=batched, workers=workers)
        all_converged &= all(r.converged for r in results)
        per_mesh[a] = results
        sessions[a] = session

    columns = ["m"]
    for a in meshes:
        v = per_mesh[a][0].max_vector_length
        columns += [f"I(a={a})", f"T(v={v})"]
    mode = "one batched simulator pass" if batched else "per-column pass"
    if batched and workers > 1:
        mode = f"schedule cells sharded over {workers} worker processes"
    table = Table(
        "Table 2 — CYBER 203 iterations and simulated timings, "
        f"m-step SSOR PCG ({mode})",
        columns,
    )
    for i in range(len(per_mesh[meshes[0]])):
        row = [per_mesh[meshes[0]][i].label]
        for a in meshes:
            row += [per_mesh[a][i].iterations, per_mesh[a][i].seconds]
        table.add_row(*row)
    table.add_note("T = simulated seconds (calibrated CYBER 203 cost model)")
    table.add_note("paper m=0 row: I = 271, 536, 788, 929 for a = 20, 41, 62, 80")
    print(table.render())
    if args.m == "auto":
        from repro.analysis.models import effective_optimal_m
        from repro.core.autotune import recommend_m

        width = max(args.rhs, 1)
        if args.workload is not None:
            from repro.pipeline import workload

            width = workload(args.workload).width
            print(f"workload {args.workload!r}: pricing --m auto at its "
                  f"block width {width}")
        for a in meshes:
            session = sessions[a]
            model = _calibrated_model(session, args.auto_model)
            rec = recommend_m(
                session.interval, model, m_max=10, width=width, rel_tol=0.05
            )
            measured = {
                m: res.seconds
                for (m, par), res in zip(session.plan.schedule, per_mesh[a])
                if par
            }
            best = effective_optimal_m(measured)
            print(
                f"auto m (a={a}): {args.auto_model.upper()}-model-"
                f"recommended m = {rec.m} at RHS width {width} "
                f"(measured table optimum m = {best})"
            )
    return 0 if all_converged else 1


def _cmd_table3(args) -> int:
    from repro.analysis import Table
    from repro.driver import TABLE3_SCHEDULE
    from repro.machines import speedup_table
    from repro.pipeline import SolverPlan, SolverSession, build_scenario

    session = SolverSession(
        build_scenario("plate", nrows=6), plan=SolverPlan.table3()
    )
    table = Table(
        "Finite Element Machine (Table 3)",
        ["m", "I", "T(P=1)", "T(P=2)", "su", "T(P=5)", "su"],
    )
    for m, par in TABLE3_SCHEDULE:
        res = {p: session.fem_solve(m, par, n_procs=p) for p in (1, 2, 5)}
        su = speedup_table(res)
        table.add_row(res[1].label, res[1].iterations, res[1].seconds,
                      res[2].seconds, su[2], res[5].seconds, su[5])
    print(table.render())
    return 0


def _cmd_fig1(args) -> int:
    from repro.fem import PlateMesh

    mesh = PlateMesh(args.rows, args.cols or args.rows)
    mesh.validate_coloring()
    print(mesh.coloring_ascii())
    counts = mesh.color_counts()
    print(f"colors (R, B, G): {tuple(int(c) for c in counts)}; "
          f"max vector length v = {mesh.max_vector_length()}")
    return 0


def _cmd_recommend(args) -> int:
    from repro.analysis import PerformanceModel, Table
    from repro.core.autotune import recommend_m

    session = _build_session(args)
    interval = session.interval
    width = max(args.rhs, 1)
    shards = max(args.workers, 1)
    model = PerformanceModel(
        a=1.0, b=args.b_over_a, b_marginal=args.b_marginal
    )
    rec = recommend_m(
        interval, model, m_max=args.m_max, width=width, shards=shards
    )
    title = (
        f"Model-predicted cost (A = 1, B/A = {args.b_over_a}) on the "
        f"{args.scenario} scenario (rows = {args.rows})"
    )
    if width > 1:
        title += f", RHS block width {width}"
    if shards > 1:
        title += f", sharded over {shards} workers"
    table = Table(title, ["m", "κ bound", "(A·w+m·B_w)·√κ"])
    for m in sorted(rec.scores):
        table.add_row(m, rec.kappas[m], rec.scores[m])
    table.add_note(f"recommended m = {rec.m}")
    if width > 1 and model.amortizes:
        table.add_note(
            f"effective per-RHS B/A at width {width}"
            + (f" over {shards} shards" if shards > 1 else "")
            + f": {model.b_over_a_at(width, shards):.3f} "
            f"(width 1: {model.b_over_a:.3f})"
        )
    print(table.render())
    return 0


def _cmd_scenarios(args) -> int:
    from repro.analysis import Table
    from repro.pipeline import available_scenarios

    table = Table(
        "Registered scenarios (repro.pipeline.problems)",
        ["name", "defaults", "backends", "description"],
    )
    for spec in available_scenarios():
        defaults = ", ".join(f"{k}={v}" for k, v in spec.defaults.items())
        table.add_row(
            spec.name, defaults or "—", ", ".join(spec.backends),
            spec.description,
        )
    table.add_note("build with build_scenario(name, **overrides) or "
                   "`repro solve --scenario <name>`")
    table.add_note("'stencil' = the matrix-free operator path "
                   "(`--backend stencil`, no assembled matrix)")
    print(table.render())
    return 0


def _cmd_workloads(args) -> int:
    from repro.analysis import Table
    from repro.pipeline import available_workloads

    table = Table(
        "Registered workloads (repro.pipeline.problems)",
        ["name", "scenario", "k", "cases"],
    )
    for spec in available_workloads():
        table.add_row(
            spec.name, spec.scenario, spec.width, ", ".join(spec.case_labels)
        )
    table.add_note("solve a family with `repro solve --workload <name>` "
                   "(add --workers W to shard the block across processes)")
    print(table.render())
    return 0


def _cmd_serve(args) -> int:
    from repro.serving import run_daemon

    return run_daemon(
        host=args.host,
        port=args.port,
        batch_window=args.batch_window,
        max_batch=args.max_batch,
        capacity=args.capacity,
    )


def _cmd_request(args) -> int:
    import json

    from repro.serving import ServeClient
    from repro.serving.protocol import ProtocolError

    try:
        with ServeClient(args.host, args.port) as client:
            if args.ping:
                print(json.dumps(client.ping(), indent=2))
                return 0
            if args.stats:
                print(json.dumps(client.stats(), indent=2))
                return 0
            if args.shutdown:
                client.shutdown()
                print(f"daemon at {args.host}:{args.port} shutting down")
                return 0
            reply = client.solve(
                scenario=args.scenario,
                rows=args.rows,
                m=args.m,
                parametrized=args.parametrized,
                eps=args.eps,
                omega=args.omega,
                backend=args.backend,
                load_case=args.load_case,
            )
    except ConnectionRefusedError:
        print(f"no daemon listening on {args.host}:{args.port} "
              "(start one with `repro serve`)", file=sys.stderr)
        return 2
    except ProtocolError as exc:
        print(f"daemon rejected the request: {exc}", file=sys.stderr)
        return 2
    served = "hot (cached session)" if reply.cache_hit else "cold (compiled now)"
    print(f"scenario: {args.scenario} (rows = {args.rows}), "
          f"load case {args.load_case}")
    print(f"method  : m = {reply.m_label}, served {served}")
    print(f"iterations: {reply.iterations}  converged: {reply.converged}")
    print(f"batched : width {reply.batch_width} "
          f"(queued {reply.queue_s * 1e3:.2f} ms, "
          f"solved in {reply.solve_s * 1e3:.2f} ms)")
    print(f"‖u‖∞    : {float(np.max(np.abs(reply.u))):.6e}")
    return 0 if reply.converged else 1


def main(argv: list[str] | None = None) -> int:
    from repro.driver import TABLE2_EPS
    from repro.kernels import BACKENDS, SOLVER_BACKENDS
    from repro.pipeline import available_scenarios

    scenario_names = [spec.name for spec in available_scenarios()]
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Adams (1983) m-step preconditioned CG — reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def parse_m(value: str):
        if value == "auto":
            return "auto"
        try:
            return int(value)
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"--m must be an integer or 'auto', got {value!r}"
            ) from None

    def add_backend_arg(p, solver=False):
        if solver:
            p.add_argument(
                "--backend", choices=list(SOLVER_BACKENDS), default=None,
                help="solver backend for the numerics (default: vectorized; "
                "'stencil' is the matrix-free operator path of the "
                "regular-mesh scenarios)",
            )
        else:
            p.add_argument(
                "--backend", choices=list(BACKENDS), default=None,
                help="kernel backend for the numerics (default: vectorized)",
            )

    def add_rhs_arg(p):
        p.add_argument(
            "--rhs", type=int, default=1,
            help="simultaneous right-hand sides: the block-PCG width K "
            "(batched (n, K) lockstep; also the width --m auto tunes for)",
        )

    def add_workers_arg(p, what):
        p.add_argument(
            "--workers", type=int, default=1,
            help=f"worker processes to shard {what} across "
            "(repro.parallel; 1 = serial, results bitwise identical)",
        )

    def add_workload_arg(p):
        from repro.pipeline import available_workloads

        p.add_argument(
            "--workload", choices=[w.name for w in available_workloads()],
            default=None,
            help="registered multi-load case family; its width becomes "
            "the block-RHS width K (overrides --rhs)",
        )

    def add_auto_model_arg(p):
        p.add_argument(
            "--auto-model", choices=["fem", "cyber"], default="fem",
            help="machine whose timing model calibrates the --m auto "
            "recommendation (FEM processor array or CYBER vector pipeline)",
        )

    def add_plate_args(p, with_m=True, with_scenario=False, auto_m=False):
        p.add_argument("--rows", type=int, default=20, help="rows of nodes (a)")
        p.add_argument("--cols", type=int, default=None, help="columns (default a)")
        if with_scenario:
            p.add_argument(
                "--scenario", choices=scenario_names, default="plate",
                help="registered scenario to build (--rows maps onto its "
                "size parameter)",
            )
        if with_m:
            if auto_m:
                p.add_argument(
                    "--m", type=parse_m, default=3,
                    help="preconditioner steps, or 'auto' to pick m from "
                    "the width-aware inequality-(4.2) cost model",
                )
            else:
                p.add_argument(
                    "--m", type=int, default=3, help="preconditioner steps"
                )
            p.add_argument(
                "-P", "--parametrized", action="store_true",
                help="least-squares parametrized coefficients",
            )
            p.add_argument("--eps", type=float, default=1e-6, help="‖Δu‖∞ tolerance")

    sub.add_parser("table1", help="Table 1 α values (exact reproduction)")

    p_table2 = sub.add_parser(
        "table2", help="CYBER Table 2 (batched simulator sweep)"
    )
    p_table2.add_argument(
        "--meshes", default="20,41",
        help="comma-separated plate sizes a (paper: 20,41,62,80)",
    )
    p_table2.add_argument("--eps", type=float, default=TABLE2_EPS,
                          help="‖Δu‖∞ tolerance")
    p_table2.add_argument(
        "--per-column", action="store_true",
        help="run cell-at-a-time instead of the batched lockstep pass "
        "(identical results, slower)",
    )
    p_table2.add_argument(
        "--m", choices=["auto"], default=None,
        help="'auto' appends the model-recommended m per mesh (FEM-machine "
        "calibrated width-aware (4.2) model) next to the measured optimum",
    )
    add_rhs_arg(p_table2)
    add_workers_arg(p_table2, "the schedule's cells")
    add_workload_arg(p_table2)
    add_auto_model_arg(p_table2)
    add_backend_arg(p_table2)

    sub.add_parser("table3", help="Finite Element Machine table")
    p_solve = sub.add_parser("solve", help="one m-step SSOR PCG solve")
    add_plate_args(p_solve, with_scenario=True, auto_m=True)
    add_rhs_arg(p_solve)
    add_workers_arg(p_solve, "the RHS block's column groups")
    add_workload_arg(p_solve)
    add_auto_model_arg(p_solve)
    add_backend_arg(p_solve, solver=True)
    p_cyber = sub.add_parser("cyber", help="one simulated CYBER 203 solve")
    add_plate_args(p_cyber)
    add_backend_arg(p_cyber)
    p_fig1 = sub.add_parser("fig1", help="plate coloring (Figure 1)")
    add_plate_args(p_fig1, with_m=False)
    p_rec = sub.add_parser("recommend", help="model-based m recommendation")
    add_plate_args(p_rec, with_m=False, with_scenario=True)
    p_rec.add_argument("--b-over-a", type=float, default=0.7,
                       help="preconditioner-step to CG-iteration cost ratio")
    p_rec.add_argument(
        "--b-marginal", type=float, default=None,
        help="per-extra-RHS step cost inside a block (enables width "
        "amortization in the recommendation; see PerformanceModel)",
    )
    p_rec.add_argument("--m-max", type=int, default=10)
    add_rhs_arg(p_rec)
    add_workers_arg(p_rec, "the priced block (shard-aware step cost)")
    sub.add_parser("scenarios", help="list the ProblemSpec registry")
    sub.add_parser("workloads", help="list the WorkloadSpec registry")

    p_serve = sub.add_parser(
        "serve", help="long-lived batching solver daemon (repro.serving)"
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port", type=int, default=7083,
        help="TCP port (0 = ephemeral; the bound port is printed)",
    )
    p_serve.add_argument(
        "--batch-window", type=float, default=0.005,
        help="seconds concurrent same-system requests wait to coalesce "
        "into one block-PCG lockstep (0 disables batching)",
    )
    p_serve.add_argument(
        "--max-batch", type=int, default=8,
        help="flush a batch as soon as this many columns are waiting "
        "(also the width m='auto' is priced at)",
    )
    p_serve.add_argument(
        "--capacity", type=int, default=8,
        help="compiled sessions held hot in the LRU cache",
    )

    p_req = sub.add_parser(
        "request", help="one solve (or control op) against a running daemon"
    )
    p_req.add_argument("--host", default="127.0.0.1")
    p_req.add_argument("--port", type=int, default=7083)
    p_req.add_argument(
        "--scenario", choices=scenario_names, default="plate",
        help="registered scenario the daemon should compile/reuse",
    )
    p_req.add_argument("--rows", type=int, default=20, help="rows of nodes (a)")
    p_req.add_argument(
        "--m", type=parse_m, default=3,
        help="preconditioner steps, or 'auto' (daemon resolves it from "
        "the width-aware (4.2) model, once per cached system)",
    )
    p_req.add_argument(
        "-P", "--parametrized", action="store_true",
        help="least-squares parametrized coefficients",
    )
    p_req.add_argument("--eps", type=float, default=1e-6, help="‖Δu‖∞ tolerance")
    p_req.add_argument("--omega", type=float, default=1.0,
                       help="SSOR relaxation parameter")
    p_req.add_argument(
        "--load-case", type=int, default=0,
        help="deterministic load-case index (0 = the scenario's own load)",
    )
    add_backend_arg(p_req, solver=True)
    p_req.add_argument("--ping", action="store_true",
                       help="health-check the daemon and exit")
    p_req.add_argument("--stats", action="store_true",
                       help="print the daemon's counters and exit")
    p_req.add_argument("--shutdown", action="store_true",
                       help="ask the daemon to shut down gracefully")

    args = parser.parse_args(argv)
    handlers = {
        "table1": _cmd_table1,
        "table2": _cmd_table2,
        "table3": _cmd_table3,
        "solve": _cmd_solve,
        "cyber": _cmd_cyber,
        "fig1": _cmd_fig1,
        "recommend": _cmd_recommend,
        "scenarios": _cmd_scenarios,
        "workloads": _cmd_workloads,
        "serve": _cmd_serve,
        "request": _cmd_request,
    }
    if not hasattr(args, "parametrized"):
        args.parametrized = False
    if not hasattr(args, "scenario"):
        args.scenario = "plate"
    if not hasattr(args, "rhs"):
        args.rhs = 1
    if not hasattr(args, "workers"):
        args.workers = 1
    if not hasattr(args, "workload"):
        args.workload = None
    if not hasattr(args, "auto_model"):
        args.auto_model = "fem"
    try:
        return handlers[args.command](args)
    except BrokenPipeError:
        # Downstream consumer (e.g. `repro request --stats | head`)
        # closed the pipe early; exit quietly like other unix CLIs.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
