"""The scenario registry: named, parameterized problem builders.

Every entry point used to rebuild its model problem by hand — the CLI had
``_build_plate``, the benchmarks their ``cached_plate``, each example its
own few lines — which meant a new scenario had to be wired into every
caller separately.  :class:`ProblemSpec` centralizes that: a named builder
with documented defaults, so drivers ask for ``build_scenario("plate",
nrows=20)`` and new workloads become one ``register_scenario`` call.

The stock registry spans the paper's workloads and beyond:

========================  ==================================================
``plate``                 the paper's plane-stress plate (Tables 2–3)
``stretched-plate``       the plate on a 4:1 stretched domain (skewed
                          elements, harder spectrum)
``variable-plate``        spatially varying Young's modulus (graded or a
                          stiff inclusion) — values change, coloring doesn't
``lshape``                L-shaped domain, greedy multicoloring (the
                          paper's concluding open problem)
``perforated``            plate with a circular hole, greedy multicoloring
``poisson``               5-point Laplacian, classical red/black
``anisotropic``           ``−ε·u_xx − u_yy``: red/black structure, stiff
                          anisotropic spectrum
========================  ==================================================

All builders return objects satisfying the problem protocol
(``k``, ``f``, ``group_of_unknown``, ``group_labels``) that the multicolor
machinery and :class:`~repro.pipeline.SolverSession` consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.fem import (
    anisotropic_problem,
    l_shaped_problem,
    perforated_problem,
    plate_problem,
    poisson_problem,
    variable_plate_problem,
)
from repro.util import require

__all__ = [
    "ProblemSpec",
    "register_scenario",
    "scenario",
    "build_scenario",
    "available_scenarios",
    "synthetic_load_block",
]


def synthetic_load_block(problem, width: int, seed: int = 1983):
    """An ``(n, width)`` right-hand-side block of load cases for ``problem``.

    Column 0 is the problem's own assembled load; the remaining columns
    are deterministic synthetic cases (seeded normal vectors scaled to
    the load's magnitude).  The one construction shared by the CLI's
    ``--rhs K`` path and the block-PCG benchmarks, so all multi-RHS
    drivers exercise identical blocks.
    """
    require(width >= 1, "width must be at least 1")
    f = np.asarray(problem.f, dtype=float)
    rng = np.random.default_rng(seed)
    scale = float(np.max(np.abs(f))) or 1.0
    cols = [f] + [
        rng.normal(size=f.shape[0]) * scale for _ in range(width - 1)
    ]
    return np.stack(cols, axis=1)


@dataclass(frozen=True)
class ProblemSpec:
    """A named scenario: builder + documented defaults.

    ``build(**overrides)`` merges the overrides into the defaults and
    calls the builder; unknown keyword names surface as the builder's own
    ``TypeError`` so specs stay thin.
    """

    name: str
    builder: Callable
    description: str
    defaults: dict = field(default_factory=dict)
    #: Name of the builder's mesh-size parameter (``nrows``, ``a``,
    #: ``n_grid``) so generic drivers — the CLI's ``--rows`` — can scale
    #: any scenario without knowing its signature.
    size_param: str | None = None

    def build(self, **overrides):
        params = {**self.defaults, **overrides}
        return self.builder(**params)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"ProblemSpec({self.name!r}: {self.description})"


_REGISTRY: dict[str, ProblemSpec] = {}


def register_scenario(
    name: str,
    builder: Callable,
    description: str,
    size_param: str | None = None,
    **defaults,
) -> ProblemSpec:
    """Register (or replace) a named scenario and return its spec."""
    require(bool(name), "scenario name must be non-empty")
    spec = ProblemSpec(
        name=name,
        builder=builder,
        description=description,
        defaults=defaults,
        size_param=size_param,
    )
    _REGISTRY[name] = spec
    return spec


def scenario(name: str) -> ProblemSpec:
    """Look up a registered scenario by name."""
    if name not in _REGISTRY:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown scenario {name!r}; registered: {known}")
    return _REGISTRY[name]


def build_scenario(name: str, **overrides):
    """Build a registered scenario's problem with parameter overrides."""
    return scenario(name).build(**overrides)


def available_scenarios() -> tuple[ProblemSpec, ...]:
    """All registered specs, sorted by name."""
    return tuple(_REGISTRY[name] for name in sorted(_REGISTRY))


# --------------------------------------------------------------- stock entries
register_scenario(
    "plate",
    plate_problem,
    "the paper's plane-stress plate (unit square, left edge fixed, "
    "right edge loaded)",
    size_param="nrows",
    nrows=20,
)

register_scenario(
    "stretched-plate",
    lambda nrows=20, ncols=None, aspect=4.0, **kw: plate_problem(
        nrows, ncols=ncols, width=aspect, **kw
    ),
    "the plate on a stretched (4:1 by default) domain — skewed elements, "
    "a harder spectrum, identical R/B/G coloring",
    size_param="nrows",
    nrows=20,
)

register_scenario(
    "variable-plate",
    variable_plate_problem,
    "the plate with spatially varying Young's modulus (graded stiffness "
    "or a stiff inclusion)",
    size_param="nrows",
    nrows=20,
)

register_scenario(
    "lshape",
    l_shaped_problem,
    "L-shaped plate, greedy multicoloring (the paper's concluding "
    "open problem)",
    size_param="a",
    a=13,
)

register_scenario(
    "perforated",
    perforated_problem,
    "plate with a circular hole, greedy multicoloring",
    size_param="a",
    a=13,
)

register_scenario(
    "poisson",
    poisson_problem,
    "5-point Laplacian on the unit square, classical red/black coloring",
    size_param="n_grid",
    n_grid=16,
)

register_scenario(
    "anisotropic",
    anisotropic_problem,
    "anisotropic stencil −ε·u_xx − u_yy: red/black structure with a "
    "stiff spectrum as ε → 0",
    size_param="n_grid",
    n_grid=16,
)
