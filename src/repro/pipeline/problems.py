"""The scenario registry: named, parameterized problem builders.

Every entry point used to rebuild its model problem by hand — the CLI had
``_build_plate``, the benchmarks their ``cached_plate``, each example its
own few lines — which meant a new scenario had to be wired into every
caller separately.  :class:`ProblemSpec` centralizes that: a named builder
with documented defaults, so drivers ask for ``build_scenario("plate",
nrows=20)`` and new workloads become one ``register_scenario`` call.

The stock registry spans the paper's workloads and beyond:

========================  ==================================================
``plate``                 the paper's plane-stress plate (Tables 2–3)
``stretched-plate``       the plate on a 4:1 stretched domain (skewed
                          elements, harder spectrum)
``variable-plate``        spatially varying Young's modulus (graded or a
                          stiff inclusion) — values change, coloring doesn't
``lshape``                L-shaped domain, greedy multicoloring (the
                          paper's concluding open problem)
``perforated``            plate with a circular hole, greedy multicoloring
``poisson``               5-point Laplacian, classical red/black
``anisotropic``           ``−ε·u_xx − u_yy``: red/black structure, stiff
                          anisotropic spectrum
========================  ==================================================

All builders return objects satisfying the problem protocol
(``k``, ``f``, ``group_of_unknown``, ``group_labels``) that the multicolor
machinery and :class:`~repro.pipeline.SolverSession` consume.

**Workloads.**  A scenario names a *structure*; a :class:`WorkloadSpec`
names the *loads* applied to it — a first-class registry of multi-load
cases (pressure sweeps, shear, thermal gradients, point-load families)
whose columns compile straight to an ``(n, k)`` right-hand-side block and
whose width becomes :attr:`~repro.pipeline.SolverPlan.block_rhs` via
:meth:`WorkloadSpec.solver_plan`.  The block-PCG and sharded-execution
paths (``repro solve --workload NAME --workers W``) consume these.

Both spec types pickle by *recipe*: ``__getstate__`` drops the builder
callable when the spec is registered and ``__setstate__`` rebinds it from
the registry by name — which is what lets worker processes receive specs
(and scenario problems) without ever pickling lambdas or closures.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.fem import (
    anisotropic_problem,
    l_shaped_problem,
    perforated_problem,
    plate_problem,
    poisson_problem,
    variable_plate_problem,
)
from repro.util import require

__all__ = [
    "ProblemSpec",
    "register_scenario",
    "scenario",
    "build_scenario",
    "available_scenarios",
    "synthetic_load_block",
    "WorkloadSpec",
    "register_workload",
    "workload",
    "build_workload",
    "available_workloads",
]


def synthetic_load_block(problem, width: int, seed: int = 1983):
    """An ``(n, width)`` right-hand-side block of load cases for ``problem``.

    Column 0 is the problem's own assembled load; the remaining columns
    are deterministic synthetic cases (seeded normal vectors scaled to
    the load's magnitude).  The one construction shared by the CLI's
    ``--rhs K`` path and the block-PCG benchmarks, so all multi-RHS
    drivers exercise identical blocks.
    """
    require(width >= 1, "width must be at least 1")
    f = np.asarray(problem.f, dtype=float)
    rng = np.random.default_rng(seed)
    scale = float(np.max(np.abs(f))) or 1.0
    cols = [f] + [
        rng.normal(size=f.shape[0]) * scale for _ in range(width - 1)
    ]
    return np.stack(cols, axis=1)


@dataclass(frozen=True)
class ProblemSpec:
    """A named scenario: builder + documented defaults.

    ``build(**overrides)`` merges the overrides into the defaults and
    calls the builder; unknown keyword names surface as the builder's own
    ``TypeError`` so specs stay thin.
    """

    name: str
    builder: Callable
    description: str
    defaults: dict = field(default_factory=dict)
    #: Name of the builder's mesh-size parameter (``nrows``, ``a``,
    #: ``n_grid``) so generic drivers — the CLI's ``--rows`` — can scale
    #: any scenario without knowing its signature.
    size_param: str | None = None
    #: Solver backends this scenario can serve.  Every scenario runs the
    #: assembled kernel backends; the regular-mesh scenarios additionally
    #: support the matrix-free ``"stencil"`` operator.
    backends: tuple[str, ...] = ("vectorized", "reference")

    def build(self, **overrides):
        params = {**self.defaults, **overrides}
        return self.builder(**params)

    def supports_backend(self, backend: str | None) -> bool:
        """Whether a plan backend can serve this scenario (``None`` = default)."""
        return backend is None or backend in self.backends

    # Specs pickle by recipe: a registered spec ships its *name* and is
    # rebound to the registry's builder on load, so worker processes can
    # receive specs whose builders are lambdas or closures.
    def __getstate__(self) -> dict:
        registered = _REGISTRY.get(self.name)
        state = {
            "name": self.name,
            "description": self.description,
            "defaults": self.defaults,
            "size_param": self.size_param,
            "backends": self.backends,
            "builder": None if (
                registered is not None and registered.builder is self.builder
            ) else self.builder,
        }
        return state

    def __setstate__(self, state: dict) -> None:
        builder = state.pop("builder")
        if builder is None:
            registered = _REGISTRY.get(state["name"])
            if registered is None:
                raise pickle.UnpicklingError(
                    f"scenario {state['name']!r} is not registered in this "
                    "process; register it before unpickling its spec"
                )
            builder = registered.builder
        for key, value in state.items():
            object.__setattr__(self, key, value)
        object.__setattr__(self, "builder", builder)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"ProblemSpec({self.name!r}: {self.description})"


_REGISTRY: dict[str, ProblemSpec] = {}


def register_scenario(
    name: str,
    builder: Callable,
    description: str,
    size_param: str | None = None,
    backends: tuple[str, ...] = ("vectorized", "reference"),
    **defaults,
) -> ProblemSpec:
    """Register (or replace) a named scenario and return its spec."""
    require(bool(name), "scenario name must be non-empty")
    spec = ProblemSpec(
        name=name,
        builder=builder,
        description=description,
        defaults=defaults,
        size_param=size_param,
        backends=tuple(backends),
    )
    _REGISTRY[name] = spec
    return spec


def scenario(name: str) -> ProblemSpec:
    """Look up a registered scenario by name."""
    if name not in _REGISTRY:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown scenario {name!r}; registered: {known}")
    return _REGISTRY[name]


def build_scenario(name: str, **overrides):
    """Build a registered scenario's problem with parameter overrides."""
    return scenario(name).build(**overrides)


def available_scenarios() -> tuple[ProblemSpec, ...]:
    """All registered specs, sorted by name."""
    return tuple(_REGISTRY[name] for name in sorted(_REGISTRY))


# --------------------------------------------------------------- stock entries
register_scenario(
    "plate",
    plate_problem,
    "the paper's plane-stress plate (unit square, left edge fixed, "
    "right edge loaded)",
    size_param="nrows",
    backends=("vectorized", "reference", "stencil"),
    nrows=20,
)

def _stretched_plate_problem(nrows=20, ncols=None, aspect=4.0, **kw):
    """The plate on an ``aspect:1`` stretched domain (module-level — not a
    lambda — so the spec's recipe-based pickling can fall back to it)."""
    return plate_problem(nrows, ncols=ncols, width=aspect, **kw)


register_scenario(
    "stretched-plate",
    _stretched_plate_problem,
    "the plate on a stretched (4:1 by default) domain — skewed elements, "
    "a harder spectrum, identical R/B/G coloring",
    size_param="nrows",
    backends=("vectorized", "reference", "stencil"),
    nrows=20,
)

register_scenario(
    "variable-plate",
    variable_plate_problem,
    "the plate with spatially varying Young's modulus (graded stiffness "
    "or a stiff inclusion)",
    size_param="nrows",
    nrows=20,
)

register_scenario(
    "lshape",
    l_shaped_problem,
    "L-shaped plate, greedy multicoloring (the paper's concluding "
    "open problem)",
    size_param="a",
    a=13,
)

register_scenario(
    "perforated",
    perforated_problem,
    "plate with a circular hole, greedy multicoloring",
    size_param="a",
    a=13,
)

register_scenario(
    "poisson",
    poisson_problem,
    "5-point Laplacian on the unit square, classical red/black coloring",
    size_param="n_grid",
    backends=("vectorized", "reference", "stencil"),
    n_grid=16,
)

register_scenario(
    "anisotropic",
    anisotropic_problem,
    "anisotropic stencil −ε·u_xx − u_yy: red/black structure with a "
    "stiff spectrum as ε → 0",
    size_param="n_grid",
    backends=("vectorized", "reference", "stencil"),
    n_grid=16,
)


# ============================================================= workloads
@dataclass(frozen=True)
class WorkloadSpec:
    """A named multi-load case family for one scenario.

    ``builder(problem)`` returns the ``(n, width)`` right-hand-side block,
    one column per case in :attr:`case_labels`.  Workloads are the
    scenario registry's answer for *loads* what :class:`ProblemSpec` is
    for *structures*: entry points ask for ``build_workload("plate-service",
    problem)`` and a new load family becomes one :func:`register_workload`
    call.  The width compiles straight into a plan via
    :meth:`solver_plan` (``block_rhs = width``), so the multi-RHS and
    sharded execution paths are sized from the workload, not by hand.
    """

    name: str
    scenario: str
    description: str
    case_labels: tuple[str, ...]
    builder: Callable  # (problem) -> (n, width) ndarray

    def __post_init__(self) -> None:
        require(bool(self.name), "workload name must be non-empty")
        require(len(self.case_labels) >= 1, "a workload needs at least one case")

    @property
    def width(self) -> int:
        """Number of load cases — the block width this workload compiles to."""
        return len(self.case_labels)

    def build_block(self, problem) -> np.ndarray:
        """The ``(n, width)`` load block for a built scenario problem."""
        F = np.asarray(self.builder(problem), dtype=float)
        require(
            F.ndim == 2 and F.shape == (problem.f.shape[0], self.width),
            f"workload {self.name!r} must build an (n, {self.width}) block",
        )
        return F

    def solver_plan(self, base=None, **overrides):
        """A :class:`~repro.pipeline.SolverPlan` sized for this workload.

        ``base`` (default a one-cell ``m = 3`` parametrized plan) is
        copied with ``block_rhs`` set to the workload width plus any
        ``overrides`` — the "compile straight to ``SolverPlan.block_rhs``"
        hook the CLI's ``--workload`` path uses.
        """
        from repro.pipeline.plan import SolverPlan

        plan = base if base is not None else SolverPlan.single(3, True)
        return plan.with_(block_rhs=self.width, **overrides)

    # Recipe-based pickling, exactly as ProblemSpec does it.
    def __getstate__(self) -> dict:
        registered = _WORKLOADS.get(self.name)
        return {
            "name": self.name,
            "scenario": self.scenario,
            "description": self.description,
            "case_labels": self.case_labels,
            "builder": None if (
                registered is not None and registered.builder is self.builder
            ) else self.builder,
        }

    def __setstate__(self, state: dict) -> None:
        builder = state.pop("builder")
        if builder is None:
            registered = _WORKLOADS.get(state["name"])
            if registered is None:
                raise pickle.UnpicklingError(
                    f"workload {state['name']!r} is not registered in this "
                    "process; register it before unpickling its spec"
                )
            builder = registered.builder
        for key, value in state.items():
            object.__setattr__(self, key, value)
        object.__setattr__(self, "builder", builder)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"WorkloadSpec({self.name!r} on {self.scenario!r}: "
            f"{self.width} cases)"
        )


_WORKLOADS: dict[str, WorkloadSpec] = {}


def register_workload(
    name: str,
    scenario: str,
    builder: Callable,
    description: str,
    case_labels,
) -> WorkloadSpec:
    """Register (or replace) a named workload and return its spec."""
    spec = WorkloadSpec(
        name=name,
        scenario=scenario,
        description=description,
        case_labels=tuple(case_labels),
        builder=builder,
    )
    _WORKLOADS[name] = spec
    return spec


def workload(name: str) -> WorkloadSpec:
    """Look up a registered workload by name."""
    if name not in _WORKLOADS:
        known = ", ".join(sorted(_WORKLOADS))
        raise KeyError(f"unknown workload {name!r}; registered: {known}")
    return _WORKLOADS[name]


def build_workload(name: str, problem) -> np.ndarray:
    """Build a registered workload's ``(n, width)`` load block."""
    return workload(name).build_block(problem)


def available_workloads() -> tuple[WorkloadSpec, ...]:
    """All registered workload specs, sorted by name."""
    return tuple(_WORKLOADS[name] for name in sorted(_WORKLOADS))


# ------------------------------------------------------- stock load families
PRESSURE_FACTORS = (0.25, 0.5, 1.0, 2.0)
THERMAL_MODES = (1, 2, 3)
POINT_FRACTIONS = (0.2, 0.4, 0.6, 0.8)


def _pressure_family_block(problem) -> np.ndarray:
    """The scenario's own assembled load at several service magnitudes."""
    f = np.asarray(problem.f, dtype=float)
    return np.stack([factor * f for factor in PRESSURE_FACTORS], axis=1)


def _point_family_block(problem) -> np.ndarray:
    """Concentrated unit loads at spread free positions (any scenario)."""
    f = np.asarray(problem.f, dtype=float)
    n = f.shape[0]
    magnitude = float(np.max(np.abs(f))) or 1.0
    cols = []
    for fraction in POINT_FRACTIONS:
        case = np.zeros(n)
        case[int(fraction * (n - 1))] = magnitude
        cols.append(case)
    return np.stack(cols, axis=1)


def _thermal_family_block(problem) -> np.ndarray:
    """Smooth thermal-gradient proxy loads: low sinusoidal dof modes.

    A uniform temperature change loads a constrained structure through a
    smooth, domain-filling force field; mode ``j`` here is
    ``sin(j·π·x)`` over the dof index — deterministic, scenario-agnostic,
    and spectrally at the opposite end from the point-load family.
    """
    f = np.asarray(problem.f, dtype=float)
    n = f.shape[0]
    magnitude = float(np.max(np.abs(f))) or 1.0
    x = np.linspace(0.0, 1.0, n)
    return np.stack(
        [magnitude * np.sin(j * np.pi * x) for j in THERMAL_MODES], axis=1
    )


def _plate_service_block(problem) -> np.ndarray:
    """The plate's service envelope: pressure, shear, and two point loads.

    The shear column is properly *assembled* — the same edge traction
    machinery as the scenario's own load, turned 90° — so this family
    exercises genuinely distinct physics, not rescalings.
    """
    from repro.fem.plane_stress import assemble_plate

    require(
        getattr(problem, "mesh", None) is not None
        and getattr(problem, "material", None) is not None,
        "the plate-service workload needs a plate scenario (mesh + material)",
    )
    f_pressure = np.asarray(problem.f, dtype=float)
    _, f_shear = assemble_plate(
        problem.mesh, problem.material, traction_x=0.0, traction_y=1.0,
        element_scale=problem.element_scale,
    )
    n = f_pressure.shape[0]
    magnitude = float(np.max(np.abs(f_pressure))) or 1.0
    points = []
    for fraction in (0.35, 0.7):
        case = np.zeros(n)
        case[int(fraction * (n - 1))] = magnitude
        points.append(case)
    return np.stack([f_pressure, f_shear, *points], axis=1)


register_workload(
    "plate-service",
    "plate",
    _plate_service_block,
    "the plate's service envelope: edge pressure, assembled edge shear, "
    "and two concentrated point loads",
    ("edge pressure", "edge shear", "point @ 0.35n", "point @ 0.7n"),
)

register_workload(
    "pressure-family",
    "plate",
    _pressure_family_block,
    "the scenario's own load at service magnitudes "
    f"{PRESSURE_FACTORS} (linear sweep of one pressure case)",
    tuple(f"pressure ×{factor:g}" for factor in PRESSURE_FACTORS),
)

register_workload(
    "thermal-family",
    "plate",
    _thermal_family_block,
    "smooth thermal-gradient proxy loads (low sinusoidal modes over the "
    "dof field)",
    tuple(f"thermal mode {j}" for j in THERMAL_MODES),
)

register_workload(
    "point-family",
    "plate",
    _point_family_block,
    "concentrated unit loads swept across the structure "
    f"(fractions {POINT_FRACTIONS})",
    tuple(f"point @ {fraction:g}n" for fraction in POINT_FRACTIONS),
)
