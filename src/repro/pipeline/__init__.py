"""The plan → compile → execute pipeline.

* :mod:`repro.pipeline.problems` — :class:`ProblemSpec`, a registry of
  named scenarios (the paper's plate, stretched/irregular domains,
  anisotropic stencils, variable-coefficient plates, …);
* :mod:`repro.pipeline.plan` — :class:`SolverPlan`, the declarative
  schedule (m-cells, parametrization, ω, backend);
* :mod:`repro.pipeline.session` — :class:`SolverSession`, which compiles
  one plan against one problem (coloring, blocked system, spectrum, cached
  color-block kernels, machine layouts) and then executes many schedule
  cells and right-hand sides — including the batched lockstep CYBER pass
  that runs a whole Table-2 schedule through one simulator sweep.
"""

from repro.pipeline.plan import SolverPlan, cell_label
from repro.pipeline.problems import (
    ProblemSpec,
    WorkloadSpec,
    available_scenarios,
    available_workloads,
    build_scenario,
    build_workload,
    register_scenario,
    register_workload,
    scenario,
    synthetic_load_block,
    workload,
)
from repro.pipeline.session import BlockMStepSolve, SessionStats, SolverSession

__all__ = [
    "SolverPlan",
    "cell_label",
    "ProblemSpec",
    "WorkloadSpec",
    "available_scenarios",
    "available_workloads",
    "build_scenario",
    "build_workload",
    "register_scenario",
    "register_workload",
    "scenario",
    "synthetic_load_block",
    "workload",
    "BlockMStepSolve",
    "SessionStats",
    "SolverSession",
]
