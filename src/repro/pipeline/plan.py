"""Solver plans: the declarative half of the plan → compile → execute pipeline.

A :class:`SolverPlan` names *what* to run — the ``(m, parametrized)``
schedule cells, the parametrization criterion, ω, the stopping tolerance,
and which preconditioner realization/backend to use — without touching any
problem.  :class:`~repro.pipeline.session.SolverSession` compiles a plan
against one problem (coloring, blocked system, cached kernels) and then
executes it for many cells and many right-hand sides.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.driver import TABLE2_SCHEDULE, TABLE3_SCHEDULE
from repro.kernels.backend import STENCIL, resolve_solver_backend
from repro.util import require

__all__ = ["SolverPlan", "cell_label"]


def cell_label(m: int, parametrized: bool) -> str:
    """Table-2/3 row label of one schedule cell: ``0``, ``3``, ``3P``, …"""
    if m == 0:
        return "0"
    return f"{m}P" if parametrized else f"{m}"


@dataclass(frozen=True)
class SolverPlan:
    """An immutable solve schedule plus method configuration.

    Attributes
    ----------
    schedule:
        ``(m, parametrized)`` cells in execution order (a Table-2 row set,
        or a single cell for one-off solves).
    eps:
        ``‖Δu‖∞`` stopping tolerance.
    criterion, weight:
        Parametrization of the αᵢ (see
        :func:`repro.driver.mstep_coefficients`).
    omega:
        SSOR relaxation parameter for the splitting/interval.
    applicator:
        ``"sweep"`` (Conrad–Wallach merged sweeps) or ``"splitting"``
        (kernel-dispatched m-step Horner over the SSOR splitting).
    backend:
        Solver backend for the numerics (``None`` → process default,
        ``"vectorized"``, ``"reference"``, or ``"stencil"`` — the
        matrix-free operator path for the regular-mesh scenarios).
    maxiter:
        Outer-iteration cap (``None`` → solver default).
    block_rhs:
        The right-hand-side block width this plan is sized for — the
        ``k`` of the batched multi-RHS path
        (:meth:`~repro.pipeline.session.SolverSession.execute_block`).
        ``1`` is the classic one-vector-at-a-time numerics; larger values
        declare that executions will carry ``k`` simultaneous right-hand
        sides, which the width-aware (4.2) cost model uses to price the
        amortized preconditioner step when autotuning ``m``
        (:func:`repro.core.autotune.recommend_m` with ``width=k``).
        Executions may still pass blocks of any width; this is the
        *declared* width for planning, not a cap.
    """

    schedule: tuple[tuple[int, bool], ...]
    eps: float = 1e-6
    criterion: str = "least_squares"
    weight: str = "uniform"
    omega: float = 1.0
    applicator: str = "sweep"
    backend: str | None = None
    maxiter: int | None = None
    block_rhs: int = 1

    def __post_init__(self) -> None:
        schedule = tuple((int(m), bool(p)) for m, p in self.schedule)
        object.__setattr__(self, "schedule", schedule)
        require(len(schedule) >= 1, "a plan needs at least one schedule cell")
        require(all(m >= 0 for m, _ in schedule), "m must be non-negative")
        require(self.eps > 0, "eps must be positive")
        require(self.omega > 0, "omega must be positive")
        require(self.applicator in ("sweep", "splitting"),
                "applicator must be 'sweep' or 'splitting'")
        resolve_solver_backend(self.backend)  # raises listing valid choices
        require(
            not (self.backend == STENCIL and self.applicator == "splitting"),
            "the stencil backend runs the merged sweeps only; "
            "use applicator='sweep' (or the default)",
        )
        require(self.block_rhs >= 1, "block_rhs must be at least 1")

    # ------------------------------------------------------------- factories
    @classmethod
    def table2(cls, **overrides) -> "SolverPlan":
        """The 13-cell m-schedule of the paper's Table 2."""
        return cls(schedule=tuple(TABLE2_SCHEDULE), **overrides)

    @classmethod
    def table3(cls, **overrides) -> "SolverPlan":
        """The 10-cell m-schedule of the paper's Table 3."""
        return cls(schedule=tuple(TABLE3_SCHEDULE), **overrides)

    @classmethod
    def single(cls, m: int, parametrized: bool = False, **overrides) -> "SolverPlan":
        """A one-cell plan (one-off solves through the same pipeline)."""
        return cls(schedule=((m, parametrized),), **overrides)

    # ------------------------------------------------------------- inspection
    @property
    def needs_interval(self) -> bool:
        """Whether any cell requires the measured spectrum of P⁻¹K."""
        return any(p for m, p in self.schedule if m >= 1)

    @property
    def labels(self) -> tuple[str, ...]:
        return tuple(cell_label(m, p) for m, p in self.schedule)

    def with_(self, **overrides) -> "SolverPlan":
        """A copy with fields replaced (plans are immutable)."""
        return replace(self, **overrides)
