"""SolverSession: compile a plan once, execute many cells and right-hand sides.

The expensive, value-independent work of the m-step multicolor SSOR PCG
method — coloring the problem, permuting into the block system (3.1),
measuring the spectrum of ``P⁻¹K``, factorizing/caching the color-block
triangular kernels, laying out the machine simulators — depends only on the
problem and the plan, never on which schedule cell or right-hand side is
being solved.  Before this module every entry point re-derived some of it
per cell; a :class:`SolverSession` does each piece exactly once and then
serves:

* :meth:`solve_cell` / :meth:`execute` — driver-level solves (the engine
  behind :func:`repro.driver.solve_mstep_ssor`), any number of cells and
  right-hand sides against one compiled state;
* :meth:`solve_cell_block` / :meth:`execute_block` — the multi-RHS
  numerics: all ``k`` columns of an ``(n, k)`` right-hand-side block
  advance through **one** :func:`repro.core.pcg.block_pcg` lockstep per
  cell, batched through the compiled kernels, per-column bitwise
  identical to ``k`` separate solves (:meth:`execute_many` routes
  through this path);
* :meth:`cyber` / :meth:`run_cyber_schedule` — the CYBER 203/205
  simulator, including the batched lockstep pass that runs a whole
  Table-2 schedule through **one** simulator sweep
  (:meth:`repro.machines.cyber.CyberMachine.solve_schedule`);
* :meth:`fem` / :meth:`fem_solve` / :meth:`run_fem_schedule` — Finite
  Element Machine solves fed from the session's cached applicators,
  including the batched Table-3 lockstep pass
  (:meth:`repro.machines.fem_machine.FiniteElementMachine.solve_schedule`).

:attr:`stats` counts the compile-level artifacts (colorings, interval
measurements, applicator factorizations, machine layouts) so tests can
assert structurally that executing N cells × K right-hand sides performs
exactly one of each.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass

import numpy as np

from repro.core.convergence import StoppingRule
from repro.core.pcg import BlockPCGResult, block_pcg, pcg
from repro.driver import (
    MStepSolve,
    build_blocked_system,
    build_mstep_applicator,
    mstep_coefficients,
    ssor_interval,
)
from repro.fem.matrixfree import stencil_interval, stencil_operator
from repro.kernels.backend import STENCIL
from repro.kernels.stencil import StencilSSOR
from repro.machines import CYBER_203, CyberMachine, FiniteElementMachine
from repro.multicolor.blocked import BlockedMatrix
from repro.parallel import (
    ApplicatorRecipe,
    ShardSpec,
    column_groups,
    sharded_block_pcg,
    sharded_schedule,
    shard_token,
    warm_shard,
)
from repro.parallel import shm
from repro.parallel.executor import run_tasks
from repro.parallel.shards import CSRPayload, matrix_token, stencil_description
from repro.pipeline.plan import SolverPlan
from repro.pipeline.problems import build_scenario
from repro.util import require

__all__ = ["BlockMStepSolve", "SessionStats", "SolverSession"]


def _release_tokens(tokens: set) -> None:
    """Free a session's shared-memory publications (GC finalizer target).

    Module-level and handed only the token set so the
    :func:`weakref.finalize` registration holds no reference back to the
    session; :meth:`~repro.parallel.shm.SegmentRegistry.release` is
    pid-guarded, so a forked worker inheriting the set can never unlink
    the parent's segments.
    """
    try:
        reg = shm.registry()
        for token in tuple(tokens):
            reg.release(token)
    except Exception:  # pragma: no cover - interpreter-teardown ordering
        pass
    tokens.clear()


def _normalize_sharding(sharding) -> tuple[int, int | None]:
    """``sharding`` → ``(workers, group)``.

    Accepts ``None`` (serial), an int worker count, or a ``(workers,
    group)`` pair — ``group`` being the columns-per-shard override of
    :func:`repro.parallel.column_groups`.
    """
    if sharding is None:
        return 1, None
    if isinstance(sharding, int):
        return max(sharding, 1), None
    workers, group = sharding
    return max(int(workers), 1), (None if group is None else int(group))


@dataclass
class SessionStats:
    """Compile-artifact counters — the session's structural contract.

    ``colorings``/``intervals``/``applicator_builds``/``machine_builds``
    count the expensive once-per-session steps; ``solves`` counts the
    cheap per-execution work (one per right-hand side, so a ``k``-wide
    block solve adds ``k``) and ``block_solves`` the batched
    :func:`~repro.core.pcg.block_pcg` passes those columns rode in on.
    A correctly compiled session serving many cells and right-hand sides
    increments only ``solves``/``block_solves`` — one compile for any k.
    """

    colorings: int = 0
    intervals: int = 0
    coefficient_builds: int = 0
    applicator_builds: int = 0
    machine_builds: int = 0
    solves: int = 0
    block_solves: int = 0
    #: Column-group shards dispatched to the repro.parallel executor (a
    #: sharded block solve adds one per group; serial solves add none).
    shard_dispatches: int = 0
    #: Which operator representation the last solve ran on: ``"csr"``
    #: (the assembled, permuted block system) or ``"stencil"`` (the
    #: matrix-free path).  Not a compile count — surfaced by
    #: ``repro request --stats`` and the benchmarks.
    operator_backend: str = "csr"

    def compile_counts(self) -> dict[str, int]:
        return {
            "colorings": self.colorings,
            "intervals": self.intervals,
            "coefficient_builds": self.coefficient_builds,
            "applicator_builds": self.applicator_builds,
            "machine_builds": self.machine_builds,
        }


@dataclass
class BlockMStepSolve:
    """Full record of one m-step SSOR PCG **block** solve (``k`` RHS).

    The block analogue of :class:`repro.driver.MStepSolve`:
    :attr:`result` is the :class:`~repro.core.pcg.BlockPCGResult` of the
    lockstep pass and :attr:`u` holds the ``(n, k)`` iterates in natural
    ordering.  :meth:`column` materializes any column as a plain
    :class:`~repro.driver.MStepSolve`, bitwise identical to the record an
    independent single-RHS solve of that column would produce.
    """

    result: BlockPCGResult
    u: np.ndarray  # (n, k), natural ordering
    m: int
    parametrized: bool
    coefficients: np.ndarray | None
    interval: tuple[float, float] | None
    #: ``None`` for the matrix-free ``"stencil"`` backend (no permutation).
    blocked: BlockedMatrix | None

    @property
    def k(self) -> int:
        """Number of right-hand-side columns."""
        return self.result.k

    @property
    def iterations(self) -> np.ndarray:
        """Per-column completed-iteration counts."""
        return self.result.iterations

    @property
    def label(self) -> str:
        """Table-2/3 row label: ``0``, ``1``, …, or ``2P``, ``3P``, …"""
        if self.m == 0:
            return "0"
        return f"{self.m}P" if self.parametrized else f"{self.m}"

    def column(self, j: int) -> MStepSolve:
        """The j-th right-hand side's solve as a standalone record."""
        return MStepSolve(
            result=self.result.column(j),
            u=np.ascontiguousarray(self.u[:, j]),
            m=self.m,
            parametrized=self.parametrized,
            coefficients=self.coefficients,
            interval=self.interval,
            blocked=self.blocked,
        )


class SolverSession:
    """One problem + one plan, compiled once, executed many times."""

    def __init__(
        self,
        problem,
        plan: SolverPlan | None = None,
        blocked=None,
        interval: tuple[float, float] | None = None,
    ):
        self.problem = problem
        self.plan = plan if plan is not None else SolverPlan.single(0)
        self.stats = SessionStats()
        self._blocked = blocked
        self._interval = interval
        self._coefficients: dict = {}
        self._applicators: dict = {}
        self._stencil = None
        self._stencil_applicators: dict = {}
        self._machines: dict = {}
        self._compiled = False
        # Shared-memory operator tokens this session published; released
        # when the session is closed or garbage-collected (the registry's
        # atexit hook is only the backstop).
        self._shm_tokens: set[str] = set()
        self._shm_finalizer = weakref.finalize(
            self, _release_tokens, self._shm_tokens
        )

    @classmethod
    def from_scenario(
        cls, name: str, plan: SolverPlan | None = None, **params
    ) -> "SolverSession":
        """Build a session for a registered scenario (see
        :mod:`repro.pipeline.problems`)."""
        return cls(build_scenario(name, **params), plan=plan)

    # ------------------------------------------------------------ compiled state
    @property
    def blocked(self):
        """The multicolor blocked system — colored and permuted once."""
        if self._blocked is None:
            require(
                getattr(self.problem, "k", None) is not None,
                "matrix-free problem (assemble=False) has no blocked "
                "system; only the 'stencil' backend can serve it",
            )
            self._blocked = build_blocked_system(self.problem)
            self.stats.colorings += 1
        return self._blocked

    @property
    def interval(self) -> tuple[float, float]:
        """``[λ₁, λ_n]`` of ``P⁻¹K`` — measured once, reused everywhere.

        An assembled problem measures the exact spectrum on the blocked
        system even under the stencil backend (the operators are the same
        matrix, so coefficients match the CSR path exactly); a matrix-free
        problem (``k=None``) bounds it by deterministic power iteration
        on the stencil operator (:func:`repro.fem.stencil_interval`).
        """
        if self._interval is None:
            if getattr(self.problem, "k", None) is None:
                self._interval = stencil_interval(self.stencil())
            else:
                self._interval = ssor_interval(
                    self.blocked, omega=self.plan.omega
                )
            self.stats.intervals += 1
        return self._interval

    def stencil(self):
        """The problem's matrix-free operator — built once, cached.

        The stencil analogue of :attr:`blocked`: carries the coloring (the
        operator's ``groups``) without ever permuting or assembling, so
        building it counts as the session's coloring.
        """
        if self._stencil is None:
            self._stencil = stencil_operator(self.problem)
            self.stats.colorings += 1
        return self._stencil

    def coefficients(self, m: int, parametrized: bool) -> np.ndarray | None:
        """The cell's αᵢ under the plan's criterion (cached; None for m = 0)."""
        if m == 0:
            return None
        key = (m, parametrized)
        if key not in self._coefficients:
            interval = self.interval if parametrized else None
            self._coefficients[key] = mstep_coefficients(
                m, parametrized, interval, self.plan.criterion, self.plan.weight
            )
            self.stats.coefficient_builds += 1
        return self._coefficients[key]

    def applicator(
        self,
        m: int,
        parametrized: bool,
        applicator: str | None = None,
        backend: str | None = None,
    ):
        """The cell's compiled preconditioner realization (cached)."""
        if m == 0:
            return None
        applicator = applicator if applicator is not None else self.plan.applicator
        backend = backend if backend is not None else self.plan.backend
        key = (m, parametrized, applicator, backend)
        if key not in self._applicators:
            self._applicators[key] = build_mstep_applicator(
                self.blocked,
                self.coefficients(m, parametrized),
                applicator=applicator,
                backend=backend,
                omega=self.plan.omega,
            )
            self.stats.applicator_builds += 1
        return self._applicators[key]

    def stencil_applicator(self, m: int, parametrized: bool):
        """The cell's matrix-free m-step sweep preconditioner (cached).

        The stencil backend's counterpart of :meth:`applicator`: a
        :class:`~repro.kernels.StencilSSOR` running the Conrad–Wallach
        merged sweeps color-wise straight off the stencil — no factors,
        so "building" one is just binding coefficients to the operator.
        """
        if m == 0:
            return None
        key = (m, parametrized)
        if key not in self._stencil_applicators:
            self._stencil_applicators[key] = StencilSSOR(
                self.stencil(), self.coefficients(m, parametrized)
            )
            self.stats.applicator_builds += 1
        return self._stencil_applicators[key]

    def _shard_recipe(
        self,
        m: int,
        parametrized: bool,
        applicator: str | None = None,
        backend: str | None = None,
    ) -> ApplicatorRecipe:
        """The cell's applicator as a picklable rebuild recipe.

        Worker processes of the sharded block path reconstruct the exact
        realization the plan names — the merged multicolor sweep or the
        kernel-dispatched splitting — from this description plus the
        shard's CSR payload, through the same constructors
        :func:`repro.driver.build_mstep_applicator` uses.
        """
        if m == 0:
            return ApplicatorRecipe(kind="none")
        kind = applicator if applicator is not None else self.plan.applicator
        coefficients = self.coefficients(m, parametrized)
        if kind == "sweep":
            ordering = self.blocked.ordering
            return ApplicatorRecipe(
                kind="sweep",
                coefficients=coefficients,
                groups=np.sort(ordering.groups),
                labels=tuple(ordering.labels),
            )
        return ApplicatorRecipe(
            kind="splitting",
            coefficients=coefficients,
            omega=self.plan.omega,
            backend=backend if backend is not None else self.plan.backend,
        )

    def _stencil_shard_recipe(self, m: int, parametrized: bool) -> ApplicatorRecipe:
        """The matrix-free cell's applicator as a picklable rebuild recipe.

        Workers reconstruct :class:`~repro.kernels.stencil.StencilSSOR`
        around the operator they rebuilt from the shard's
        :class:`~repro.parallel.StencilDescription` — the same constructor
        the serial path uses, so iterates stay bitwise identical.
        """
        if m == 0:
            return ApplicatorRecipe(kind="none")
        return ApplicatorRecipe(
            kind="stencil", coefficients=self.coefficients(m, parametrized)
        )

    def compile(self) -> "SolverSession":
        """Force every plan artifact now (idempotent).

        Touches the blocked system, the interval (iff some cell is
        parametrized), and every cell's coefficients and applicator, so a
        compiled session's executes perform no factorization work at all.
        """
        if self._compiled:
            return self
        if self.plan.backend == STENCIL:
            _ = self.stencil()
            if self.plan.needs_interval:
                _ = self.interval
            for m, parametrized in self.plan.schedule:
                self.stencil_applicator(m, parametrized)
            self._compiled = True
            return self
        _ = self.blocked
        if self.plan.needs_interval:
            _ = self.interval
        for m, parametrized in self.plan.schedule:
            self.applicator(m, parametrized)
        self._compiled = True
        return self

    def prewarm_sharding(
        self,
        sharding,
        applicator: str | None = None,
        backend: str | None = None,
    ) -> int:
        """Pay the sharded path's one-time costs now, not on the first solve.

        Compiles the session, publishes the permuted operator's CSR
        arrays to the shared-memory registry (one copy, reused by every
        later dispatch against this session), starts the worker pool, and
        dispatches :func:`~repro.parallel.warm_shard` specs so each
        worker attaches the operator and factorizes every plan cell's
        applicator *before* the first timed solve.  On the stencil
        backend nothing rides shared memory for the operator — each warm
        spec carries the tiny :class:`~repro.parallel.StencilDescription`
        workers rebuild the matrix-free operator from.  Returns the number of
        warm dispatches issued; serial sharding (``None`` or one worker)
        is a no-op.

        Warm-started this way, a steady-state
        :meth:`solve_cell_block` dispatch ships only column indices and a
        recipe fingerprint — the zero-copy plan's whole point.
        """
        workers, _ = _normalize_sharding(sharding)
        if workers <= 1:
            return 0
        self.compile()
        stencil_backend = self.plan.backend == STENCIL
        if stencil_backend:
            require(
                applicator in (None, "sweep"),
                "the stencil backend runs the merged sweeps only",
            )
            k_mat = self.stencil()
        else:
            k_mat = self.blocked.permuted
        recipes = []
        seen: set[str] = set()
        for m, parametrized in self.plan.schedule:
            recipe = (
                self._stencil_shard_recipe(m, parametrized)
                if stencil_backend
                else self._shard_recipe(
                    m, parametrized, applicator=applicator, backend=backend
                )
            )
            token = shard_token(k_mat, recipe)
            if token not in seen:
                seen.add(token)
                recipes.append((token, recipe))
        if not recipes:
            return 0
        if stencil_backend:
            # The operator ships as its tiny diagonal description — no CSR
            # segments to publish; workers rebuild it bitwise on attach.
            handle = stencil_description(k_mat)
        elif shm.shm_enabled():
            reg = shm.registry()
            mtoken = matrix_token(k_mat)
            handle = reg.publish_operator(mtoken, k_mat)
            self._shm_tokens.add(mtoken)
        else:
            handle = CSRPayload.from_matrix(k_mat)
        empty = np.empty((0, 0))
        specs = [
            ShardSpec(
                token=token, matrix=handle, recipe=recipe,
                columns=np.arange(0), F=empty,
            )
            for token, recipe in recipes
            for _ in range(workers)  # one warm task per pool slot
        ]
        run_tasks(warm_shard, specs, workers)
        return len(specs)

    def calibrated_model(self, which: str = "fem"):
        """A :class:`~repro.analysis.models.PerformanceModel` calibrated on
        this problem's simulated machine layout.

        ``which`` names the machine the (4.1) quantities are charged on:
        ``"fem"`` (the Finite Element Machine, the default) or ``"cyber"``
        (the CYBER vector timing model).  Returns ``None`` when the
        problem has no plate mesh to lay a machine out on — callers fall
        back to a default B/A ratio.  The machine itself comes from the
        session's cache, so repeated calibrations build nothing.  Shared
        by the CLI's ``--m auto`` and the serving daemon's ``m = "auto"``
        resolution.
        """
        from repro.analysis import PerformanceModel
        from repro.fem.model_problems import PlateProblem

        problem = self.problem
        if not isinstance(problem, PlateProblem) or getattr(
            problem, "mesh", None
        ) is None:
            return None
        if problem.k is None:
            # Matrix-free problem: no assembled system to lay a machine
            # out on — callers fall back to the default B/A ratio.
            return None
        if which == "cyber":
            return PerformanceModel.from_cyber_machine(self.cyber())
        return PerformanceModel.from_fem_machine(self.fem(1))

    def close(self) -> None:
        """Release this session's shared-memory publications (idempotent).

        Also runs automatically when the session is garbage-collected;
        worker pools and any segments published outside a session are
        torn down by :func:`repro.parallel.shutdown_pools` instead.
        """
        self._shm_finalizer()

    # ----------------------------------------------------------------- execution
    def solve_cell(
        self,
        m: int,
        parametrized: bool = False,
        f: np.ndarray | None = None,
        eps: float | None = None,
        stopping: StoppingRule | None = None,
        maxiter: int | None = None,
        track_residual: bool = False,
        applicator: str | None = None,
        backend: str | None = None,
    ) -> MStepSolve:
        """One cell against the compiled state, for any right-hand side.

        Numerically identical to :func:`repro.driver.solve_mstep_ssor` —
        which since this refactor *is* a one-cell session — but coloring,
        interval, coefficients and the preconditioner factorization come
        from the session caches.
        """
        require(m >= 0, "m must be non-negative")
        backend_name = backend if backend is not None else self.plan.backend
        if backend_name == STENCIL:
            return self._solve_cell_stencil(
                m, parametrized, f=f, eps=eps, stopping=stopping,
                maxiter=maxiter, track_residual=track_residual,
                applicator=applicator,
            )
        blocked = self.blocked
        ordering = blocked.ordering
        f = self.problem.f if f is None else f
        f_mc = ordering.permute_vector(np.asarray(f, dtype=float))

        interval = self._interval
        coefficients = None
        preconditioner = None
        if m >= 1:
            if parametrized:
                interval = self.interval
            coefficients = self.coefficients(m, parametrized)
            preconditioner = self.applicator(
                m, parametrized, applicator=applicator, backend=backend
            )

        result = pcg(
            blocked.permuted,
            f_mc,
            preconditioner=preconditioner,
            eps=eps if eps is not None else self.plan.eps,
            stopping=stopping,
            maxiter=maxiter if maxiter is not None else self.plan.maxiter,
            track_residual=track_residual,
        )
        self.stats.solves += 1
        self.stats.operator_backend = "csr"
        return MStepSolve(
            result=result,
            u=ordering.unpermute_vector(result.u),
            m=m,
            parametrized=parametrized,
            coefficients=coefficients,
            interval=interval,
            blocked=blocked,
        )

    def _solve_cell_stencil(
        self,
        m: int,
        parametrized: bool = False,
        f: np.ndarray | None = None,
        eps: float | None = None,
        stopping: StoppingRule | None = None,
        maxiter: int | None = None,
        track_residual: bool = False,
        applicator: str | None = None,
    ) -> MStepSolve:
        """:meth:`solve_cell` on the matrix-free path (natural ordering).

        The stencil backend never permutes: PCG runs on the operator in
        natural ordering (K is the same matrix, so the iteration is the
        similarity-transformed twin of the permuted CSR run — iterates
        map through the permutation, iteration counts agree exactly).
        """
        require(
            applicator in (None, "sweep"),
            "the stencil backend runs the merged sweeps only",
        )
        operator = self.stencil()
        f = self.problem.f if f is None else f
        f = np.asarray(f, dtype=float)

        interval = self._interval
        coefficients = None
        preconditioner = None
        if m >= 1:
            if parametrized:
                interval = self.interval
            coefficients = self.coefficients(m, parametrized)
            preconditioner = self.stencil_applicator(m, parametrized)

        result = pcg(
            operator,
            f,
            preconditioner=preconditioner,
            eps=eps if eps is not None else self.plan.eps,
            stopping=stopping,
            maxiter=maxiter if maxiter is not None else self.plan.maxiter,
            track_residual=track_residual,
        )
        self.stats.solves += 1
        self.stats.operator_backend = STENCIL
        return MStepSolve(
            result=result,
            u=result.u,
            m=m,
            parametrized=parametrized,
            coefficients=coefficients,
            interval=interval,
            blocked=None,
        )

    def solve_cell_block(
        self,
        m: int,
        parametrized: bool = False,
        F: np.ndarray | None = None,
        eps: float | None = None,
        stopping: StoppingRule | None = None,
        maxiter: int | None = None,
        track_residual: bool = False,
        applicator: str | None = None,
        backend: str | None = None,
        sharding=None,
    ) -> BlockMStepSolve:
        """One cell against an ``(n, k)`` block of right-hand sides.

        The multi-RHS analogue of :meth:`solve_cell`: all ``k`` columns
        advance through one :func:`~repro.core.pcg.block_pcg` lockstep
        against the compiled caches — one batched matrix product and one
        batched preconditioner application per outer iteration, columns
        retiring individually as they converge.  Per-column iterates,
        iteration counts and counters are bitwise identical to ``k``
        separate :meth:`solve_cell` calls (the acceptance contract of the
        block path, pinned in the tests).

        ``F`` may be any memory order (Fortran-ordered or strided blocks
        are handled); ``None`` solves the problem's own load as a
        single-column block.

        ``sharding`` — ``workers`` or ``(workers, group)`` — fans the
        block's column groups across worker processes
        (:func:`repro.parallel.sharded_block_pcg`).  Workers rebuild the
        cell's applicator from a picklable recipe derived from the
        compiled plan (never from a pickled live applicator), so every
        column stays bitwise identical to the serial path for any
        worker/group partition.  ``None`` (or 1 worker, or ``k ≤ 1``)
        is exactly the serial lockstep.
        """
        require(m >= 0, "m must be non-negative")
        backend_name = backend if backend is not None else self.plan.backend
        if backend_name == STENCIL:
            return self._solve_cell_block_stencil(
                m, parametrized, F=F, eps=eps, stopping=stopping,
                maxiter=maxiter, track_residual=track_residual,
                applicator=applicator, sharding=sharding,
            )
        blocked = self.blocked
        ordering = blocked.ordering
        if F is None:
            F = np.asarray(self.problem.f, dtype=float)[:, None]
        F = np.asarray(F, dtype=float)
        if F.ndim == 1:
            F = F[:, None]
        require(F.ndim == 2, "F must be an (n, k) block of right-hand sides")
        f_mc = np.ascontiguousarray(ordering.permute_vector(F))

        interval = self._interval
        coefficients = None
        if m >= 1:
            if parametrized:
                interval = self.interval
            coefficients = self.coefficients(m, parametrized)

        workers, group = _normalize_sharding(sharding)
        groups = (
            column_groups(f_mc.shape[1], workers, group) if workers > 1 else []
        )
        sharded = len(groups) > 1
        eps_value = eps if eps is not None else self.plan.eps
        maxiter_value = maxiter if maxiter is not None else self.plan.maxiter
        if sharded:
            # Workers rebuild the applicator from the recipe; the parent
            # never factorizes (or pickles) a live one on this path.
            recipe = self._shard_recipe(
                m, parametrized, applicator=applicator, backend=backend
            )
            result = sharded_block_pcg(
                blocked.permuted,
                f_mc,
                recipe=recipe,
                workers=workers,
                group=group,
                eps=eps_value,
                stopping=stopping,
                maxiter=maxiter_value,
                track_residual=track_residual,
            )
            self.stats.shard_dispatches += len(groups)
            if shm.shm_enabled():
                # The dispatch published segments under the operator's
                # token; tie their lifetime to this session.
                self._shm_tokens.add(matrix_token(blocked.permuted))
        else:
            preconditioner = (
                self.applicator(
                    m, parametrized, applicator=applicator, backend=backend
                )
                if m >= 1
                else None
            )
            result = block_pcg(
                blocked.permuted,
                f_mc,
                preconditioner=preconditioner,
                eps=eps_value,
                stopping=stopping,
                maxiter=maxiter_value,
                track_residual=track_residual,
            )
        self.stats.solves += result.k
        self.stats.block_solves += 1
        self.stats.operator_backend = "csr"
        return BlockMStepSolve(
            result=result,
            u=ordering.unpermute_vector(result.u),
            m=m,
            parametrized=parametrized,
            coefficients=coefficients,
            interval=interval,
            blocked=blocked,
        )

    def _solve_cell_block_stencil(
        self,
        m: int,
        parametrized: bool = False,
        F: np.ndarray | None = None,
        eps: float | None = None,
        stopping: StoppingRule | None = None,
        maxiter: int | None = None,
        track_residual: bool = False,
        applicator: str | None = None,
        sharding=None,
    ) -> BlockMStepSolve:
        """:meth:`solve_cell_block` on the matrix-free path.

        Sharding works exactly as on the assembled path, except the
        operator ships as its :class:`~repro.parallel.StencilDescription`
        (workers rebuild the matrix-free operator bitwise from the tiny
        diagonal description) while the right-hand-side and output blocks
        still ride shared memory when enabled.
        """
        require(
            applicator in (None, "sweep"),
            "the stencil backend runs the merged sweeps only",
        )
        operator = self.stencil()
        if F is None:
            F = np.asarray(self.problem.f, dtype=float)[:, None]
        F = np.asarray(F, dtype=float)
        if F.ndim == 1:
            F = F[:, None]
        require(F.ndim == 2, "F must be an (n, k) block of right-hand sides")
        F = np.ascontiguousarray(F)

        interval = self._interval
        coefficients = None
        if m >= 1:
            if parametrized:
                interval = self.interval
            coefficients = self.coefficients(m, parametrized)

        workers, group = _normalize_sharding(sharding)
        groups = (
            column_groups(F.shape[1], workers, group) if workers > 1 else []
        )
        eps_value = eps if eps is not None else self.plan.eps
        maxiter_value = maxiter if maxiter is not None else self.plan.maxiter
        if len(groups) > 1:
            recipe = self._stencil_shard_recipe(m, parametrized)
            result = sharded_block_pcg(
                operator,
                F,
                recipe=recipe,
                workers=workers,
                group=group,
                eps=eps_value,
                stopping=stopping,
                maxiter=maxiter_value,
                track_residual=track_residual,
            )
            self.stats.shard_dispatches += len(groups)
            if shm.shm_enabled():
                # RHS/output blocks were published under the operator's
                # token; tie their lifetime to this session.
                self._shm_tokens.add(matrix_token(operator))
        else:
            preconditioner = (
                self.stencil_applicator(m, parametrized) if m >= 1 else None
            )
            result = block_pcg(
                operator,
                F,
                preconditioner=preconditioner,
                eps=eps_value,
                stopping=stopping,
                maxiter=maxiter_value,
                track_residual=track_residual,
            )
        self.stats.solves += result.k
        self.stats.block_solves += 1
        self.stats.operator_backend = STENCIL
        return BlockMStepSolve(
            result=result,
            u=result.u,
            m=m,
            parametrized=parametrized,
            coefficients=coefficients,
            interval=interval,
            blocked=None,
        )

    def execute(self, f: np.ndarray | None = None) -> list[MStepSolve]:
        """Every plan cell in order against one right-hand side."""
        self.compile()
        return [
            self.solve_cell(m, parametrized, f=f)
            for m, parametrized in self.plan.schedule
        ]

    def execute_block(
        self, F: np.ndarray | None = None, sharding=None
    ) -> list[BlockMStepSolve]:
        """Every plan cell in order against an ``(n, k)`` block of RHS.

        One compile serves any ``k``: the session's coloring, interval,
        coefficients and factorized applicators are built exactly once
        regardless of the block width (``stats.compile_counts()`` is the
        structural witness; the tests assert it).  ``sharding`` —
        ``workers`` or ``(workers, group)`` — fans every cell's column
        groups across worker processes, bitwise identical to the serial
        path (see :meth:`solve_cell_block`).
        """
        self.compile()
        return [
            self.solve_cell_block(m, parametrized, F=F, sharding=sharding)
            for m, parametrized in self.plan.schedule
        ]

    def execute_many(self, rhs_list) -> list[list[MStepSolve]]:
        """Every plan cell for every right-hand side (one compile serves all).

        Since the block-PCG refactor the right-hand sides are stacked into
        one ``(n, k)`` block and each cell runs a single
        :func:`~repro.core.pcg.block_pcg` lockstep over all of them; the
        returned per-RHS records are bitwise identical to the former
        solve-at-a-time path (block-PCG's per-column contract).
        """
        rhs = [np.asarray(f, dtype=float) for f in rhs_list]
        if not rhs:
            self.compile()
            return []
        block_solves = self.execute_block(np.stack(rhs, axis=1))
        return [
            [cell.column(j) for cell in block_solves]
            for j in range(len(rhs))
        ]

    # ------------------------------------------------------------------ machines
    def schedule_cells(self) -> list[tuple[int, np.ndarray | None]]:
        """The plan's cells as ``(m, coefficients)`` pairs for the machines."""
        return [
            (m, self.coefficients(m, parametrized))
            for m, parametrized in self.plan.schedule
        ]

    def cyber(self, timing=None) -> CyberMachine:
        """The CYBER simulator for this problem (laid out once, cached)."""
        timing = timing if timing is not None else CYBER_203
        key = ("cyber", timing)
        if key not in self._machines:
            self._machines[key] = CyberMachine(self.problem, timing)
            self.stats.machine_builds += 1
        return self._machines[key]

    def run_cyber_schedule(
        self,
        batched: bool = True,
        eps: float | None = None,
        maxiter: int | None = None,
        timing=None,
        workers: int = 1,
        group: int | None = None,
    ):
        """The plan's full schedule on the CYBER simulator.

        ``batched=True`` (default) runs every cell through **one** lockstep
        simulator pass — the batched ``(n, k)`` merged-sweep kernels with
        per-cell charge replay of
        :meth:`~repro.machines.cyber.CyberMachine.solve_schedule`, bitwise
        identical to the per-column path in iteration counts, clocks, op
        ledgers and iterates.  ``batched=False`` (or a ``"reference"``
        plan backend) keeps the cell-at-a-time pass for pinning.

        ``workers > 1`` fans the schedule's cells across worker processes
        (:func:`repro.parallel.sharded_schedule`): each worker lays out
        its own machine from the pickled problem and runs its cell chunk
        through ``solve_schedule``, whose partition-invariant per-cell
        contract keeps every record bitwise identical to the
        single-process pass.  ``group`` bounds the cells per lockstep
        pass — the ``(workers, group)`` 2-D shard grid of
        :func:`repro.parallel.sharded_schedule`.
        """
        require(
            self.plan.backend != STENCIL,
            "the machine simulators replay the assembled multicolor "
            "system; the stencil backend has no machine path",
        )
        cells = self.schedule_cells()
        eps = eps if eps is not None else self.plan.eps
        if batched and self.plan.backend != "reference":
            if workers > 1 or group is not None:
                return sharded_schedule(
                    self.problem, cells, machine="cyber", workers=workers,
                    group=group, eps=eps, maxiter=maxiter, timing=timing,
                )
            return self.cyber(timing).solve_schedule(
                cells, eps=eps, maxiter=maxiter
            )
        machine = self.cyber(timing)
        return [
            machine.solve(
                m, coeffs, eps=eps, maxiter=maxiter, backend=self.plan.backend
            )
            for m, coeffs in cells
        ]

    def run_fem_schedule(
        self,
        n_procs: int = 1,
        batched: bool = True,
        eps: float | None = None,
        maxiter: int | None = None,
        workers: int = 1,
        group: int | None = None,
        **kwargs,
    ):
        """The plan's full schedule on the Finite Element Machine.

        ``batched=True`` (default) runs every cell through **one**
        lockstep simulator pass — the FEM analogue of
        :meth:`run_cyber_schedule`, batching the active cells' direction
        vectors and residuals into ``(n, k)`` blocks
        (:meth:`~repro.machines.fem_machine.FiniteElementMachine.solve_schedule`)
        — bitwise identical to the per-cell path in iteration counts,
        charged clocks, communication ledgers and iterates.
        ``batched=False`` (or a ``"reference"`` plan backend) keeps the
        cell-at-a-time pass for pinning.

        Both passes use the FEM solve path's ``"splitting"`` applicator
        realization regardless of the plan's ``applicator`` (as
        :meth:`fem_solve` does — it is the machine's native path, and
        all realizations apply the same operator); the batched pass's
        factorized splitting is cached on the machine, which the session
        itself caches, so repeated schedule runs rebuild nothing.

        ``workers > 1`` fans the cells across worker processes — the FEM
        analogue of :meth:`run_cyber_schedule`'s sharded pass, every
        per-cell record (iterations, charged clocks, communication
        ledgers, iterates) bitwise identical to the single-process
        schedule by the partition-invariance of ``solve_schedule``;
        ``group`` bounds the cells per lockstep pass (the 2-D grid).
        """
        require(
            self.plan.backend != STENCIL,
            "the machine simulators replay the assembled multicolor "
            "system; the stencil backend has no machine path",
        )
        cells = self.schedule_cells()
        eps = eps if eps is not None else self.plan.eps
        if (
            (workers > 1 or group is not None)
            and batched
            and self.plan.backend != "reference"
        ):
            return sharded_schedule(
                self.problem, cells, machine="fem", workers=workers,
                group=group, eps=eps, maxiter=maxiter, n_procs=n_procs,
                backend=self.plan.backend,
                timing=kwargs.get("timing"),
                reduction=kwargs.get("reduction", "software"),
            )
        machine = self.fem(n_procs, **kwargs)
        if batched and self.plan.backend != "reference":
            return machine.solve_schedule(
                cells, eps=eps, maxiter=maxiter, backend=self.plan.backend
            )
        return [
            machine.solve(
                m, coeffs, eps=eps, maxiter=maxiter, backend=self.plan.backend
            )
            for m, coeffs in cells
        ]

    def fem(self, n_procs: int = 1, **kwargs) -> FiniteElementMachine:
        """A Finite Element Machine sharing the session's blocked system."""
        key = ("fem", n_procs, tuple(sorted(kwargs.items())))
        if key not in self._machines:
            self._machines[key] = FiniteElementMachine(
                self.problem, n_procs, blocked=self.blocked, **kwargs
            )
            self.stats.machine_builds += 1
        return self._machines[key]

    def fem_solve(
        self,
        m: int,
        parametrized: bool = False,
        n_procs: int = 1,
        eps: float | None = None,
        **kwargs,
    ):
        """One FEM-simulator cell using the session's cached applicator.

        The machine's own per-solve applicator construction is skipped —
        the compiled ``"splitting"`` applicator (the FEM solve path's
        default realization) is handed straight in.
        """
        machine = self.fem(n_procs, **kwargs)
        preconditioner = (
            self.applicator(m, parametrized, applicator="splitting")
            if m >= 1
            else None
        )
        self.stats.solves += 1
        return machine.solve(
            m,
            self.coefficients(m, parametrized),
            eps=eps if eps is not None else self.plan.eps,
            preconditioner=preconditioner,
        )
