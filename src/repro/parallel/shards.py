"""Picklable work units for the sharded block-PCG path.

Worker dispatch never pickles live solver objects — compiled applicators
hold factorized kernels, workspace pools and lifetime counters that are
both expensive and wrong to ship.  Instead a :class:`ShardSpec` carries a
lightweight *handle* to the (already multicolor-permuted) operator plus an
:class:`ApplicatorRecipe` — the same ``(kind, coefficients, ω, backend)``
description a compiled :class:`~repro.pipeline.SolverPlan` holds — and the
worker rebuilds the applicator through the exact constructors the serial
path uses (:class:`~repro.multicolor.sor.MStepSSOR` or
:class:`~repro.core.mstep.MStepPreconditioner`).  Because the rebuild runs
the identical code on the identical matrix data, every shard's
:func:`~repro.core.pcg.block_pcg` lockstep is per-column bitwise identical
to the single-process solve.

The handle is normally a :class:`~repro.parallel.shm.CSRHandle` — segment
names + dtypes/shapes/offsets into :mod:`multiprocessing.shared_memory`,
from which the worker rebuilds **zero-copy read-only views** of the very
bytes the parent published (see :mod:`repro.parallel.shm`); the
right-hand-side block and the output block travel the same way, so the
steady-state dispatch ships only column indices and the recipe.  A
:class:`CSRPayload` (the flat pickled arrays) remains as the
``REPRO_NO_SHM`` fallback — same numerics, heavier pipe.

Workers cache their compiled state by the spec's ``token`` (one entry per
operator/recipe pair) with least-recently-used eviction, so repeated
solves against the same compiled session — the steady state of every
benchmark and service loop — pay neither transfer nor refactorization,
and a burst of one-off tokens can never evict a hot session's entry.
"""

from __future__ import annotations

import uuid
from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.parallel import shm
from repro.util import OperationCounter, require

__all__ = [
    "CSRPayload",
    "StencilDescription",
    "stencil_description",
    "ApplicatorRecipe",
    "ShardSpec",
    "ShardResult",
    "run_shard",
    "warm_shard",
    "shard_token",
]


@dataclass(frozen=True)
class CSRPayload:
    """A scipy CSR matrix flattened to plain arrays (cheap, always picklable)."""

    data: np.ndarray
    indices: np.ndarray
    indptr: np.ndarray
    shape: tuple[int, int]

    @classmethod
    def from_matrix(cls, k) -> "CSRPayload":
        k = k.tocsr()
        return cls(
            data=k.data, indices=k.indices, indptr=k.indptr,
            shape=(int(k.shape[0]), int(k.shape[1])),
        )

    def to_matrix(self) -> sp.csr_matrix:
        return sp.csr_matrix(
            (self.data, self.indices, self.indptr), shape=self.shape
        )


@dataclass(frozen=True)
class StencilDescription:
    """A :class:`~repro.kernels.stencil.StencilOperator` compressed to its
    diagonal description — the stencil path's shard handle.

    A regular-mesh diagonal is periodic with a tiny period almost
    everywhere — one constant on a scalar grid, an alternating pair on a
    dof-interleaved plate — so instead of shm segments (or megabytes of
    CSR) the dispatch ships, per diagonal, the dominant pattern (period
    1, 2 or 4 over the absolute row index) plus the few exception rows
    where the stored value deviates — or the dense diagonal itself, when
    coordinate ulps scatter the entries beyond any short period — and
    the color-group map packed to one byte per unknown.  :meth:`to_operator` rebuilds a **bitwise
    equal** operator worker-side (tile the pattern + exception scatter,
    then the constructor's own out-of-range zeroing), so the
    serial/sharded bitwise contract carries over to the matrix-free path
    with no CSR payloads at all.
    """

    offsets: tuple[int, ...]
    n: int
    patterns: tuple[np.ndarray, ...]  # per diagonal: dominant periodic values
    exc_idx: tuple[np.ndarray, ...]  # per diagonal: deviating rows (in-window)
    exc_vals: tuple[np.ndarray, ...]
    groups: np.ndarray  # (n,) packed color map
    labels: tuple[str, ...]

    def to_operator(self):
        """Rebuild the operator; values are bitwise the originals."""
        from repro.kernels.stencil import StencilOperator

        values = np.empty((len(self.offsets), self.n))
        for d, (pat, idx, vals) in enumerate(
            zip(self.patterns, self.exc_idx, self.exc_vals)
        ):
            if pat.size == 0:  # dense diagonal: vals is the full row
                values[d] = vals
                continue
            if pat.size == 1:
                values[d].fill(pat[0])
            else:
                reps = -(-self.n // pat.size)
                values[d] = np.tile(pat, reps)[: self.n]
            values[d][idx] = vals
        return StencilOperator(
            offsets=self.offsets,
            values=values,
            groups=self.groups.astype(np.int64),
            group_labels=self.labels,
            copy=False,
        )


def _dominant_pattern(v: np.ndarray, s: int, e: int):
    """The periodic pattern covering most of ``v[s:e]``, plus exceptions.

    Tries periods 1, 2 and 4 over the *absolute* row index (so the
    rebuild tiles from row 0) and keeps the shortest one whose exception
    list stops shrinking substantially — a scalar grid compresses to one
    constant, a 2-dof plate diagonal to its alternating pair.
    """
    window = v[s:e]
    best = (np.zeros(1), s + np.flatnonzero(window != 0.0))
    best_count = best[1].size + 1
    for p in (1, 2, 4):
        if window.size < 2 * p:
            break
        pattern = np.empty(p)
        for r in range(p):
            cls = window[(r - s) % p :: p]
            uniq, counts = np.unique(cls, return_counts=True)
            pattern[r] = uniq[np.argmax(counts)] if uniq.size else 0.0
        idx = s + np.flatnonzero(window != np.tile(pattern, -(-e // p))[s:e])
        if idx.size < best_count // 2:  # doubling the period must pay
            best, best_count = (pattern, idx), idx.size
    pattern, idx = best
    if idx.size * 3 > window.size * 2:
        # Ulp-scattered diagonal (mesh-coordinate ulps propagate into the
        # entries): exceptions would cost more than the row itself — ship
        # the diagonal dense.  Marked by an empty pattern.
        return np.zeros(0), np.zeros(0, dtype=np.int64), v.copy()
    return pattern, idx, v[idx].copy()


def stencil_description(op) -> StencilDescription:
    """Compress ``op`` to its picklable handle (cached on the operator).

    Exceptions are collected over each diagonal's in-window rows only;
    out-of-window rows rebuild as the pattern and are re-zeroed by the
    ``StencilOperator`` constructor, exactly as the original was.
    """
    cached = getattr(op, "_repro_shard_description", None)
    if cached is not None:
        return cached
    n = op.n
    patterns, exc_idx, exc_vals = [], [], []
    for o, v in zip(op.offsets, op.values):
        s = -o if o < 0 else 0
        e = n - o if o > 0 else n
        pattern, idx, vals = _dominant_pattern(v, s, e)
        patterns.append(pattern)
        exc_idx.append(idx.astype(np.int32) if n < 2**31 else idx)
        exc_vals.append(vals)
    packed = (
        op.groups.astype(np.int8) if op.n_groups <= 127 else op.groups
    )
    desc = StencilDescription(
        offsets=tuple(op.offsets),
        n=n,
        patterns=tuple(patterns),
        exc_idx=tuple(exc_idx),
        exc_vals=tuple(exc_vals),
        groups=packed,
        labels=tuple(op.group_labels),
    )
    try:
        op._repro_shard_description = desc
    except AttributeError:
        pass
    return desc


@dataclass(frozen=True)
class ApplicatorRecipe:
    """How to rebuild a preconditioner from the shard's operator.

    ``kind``
        ``"none"`` (plain CG), ``"sweep"`` (Conrad–Wallach merged
        multicolor sweep — needs the ``groups`` map and ``labels`` to
        reconstruct the :class:`~repro.multicolor.blocked.BlockedMatrix`
        view), ``"splitting"`` (kernel-dispatched m-step Horner over
        the SSOR splitting), or ``"stencil"`` (the matrix-free
        :class:`~repro.kernels.stencil.StencilSSOR` sweep, straight off
        the worker-side rebuilt :class:`StencilDescription` operator —
        its color groups ride on the operator itself).
    ``groups``
        Color group of every row of the *permuted* operator (i.e. already
        sorted), so the rebuilt ordering is the identity permutation and
        the worker's block view extracts byte-identical sub-blocks.
    """

    kind: str = "none"
    coefficients: np.ndarray | None = None
    omega: float = 1.0
    backend: str | None = None
    groups: np.ndarray | None = None
    labels: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        require(self.kind in ("none", "sweep", "splitting", "stencil"),
                "recipe kind must be 'none', 'sweep', 'splitting' or 'stencil'")
        if self.kind != "none":
            require(self.coefficients is not None,
                    f"a {self.kind!r} recipe needs its coefficient schedule")
        if self.kind == "sweep":
            require(self.groups is not None,
                    "a 'sweep' recipe needs the permuted color-group map")

    def build(self, k):
        """The applicator the serial path would use, rebuilt in-process."""
        if self.kind == "none":
            return None
        coefficients = np.asarray(self.coefficients, dtype=float)
        if self.kind == "stencil":
            from repro.kernels.stencil import StencilSSOR

            return StencilSSOR(k, coefficients)
        if self.kind == "splitting":
            from repro.core.mstep import MStepPreconditioner
            from repro.core.splittings import SSORSplitting

            return MStepPreconditioner(
                SSORSplitting(k, omega=self.omega, backend=self.backend),
                coefficients,
            )
        from repro.multicolor.blocked import BlockedMatrix
        from repro.multicolor.ordering import MulticolorOrdering
        from repro.multicolor.sor import MStepSSOR

        ordering = MulticolorOrdering.from_groups(self.groups, self.labels)
        blocked = BlockedMatrix.from_matrix(k, ordering, validate=False)
        return MStepSSOR(blocked, coefficients)

    def fingerprint(self) -> str:
        """Content hash used in worker compile-cache tokens."""
        parts = [self.kind, f"{self.omega!r}", f"{self.backend!r}"]
        if self.coefficients is not None:
            parts.append(np.asarray(self.coefficients, dtype=float).tobytes().hex())
        if self.groups is not None:
            parts.append(np.asarray(self.groups).tobytes().hex()[:64])
        return "|".join(parts)


@dataclass(frozen=True)
class ShardSpec:
    """One column group's solve, self-contained and picklable.

    On the zero-copy path ``matrix`` is a
    :class:`~repro.parallel.shm.CSRHandle` and ``F``/``u0``/``out`` are
    :class:`~repro.parallel.shm.ArrayView` handles over the *full*
    ``(n, k)`` blocks — the worker slices its own contiguous column range
    out of the mapped segment without copying, and writes its iterate
    columns into ``out`` so nothing wide is pickled in either direction.
    On the pickled fallback ``matrix`` is a :class:`CSRPayload`, ``F`` the
    ``(n, g)`` slice itself, and ``out`` is ``None`` (the iterates ride
    back in :attr:`ShardResult.u`).
    """

    token: str  # worker compile-cache key (operator + recipe)
    matrix: object  # CSRHandle (zero-copy) or CSRPayload (pickled fallback)
    recipe: ApplicatorRecipe
    columns: np.ndarray  # global column indices of this group
    F: object  # ArrayView over the full block, or the (n, g) slice itself
    u0: object | None = None  # ArrayView, (n, g)/(n,) ndarray, or None
    out: object | None = None  # ArrayView of the shared (n, k) output block
    eps: float = 1e-6
    maxiter: int | None = None
    track_residual: bool = False
    stopping: object | None = None  # a picklable StoppingRule, or None


@dataclass
class ShardResult:
    """One shard's :class:`~repro.core.pcg.BlockPCGResult`, flattened.

    ``u`` is ``None`` when the iterates went back through the spec's
    shared output block instead of the pipe.
    """

    columns: np.ndarray
    u: np.ndarray | None
    iterations: np.ndarray
    converged: np.ndarray
    delta_histories: list[list[float]]
    residual_histories: list[list[float]]
    counters: list[OperationCounter] = field(default_factory=list)
    stop_rule: str = ""


# Per-worker-process compiled state: token → (csr matrix, applicator),
# least-recently-used first.  Bounded by _COMPILED_CAP with oldest-entry
# eviction — a hot token is refreshed on every hit, so no burst of one-off
# tokens can evict a live session's compiled state (the old clear()-on-65
# behavior nuked the whole cache, steady-state entries included).
_COMPILED: dict[str, tuple] = {}
_COMPILED_CAP = 64


def matrix_token(k) -> str:
    """A stable per-object token for ``k`` (new object → new token).

    Stashed on the matrix itself so every dispatch against one compiled
    operator reuses the workers' compile caches; objects that refuse
    attributes simply get a fresh token (correct, merely uncached).
    """
    token = getattr(k, "_repro_shard_token", None)
    if token is None:
        token = uuid.uuid4().hex
        try:
            k._repro_shard_token = token
        except AttributeError:
            try:  # frozen dataclasses (model problems) still carry a __dict__
                object.__setattr__(k, "_repro_shard_token", token)
            except AttributeError:
                pass
    return token


def shard_token(k, recipe: ApplicatorRecipe) -> str:
    """The worker compile-cache key for one (operator, recipe) pair."""
    return f"{matrix_token(k)}:{recipe.fingerprint()}"


def compiled_shard_state(spec: ShardSpec):
    """The shard's (operator, applicator), rebuilt once per worker process."""
    state = _COMPILED.get(spec.token)
    if state is not None:
        _COMPILED[spec.token] = _COMPILED.pop(spec.token)  # refresh LRU
        return state
    if isinstance(spec.matrix, CSRPayload):
        k = spec.matrix.to_matrix()
    elif isinstance(spec.matrix, StencilDescription):
        k = spec.matrix.to_operator()  # bitwise rebuild, no shm segments
    else:  # CSRHandle → zero-copy read-only views over the mapped segment
        k = shm.attach_csr(spec.matrix)
    state = (k, spec.recipe.build(k))
    while len(_COMPILED) >= _COMPILED_CAP:  # evict oldest, never everything
        _COMPILED.pop(next(iter(_COMPILED)))
    _COMPILED[spec.token] = state
    return state


def _column_range(block: np.ndarray, columns: np.ndarray) -> np.ndarray:
    """``block[:, columns]`` as a zero-copy slice when columns are a range."""
    columns = np.asarray(columns)
    lo, hi = int(columns[0]), int(columns[-1]) + 1
    if hi - lo == columns.size:  # contiguous (what column_groups produces)
        return block[:, lo:hi]
    return block[:, columns]


def run_shard(spec: ShardSpec) -> ShardResult:
    """Worker entry point: one column group through ``block_pcg``."""
    from repro.core.pcg import block_pcg

    k, preconditioner = compiled_shard_state(spec)
    columns = np.asarray(spec.columns)
    F = spec.F
    if isinstance(F, shm.ArrayView):
        F = _column_range(shm.attach_view(F), columns)
    u0 = spec.u0
    if isinstance(u0, shm.ArrayView):
        u0 = _column_range(shm.attach_view(u0), columns)
    result = block_pcg(
        k,
        F,
        preconditioner=preconditioner,
        u0=u0,
        stopping=spec.stopping,
        eps=spec.eps,
        maxiter=spec.maxiter,
        track_residual=spec.track_residual,
    )
    u = result.u
    if spec.out is not None:
        # Iterates go back through the shared output block, not the pipe.
        _column_range(shm.attach_view(spec.out, writable=True), columns)[...] = u
        u = None
    return ShardResult(
        columns=columns,
        u=u,
        iterations=result.iterations,
        converged=result.converged,
        delta_histories=result.delta_histories,
        residual_histories=result.residual_histories,
        counters=result.counters,
        stop_rule=result.stop_rule,
    )


def warm_shard(spec: ShardSpec) -> str:
    """Worker entry point for pool pre-warming: compile, solve nothing.

    Dispatched by :meth:`repro.pipeline.SolverSession.prewarm_sharding`
    so steady-state solves find the worker's operator attachment and
    factorized applicator already cached under the spec's token.
    """
    compiled_shard_state(spec)
    return spec.token
