"""Picklable work units for the sharded block-PCG path.

Worker dispatch never pickles live solver objects — compiled applicators
hold factorized kernels, workspace pools and lifetime counters that are
both expensive and wrong to ship.  Instead a :class:`ShardSpec` carries the
raw CSR payload of the (already multicolor-permuted) operator plus an
:class:`ApplicatorRecipe` — the same ``(kind, coefficients, ω, backend)``
description a compiled :class:`~repro.pipeline.SolverPlan` holds — and the
worker rebuilds the applicator through the exact constructors the serial
path uses (:class:`~repro.multicolor.sor.MStepSSOR` or
:class:`~repro.core.mstep.MStepPreconditioner`).  Because the rebuild runs
the identical code on the identical matrix data, every shard's
:func:`~repro.core.pcg.block_pcg` lockstep is per-column bitwise identical
to the single-process solve.

Workers cache their compiled state by the spec's ``token`` (one entry per
operator/recipe pair), so repeated solves against the same compiled
session — the steady state of every benchmark and service loop — pay the
CSR unpickling but not the refactorization.
"""

from __future__ import annotations

import uuid
from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.util import OperationCounter, require

__all__ = ["CSRPayload", "ApplicatorRecipe", "ShardSpec", "ShardResult", "run_shard"]


@dataclass(frozen=True)
class CSRPayload:
    """A scipy CSR matrix flattened to plain arrays (cheap, always picklable)."""

    data: np.ndarray
    indices: np.ndarray
    indptr: np.ndarray
    shape: tuple[int, int]

    @classmethod
    def from_matrix(cls, k) -> "CSRPayload":
        k = k.tocsr()
        return cls(
            data=k.data, indices=k.indices, indptr=k.indptr,
            shape=(int(k.shape[0]), int(k.shape[1])),
        )

    def to_matrix(self) -> sp.csr_matrix:
        return sp.csr_matrix(
            (self.data, self.indices, self.indptr), shape=self.shape
        )


@dataclass(frozen=True)
class ApplicatorRecipe:
    """How to rebuild a preconditioner from the shard's operator.

    ``kind``
        ``"none"`` (plain CG), ``"sweep"`` (Conrad–Wallach merged
        multicolor sweep — needs the ``groups`` map and ``labels`` to
        reconstruct the :class:`~repro.multicolor.blocked.BlockedMatrix`
        view), or ``"splitting"`` (kernel-dispatched m-step Horner over
        the SSOR splitting).
    ``groups``
        Color group of every row of the *permuted* operator (i.e. already
        sorted), so the rebuilt ordering is the identity permutation and
        the worker's block view extracts byte-identical sub-blocks.
    """

    kind: str = "none"
    coefficients: np.ndarray | None = None
    omega: float = 1.0
    backend: str | None = None
    groups: np.ndarray | None = None
    labels: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        require(self.kind in ("none", "sweep", "splitting"),
                "recipe kind must be 'none', 'sweep' or 'splitting'")
        if self.kind != "none":
            require(self.coefficients is not None,
                    f"a {self.kind!r} recipe needs its coefficient schedule")
        if self.kind == "sweep":
            require(self.groups is not None,
                    "a 'sweep' recipe needs the permuted color-group map")

    def build(self, k: sp.csr_matrix):
        """The applicator the serial path would use, rebuilt in-process."""
        if self.kind == "none":
            return None
        coefficients = np.asarray(self.coefficients, dtype=float)
        if self.kind == "splitting":
            from repro.core.mstep import MStepPreconditioner
            from repro.core.splittings import SSORSplitting

            return MStepPreconditioner(
                SSORSplitting(k, omega=self.omega, backend=self.backend),
                coefficients,
            )
        from repro.multicolor.blocked import BlockedMatrix
        from repro.multicolor.ordering import MulticolorOrdering
        from repro.multicolor.sor import MStepSSOR

        ordering = MulticolorOrdering.from_groups(self.groups, self.labels)
        blocked = BlockedMatrix.from_matrix(k, ordering, validate=False)
        return MStepSSOR(blocked, coefficients)

    def fingerprint(self) -> str:
        """Content hash used in worker compile-cache tokens."""
        parts = [self.kind, f"{self.omega!r}", f"{self.backend!r}"]
        if self.coefficients is not None:
            parts.append(np.asarray(self.coefficients, dtype=float).tobytes().hex())
        if self.groups is not None:
            parts.append(np.asarray(self.groups).tobytes().hex()[:64])
        return "|".join(parts)


@dataclass(frozen=True)
class ShardSpec:
    """One column group's solve, self-contained and picklable."""

    token: str  # worker compile-cache key (operator + recipe)
    matrix: CSRPayload
    recipe: ApplicatorRecipe
    columns: np.ndarray  # global column indices of this group
    F: np.ndarray  # (n, g) right-hand-side slice, C-ordered
    u0: np.ndarray | None = None
    eps: float = 1e-6
    maxiter: int | None = None
    track_residual: bool = False
    stopping: object | None = None  # a picklable StoppingRule, or None


@dataclass
class ShardResult:
    """One shard's :class:`~repro.core.pcg.BlockPCGResult`, flattened."""

    columns: np.ndarray
    u: np.ndarray
    iterations: np.ndarray
    converged: np.ndarray
    delta_histories: list[list[float]]
    residual_histories: list[list[float]]
    counters: list[OperationCounter] = field(default_factory=list)
    stop_rule: str = ""


# Per-worker-process compiled state: token → (csr matrix, applicator).
_COMPILED: dict[str, tuple] = {}


def matrix_token(k) -> str:
    """A stable per-object token for ``k`` (new object → new token).

    Stashed on the matrix itself so every dispatch against one compiled
    operator reuses the workers' compile caches; objects that refuse
    attributes simply get a fresh token (correct, merely uncached).
    """
    token = getattr(k, "_repro_shard_token", None)
    if token is None:
        token = uuid.uuid4().hex
        try:
            k._repro_shard_token = token
        except AttributeError:
            try:  # frozen dataclasses (model problems) still carry a __dict__
                object.__setattr__(k, "_repro_shard_token", token)
            except AttributeError:
                pass
    return token


def compiled_shard_state(spec: ShardSpec):
    """The shard's (operator, applicator), rebuilt once per worker process."""
    state = _COMPILED.get(spec.token)
    if state is None:
        k = spec.matrix.to_matrix()
        state = (k, spec.recipe.build(k))
        if len(_COMPILED) > 64:  # bound the per-worker cache
            _COMPILED.clear()
        _COMPILED[spec.token] = state
    return state


def run_shard(spec: ShardSpec) -> ShardResult:
    """Worker entry point: one column group through ``block_pcg``."""
    from repro.core.pcg import block_pcg

    k, preconditioner = compiled_shard_state(spec)
    result = block_pcg(
        k,
        spec.F,
        preconditioner=preconditioner,
        u0=spec.u0,
        stopping=spec.stopping,
        eps=spec.eps,
        maxiter=spec.maxiter,
        track_residual=spec.track_residual,
    )
    return ShardResult(
        columns=spec.columns,
        u=result.u,
        iterations=result.iterations,
        converged=result.converged,
        delta_histories=result.delta_histories,
        residual_histories=result.residual_histories,
        counters=result.counters,
        stop_rule=result.stop_rule,
    )
