"""Picklable work units for the sharded block-PCG path.

Worker dispatch never pickles live solver objects — compiled applicators
hold factorized kernels, workspace pools and lifetime counters that are
both expensive and wrong to ship.  Instead a :class:`ShardSpec` carries a
lightweight *handle* to the (already multicolor-permuted) operator plus an
:class:`ApplicatorRecipe` — the same ``(kind, coefficients, ω, backend)``
description a compiled :class:`~repro.pipeline.SolverPlan` holds — and the
worker rebuilds the applicator through the exact constructors the serial
path uses (:class:`~repro.multicolor.sor.MStepSSOR` or
:class:`~repro.core.mstep.MStepPreconditioner`).  Because the rebuild runs
the identical code on the identical matrix data, every shard's
:func:`~repro.core.pcg.block_pcg` lockstep is per-column bitwise identical
to the single-process solve.

The handle is normally a :class:`~repro.parallel.shm.CSRHandle` — segment
names + dtypes/shapes/offsets into :mod:`multiprocessing.shared_memory`,
from which the worker rebuilds **zero-copy read-only views** of the very
bytes the parent published (see :mod:`repro.parallel.shm`); the
right-hand-side block and the output block travel the same way, so the
steady-state dispatch ships only column indices and the recipe.  A
:class:`CSRPayload` (the flat pickled arrays) remains as the
``REPRO_NO_SHM`` fallback — same numerics, heavier pipe.

Workers cache their compiled state by the spec's ``token`` (one entry per
operator/recipe pair) with least-recently-used eviction, so repeated
solves against the same compiled session — the steady state of every
benchmark and service loop — pay neither transfer nor refactorization,
and a burst of one-off tokens can never evict a hot session's entry.
"""

from __future__ import annotations

import uuid
from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.parallel import shm
from repro.util import OperationCounter, require

__all__ = [
    "CSRPayload",
    "ApplicatorRecipe",
    "ShardSpec",
    "ShardResult",
    "run_shard",
    "warm_shard",
    "shard_token",
]


@dataclass(frozen=True)
class CSRPayload:
    """A scipy CSR matrix flattened to plain arrays (cheap, always picklable)."""

    data: np.ndarray
    indices: np.ndarray
    indptr: np.ndarray
    shape: tuple[int, int]

    @classmethod
    def from_matrix(cls, k) -> "CSRPayload":
        k = k.tocsr()
        return cls(
            data=k.data, indices=k.indices, indptr=k.indptr,
            shape=(int(k.shape[0]), int(k.shape[1])),
        )

    def to_matrix(self) -> sp.csr_matrix:
        return sp.csr_matrix(
            (self.data, self.indices, self.indptr), shape=self.shape
        )


@dataclass(frozen=True)
class ApplicatorRecipe:
    """How to rebuild a preconditioner from the shard's operator.

    ``kind``
        ``"none"`` (plain CG), ``"sweep"`` (Conrad–Wallach merged
        multicolor sweep — needs the ``groups`` map and ``labels`` to
        reconstruct the :class:`~repro.multicolor.blocked.BlockedMatrix`
        view), or ``"splitting"`` (kernel-dispatched m-step Horner over
        the SSOR splitting).
    ``groups``
        Color group of every row of the *permuted* operator (i.e. already
        sorted), so the rebuilt ordering is the identity permutation and
        the worker's block view extracts byte-identical sub-blocks.
    """

    kind: str = "none"
    coefficients: np.ndarray | None = None
    omega: float = 1.0
    backend: str | None = None
    groups: np.ndarray | None = None
    labels: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        require(self.kind in ("none", "sweep", "splitting"),
                "recipe kind must be 'none', 'sweep' or 'splitting'")
        if self.kind != "none":
            require(self.coefficients is not None,
                    f"a {self.kind!r} recipe needs its coefficient schedule")
        if self.kind == "sweep":
            require(self.groups is not None,
                    "a 'sweep' recipe needs the permuted color-group map")

    def build(self, k: sp.csr_matrix):
        """The applicator the serial path would use, rebuilt in-process."""
        if self.kind == "none":
            return None
        coefficients = np.asarray(self.coefficients, dtype=float)
        if self.kind == "splitting":
            from repro.core.mstep import MStepPreconditioner
            from repro.core.splittings import SSORSplitting

            return MStepPreconditioner(
                SSORSplitting(k, omega=self.omega, backend=self.backend),
                coefficients,
            )
        from repro.multicolor.blocked import BlockedMatrix
        from repro.multicolor.ordering import MulticolorOrdering
        from repro.multicolor.sor import MStepSSOR

        ordering = MulticolorOrdering.from_groups(self.groups, self.labels)
        blocked = BlockedMatrix.from_matrix(k, ordering, validate=False)
        return MStepSSOR(blocked, coefficients)

    def fingerprint(self) -> str:
        """Content hash used in worker compile-cache tokens."""
        parts = [self.kind, f"{self.omega!r}", f"{self.backend!r}"]
        if self.coefficients is not None:
            parts.append(np.asarray(self.coefficients, dtype=float).tobytes().hex())
        if self.groups is not None:
            parts.append(np.asarray(self.groups).tobytes().hex()[:64])
        return "|".join(parts)


@dataclass(frozen=True)
class ShardSpec:
    """One column group's solve, self-contained and picklable.

    On the zero-copy path ``matrix`` is a
    :class:`~repro.parallel.shm.CSRHandle` and ``F``/``u0``/``out`` are
    :class:`~repro.parallel.shm.ArrayView` handles over the *full*
    ``(n, k)`` blocks — the worker slices its own contiguous column range
    out of the mapped segment without copying, and writes its iterate
    columns into ``out`` so nothing wide is pickled in either direction.
    On the pickled fallback ``matrix`` is a :class:`CSRPayload`, ``F`` the
    ``(n, g)`` slice itself, and ``out`` is ``None`` (the iterates ride
    back in :attr:`ShardResult.u`).
    """

    token: str  # worker compile-cache key (operator + recipe)
    matrix: object  # CSRHandle (zero-copy) or CSRPayload (pickled fallback)
    recipe: ApplicatorRecipe
    columns: np.ndarray  # global column indices of this group
    F: object  # ArrayView over the full block, or the (n, g) slice itself
    u0: object | None = None  # ArrayView, (n, g)/(n,) ndarray, or None
    out: object | None = None  # ArrayView of the shared (n, k) output block
    eps: float = 1e-6
    maxiter: int | None = None
    track_residual: bool = False
    stopping: object | None = None  # a picklable StoppingRule, or None


@dataclass
class ShardResult:
    """One shard's :class:`~repro.core.pcg.BlockPCGResult`, flattened.

    ``u`` is ``None`` when the iterates went back through the spec's
    shared output block instead of the pipe.
    """

    columns: np.ndarray
    u: np.ndarray | None
    iterations: np.ndarray
    converged: np.ndarray
    delta_histories: list[list[float]]
    residual_histories: list[list[float]]
    counters: list[OperationCounter] = field(default_factory=list)
    stop_rule: str = ""


# Per-worker-process compiled state: token → (csr matrix, applicator),
# least-recently-used first.  Bounded by _COMPILED_CAP with oldest-entry
# eviction — a hot token is refreshed on every hit, so no burst of one-off
# tokens can evict a live session's compiled state (the old clear()-on-65
# behavior nuked the whole cache, steady-state entries included).
_COMPILED: dict[str, tuple] = {}
_COMPILED_CAP = 64


def matrix_token(k) -> str:
    """A stable per-object token for ``k`` (new object → new token).

    Stashed on the matrix itself so every dispatch against one compiled
    operator reuses the workers' compile caches; objects that refuse
    attributes simply get a fresh token (correct, merely uncached).
    """
    token = getattr(k, "_repro_shard_token", None)
    if token is None:
        token = uuid.uuid4().hex
        try:
            k._repro_shard_token = token
        except AttributeError:
            try:  # frozen dataclasses (model problems) still carry a __dict__
                object.__setattr__(k, "_repro_shard_token", token)
            except AttributeError:
                pass
    return token


def shard_token(k, recipe: ApplicatorRecipe) -> str:
    """The worker compile-cache key for one (operator, recipe) pair."""
    return f"{matrix_token(k)}:{recipe.fingerprint()}"


def compiled_shard_state(spec: ShardSpec):
    """The shard's (operator, applicator), rebuilt once per worker process."""
    state = _COMPILED.get(spec.token)
    if state is not None:
        _COMPILED[spec.token] = _COMPILED.pop(spec.token)  # refresh LRU
        return state
    if isinstance(spec.matrix, CSRPayload):
        k = spec.matrix.to_matrix()
    else:  # CSRHandle → zero-copy read-only views over the mapped segment
        k = shm.attach_csr(spec.matrix)
    state = (k, spec.recipe.build(k))
    while len(_COMPILED) >= _COMPILED_CAP:  # evict oldest, never everything
        _COMPILED.pop(next(iter(_COMPILED)))
    _COMPILED[spec.token] = state
    return state


def _column_range(block: np.ndarray, columns: np.ndarray) -> np.ndarray:
    """``block[:, columns]`` as a zero-copy slice when columns are a range."""
    columns = np.asarray(columns)
    lo, hi = int(columns[0]), int(columns[-1]) + 1
    if hi - lo == columns.size:  # contiguous (what column_groups produces)
        return block[:, lo:hi]
    return block[:, columns]


def run_shard(spec: ShardSpec) -> ShardResult:
    """Worker entry point: one column group through ``block_pcg``."""
    from repro.core.pcg import block_pcg

    k, preconditioner = compiled_shard_state(spec)
    columns = np.asarray(spec.columns)
    F = spec.F
    if isinstance(F, shm.ArrayView):
        F = _column_range(shm.attach_view(F), columns)
    u0 = spec.u0
    if isinstance(u0, shm.ArrayView):
        u0 = _column_range(shm.attach_view(u0), columns)
    result = block_pcg(
        k,
        F,
        preconditioner=preconditioner,
        u0=u0,
        stopping=spec.stopping,
        eps=spec.eps,
        maxiter=spec.maxiter,
        track_residual=spec.track_residual,
    )
    u = result.u
    if spec.out is not None:
        # Iterates go back through the shared output block, not the pipe.
        _column_range(shm.attach_view(spec.out, writable=True), columns)[...] = u
        u = None
    return ShardResult(
        columns=columns,
        u=u,
        iterations=result.iterations,
        converged=result.converged,
        delta_histories=result.delta_histories,
        residual_histories=result.residual_histories,
        counters=result.counters,
        stop_rule=result.stop_rule,
    )


def warm_shard(spec: ShardSpec) -> str:
    """Worker entry point for pool pre-warming: compile, solve nothing.

    Dispatched by :meth:`repro.pipeline.SolverSession.prewarm_sharding`
    so steady-state solves find the worker's operator attachment and
    factorized applicator already cached under the spec's token.
    """
    compiled_shard_state(spec)
    return spec.token
