"""Sharded multi-RHS PCG: column groups of one block across worker processes.

The :func:`repro.core.pcg.block_pcg` lockstep is embarrassingly parallel
over right-hand-side columns — no column ever reads another column's state
— so an ``(n, k)`` block splits into column groups that solve concurrently
on separate processes.  This is the first layer of the reproduction where
wall-clock actually scales with local cores, the way the paper's machines
scaled with processors; the numerics do **not** change:

* each group runs the ordinary ``block_pcg`` on its slice (per-column
  bitwise identical to a solo :func:`~repro.core.pcg.pcg` by the block
  path's standing contract), rebuilt from a picklable
  :class:`~repro.parallel.shards.ShardSpec` — never a pickled live
  applicator;
* reassembly is pure placement — iterates, iteration counts, histories
  and per-column operation counters land exactly where a single-process
  ``block_pcg`` over the full block would have put them, bitwise.

``workers=1`` (or one group, or ``k ≤ 1``) never spawns a process and is
literally the serial call.
"""

from __future__ import annotations

import numpy as np

from repro.core.pcg import BlockPCGResult, block_pcg
from repro.parallel import shm
from repro.parallel.executor import effective_workers, run_tasks
from repro.parallel.shards import (
    ApplicatorRecipe,
    CSRPayload,
    ShardSpec,
    matrix_token,
    run_shard,
    stencil_description,
)
from repro.util import require

__all__ = ["column_groups", "build_shard_specs", "sharded_block_pcg"]


def column_groups(
    n_columns: int, workers: int, group: int | None = None
) -> list[np.ndarray]:
    """Contiguous column-index groups for an ``(n, k)`` block.

    ``group`` is the column count per shard; by default the block is split
    evenly across ``workers`` (never more groups than columns — ``W > k``
    degrades gracefully to one column per shard).
    """
    require(n_columns >= 0, "column count must be non-negative")
    if n_columns == 0:
        return []
    if group is None:
        shards = effective_workers(workers, n_columns)
        group = -(-n_columns // shards)  # ceil
    require(group >= 1, "group (columns per shard) must be at least 1")
    return [
        np.arange(start, min(start + group, n_columns))
        for start in range(0, n_columns, group)
    ]


def build_shard_specs(
    k,
    F: np.ndarray,
    recipe: ApplicatorRecipe,
    groups: list[np.ndarray],
    *,
    u0: np.ndarray | None = None,
    stopping=None,
    eps: float = 1e-6,
    maxiter: int | None = None,
    track_residual: bool = False,
    use_shm: bool | None = None,
) -> tuple[list[ShardSpec], object]:
    """The dispatchable :class:`ShardSpec` list for one sharded block solve.

    On the zero-copy path (``use_shm`` true, the default when
    :func:`repro.parallel.shm.shm_enabled`) the operator's CSR arrays and
    the ``(n, k)`` blocks are published to the segment registry — cached
    per operator token, so a steady-state dispatch re-publishes only the
    right-hand-side values (one memcpy) — and the specs carry segment
    handles plus column indices.  Returns ``(specs, out_view)`` where
    ``out_view`` is the shared output block's
    :class:`~repro.parallel.shm.ArrayView` (``None`` on the pickled
    fallback, where each spec carries its own ``(n, g)`` slice and the
    iterates ride back through the result pickle).

    A matrix-free :class:`~repro.kernels.stencil.StencilOperator` (no
    ``tocsr``) ships as its tiny :class:`~repro.parallel.shards.
    StencilDescription` instead of CSR segments or payloads — the
    right-hand-side and output blocks still ride shared memory when
    enabled.
    """
    F = np.asarray(F, dtype=float)
    n, ncols = F.shape
    if u0 is not None:
        u0 = np.asarray(u0, dtype=float)
    use_shm = shm.shm_enabled() if use_shm is None else use_shm
    assembled = hasattr(k, "tocsr")
    token = f"{matrix_token(k)}:{recipe.fingerprint()}"
    common = dict(
        token=token, recipe=recipe, eps=eps, maxiter=maxiter,
        track_residual=track_residual, stopping=stopping,
    )

    if use_shm:
        reg = shm.registry()
        mtoken = matrix_token(k)
        operator = (
            reg.publish_operator(mtoken, k) if assembled
            else stencil_description(k)
        )
        f_view = reg.publish_block(mtoken, "rhs", F)
        u0_common = None
        if u0 is not None and u0.ndim == 2:
            u0_common = reg.publish_block(mtoken, "u0", u0)
        elif u0 is not None:
            u0_common = u0  # a single (n,) guess is cheap enough to pickle
        out_view = reg.alloc_block(mtoken, "out", (n, ncols))
        specs = [
            ShardSpec(
                matrix=operator, columns=cols, F=f_view, u0=u0_common,
                out=out_view, **common,
            )
            for cols in groups
        ]
        return specs, out_view

    payload = CSRPayload.from_matrix(k) if assembled else stencil_description(k)
    specs = []
    for cols in groups:
        u0_slice = None
        if u0 is not None:
            u0_slice = u0 if u0.ndim == 1 else np.ascontiguousarray(u0[:, cols])
        specs.append(
            ShardSpec(
                matrix=payload, columns=cols,
                F=np.ascontiguousarray(F[:, cols]), u0=u0_slice, **common,
            )
        )
    return specs, None


def sharded_block_pcg(
    k,
    F: np.ndarray,
    preconditioner=None,
    *,
    workers: int = 1,
    group: int | None = None,
    recipe: ApplicatorRecipe | None = None,
    u0: np.ndarray | None = None,
    stopping=None,
    eps: float = 1e-6,
    maxiter: int | None = None,
    track_residual: bool = False,
    use_shm: bool | None = None,
) -> BlockPCGResult:
    """Solve ``K U = F`` with the RHS block sharded across worker processes.

    Parameters mirror :func:`~repro.core.pcg.block_pcg`; the sharding knobs:

    workers:
        Worker processes to fan the column groups across.  ``1`` runs the
        plain serial ``block_pcg`` (no processes, no pickling).
    group:
        Columns per shard (default: an even split over ``workers``).
        ``group=1`` degenerates to one independent per-column ``pcg``-
        equivalent solve per shard; ``workers > k`` clamps to ``k``.
    recipe:
        The :class:`~repro.parallel.shards.ApplicatorRecipe` workers
        rebuild the preconditioner from.  Required whenever work actually
        leaves the process (live applicators are never pickled); when
        executing inline the recipe is compiled locally instead, so either
        a recipe or a live ``preconditioner`` works there.  Passing *both*
        is an error — ambiguity about which object defines the numerics is
        exactly what this layer must not have.
    use_shm:
        Force the transport: ``True`` the zero-copy shared-memory plan
        (operator and blocks mapped once, workers view them in place,
        iterates returned through a shared output block), ``False`` the
        pickled :class:`~repro.parallel.shards.CSRPayload` fallback.
        Default: shared memory unless ``REPRO_NO_SHM`` is set.  The two
        transports are bitwise identical — the views *are* the bytes.

    Every column of the result — iterate, iteration count, histories,
    operation counter — is bitwise identical to the single-process
    ``block_pcg`` over the full block (and hence to ``k`` solo ``pcg``
    runs), for any ``workers``/``group`` partition and either transport;
    the tests pin all of W ∈ {1, 2, 4}.
    """
    F = np.asarray(F, dtype=float)
    require(F.ndim == 2, "sharded_block_pcg needs an (n, k) right-hand-side block")
    require(
        preconditioner is None or recipe is None,
        "pass either a live preconditioner or a recipe, not both",
    )
    n, ncols = F.shape
    groups = column_groups(ncols, workers, group)
    workers = effective_workers(workers, max(len(groups), 1))

    if workers == 1 or len(groups) <= 1:
        if preconditioner is None and recipe is not None:
            preconditioner = recipe.build(k.tocsr() if hasattr(k, "tocsr") else k)
        return block_pcg(
            k, F, preconditioner=preconditioner, u0=u0, stopping=stopping,
            eps=eps, maxiter=maxiter, track_residual=track_residual,
        )

    require(
        recipe is not None or preconditioner is None,
        "sharded execution rebuilds the applicator per worker: pass a "
        "recipe (ApplicatorRecipe), not a live preconditioner",
    )
    recipe = recipe if recipe is not None else ApplicatorRecipe(kind="none")
    specs, out_view = build_shard_specs(
        k, F, recipe, groups, u0=u0, stopping=stopping, eps=eps,
        maxiter=maxiter, track_residual=track_residual, use_shm=use_shm,
    )
    shards = run_tasks(run_shard, specs, workers)

    # Pure placement: every shard's columns land at their global indices.
    # On the zero-copy path the workers already placed their iterate
    # columns into the shared output block — one contiguous copy out.
    if out_view is not None:
        u = np.ascontiguousarray(shm.registry().resolve(out_view))
    else:
        u = np.empty((n, ncols))
    iterations = np.zeros(ncols, dtype=int)
    converged = np.zeros(ncols, dtype=bool)
    delta_histories: list[list[float]] = [[] for _ in range(ncols)]
    residual_histories: list[list[float]] = [[] for _ in range(ncols)]
    counters = [None] * ncols
    stop_rule = shards[0].stop_rule if shards else ""
    for shard in shards:
        for local, j in enumerate(shard.columns):
            if shard.u is not None:
                u[:, j] = shard.u[:, local]
            iterations[j] = shard.iterations[local]
            converged[j] = shard.converged[local]
            delta_histories[j] = shard.delta_histories[local]
            residual_histories[j] = shard.residual_histories[local]
            counters[j] = shard.counters[local]
    return BlockPCGResult(
        u=u,
        iterations=iterations,
        converged=converged,
        delta_histories=delta_histories,
        residual_histories=residual_histories,
        counters=counters,
        stop_rule=stop_rule,
    )
