"""Real parallelism: worker-process execution of shardable solver work.

Everything below this package actually runs on multiple local cores —
unlike :mod:`repro.machines`, which *simulates* 1983 parallel hardware on
one process.  Two work units are shardable today, both riding on standing
bitwise contracts:

* :func:`sharded_block_pcg` — an ``(n, k)`` right-hand-side block's
  column groups, each group a :func:`~repro.core.pcg.block_pcg` lockstep
  in its own worker (columns are independent, so this is embarrassingly
  parallel); reassembled results are bitwise identical to the
  single-process block path.
* :func:`sharded_schedule` — Table-2/3 schedule cells of the machine
  simulators' ``solve_schedule`` passes, whose per-cell records
  (iterations, clocks, op and message ledgers, iterates) are partition-
  invariant by contract.

Workers receive picklable specs (:class:`ShardSpec`,
:class:`ApplicatorRecipe`, :class:`ScheduleShard`) and rebuild compiled
state through the same constructors the serial paths use — live
applicators and machines are never pickled.  The value-carrying arrays
(CSR operator, right-hand-side and output blocks) move through named
shared-memory segments owned by the :class:`~repro.parallel.shm.
SegmentRegistry`, with workers mapping zero-copy read-only views — see
:mod:`repro.parallel.shm` — so the steady-state dispatch ships only
column indices.  ``workers=1`` everywhere means "inline, no processes":
the serial code path, exactly.
"""

from repro.parallel.block import (
    build_shard_specs,
    column_groups,
    sharded_block_pcg,
)
from repro.parallel.executor import (
    available_workers,
    effective_workers,
    run_tasks,
    shutdown_pools,
)
from repro.parallel.schedule import MACHINE_KINDS, ScheduleShard, sharded_schedule
from repro.parallel.shards import (
    ApplicatorRecipe,
    CSRPayload,
    ShardResult,
    ShardSpec,
    StencilDescription,
    run_shard,
    shard_token,
    stencil_description,
    warm_shard,
)
from repro.parallel.shm import (
    ArrayView,
    CSRHandle,
    SegmentRegistry,
    registry,
    release_all_segments,
    shm_enabled,
)

__all__ = [
    "build_shard_specs",
    "column_groups",
    "sharded_block_pcg",
    "available_workers",
    "effective_workers",
    "run_tasks",
    "shutdown_pools",
    "MACHINE_KINDS",
    "ScheduleShard",
    "sharded_schedule",
    "ApplicatorRecipe",
    "CSRPayload",
    "ShardResult",
    "ShardSpec",
    "StencilDescription",
    "run_shard",
    "shard_token",
    "stencil_description",
    "warm_shard",
    "ArrayView",
    "CSRHandle",
    "SegmentRegistry",
    "registry",
    "release_all_segments",
    "shm_enabled",
]
