"""Sharded machine-simulator schedules: Table-2/3 cells across workers.

The batched ``solve_schedule`` passes of the machine simulators
(:meth:`~repro.machines.cyber.CyberMachine.solve_schedule`,
:meth:`~repro.machines.fem_machine.FiniteElementMachine.solve_schedule`,
:meth:`~repro.machines.spmd.SPMDSolver.solve_schedule`) carry a standing
contract: every cell's result — iterations, charged clocks, op breakdowns,
communication/message ledgers, iterates — is bitwise identical to a
per-cell ``solve``, because the cells never interact numerically (the
batching is per-column-bitwise).  That same contract makes the schedule
shardable: any partition of the cells, run through ``solve_schedule`` on
any machine instance laid out from the same problem, reproduces the exact
per-cell records.  Here the partitions run on worker processes.

Workers receive a picklable :class:`ScheduleShard` — the *problem* plus
machine parameters, never a live machine — lay the machine out once, cache
it by token, and run their cell chunk; the parent reassembles results in
schedule order.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.parallel.executor import effective_workers, run_tasks
from repro.parallel.shards import matrix_token
from repro.util import require

__all__ = ["MACHINE_KINDS", "ScheduleShard", "sharded_schedule"]

MACHINE_KINDS = ("cyber", "fem", "spmd")


@dataclass(frozen=True)
class ScheduleShard:
    """One worker's slice of a machine schedule (self-contained, picklable)."""

    token: str  # worker machine-cache key
    problem: object  # a picklable model problem (ProblemSpec products are)
    kind: str  # "cyber" | "fem" | "spmd"
    cells: tuple  # ((m, coefficients), ...) for this shard
    indices: tuple[int, ...]  # positions of those cells in the full schedule
    eps: float = 1e-6
    maxiter: int | None = None
    n_procs: int = 1  # fem/spmd layout
    timing: object | None = None  # machine timing model (None → kind default)
    reduction: str = "software"  # fem reduction network
    backend: str | None = None  # fem kernel backend


# Per-worker-process machine cache: token → machine instance (LRU,
# oldest-entry eviction — same discipline as the shard compile cache).
_MACHINES: dict[str, object] = {}
_MACHINES_CAP = 16


def _build_machine(shard: ScheduleShard):
    if shard.kind == "cyber":
        from repro.machines.cyber import CyberMachine
        from repro.machines.timing import CYBER_203

        return CyberMachine(
            shard.problem,
            shard.timing if shard.timing is not None else CYBER_203,
        )
    if shard.kind == "fem":
        from repro.machines.fem_machine import FiniteElementMachine

        kwargs = {} if shard.timing is None else {"timing": shard.timing}
        return FiniteElementMachine(
            shard.problem, shard.n_procs, reduction=shard.reduction, **kwargs
        )
    from repro.machines.spmd import SPMDSolver
    from repro.machines.topology import Assignment, ProcessorGrid

    grid = ProcessorGrid.for_count(shard.n_procs, shard.problem.mesh)
    return SPMDSolver(
        shard.problem, Assignment.rectangles(shard.problem.mesh, grid)
    )


def run_schedule_shard(shard: ScheduleShard):
    """Worker entry point: one cell chunk through ``solve_schedule``."""
    machine = _MACHINES.get(shard.token)
    if machine is None:
        machine = _build_machine(shard)
        while len(_MACHINES) >= _MACHINES_CAP:  # evict oldest, never all
            _MACHINES.pop(next(iter(_MACHINES)))
        _MACHINES[shard.token] = machine
    else:
        _MACHINES[shard.token] = _MACHINES.pop(shard.token)  # refresh LRU
    if shard.kind == "fem":
        results = machine.solve_schedule(
            list(shard.cells), eps=shard.eps, maxiter=shard.maxiter,
            backend=shard.backend,
        )
    else:
        results = machine.solve_schedule(
            list(shard.cells), eps=shard.eps, maxiter=shard.maxiter
        )
    return list(zip(shard.indices, results))


def _chunk(cells, workers: int, group: int | None = None) -> list[tuple[int, ...]]:
    """Contiguous index chunks: one per worker, or ``group`` cells each.

    ``group`` is the within-pass axis of the 2-D shard grid: every chunk
    becomes one lockstep ``solve_schedule`` pass whose *columns* are its
    cells, so ``group`` bounds the column count of each pass while the
    worker fan-out spreads the passes across processes.  ``None`` keeps
    the 1-D behavior — one balanced chunk per worker.
    """
    n = len(cells)
    if group is not None:
        require(group >= 1, "group (cells per lockstep pass) must be at least 1")
        return [
            tuple(range(start, min(start + group, n)))
            for start in range(0, n, group)
        ]
    shards = effective_workers(workers, n)
    bounds = np.linspace(0, n, shards + 1).astype(int)
    return [
        tuple(range(bounds[i], bounds[i + 1]))
        for i in range(shards)
        if bounds[i] < bounds[i + 1]
    ]


def sharded_schedule(
    problem,
    cells,
    machine: str = "cyber",
    *,
    workers: int = 1,
    group: int | None = None,
    eps: float = 1e-6,
    maxiter: int | None = None,
    n_procs: int = 1,
    timing=None,
    reduction: str = "software",
    backend: str | None = None,
) -> list:
    """Fan a ``solve_schedule`` cell list across worker processes.

    ``cells`` is the usual ``(m, coefficients)`` sequence; results come
    back in schedule order as the machine's own result records
    (:class:`~repro.machines.cyber.CyberResult`,
    :class:`~repro.machines.fem_machine.FEMResult` or
    :class:`~repro.machines.spmd.SPMDResult`), bitwise identical per cell
    to a single-process ``solve_schedule`` over the full list — the
    clocks/op-ledger reconciliation contract those passes already pin.

    ``group`` opens the second sharding axis: a lockstep
    ``solve_schedule`` pass treats its cells as the *columns* of one
    batched solve, so ``(workers, group)`` is a 2-D shard grid — column
    groups of ``group`` cells inside each pass, fanned across ``workers``
    processes (more passes than workers is legal and load-balances).
    Because the per-cell records are partition-invariant, every grid
    reproduces the single-pass records bitwise; the tests pin CYBER, FEM
    and SPMD grids.

    ``workers=1`` with no ``group`` builds one machine inline and runs
    the ordinary pass.  The problem object must be picklable (every
    :class:`~repro.pipeline.ProblemSpec` product is).
    """
    require(machine in MACHINE_KINDS, f"machine must be one of {MACHINE_KINDS}")
    cells = [(int(m), coeffs) for m, coeffs in cells]
    if not cells:
        return []
    token = (
        f"{matrix_token(problem)}:{machine}:{n_procs}:{reduction}:"
        f"{backend!r}:{timing!r}"
    )
    chunks = _chunk(cells, workers, group)
    shards = [
        ScheduleShard(
            token=token,
            problem=problem,
            kind=machine,
            cells=tuple(cells[i] for i in indices),
            indices=indices,
            eps=eps,
            maxiter=maxiter,
            n_procs=n_procs,
            timing=timing,
            reduction=reduction,
            backend=backend,
        )
        for indices in chunks
    ]
    pairs = run_tasks(run_schedule_shard, shards, workers)
    results: list = [None] * len(cells)
    for chunk_pairs in pairs:
        for index, result in chunk_pairs:
            results[index] = result
    return results
