"""Worker-process management for the sharded execution layer.

One process pool per worker count, created lazily and kept alive for the
lifetime of the interpreter: the expensive part of real parallelism is not
``fork``/``spawn`` itself but re-paying it (and the workers' compiled-state
caches — see :mod:`repro.parallel.shards`) on every call.  ``workers <= 1``
never touches ``multiprocessing`` at all: tasks run inline in the calling
process, so the degenerate configuration is exactly the serial code path
and is safe on any platform (and under any test harness).

The functions dispatched here must be module-level (picklable by
reference); their arguments are the picklable spec dataclasses of
:mod:`repro.parallel.shards` and :mod:`repro.parallel.schedule`.
"""

from __future__ import annotations

import atexit
import os
from concurrent.futures import ProcessPoolExecutor

from repro.util import require

__all__ = ["available_workers", "effective_workers", "run_tasks", "shutdown_pools"]

_POOLS: dict[int, ProcessPoolExecutor] = {}


def available_workers() -> int:
    """Usable local cores (the executor never refuses a larger request —
    oversubscription is legal, merely pointless)."""
    return os.cpu_count() or 1


def effective_workers(workers: int, n_tasks: int) -> int:
    """Workers actually worth starting: never more than there are tasks."""
    require(workers >= 1, "workers must be at least 1")
    return max(1, min(int(workers), int(n_tasks)))


def _pool(workers: int) -> ProcessPoolExecutor:
    pool = _POOLS.get(workers)
    if pool is None:
        pool = ProcessPoolExecutor(max_workers=workers)
        _POOLS[workers] = pool
    return pool


def run_tasks(fn, specs, workers: int) -> list:
    """``[fn(spec) for spec in specs]``, fanned across worker processes.

    Results come back in task order.  ``workers <= 1`` (after clamping to
    the task count) executes inline — no processes, no pickling — which is
    what makes ``W = 1`` sharding bitwise-trivially identical to the
    serial path.  A worker that raises re-raises here, in the parent.
    """
    specs = list(specs)
    if not specs:
        return []
    workers = effective_workers(workers, len(specs))
    if workers == 1:
        return [fn(spec) for spec in specs]
    return list(_pool(workers).map(fn, specs))


def shutdown_pools() -> None:
    """Tear down every live pool (tests; also registered at exit)."""
    for pool in _POOLS.values():
        pool.shutdown(wait=False, cancel_futures=True)
    _POOLS.clear()


atexit.register(shutdown_pools)
