"""Worker-process management for the sharded execution layer.

One process pool per (worker count, start method), created lazily and kept
alive for the lifetime of the interpreter: the expensive part of real
parallelism is not ``fork``/``spawn`` itself but re-paying it (and the
workers' compiled-state caches — see :mod:`repro.parallel.shards`) on
every call.  ``workers <= 1`` never touches ``multiprocessing`` at all:
tasks run inline in the calling process, so the degenerate configuration
is exactly the serial code path and is safe on any platform (and under
any test harness).

The functions dispatched here must be module-level (picklable by
reference); their arguments are the picklable spec dataclasses of
:mod:`repro.parallel.shards` and :mod:`repro.parallel.schedule` — on the
zero-copy path these are lightweight shared-memory handles, see
:mod:`repro.parallel.shm`.

``REPRO_START_METHOD`` (``fork``/``spawn``/``forkserver``) overrides the
platform's default start method — the shared-memory transport attaches
segments by name, so it is start-method agnostic, and the tests pin the
``spawn`` path explicitly.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor

from repro.util import require

__all__ = ["available_workers", "effective_workers", "run_tasks", "shutdown_pools"]

_POOLS: dict[tuple[int, str | None], ProcessPoolExecutor] = {}


def available_workers() -> int:
    """Usable local cores (the executor never refuses a larger request —
    oversubscription is legal, merely pointless)."""
    return os.cpu_count() or 1


def effective_workers(workers: int, n_tasks: int) -> int:
    """Workers actually worth starting: never more than there are tasks."""
    require(workers >= 1, "workers must be at least 1")
    return max(1, min(int(workers), int(n_tasks)))


def _pool(workers: int) -> ProcessPoolExecutor:
    method = os.environ.get("REPRO_START_METHOD") or None
    key = (workers, method)
    pool = _POOLS.get(key)
    if pool is None:
        # Workers must inherit the parent's resource tracker: a child that
        # first sees a shared-memory segment *after* forking from a parent
        # with no tracker yet would start its own, whose registrations the
        # parent's unlink can never balance (spurious leaked-segment
        # warnings at shutdown).  The stencil sharding path publishes no
        # segments before pool warm-up, so start the tracker explicitly.
        try:
            from multiprocessing.resource_tracker import ensure_running

            ensure_running()
        except ImportError:  # pragma: no cover - tracker API moved/absent
            pass
        context = multiprocessing.get_context(method) if method else None
        pool = ProcessPoolExecutor(max_workers=workers, mp_context=context)
        _POOLS[key] = pool
    return pool


def _describe(spec) -> str:
    """A failing task's identity for the error message (token + work unit)."""
    parts = [type(spec).__name__]
    token = getattr(spec, "token", None)
    if token is not None:
        parts.append(f"token={token}")
    columns = getattr(spec, "columns", None)
    if columns is not None:
        parts.append(f"columns={[int(c) for c in columns]}")
    indices = getattr(spec, "indices", None)
    if indices is not None:
        parts.append(f"cells={[int(i) for i in indices]}")
    return " ".join(parts)


def run_tasks(fn, specs, workers: int) -> list:
    """``[fn(spec) for spec in specs]``, fanned across worker processes.

    Results come back in task order.  ``workers <= 1`` (after clamping to
    the task count) executes inline — no processes, no pickling — which is
    what makes ``W = 1`` sharding bitwise-trivially identical to the
    serial path.

    Each spec is submitted as its own task (the chunksize-1 discipline:
    shards are few and heavy, so batching tasks per pipe write buys
    nothing and costs scheduling freedom), and a worker failure re-raises
    here wrapped with the failing spec's token and columns/cells — a
    crashed shard is diagnosable, not an anonymous pool traceback.
    """
    specs = list(specs)
    if not specs:
        return []
    workers = effective_workers(workers, len(specs))
    if workers == 1:
        return [fn(spec) for spec in specs]
    futures = [_pool(workers).submit(fn, spec) for spec in specs]
    results = []
    for future, spec in zip(futures, specs):
        try:
            results.append(future.result())
        except Exception as exc:
            for pending in futures:
                pending.cancel()
            raise RuntimeError(
                f"shard task failed ({_describe(spec)}): "
                f"{type(exc).__name__}: {exc}"
            ) from exc
    return results


def shutdown_pools() -> None:
    """Tear down every live pool and every published shared-memory segment
    (tests; also registered at exit — nothing leaks even on a crashed run)."""
    for pool in _POOLS.values():
        pool.shutdown(wait=False, cancel_futures=True)
    _POOLS.clear()
    from repro.parallel.shm import release_all_segments

    release_all_segments()


atexit.register(shutdown_pools)
