"""Zero-copy shared-memory transport for the sharded execution layer.

Before this module every dispatch of the sharded block-PCG path pickled a
full flat-CSR payload (plus the right-hand-side slice) into each worker
and pickled the ``(n, g)`` iterate block back — exactly the per-task
overhead the paper's cost model ``T_m = (A + m·B)·N_m`` says must be
driven toward zero for the m-step amortization argument to hold.  Here
the value-carrying arrays move through named
:mod:`multiprocessing.shared_memory` segments instead:

* the **parent** owns every segment through one :class:`SegmentRegistry`
  (create → write once → unlink at release), grouping segments by the
  operator's token so a compiled session's publications live exactly as
  long as its compiled state;
* **workers** rebuild *zero-copy read-only views* —
  ``np.ndarray(..., buffer=shm.buf)`` over the mapped bytes, a
  ``csr_matrix`` wrapping those views without copying — so the arrays a
  shard computes with are byte-identical to the parent's (the
  serial/sharded bitwise contract is checkable, not aspirational);
* results return through a shared **output block**: each shard writes its
  columns into the ``(n, k)`` out-segment at their global offsets, so the
  iterates are never pickled back either.

What still crosses the pipe per task is a :class:`~repro.parallel.shards.
ShardSpec` holding segment *names + dtypes/shapes/offsets* and the column
indices — a few hundred bytes against the megabyte-scale payloads it
replaces (``benchmarks/perf_report.py`` records both numbers).

Lifetime rules (the part shared memory makes easy to get wrong):

* every create is registered in the module registry and released by
  token (:meth:`SegmentRegistry.release`), by
  :func:`repro.parallel.executor.shutdown_pools`, and by ``atexit`` — a
  crashed run leaves nothing in ``/dev/shm`` (abnormal termination is
  covered by the stdlib resource tracker, which still knows about every
  parent-side segment);
* worker-side attachments are cached by name (a steady-state worker
  attaches each segment once) and never touch the resource tracker:
  every multiprocessing child shares the parent's tracker process, where
  the creator's registration already lives — see
  :func:`_attach_segment` for why unregistering there would be the
  bpo-38119 double-cleanup in reverse;
* the registry is fork-aware: a forked worker inheriting the parent's
  registry (worker processes run ``atexit`` handlers too) must never
  unlink the parent's segments, so every destructive operation no-ops
  off-owner-pid.
"""

from __future__ import annotations

import atexit
import os
import uuid
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np
import scipy.sparse as sp

from repro.util import require

__all__ = [
    "ArrayView",
    "CSRHandle",
    "SegmentRegistry",
    "registry",
    "attach_view",
    "attach_csr",
    "detach_all",
    "release_all_segments",
    "shm_enabled",
]

#: Byte alignment of packed arrays inside one segment (cache-line sized).
_ALIGN = 64


def _aligned(nbytes: int) -> int:
    return (int(nbytes) + _ALIGN - 1) // _ALIGN * _ALIGN


def shm_enabled() -> bool:
    """Whether the zero-copy transport is available and not disabled.

    ``REPRO_NO_SHM=1`` falls the sharded paths back to pickled
    :class:`~repro.parallel.shards.CSRPayload` dispatch (same numerics,
    only slower) — useful for debugging and for pinning the fallback.
    """
    return not os.environ.get("REPRO_NO_SHM")


@dataclass(frozen=True)
class ArrayView:
    """One ndarray inside a named segment: everything a worker needs to map it."""

    segment: str
    dtype: str
    shape: tuple[int, ...]
    offset: int = 0
    order: str = "C"

    @property
    def nbytes(self) -> int:
        return int(np.dtype(self.dtype).itemsize * int(np.prod(self.shape, dtype=np.int64)))


@dataclass(frozen=True)
class CSRHandle:
    """A CSR operator's three arrays packed into one segment."""

    shape: tuple[int, int]
    data: ArrayView
    indices: ArrayView
    indptr: ArrayView

    @property
    def segment(self) -> str:
        return self.data.segment

    @property
    def nbytes(self) -> int:
        return self.data.nbytes + self.indices.nbytes + self.indptr.nbytes


# --------------------------------------------------------------------- parent
class SegmentRegistry:
    """Parent-side owner of every shared-memory segment this process created.

    Segments are grouped by an owner *token* (the sharded paths use
    :func:`~repro.parallel.shards.matrix_token` of the published
    operator), so one :meth:`release` tears down everything a compiled
    session published.  Operator publications are cached per token with
    oldest-entry eviction; right-hand-side / output blocks reuse their
    segment in place while the capacity suffices, so a steady-state
    dispatch performs one block memcpy and zero segment creations.
    """

    def __init__(self, max_operators: int = 8):
        self._pid = os.getpid()
        self._segments: dict[str, shared_memory.SharedMemory] = {}
        self._operators: dict[str, CSRHandle] = {}
        self._blocks: dict[tuple[str, str], ArrayView] = {}
        self._token_segments: dict[str, list[str]] = {}
        self._max_operators = max_operators

    # A forked child inherits this registry's bookkeeping; it owns none of
    # the segments, and must never unlink (or double-close) them.
    def _owned(self) -> bool:
        return os.getpid() == self._pid

    def _create(self, nbytes: int, token: str) -> shared_memory.SharedMemory:
        seg = shared_memory.SharedMemory(
            name=f"repro_{uuid.uuid4().hex[:16]}", create=True,
            size=max(int(nbytes), 1),
        )
        self._segments[seg.name] = seg
        self._token_segments.setdefault(token, []).append(seg.name)
        return seg

    def _drop_segment(self, name: str) -> None:
        seg = self._segments.pop(name, None)
        if seg is None:
            return
        try:
            seg.close()
        except BufferError:  # a live view still maps it; unlink regardless
            pass
        try:
            seg.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass

    def resolve(self, view: ArrayView) -> np.ndarray:
        """This process's own mapping of a view it published (no re-attach)."""
        seg = self._segments[view.segment]
        return np.ndarray(
            view.shape, dtype=np.dtype(view.dtype), buffer=seg.buf,
            offset=view.offset, order=view.order,
        )

    def publish_operator(self, token: str, k) -> CSRHandle:
        """Map a CSR operator's ``data``/``indices``/``indptr`` once per token.

        Returns the cached handle on every later call for the same token —
        the steady state of a compiled session ships no matrix bytes at
        all.  The cache keeps the most recent ``max_operators`` tokens;
        the oldest publication is released (closed *and* unlinked) when a
        new one would exceed the bound.
        """
        handle = self._operators.get(token)
        if handle is not None:
            self._operators[token] = self._operators.pop(token)  # keep hot
            return handle
        k = k.tocsr()
        arrays = {
            "data": np.ascontiguousarray(k.data),
            "indices": np.ascontiguousarray(k.indices),
            "indptr": np.ascontiguousarray(k.indptr),
        }
        total = sum(_aligned(a.nbytes) for a in arrays.values())
        seg = self._create(total, token)
        views: dict[str, ArrayView] = {}
        offset = 0
        for label, arr in arrays.items():
            np.ndarray(
                arr.shape, dtype=arr.dtype, buffer=seg.buf, offset=offset
            )[...] = arr
            views[label] = ArrayView(
                seg.name, str(arr.dtype), tuple(arr.shape), offset
            )
            offset = _aligned(offset + arr.nbytes)
        handle = CSRHandle(
            shape=(int(k.shape[0]), int(k.shape[1])), **views
        )
        self._operators[token] = handle
        while len(self._operators) > self._max_operators:
            self.release(next(iter(self._operators)))
        return handle

    def _block_segment(
        self, token: str, label: str, nbytes: int
    ) -> shared_memory.SharedMemory:
        existing = self._blocks.get((token, label))
        if existing is not None:
            seg = self._segments.get(existing.segment)
            if seg is not None and seg.size >= nbytes:
                return seg
            # Outgrown: retire the old segment for this slot.
            if seg is not None:
                self._token_segments.get(token, []).remove(seg.name)
                self._drop_segment(seg.name)
            del self._blocks[(token, label)]
        return self._create(nbytes, token)

    def publish_block(
        self, token: str, label: str, array: np.ndarray
    ) -> ArrayView:
        """Write an ``(n, k)`` float block into the token's ``label`` slot.

        Stored Fortran-ordered so a shard's contiguous column range is a
        contiguous (hence zero-copy sliceable) byte range.  The slot's
        segment is reused in place while its capacity suffices; only the
        block's values are (re)written — one memcpy per dispatch.
        """
        arr = np.asarray(array, dtype=float)
        require(arr.ndim == 2, "published blocks are (n, k) two-dimensional")
        seg = self._block_segment(token, label, arr.nbytes)
        view = ArrayView(seg.name, "float64", tuple(arr.shape), 0, "F")
        self._blocks[(token, label)] = view
        self.resolve(view)[...] = arr
        return view

    def alloc_block(
        self, token: str, label: str, shape: tuple[int, int]
    ) -> ArrayView:
        """Like :meth:`publish_block` but uninitialized (output blocks)."""
        nbytes = int(np.dtype(float).itemsize * shape[0] * shape[1])
        seg = self._block_segment(token, label, nbytes)
        view = ArrayView(seg.name, "float64", (int(shape[0]), int(shape[1])), 0, "F")
        self._blocks[(token, label)] = view
        return view

    def release(self, token: str) -> None:
        """Close and unlink every segment published under ``token``."""
        if not self._owned():
            return
        self._operators.pop(token, None)
        for key in [k for k in self._blocks if k[0] == token]:
            del self._blocks[key]
        for name in self._token_segments.pop(token, []):
            self._drop_segment(name)

    def release_all(self) -> None:
        """Tear everything down (tests; also registered at exit)."""
        if not self._owned():
            # Forked child: forget the parent's bookkeeping, touch nothing.
            self._segments.clear()
            self._operators.clear()
            self._blocks.clear()
            self._token_segments.clear()
            return
        for name in list(self._segments):
            self._drop_segment(name)
        self._operators.clear()
        self._blocks.clear()
        self._token_segments.clear()

    def live_segments(self) -> list[str]:
        """Names of currently owned segments (test hook)."""
        return list(self._segments)


_REGISTRY = SegmentRegistry()


def registry() -> SegmentRegistry:
    """The process-wide parent-side registry."""
    return _REGISTRY


def release_all_segments() -> None:
    """Unlink every registry segment (wired into ``shutdown_pools``/atexit)."""
    _REGISTRY.release_all()


atexit.register(release_all_segments)


# --------------------------------------------------------------------- worker
# Per-process attachment cache: segment name → mapped SharedMemory.  A
# steady-state worker attaches each named segment exactly once; entries are
# evicted oldest-first, but never while a live numpy view still exports the
# buffer (close() would raise BufferError — such entries stay resident).
_ATTACHED: dict[str, shared_memory.SharedMemory] = {}
_ATTACH_CAP = 256


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    # Resource-tracker discipline: every multiprocessing child — fork,
    # spawn and forkserver alike — shares the *parent's* tracker process
    # (``spawn_main`` hands children the tracker fd), so the registration
    # this attach performs on 3.8–3.12 is a set no-op there and must NOT
    # be undone: an unregister would strip the creator's crash-cleanup
    # entry and make the parent's later ``unlink`` a tracker KeyError.
    # 3.13+ skips the redundant registration outright via ``track=False``.
    seg = _ATTACHED.get(name)
    if seg is not None:
        _ATTACHED[name] = _ATTACHED.pop(name)  # keep hot
        return seg
    try:
        seg = shared_memory.SharedMemory(name=name, create=False, track=False)
    except TypeError:  # pre-3.13: no track parameter
        seg = shared_memory.SharedMemory(name=name, create=False)
    while len(_ATTACHED) >= _ATTACH_CAP:
        old_name = next(iter(_ATTACHED))
        old = _ATTACHED.pop(old_name)
        try:
            old.close()
        except BufferError:  # still viewed — keep it resident
            _ATTACHED[old_name] = old
            break
    _ATTACHED[name] = seg
    return seg


def attach_view(view: ArrayView, writable: bool = False) -> np.ndarray:
    """A zero-copy ndarray over a published segment (read-only by default)."""
    seg = _attach_segment(view.segment)
    arr = np.ndarray(
        view.shape, dtype=np.dtype(view.dtype), buffer=seg.buf,
        offset=view.offset, order=view.order,
    )
    if not writable:
        arr.flags.writeable = False
    return arr


def attach_csr(handle: CSRHandle) -> sp.csr_matrix:
    """A ``csr_matrix`` wrapping zero-copy read-only views — never copying.

    The three arrays alias the mapped segment bytes directly, so the
    operator a shard computes with is byte-identical to the parent's —
    which is what makes the serial/sharded bitwise contract checkable.
    """
    mat = sp.csr_matrix(
        (
            attach_view(handle.data),
            attach_view(handle.indices),
            attach_view(handle.indptr),
        ),
        shape=handle.shape,
        copy=False,
    )
    return mat


def detach_all() -> None:
    """Close every cached attachment (test hook; skips live-view segments)."""
    for name in list(_ATTACHED):
        seg = _ATTACHED.pop(name)
        try:
            seg.close()
        except BufferError:
            _ATTACHED[name] = seg
