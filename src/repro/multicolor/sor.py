"""Multicolor SOR sweeps and the m-step SSOR application (Algorithm 2).

The SSOR iteration under a multicolor ordering is a forward followed by a
backward multicolor SOR sweep.  The Conrad–Wallach (1979) technique stores
the partial neighbor sums computed in each half sweep in an auxiliary vector
``y`` so the double sweep costs only one sweep's worth of off-diagonal block
multiplies — ``nc·(nc−1)`` of them per preconditioner step, exactly as the
paper claims ("only as expensive as one Multicolor SOR iteration").

:class:`MStepSSOR` applies

```
M_m⁻¹ r = (α₀ I + α₁ G + … + α_{m−1} G^{m−1}) P⁻¹ r        (2.6)
```

for the SSOR splitting (ω = 1) via the Horner recurrence
``r̃ ← G r̃ + P⁻¹ (α_{m−s} r)``, ``s = 1…m``, each step realized as the
Conrad–Wallach double sweep with right-hand side ``α_{m−s}·r``.  The
published loop bounds are OCR-damaged in the scan; the version here is the
mathematically forced one (see DESIGN.md §6.1):

* backward sweeps run over the interior colors ``nc−2 … 1`` — the last
  color's backward solve has identical inputs to its forward solve, and the
  first color's backward solve would be overwritten unread by the next
  forward sweep;
* after each backward sweep the first color's *upper* neighbor sum is
  computed and saved (it feeds the next forward sweep's first solve), and
  the last color's saved sum is reset to the empty upper sum;
* after the final step the first color receives its closing solve with
  coefficient α₀ — the paper's explicit step (3)
  ``D₁ r̃₁ = −Σ_{j≥2} B₁ⱼ r̃ⱼ + y + α₀ r₁``.

``apply_reference`` implements the same operator transparently (full
forward + backward sweeps per step) and the test-suite proves the two paths
agree to machine precision.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.kernels.ops import bind_matvec_accumulate, matvec_accumulate
from repro.kernels.workspace import WorkspacePool
from repro.multicolor.blocked import BlockedMatrix
from repro.util import OperationCounter, inf_norm, require

__all__ = [
    "sor_forward_sweep",
    "sor_backward_sweep",
    "ssor_iteration",
    "multicolor_sor_solve",
    "MStepSSOR",
]


def _group_views(blocked: BlockedMatrix, x: np.ndarray) -> list[np.ndarray]:
    return [x[s] for s in blocked.group_slices]


def _block_sum(
    pairs, x_groups: list[np.ndarray], n: int, negate: bool = False
) -> np.ndarray:
    """``±Σ B_cj x_j`` over a cached ``(j, block)`` list (length-``n`` rows).

    The shared accumulation primitive of every sweep; seeding the
    accumulator with the first product (instead of zeros) saves one
    vector pass per call in the hot loops.
    """
    if not pairs:
        return np.zeros(n)
    j0, b0 = pairs[0]
    acc = b0 @ x_groups[j0]
    for j, block in pairs[1:]:
        acc += block @ x_groups[j]
    if negate:
        np.negative(acc, out=acc)
    return acc


def sor_forward_sweep(
    blocked: BlockedMatrix,
    x: np.ndarray,
    b: np.ndarray,
    omega: float = 1.0,
    counter: OperationCounter | None = None,
) -> None:
    """One forward multicolor SOR sweep, updating ``x`` in place.

    For each color ``c`` in increasing order:
    ``x_c ← (1−ω)·x_c + ω·D_c⁻¹(b_c − Σ_{j≠c} B_cj x_j)`` with the lower
    colors already holding their new values.
    """
    xg = _group_views(blocked, x)
    bg = _group_views(blocked, b)
    nc = blocked.n_groups
    offdiag = blocked.offdiag_block_list
    for c in range(nc):
        acc = _block_sum(offdiag[c], xg, blocked.diagonals[c].shape[0])
        update = (bg[c] - acc) / blocked.diagonals[c]
        if omega == 1.0:
            xg[c][:] = update
        else:
            xg[c][:] = (1.0 - omega) * xg[c] + omega * update
        if counter is not None:
            counter.extra["block_multiplies"] = (
                counter.extra.get("block_multiplies", 0) + len(blocked.blocks[c])
            )
            counter.extra["diag_solves"] = counter.extra.get("diag_solves", 0) + 1


def sor_backward_sweep(
    blocked: BlockedMatrix,
    x: np.ndarray,
    b: np.ndarray,
    omega: float = 1.0,
    counter: OperationCounter | None = None,
) -> None:
    """One backward multicolor SOR sweep (colors in decreasing order)."""
    xg = _group_views(blocked, x)
    bg = _group_views(blocked, b)
    nc = blocked.n_groups
    offdiag = blocked.offdiag_block_list
    for c in reversed(range(nc)):
        acc = _block_sum(offdiag[c], xg, blocked.diagonals[c].shape[0])
        update = (bg[c] - acc) / blocked.diagonals[c]
        if omega == 1.0:
            xg[c][:] = update
        else:
            xg[c][:] = (1.0 - omega) * xg[c] + omega * update
        if counter is not None:
            counter.extra["block_multiplies"] = (
                counter.extra.get("block_multiplies", 0) + len(blocked.blocks[c])
            )
            counter.extra["diag_solves"] = counter.extra.get("diag_solves", 0) + 1


def ssor_iteration(
    blocked: BlockedMatrix,
    x: np.ndarray,
    b: np.ndarray,
    omega: float = 1.0,
    counter: OperationCounter | None = None,
) -> None:
    """One (naive) SSOR iteration: forward then backward sweep, in place.

    This is the transparent double sweep — 2·nc·(nc−1) block multiplies —
    used as the reference against which the Conrad–Wallach path is verified.
    """
    sor_forward_sweep(blocked, x, b, omega, counter)
    sor_backward_sweep(blocked, x, b, omega, counter)


def multicolor_sor_solve(
    blocked: BlockedMatrix,
    b: np.ndarray,
    omega: float = 1.0,
    tol: float = 1e-10,
    maxiter: int = 10_000,
    x0: np.ndarray | None = None,
) -> tuple[np.ndarray, int, bool]:
    """Solve ``K x = b`` by multicolor SOR (Adams–Ortega 1982).

    Returns ``(x, iterations, converged)``; convergence is declared when the
    sweep changes no component by more than ``tol`` in absolute value.  SOR
    converges for SPD matrices whenever ``0 < ω < 2``.
    """
    require(0.0 < omega < 2.0, "SOR requires 0 < ω < 2 for SPD convergence")
    x = np.zeros_like(b, dtype=float) if x0 is None else np.array(x0, dtype=float)
    for iteration in range(1, maxiter + 1):
        previous = x.copy()
        sor_forward_sweep(blocked, x, b, omega)
        if inf_norm(x - previous) < tol:
            return x, iteration, True
    return x, maxiter, False


@dataclass
class MStepSSOR:
    """m-step (optionally parametrized) multicolor SSOR application.

    Parameters
    ----------
    blocked:
        The blocked color system.
    coefficients:
        ``(α₀, …, α_{m−1})`` of (2.6).  All ones reproduces the
        unparametrized m-step preconditioner (2.2).
    """

    blocked: BlockedMatrix
    coefficients: np.ndarray
    counter: OperationCounter = field(default_factory=OperationCounter)
    workspace: WorkspacePool = field(default_factory=WorkspacePool, repr=False)

    #: ``(n, k)`` block applications are per-column bitwise identical to
    #: single-vector ones (see :func:`repro.core.pcg.block_pcg`).
    block_capable = True

    def __post_init__(self) -> None:
        self.coefficients = np.atleast_1d(np.asarray(self.coefficients, dtype=float))
        require(self.coefficients.ndim == 1, "coefficients must be a vector")
        require(self.coefficients.size >= 1, "need at least one step (m ≥ 1)")

    @property
    def m(self) -> int:
        return int(self.coefficients.size)

    def _bound_sweep_ops(self):
        """Per-color sweep kernels over the *merged* block rows.

        ``(lower_ops, upper_ops, lower_counts, upper_counts)``:
        ``lower_ops[c]`` is an ``accumulate(x, out)`` closure for the whole
        lower block row (``None`` when empty), acting on the contiguous
        color prefix — one compiled-kernel call per color per sweep instead
        of one per block, bit-identical by construction (see
        :attr:`~repro.multicolor.blocked.BlockedMatrix.lower_merged`).  The
        guards are bound once (:func:`~repro.kernels.ops.bind_matvec_accumulate`),
        so the per-call cost no longer depends on the block width — which
        is what lets narrow sharded column groups pay serial-identical
        per-iteration overhead.  The count tables preserve the *logical*
        block-multiply numbers the paper's operation counts charge.
        Built lazily, cached for the applicator's lifetime.
        """
        cached = self.__dict__.get("_sweep_kernels")
        if cached is None:
            def bind(merged):
                return tuple(
                    None
                    if block is None
                    else (
                        bind_matvec_accumulate(block)
                        or (lambda x, out, b=block: matvec_accumulate(b, x, out))
                    )
                    for block in merged
                )

            cached = (
                bind(self.blocked.lower_merged),
                bind(self.blocked.upper_merged),
                tuple(len(pairs) for pairs in self.blocked.lower_block_list),
                tuple(len(pairs) for pairs in self.blocked.upper_block_list),
            )
            self.__dict__["_sweep_kernels"] = cached
        return cached

    # ------------------------------------------------------- fast application
    def apply(self, r: np.ndarray) -> np.ndarray:
        """``M_m⁻¹ r`` via the Conrad–Wallach merged sweeps (Algorithm 2).

        Accepts a vector ``(n,)`` or an ``(n, k)`` block of right-hand
        sides (one batched pass, per-column bit-identical to single
        applications); counters are charged **per column**, so a block
        application books exactly what ``k`` solo applications would.
        The inner loops run off the :class:`BlockedMatrix`'s cached sweep
        tables (per-color block lists, no dict probing) and out of pooled
        workspace buffers: the result vector, the per-color ``y``
        auxiliaries and the block-sum accumulators are all reused across
        applications, so a PCG solve's steady state allocates nothing here.
        The returned array is a pooled buffer, valid until the next
        ``apply`` on this object — copy it if it must outlive that.
        """
        blocked = self.blocked
        nc = blocked.n_groups
        m = self.m
        alphas = self.coefficients
        lower_ops, upper_ops, lower_counts, upper_counts = self._bound_sweep_ops()
        slices = blocked.group_slices
        diagonals = blocked.diagonals
        pool = self.workspace

        r = np.asarray(r, dtype=float)
        rt_pooled = pool.peek("rt")
        if rt_pooled is not None and np.may_share_memory(r, rt_pooled):
            # The caller fed us our own pooled result; overwriting it below
            # would silently destroy the input.
            r = r.copy()

        # Buffer bundle, memoized per input shape: the result rt, the α·r
        # scratch, and the per-color y/x auxiliaries.  None needs a
        # zero-fill — every element is written before it is read (the first
        # Horner step skips the then-empty upper sums outright, and every
        # later read sees a buffer block_sum fully rewrote) — and memoizing
        # skips the per-apply pool lookups, which a narrow sharded group
        # pays as a pure fixed cost thousands of times per solve.
        cache = self.__dict__.get("_apply_buffers")
        if cache is None or cache[0] != r.shape:
            tail = r.shape[1:]
            group_shapes = [(d.shape[0],) + tail for d in diagonals]
            cache = (
                r.shape,
                pool.get("rt", r.shape),
                pool.get("ar", r.shape),
                pool.get_list("y", group_shapes),
                pool.get_list("x", group_shapes),
                (
                    diagonals
                    if r.ndim == 1
                    # Expanded to full width: dividing by a contiguous
                    # (g, k) block is ~2× faster than broadcasting the
                    # (g, 1) view, with bit-identical quotients.
                    else [
                        np.ascontiguousarray(
                            np.broadcast_to(d[:, None], d.shape + tail)
                        )
                        for d in diagonals
                    ]
                ),
            )
            self.__dict__["_apply_buffers"] = cache
        _, rt, ar, y, xs, divisors = cache
        xg = _group_views(blocked, rt)
        arg = _group_views(blocked, ar)
        multiplies = 0
        solves = 0

        def lower_sum(c: int, buf: np.ndarray) -> np.ndarray:
            # Σ_{j<c} B_cj x_j as one merged product on the color prefix.
            buf.fill(0.0)
            op = lower_ops[c]
            if op is not None:
                op(rt[: slices[c].start], buf)
            return buf

        def upper_sum(c: int, buf: np.ndarray) -> np.ndarray:
            # Σ_{j>c} B_cj x_j as one merged product on the color suffix.
            buf.fill(0.0)
            op = upper_ops[c]
            if op is not None:
                op(rt[slices[c].stop :], buf)
            return buf

        def solve_into(c: int, x: np.ndarray, yc) -> None:
            # zc ← (α·r_c − y_c − x) / D_c, reading α·r from the per-step
            # batched product.  Subtracting the positive sums is bitwise
            # what adding pre-negated ones was (IEEE a − s ≡ a + (−s)) and
            # saves the sweeps one negation pass per sum.
            zc = xg[c]
            if yc is None:
                np.subtract(arg[c], x, out=zc)
            else:
                np.subtract(arg[c], yc, out=zc)
                zc -= x
            zc /= divisors[c]

        for s in range(1, m + 1):
            # One batched α_{m−s}·r for the whole step — per-color solves
            # then read their slice, same elementwise product, fewer
            # dispatches than a per-color multiply.
            np.multiply(r, alphas[m - s], out=ar)
            first = s == 1
            # Forward sweep c = 0 … nc−1; y[c] holds the upper sum from the
            # previous backward pass (none yet on the first step), x
            # accumulates the lower sum.
            for c in range(nc):
                x = lower_sum(c, xs[c])
                multiplies += lower_counts[c]
                solve_into(c, x, None if first else y[c])
                solves += 1
                y[c], xs[c] = xs[c], y[c]
            # Backward sweep over interior colors nc−2 … 1; y[c] holds the
            # lower sum from the forward pass.
            for c in range(nc - 2, 0, -1):
                x = upper_sum(c, xs[c])
                multiplies += upper_counts[c]
                solve_into(c, x, y[c])
                solves += 1
                y[c], xs[c] = xs[c], y[c]
            # The last color's upper sum is empty; reset for the next forward.
            if nc >= 2:
                y[nc - 1].fill(0.0)
            # First color: compute its upper sum with the final values of this
            # step.  It closes the step (coefficient α₀) on the last step —
            # the paper's explicit step (3) — and otherwise feeds the next
            # forward sweep's first solve.
            if nc >= 2:
                x = upper_sum(0, xs[0])
                multiplies += upper_counts[0]
                if s == m:
                    solve_into(0, x, None)
                    solves += 1
                else:
                    y[0], xs[0] = xs[0], y[0]

        ncols = 1 if r.ndim == 1 else int(r.shape[1])
        self.counter.precond_applications += ncols
        self.counter.precond_steps += m * ncols
        self.counter.extra["block_multiplies"] = (
            self.counter.extra.get("block_multiplies", 0) + multiplies * ncols
        )
        self.counter.extra["diag_solves"] = (
            self.counter.extra.get("diag_solves", 0) + solves * ncols
        )
        return rt

    # -------------------------------------------------- reference application
    def apply_reference(self, r: np.ndarray) -> np.ndarray:
        """``M_m⁻¹ r`` via explicit Horner steps with full SSOR double sweeps.

        ``r̃ ← G r̃ + P⁻¹(α_{m−s} r)`` where one stationary step on
        ``K z = α r`` *is* the forward+backward sweep pair.  Used by tests to
        pin down :meth:`apply`; twice the block multiplies, same result.
        """
        r = np.asarray(r, dtype=float)
        rt = np.zeros_like(r)
        m = self.m
        for s in range(1, m + 1):
            ssor_iteration(self.blocked, rt, self.coefficients[m - s] * r)
        return rt

    def as_dense_operator(self) -> np.ndarray:
        """Materialize ``M_m⁻¹`` by applying it to unit vectors (tests only)."""
        n = self.blocked.n
        out = np.empty((n, n))
        eye = np.eye(n)
        for col in range(n):
            out[:, col] = self.apply(eye[:, col])
        return out
