"""Permutation between natural and multicolor orderings.

"If the equations at the nodes in Figure 1 are numbered by these six colors
from bottom to top, left to right, the system has the form (3.1)."  This
module holds that renumbering: group-by-group, preserving the natural order
within each group (which for the plate *is* bottom-to-top/left-to-right).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np
import scipy.sparse as sp

from repro.util import permutation_matrix, require

__all__ = ["MulticolorOrdering"]


@dataclass(frozen=True)
class MulticolorOrdering:
    """Bijection between natural unknowns and color-grouped unknowns.

    Attributes
    ----------
    groups:
        Group index of every unknown *in natural order*.
    labels:
        Human-readable group names, one per group.
    """

    groups: np.ndarray
    labels: tuple[str, ...]

    @classmethod
    def from_groups(
        cls, groups: np.ndarray, labels: tuple[str, ...] | None = None
    ) -> "MulticolorOrdering":
        groups = np.asarray(groups, dtype=np.int64)
        require(groups.ndim == 1, "groups must be a vector")
        n_groups = int(groups.max()) + 1 if groups.size else 0
        require(
            bool(np.all(groups >= 0)), "group indices must be non-negative"
        )
        if labels is None:
            labels = tuple(f"g{c}" for c in range(n_groups))
        require(len(labels) >= n_groups, "not enough labels for the groups used")
        return cls(groups=groups, labels=tuple(labels))

    @property
    def n(self) -> int:
        return int(self.groups.size)

    @property
    def n_groups(self) -> int:
        return len(self.labels)

    @cached_property
    def counts(self) -> np.ndarray:
        """Number of unknowns in each group."""
        return np.bincount(self.groups, minlength=self.n_groups)

    @cached_property
    def perm(self) -> np.ndarray:
        """``perm[new] = old``: natural index of each multicolor position.

        Stable sort by group, so the within-group order equals the natural
        order (the paper's bottom-to-top, left-to-right numbering).
        """
        return np.argsort(self.groups, kind="stable")

    @cached_property
    def inverse_perm(self) -> np.ndarray:
        """``inverse_perm[old] = new``."""
        inv = np.empty_like(self.perm)
        inv[self.perm] = np.arange(self.n)
        return inv

    @cached_property
    def group_slices(self) -> tuple[slice, ...]:
        """Slice of the multicolor ordering occupied by each group."""
        offsets = np.concatenate([[0], np.cumsum(self.counts)])
        return tuple(
            slice(int(offsets[c]), int(offsets[c + 1])) for c in range(self.n_groups)
        )

    @cached_property
    def matrix(self) -> sp.csr_matrix:
        """Sparse permutation matrix ``P`` with ``P x_natural = x_multicolor``."""
        return permutation_matrix(self.perm)

    # ----------------------------------------------------------- conversions
    def permute_vector(self, x: np.ndarray) -> np.ndarray:
        """Natural → multicolor ordering."""
        x = np.asarray(x)
        require(x.shape[0] == self.n, "vector length mismatch")
        return x[self.perm]

    def unpermute_vector(self, x: np.ndarray) -> np.ndarray:
        """Multicolor → natural ordering."""
        x = np.asarray(x)
        require(x.shape[0] == self.n, "vector length mismatch")
        out = np.empty_like(x)
        out[self.perm] = x
        return out

    def permute_matrix(self, k: sp.spmatrix) -> sp.csr_matrix:
        """Symmetric reordering ``P K Pᵀ`` into multicolor ordering."""
        require(k.shape == (self.n, self.n), "matrix shape mismatch")
        p = self.matrix
        return (p @ k.tocsr() @ p.T).tocsr()

    def split_vector(self, x: np.ndarray) -> list[np.ndarray]:
        """Multicolor-ordered vector → per-group views (no copies)."""
        require(x.shape[0] == self.n, "vector length mismatch")
        return [x[s] for s in self.group_slices]

    def group_of_position(self, new_index: int) -> int:
        """Group of a multicolor-ordered position."""
        return int(self.groups[self.perm[new_index]])
