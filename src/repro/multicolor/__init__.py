"""Multicolor orderings and the block machinery of Adams–Ortega (1982).

The paper's preconditioner hinges on reordering the unknowns by *color
groups* so the system takes the block form (3.1): diagonal blocks that are
genuinely diagonal matrices, with all coupling pushed into off-diagonal
blocks.  Under that structure each Gauss–Seidel color update is a vector
divide plus sparse block multiplies — the property that makes SSOR
vectorizable (CYBER) and parallelizable (Finite Element Machine).

* :mod:`repro.multicolor.coloring` — group construction and validation,
  plus a greedy coloring fallback for irregular regions (the open problem
  noted in the paper's conclusions);
* :mod:`repro.multicolor.ordering` — the permutation between natural and
  multicolor orderings;
* :mod:`repro.multicolor.blocked` — the blocked matrix of system (3.1);
* :mod:`repro.multicolor.sor` — multicolor SOR sweeps and the m-step SSOR
  application with the Conrad–Wallach auxiliary vector (Algorithm 2).
"""

from repro.multicolor.blocked import BlockedMatrix
from repro.multicolor.coloring import (
    greedy_multicolor,
    groups_from_node_coloring,
    validate_groups,
)
from repro.multicolor.ordering import MulticolorOrdering
from repro.multicolor.sor import (
    MStepSSOR,
    multicolor_sor_solve,
    sor_backward_sweep,
    sor_forward_sweep,
    ssor_iteration,
)

__all__ = [
    "BlockedMatrix",
    "greedy_multicolor",
    "groups_from_node_coloring",
    "validate_groups",
    "MulticolorOrdering",
    "MStepSSOR",
    "multicolor_sor_solve",
    "sor_backward_sweep",
    "sor_forward_sweep",
    "ssor_iteration",
]
