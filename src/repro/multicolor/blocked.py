"""The blocked color system (3.1).

After multicolor reordering the matrix takes the form

```
    [ D₁  B₁₂ B₁₃ … ]
K = [ B₁₂ᵀ D₂  B₂₃ … ]        D_c diagonal matrices,
    [ …            ]          B_cj sparse blocks (≤ a few diagonals each)
```

:class:`BlockedMatrix` stores the diagonal of every ``D_c`` as a vector and
every nonempty off-diagonal block as CSR, which is the storage Algorithms 2
and 3 operate on.  For the plate's six groups, the same-node coupling blocks
``B₁₂, B₃₄, B₅₆`` are themselves diagonal matrices — validated here because
the paper's CYBER implementation depends on it (multiplication by diagonals).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np
import scipy.sparse as sp

from repro.multicolor.coloring import validate_groups
from repro.multicolor.ordering import MulticolorOrdering
from repro.util import is_diagonal, require

__all__ = ["BlockedMatrix"]


@dataclass(frozen=True)
class BlockedMatrix:
    """Multicolor block view of an SPD matrix.

    Attributes
    ----------
    ordering:
        The multicolor ordering used to build the blocks.
    permuted:
        The full reordered matrix ``P K Pᵀ`` (kept for whole-matrix products
        such as ``K p`` in the outer CG iteration).
    diagonals:
        ``diagonals[c]`` is the (strictly positive) diagonal of ``D_c``.
    blocks:
        ``blocks[c][j]`` is block ``(c, j)`` in CSR form for ``c ≠ j``;
        structurally empty blocks are omitted.
    """

    ordering: MulticolorOrdering
    permuted: sp.csr_matrix
    diagonals: tuple[np.ndarray, ...]
    blocks: dict[int, dict[int, sp.csr_matrix]]

    @classmethod
    def from_matrix(
        cls,
        k: sp.spmatrix,
        ordering: MulticolorOrdering,
        validate: bool = True,
    ) -> "BlockedMatrix":
        """Build the block view; raises if the group map is not a coloring."""
        if validate:
            validate_groups(k, ordering.groups)
        permuted = ordering.permute_matrix(k)
        slices = ordering.group_slices
        nc = ordering.n_groups

        diagonals = []
        blocks: dict[int, dict[int, sp.csr_matrix]] = {}
        for c in range(nc):
            rows = permuted[slices[c]]
            dc = rows[:, slices[c]].diagonal().copy()
            require(bool(np.all(dc > 0)), f"group {c} has a non-positive diagonal")
            diagonals.append(dc)
            row_blocks: dict[int, sp.csr_matrix] = {}
            for j in range(nc):
                if j == c:
                    continue
                block = rows[:, slices[j]].tocsr()
                if block.nnz:
                    row_blocks[j] = block
            blocks[c] = row_blocks
        return cls(
            ordering=ordering,
            permuted=permuted,
            diagonals=tuple(diagonals),
            blocks=blocks,
        )

    # ----------------------------------------------------------------- sizes
    @property
    def n(self) -> int:
        return self.permuted.shape[0]

    @property
    def n_groups(self) -> int:
        return self.ordering.n_groups

    @property
    def group_slices(self) -> tuple[slice, ...]:
        return self.ordering.group_slices

    @cached_property
    def n_offdiagonal_blocks(self) -> int:
        """Number of structurally nonzero off-diagonal blocks."""
        return sum(len(row) for row in self.blocks.values())

    # ---------------------------------------------------- cached sweep tables
    # The SOR/SSOR sweeps walk fixed subsets of each block row thousands of
    # times per solve; these tables are computed once so the inner loops do
    # no dict lookups or per-sweep counting.

    @cached_property
    def lower_block_list(self) -> tuple[tuple[tuple[int, sp.csr_matrix], ...], ...]:
        """``lower_block_list[c]`` = the ``(j, B_cj)`` pairs with ``j < c``."""
        return tuple(
            tuple((j, self.blocks[c][j]) for j in range(c) if j in self.blocks[c])
            for c in range(self.n_groups)
        )

    @cached_property
    def upper_block_list(self) -> tuple[tuple[tuple[int, sp.csr_matrix], ...], ...]:
        """``upper_block_list[c]`` = the ``(j, B_cj)`` pairs with ``j > c``."""
        return tuple(
            tuple(
                (j, self.blocks[c][j])
                for j in range(c + 1, self.n_groups)
                if j in self.blocks[c]
            )
            for c in range(self.n_groups)
        )

    @cached_property
    def lower_merged(self) -> tuple[sp.csr_matrix | None, ...]:
        """``lower_merged[c]`` = ``K[rows_c, :start_c]`` — the whole lower
        block row as **one** CSR operand.

        Because the multicolor groups occupy contiguous ascending slices,
        ``lower_merged[c] @ x[:start_c]`` equals the sequential per-block
        sum ``Σ_{j<c} B_cj x_j`` *bitwise*: each CSR row holds the blocks'
        entries in ascending column order, which is exactly the addition
        sequence the per-block loop performs.  One kernel call per color
        instead of one per block — the sweeps' per-call fixed cost is what
        narrow sharded column groups are most sensitive to.

        ``None`` marks an empty row (color 0, or no lower coupling).
        """
        slices = self.group_slices
        merged: list[sp.csr_matrix | None] = []
        for c in range(self.n_groups):
            start = slices[c].start
            block = self.permuted[slices[c], :start].tocsr() if start else None
            merged.append(block if block is not None and block.nnz else None)
        return tuple(merged)

    @cached_property
    def upper_merged(self) -> tuple[sp.csr_matrix | None, ...]:
        """``upper_merged[c]`` = ``K[rows_c, stop_c:]`` — the whole upper
        block row as one CSR operand (see :attr:`lower_merged`)."""
        slices = self.group_slices
        merged: list[sp.csr_matrix | None] = []
        for c in range(self.n_groups):
            stop = slices[c].stop
            block = self.permuted[slices[c], stop:].tocsr() if stop < self.n else None
            merged.append(block if block is not None and block.nnz else None)
        return tuple(merged)

    @cached_property
    def offdiag_block_list(self) -> tuple[tuple[tuple[int, sp.csr_matrix], ...], ...]:
        """``offdiag_block_list[c]`` = all ``(j, B_cj)`` pairs, ``j ≠ c``."""
        return tuple(
            self.lower_block_list[c] + self.upper_block_list[c]
            for c in range(self.n_groups)
        )

    # ------------------------------------------------------------- operations
    def matvec(self, x: np.ndarray) -> np.ndarray:
        """``K x`` in multicolor ordering (uses the full reordered CSR)."""
        return self.permuted @ x

    def matvec_blockwise(self, x: np.ndarray) -> np.ndarray:
        """``K x`` accumulated block by block (used to cross-check blocks)."""
        out = np.empty_like(x, dtype=float)
        slices = self.group_slices
        for c in range(self.n_groups):
            acc = self.diagonals[c] * x[slices[c]]
            for j, block in self.blocks[c].items():
                acc += block @ x[slices[j]]
            out[slices[c]] = acc
        return out

    def block_row_sum(
        self, c: int, x_groups: list[np.ndarray], js: range | list[int]
    ) -> np.ndarray:
        """``Σ_{j∈js} B_cj x_j`` — the sweep accumulation primitive."""
        acc = np.zeros(self.diagonals[c].shape[0])
        row = self.blocks[c]
        for j in js:
            block = row.get(j)
            if block is not None:
                acc += block @ x_groups[j]
        return acc

    # ------------------------------------------------------------- validation
    def same_node_blocks_diagonal(self, n_components: int = 2) -> bool:
        """Whether blocks coupling components of the same color are diagonal.

        For the plate's group order (Ru, Rv, Bu, Bv, Gu, Gv) these are
        ``B₁₂, B₃₄, B₅₆`` in the paper's 1-based numbering.
        """
        for base in range(0, self.n_groups - n_components + 1, n_components):
            for i in range(n_components):
                for j in range(i + 1, n_components):
                    block = self.blocks[base + i].get(base + j)
                    if block is not None and not is_diagonal(block):
                        return False
        return True

    def symmetry_residual(self) -> float:
        """``max |B_cj − B_jcᵀ|`` over all stored blocks (0 for symmetric K)."""
        worst = 0.0
        for c, row in self.blocks.items():
            for j, block in row.items():
                other = self.blocks[j].get(c)
                if other is None:
                    worst = max(worst, float(np.max(np.abs(block.data))) if block.nnz else 0.0)
                    continue
                diff = (block - other.T).tocoo()
                if diff.nnz:
                    worst = max(worst, float(np.max(np.abs(diff.data))))
        return worst
