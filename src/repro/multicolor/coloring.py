"""Color-group construction and validation.

A *group map* assigns every unknown an integer group such that no two
distinct unknowns in the same group are coupled by the matrix — exactly the
condition that makes the reordered diagonal blocks diagonal matrices
(system 3.1).  For the plate this map is derived from the mesh's R/B/G node
coloring crossed with the displacement component (six groups); for general
matrices a greedy graph coloring provides the map, addressing the "irregular
regions" extension the paper leaves open.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.util import require

__all__ = ["groups_from_node_coloring", "validate_groups", "greedy_multicolor"]


def groups_from_node_coloring(
    node_colors: np.ndarray,
    dof_node: np.ndarray,
    dof_component: np.ndarray,
    n_components: int = 2,
) -> np.ndarray:
    """Group map ``n_components·color + component`` for vector problems.

    With R/B/G node colors and (u, v) components this yields the paper's six
    groups R(u), R(v), B(u), B(v), G(u), G(v) in that order.

    Parameters
    ----------
    node_colors:
        Color of every mesh node.
    dof_node, dof_component:
        Node index and component (0..n_components−1) of every unknown.
    """
    node_colors = np.asarray(node_colors, dtype=np.int64)
    dof_node = np.asarray(dof_node, dtype=np.int64)
    dof_component = np.asarray(dof_component, dtype=np.int64)
    require(dof_node.shape == dof_component.shape, "dof arrays must align")
    require(
        bool(np.all((dof_component >= 0) & (dof_component < n_components))),
        "component out of range",
    )
    return n_components * node_colors[dof_node] + dof_component


def validate_groups(k: sp.spmatrix, groups: np.ndarray) -> None:
    """Check that ``groups`` is a proper coloring of the matrix graph.

    Raises ``ValueError`` if some off-diagonal nonzero couples two unknowns
    of the same group — the condition under which a reordered diagonal block
    would *not* be a diagonal matrix and Algorithm 2's vector divides would
    be invalid.
    """
    groups = np.asarray(groups)
    require(groups.shape == (k.shape[0],), "group map has wrong length")
    coo = k.tocoo()
    off = coo.row != coo.col
    bad = off & (groups[coo.row] == groups[coo.col]) & (coo.data != 0)
    if np.any(bad):
        i = int(coo.row[bad][0])
        j = int(coo.col[bad][0])
        raise ValueError(
            f"unknowns {i} and {j} are coupled but share group {int(groups[i])}; "
            "the multicolor diagonal blocks would not be diagonal"
        )


def greedy_multicolor(k: sp.spmatrix, order: str = "degree") -> np.ndarray:
    """Greedy proper coloring of the matrix graph of ``k``.

    Intended for irregular regions where no closed-form coloring exists (the
    paper's concluding open problem).  Vertices are visited in descending
    degree order (``order="degree"``, the Welsh–Powell heuristic) or natural
    order (``order="natural"``); each receives the smallest color unused by
    its already-colored neighbors.  The result always satisfies
    :func:`validate_groups`; the number of colors is at most
    ``max_degree + 1``.
    """
    require(k.shape[0] == k.shape[1], "matrix must be square")
    n = k.shape[0]
    csr = k.tocsr()
    colors = -np.ones(n, dtype=np.int64)

    if order == "degree":
        degrees = np.diff(csr.indptr)
        visit = np.argsort(-degrees, kind="stable")
    elif order == "natural":
        visit = np.arange(n)
    else:  # pragma: no cover - defensive
        raise ValueError(f"unknown visit order {order!r}")

    for node in visit:
        row = csr.indices[csr.indptr[node] : csr.indptr[node + 1]]
        taken = {int(colors[j]) for j in row if j != node and colors[j] >= 0}
        color = 0
        while color in taken:
            color += 1
        colors[node] = color
    return colors
