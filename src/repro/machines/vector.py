"""The vector-machine execution layer.

:class:`VectorMachine` executes real NumPy arithmetic while charging every
primitive to a :class:`~repro.machines.timing.VectorTimingModel` and
tallying operation counts.  The CYBER solver
(:mod:`repro.machines.cyber`) is written *only* in terms of these
primitives, so its simulated seconds follow mechanically from the published
machine characteristics — and its numerics can be pinned to the reference
solver in tests.

The control-vector feature is modeled by :meth:`masked_store`: the store is
suppressed on masked (constrained) slots but the operation is charged at
full vector length, exactly the trade the paper makes to maximize vector
length ("the actual updating … is prohibited by the control vector feature
… for large a and b little inefficiency is incurred").
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.kernels import ops as kernel_ops
from repro.machines.diagonals import DiagonalStorage
from repro.machines.timing import VectorTimingModel

__all__ = ["VectorMachine", "VectorOpLog"]


@dataclass
class VectorOpLog:
    """Counts and charged seconds per primitive kind."""

    counts: dict[str, int] = field(default_factory=dict)
    seconds: dict[str, float] = field(default_factory=dict)

    def charge(self, kind: str, seconds: float) -> None:
        self.counts[kind] = self.counts.get(kind, 0) + 1
        self.seconds[kind] = self.seconds.get(kind, 0.0) + seconds

    def total_seconds(self) -> float:
        return float(sum(self.seconds.values()))

    def breakdown(self) -> dict[str, tuple[int, float]]:
        return {
            kind: (self.counts[kind], self.seconds[kind])
            for kind in sorted(self.counts)
        }


class VectorMachine:
    """Executes vector primitives and accounts their cost."""

    def __init__(self, timing: VectorTimingModel):
        self.timing = timing
        self.log = VectorOpLog()

    # ------------------------------------------------------------- elementwise
    def _charge_vec(self, kind: str, n: int, n_ops: int = 1) -> None:
        self.log.charge(kind, self.timing.vector_op_time(n, n_ops))

    def charge(self, kind: str, n: int, width: int = 1) -> None:
        """Charge one vector (or ``(n, width)``-block) op without executing it.

        The structural charge-replay entry point: backend-dispatched
        numerics (the kernel-routed preconditioner of the CYBER simulator)
        compute outside the machine's primitives, while the charge stream
        stays exactly that of the paper's algorithm.  Block ops pay a
        single pipeline startup for the whole ``n·width``-element stream —
        see :meth:`VectorTimingModel.block_op_time`.
        """
        if width == 1:
            self.log.charge(kind, self.timing.vector_op_time(n))
        else:
            self.log.charge(kind, self.timing.block_op_time(n, width))

    def add(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        self._charge_vec("add", a.shape[0])
        return a + b

    def subtract(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        self._charge_vec("subtract", a.shape[0])
        return a - b

    def multiply(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        self._charge_vec("multiply", a.shape[0])
        return a * b

    def divide(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        self._charge_vec("divide", a.shape[0])
        return a / b

    def scale(self, alpha: float, a: np.ndarray) -> np.ndarray:
        self._charge_vec("scale", a.shape[0])
        return alpha * a

    def axpy(self, alpha: float, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """``y + α·x`` — the linked-triad the CYBER pipes in one pass.

        Executed through the fused kernel (one temporary instead of two),
        mirroring in numpy what the linked triad is in hardware.
        """
        self._charge_vec("axpy", x.shape[0])
        return kernel_ops.axpy(alpha, x, y)

    def copy(self, a: np.ndarray) -> np.ndarray:
        self._charge_vec("copy", a.shape[0])
        return a.copy()

    def fill(self, n: int, value: float = 0.0) -> np.ndarray:
        self._charge_vec("fill", n)
        return np.full(n, value)

    # ------------------------------------------------------------- reductions
    def dot(self, a: np.ndarray, b: np.ndarray) -> float:
        """Inner product — charged with the partial-sum penalty."""
        self.log.charge("dot", self.timing.dot_time(a.shape[0]))
        return float(np.dot(a, b))

    def abs_max(self, a: np.ndarray) -> float:
        """``‖a‖_∞`` via the vector absolute-value + max hardware."""
        self.log.charge("abs_max", self.timing.dot_time(a.shape[0]))
        return float(np.max(np.abs(a))) if a.size else 0.0

    def scalar(self, n_ops: int = 1) -> None:
        """Charge scalar-unit work (α, β, convergence bookkeeping)."""
        self.log.charge("scalar", self.timing.scalar_op_time(n_ops))

    # ----------------------------------------------------------- control vector
    def masked_store(
        self, dst: np.ndarray, src: np.ndarray, store_mask: np.ndarray
    ) -> np.ndarray:
        """Store ``src`` into ``dst`` where ``store_mask`` — full-length cost."""
        self._charge_vec("masked_store", dst.shape[0])
        out = dst.copy()
        out[store_mask] = src[store_mask]
        return out

    def apply_mask(self, a: np.ndarray, keep_mask: np.ndarray) -> np.ndarray:
        """Zero the slots excluded by ``keep_mask``.

        Free of charge: the control vector rides along with the instruction
        that produced ``a`` — suppressing stores costs nothing extra on this
        hardware.
        """
        out = a.copy()
        out[~keep_mask] = 0.0
        return out

    # ------------------------------------------------------- matrix primitives
    def diag_matvec_accumulate(
        self, storage: DiagonalStorage, x: np.ndarray, out: np.ndarray
    ) -> np.ndarray:
        """``out += block @ x`` by diagonals; one multiply-add per diagonal."""
        for index in range(storage.n_diagonals):
            start, stop = storage.diagonal_span(index)
            self._charge_vec("diag_madd", stop - start)
        return storage.matvec(x, out=out)

    # ------------------------------------------------------------- accounting
    @property
    def elapsed_seconds(self) -> float:
        return self.log.total_seconds()

    def reset(self) -> None:
        self.log = VectorOpLog()
