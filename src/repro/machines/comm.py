"""Communication accounting for the Finite Element Machine simulator.

Tracks records and words per directed processor pair, exactly as the paper
describes the I/O: "the values of each color to be sent to a given neighbor
can be packaged and sent as one record" — so an *exchange event* costs one
record latency plus a per-word transfer time, per neighbor, per direction.

Also models the two global mechanisms:

* the **signal flag network** used by the convergence test (each processor
  raises a flag; the machine synchronizes and tests all-raised), and
* the **global reduction** needed by the two inner products — either the
  software store-and-forward path of the 1983 machine (O(P)) or the
  sum/max hardware circuit (O(log₂ P), Jordan 1979) that the paper says
  "was designed ... as a result" of the inner-product bottleneck.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.machines.timing import ArrayTimingModel

__all__ = ["CommLog"]


@dataclass
class CommLog:
    """Aggregated traffic per directed processor pair."""

    timing: ArrayTimingModel
    records: dict[tuple[int, int], int] = field(default_factory=dict)
    words: dict[tuple[int, int], int] = field(default_factory=dict)
    reductions: int = 0
    flag_syncs: int = 0

    def add_record(self, src: int, dst: int, n_words: int) -> float:
        """Log one packaged record; returns its transfer time."""
        if n_words <= 0:
            return 0.0
        key = (src, dst)
        self.records[key] = self.records.get(key, 0) + 1
        self.words[key] = self.words.get(key, 0) + n_words
        return self.timing.record_time(n_words)

    def add_reduction(self, n_procs: int, mode: str) -> float:
        self.reductions += 1
        return self.timing.reduction_time(n_procs, mode)

    def add_flag_sync(self) -> float:
        self.flag_syncs += 1
        return self.timing.flag_sync_time

    # ------------------------------------------------------------- summaries
    @property
    def total_records(self) -> int:
        return sum(self.records.values())

    @property
    def total_words(self) -> int:
        return sum(self.words.values())

    def traffic_matrix(self, n_procs: int) -> list[list[int]]:
        """Words sent (row = src, col = dst)."""
        out = [[0] * n_procs for _ in range(n_procs)]
        for (src, dst), w in self.words.items():
            out[src][dst] = w
        return out

    def conservation_ok(self) -> bool:
        """Every send has a matching receive (bookkeeping sanity)."""
        return all(w >= 0 for w in self.words.values())
