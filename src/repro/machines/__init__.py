"""Machine simulators: the CYBER 203/205 and the Finite Element Machine.

Both 1983 machines are gone, so both are simulated the same way: the
numerics execute for real (NumPy, identical to the reference solver) while
a calibrated cost model charges time to every primitive the paper's
implementation performs — vector pipelines, control-vector masking and
matvec-by-diagonals on the CYBER (§3.1); local-link record exchanges, the
signal-flag network and global reductions on the Finite Element Machine
(§3.2).  DESIGN.md §4 documents the calibration and why it preserves the
paper's conclusions.
"""

from repro.machines.comm import CommLog
from repro.machines.cyber import CyberMachine, CyberResult
from repro.machines.diagonals import DiagonalStorage
from repro.machines.fem_machine import FEMResult, FiniteElementMachine, speedup_table
from repro.machines.spmd import MessageLedger, SPMDResult, SPMDSolver
from repro.machines.timing import (
    CYBER_203,
    CYBER_205,
    FEM_1983,
    ArrayTimingModel,
    VectorTimingModel,
)
from repro.machines.topology import LINK_DIRECTIONS, Assignment, ProcessorGrid
from repro.machines.vector import VectorMachine, VectorOpLog

__all__ = [
    "CommLog",
    "CyberMachine",
    "CyberResult",
    "DiagonalStorage",
    "FEMResult",
    "FiniteElementMachine",
    "speedup_table",
    "MessageLedger",
    "SPMDResult",
    "SPMDSolver",
    "CYBER_203",
    "CYBER_205",
    "FEM_1983",
    "ArrayTimingModel",
    "VectorTimingModel",
    "LINK_DIRECTIONS",
    "Assignment",
    "ProcessorGrid",
    "VectorMachine",
    "VectorOpLog",
]
