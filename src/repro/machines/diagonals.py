"""Matrix storage and multiplication by diagonals (Madsen–Rodrique–Karush).

On the CYBER, a sparse matrix-vector product vectorizes when the matrix is
stored by its nonzero *diagonals*: each diagonal contributes one long
multiply-add over contiguous storage (equation 3.2 of the paper shows the
diagonal structure of the six-color plate system).  Under the multicolor
numbering with constrained nodes included, every block of (3.1) has only a
handful of diagonals — the diagonal blocks exactly one, the same-node
blocks one, and each cross-color block at most three (one per neighbor of
that color in the Figure-2 stencil).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.util import require

__all__ = ["DiagonalStorage"]


@dataclass(frozen=True)
class DiagonalStorage:
    """A (possibly rectangular) block stored by its nonzero diagonals.

    Diagonal ``k`` holds entries ``block[i, i + k]``; entry ``j`` of
    ``data[k]`` is ``block[rows_of_k[j], rows_of_k[j] + k]`` where the row
    range is the valid span ``max(0, −k) … min(nrows, ncols − k)``.
    """

    shape: tuple[int, int]
    offsets: tuple[int, ...]
    data: tuple[np.ndarray, ...]

    @classmethod
    def from_block(cls, block: sp.spmatrix, prune: bool = True) -> "DiagonalStorage":
        """Extract all structurally nonzero diagonals of ``block``.

        ``prune`` drops diagonals that are numerically zero everywhere
        (which arise from exact cancellations in the assembled stiffness).
        """
        coo = block.tocoo()
        nrows, ncols = coo.shape
        if coo.nnz == 0:
            return cls(shape=(nrows, ncols), offsets=(), data=())
        diag_offsets = np.unique(coo.col - coo.row)
        offsets = []
        arrays = []
        for k in diag_offsets:
            start = max(0, -int(k))
            stop = min(nrows, ncols - int(k))
            if stop <= start:
                continue
            seg = np.zeros(stop - start)
            mask = (coo.col - coo.row) == k
            seg[coo.row[mask] - start] = coo.data[mask]
            if prune and not np.any(seg):
                continue
            offsets.append(int(k))
            arrays.append(seg)
        return cls(shape=(nrows, ncols), offsets=tuple(offsets), data=tuple(arrays))

    @property
    def n_diagonals(self) -> int:
        return len(self.offsets)

    def diagonal_span(self, index: int) -> tuple[int, int]:
        """Valid row range ``(start, stop)`` of diagonal ``index``."""
        k = self.offsets[index]
        return max(0, -k), min(self.shape[0], self.shape[1] - k)

    def matvec(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """``y (+)= block @ x`` one diagonal at a time.

        Each diagonal is a single elementwise multiply-add over contiguous
        slices — the CYBER-friendly access pattern.  Accumulates into
        ``out`` when given.  ``x`` may be an ``(n,)`` vector or an
        ``(n, k)`` block; block columns see the identical elementwise
        multiply-adds a vector would, so they are bit-identical to ``k``
        single applications.
        """
        require(x.shape[0] == self.shape[1], "input length mismatch")
        if out is None:
            shape = (self.shape[0],) if x.ndim == 1 else (self.shape[0], x.shape[1])
            y = np.zeros(shape)
        else:
            y = out
        require(y.shape[0] == self.shape[0], "output length mismatch")
        for index, k in enumerate(self.offsets):
            start, stop = self.diagonal_span(index)
            seg = self.data[index]
            if x.ndim == 2:
                seg = seg[:, None]
            y[start:stop] += seg * x[start + k : stop + k]
        return y

    def to_csr(self) -> sp.csr_matrix:
        """Reconstruct the block (round-trip testing)."""
        rows = []
        cols = []
        vals = []
        for index, k in enumerate(self.offsets):
            start, stop = self.diagonal_span(index)
            r = np.arange(start, stop)
            rows.append(r)
            cols.append(r + k)
            vals.append(self.data[index])
        if not rows:
            return sp.csr_matrix(self.shape)
        return sp.csr_matrix(
            (np.concatenate(vals), (np.concatenate(rows), np.concatenate(cols))),
            shape=self.shape,
        )

    def max_vector_length(self) -> int:
        """Longest diagonal (the vector length its multiply streams)."""
        if not self.data:
            return 0
        return max(seg.shape[0] for seg in self.data)
