"""The CYBER 203/205 implementation of the m-step SSOR PCG method (§3.1).

Reproduces the paper's vector-machine organization faithfully:

* **Padded color vectors.**  The six color groups R(u), R(v), B(u), B(v),
  G(u), G(v) are laid out contiguously *including the constrained nodes*,
  raising the maximum vector length from a·b/3 to a(b+1)/3 (the paper's
  ``v``).  Constrained slots are held at zero by the control-vector mask —
  stores there are suppressed at no extra cost, while every vector
  operation is charged at full padded length.
* **Matrix by diagonals.**  All 36 blocks of (3.1) — and hence the products
  ``K p``, ``B_jcᵀ r̃`` and ``B_cj r̃`` — are stored and multiplied by
  diagonals (Madsen–Rodrique–Karush 1976); each diagonal is one
  multiply-add stream.
* **Inner products** pay the partial-sum penalty of
  :meth:`~repro.machines.timing.VectorTimingModel.dot_time` ("considerably
  slower than the other vector operations").
* The m-step preconditioner runs the same Conrad–Wallach merged sweeps as
  :class:`repro.multicolor.sor.MStepSSOR`, expressed in vector primitives.

Numerics are exact (NumPy); only the clock is simulated.  The iterates are
identical (to roundoff-in-summation-order) to the reference Algorithm 1 on
the eliminated system, which the tests verify.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.fem.model_problems import PlateProblem
from repro.fem.plane_stress import assemble_plate_full
from repro.machines.diagonals import DiagonalStorage
from repro.machines.timing import CYBER_203, VectorTimingModel
from repro.machines.vector import VectorMachine
from repro.multicolor.ordering import MulticolorOrdering
from repro.util import require

__all__ = ["CyberResult", "CyberMachine"]


@dataclass
class CyberResult:
    """One Table-2 cell: a CYBER solve of the plate problem."""

    label: str
    m: int
    parametrized: bool
    iterations: int
    converged: bool
    seconds: float
    max_vector_length: int
    op_breakdown: dict[str, tuple[int, float]]
    u_natural: np.ndarray
    preconditioner_seconds: float
    outer_seconds: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CyberResult(m={self.label}, I={self.iterations}, "
            f"T={self.seconds:.4f}s, v={self.max_vector_length})"
        )


class CyberMachine:
    """The plate problem laid out for the CYBER, ready to solve repeatedly."""

    def __init__(
        self,
        problem: PlateProblem,
        timing: VectorTimingModel = CYBER_203,
    ):
        self.problem = problem
        self.timing = timing
        mesh = problem.mesh

        # Padded dof universe: 2·node + component over *all* nodes.
        n_nodes = mesh.n_nodes
        node_of_dof = np.repeat(np.arange(n_nodes), 2)
        comp_of_dof = np.tile(np.array([0, 1]), n_nodes)
        groups = 2 * mesh.node_colors[node_of_dof] + comp_of_dof
        self.ordering = MulticolorOrdering.from_groups(
            groups, PlateProblem.GROUP_LABELS
        )

        k_full, f_full = assemble_plate_full(mesh, problem.material)
        permuted = self.ordering.permute_matrix(k_full)
        self.slices = self.ordering.group_slices
        self.n_groups = 6
        self.n_padded = 2 * n_nodes

        # Control vector: True on unconstrained slots (multicolor order).
        free = np.repeat(~mesh.is_constrained, 2)
        self.free_mask = self.ordering.permute_vector(free)
        self.group_free = [self.free_mask[s] for s in self.slices]

        # Blocks by diagonals: D_c plus every off-diagonal block.
        self.diagonals = []
        self.blocks: list[dict[int, DiagonalStorage]] = []
        for c in range(self.n_groups):
            rows = permuted[self.slices[c]]
            dc = rows[:, self.slices[c]].diagonal().copy()
            require(bool(np.all(dc > 0)), "padded diagonal must be positive")
            self.diagonals.append(dc)
            row_blocks: dict[int, DiagonalStorage] = {}
            for j in range(self.n_groups):
                if j == c:
                    continue
                block = rows[:, self.slices[j]].tocsr()
                if block.nnz:
                    storage = DiagonalStorage.from_block(block)
                    if storage.n_diagonals:
                        row_blocks[j] = storage
            self.blocks.append(row_blocks)

        # Right-hand side, masked to the free slots.
        f_mc = self.ordering.permute_vector(f_full)
        f_mc[~self.free_mask] = 0.0
        self.f = f_mc

        self.max_vector_length = max(
            (s.stop - s.start) for s in self.slices
        )

    # ------------------------------------------------------------- primitives
    def _matvec(self, vm: VectorMachine, x: np.ndarray) -> np.ndarray:
        """``K x`` color row by color row, by diagonals, masked."""
        out = np.empty_like(x)
        for c in range(self.n_groups):
            acc = vm.multiply(self.diagonals[c], x[self.slices[c]])
            for j, storage in self.blocks[c].items():
                vm.diag_matvec_accumulate(storage, x[self.slices[j]], acc)
            out[self.slices[c]] = acc
        return vm.apply_mask(out, self.free_mask)

    def _block_row_sum(
        self, vm: VectorMachine, c: int, xg: list[np.ndarray], js
    ) -> np.ndarray:
        acc = np.zeros(self.diagonals[c].shape[0])
        for j in js:
            storage = self.blocks[c].get(j)
            if storage is not None:
                vm.diag_matvec_accumulate(storage, xg[j], acc)
        return acc

    def _precondition(
        self, vm: VectorMachine, coefficients: np.ndarray, r: np.ndarray
    ) -> np.ndarray:
        """Algorithm 2 — merged Conrad–Wallach sweeps in vector primitives."""
        nc = self.n_groups
        m = coefficients.size
        rt = np.zeros_like(r)
        rg = [r[s] for s in self.slices]
        xg = [rt[s] for s in self.slices]
        y = [np.zeros(d.shape[0]) for d in self.diagonals]

        def solve(c: int, x: np.ndarray, yc: np.ndarray, alpha: float) -> np.ndarray:
            rhs = vm.add(x, vm.axpy(alpha, rg[c], yc))
            sol = vm.divide(rhs, self.diagonals[c])
            return vm.apply_mask(sol, self.group_free[c])

        for s in range(1, m + 1):
            alpha = float(coefficients[m - s])
            for c in range(nc):
                x = self._block_row_sum(vm, c, xg, range(c))
                np.negative(x, out=x)
                xg[c][:] = solve(c, x, y[c], alpha)
                y[c] = x
            for c in range(nc - 2, 0, -1):
                x = self._block_row_sum(vm, c, xg, range(c + 1, nc))
                np.negative(x, out=x)
                xg[c][:] = solve(c, x, y[c], alpha)
                y[c] = x
            y[nc - 1] = np.zeros_like(y[nc - 1])
            x = self._block_row_sum(vm, 0, xg, range(1, nc))
            np.negative(x, out=x)
            if s == m:
                xg[0][:] = solve(0, x, np.zeros_like(x), alpha)
            else:
                y[0] = x
        return rt

    # ------------------------------------------------------------------ solve
    def solve(
        self,
        m: int,
        coefficients: np.ndarray | None = None,
        eps: float = 1e-6,
        maxiter: int | None = None,
        label: str | None = None,
    ) -> CyberResult:
        """Run Algorithm 1 + Algorithm 2 with full cost accounting.

        ``m = 0`` (or empty coefficients) runs plain CG.  For m ≥ 1 supply
        the ``αᵢ`` — :func:`repro.driver.mstep_coefficients` builds them —
        or all-ones is assumed.
        """
        require(m >= 0, "m must be non-negative")
        if m >= 1:
            coefficients = (
                np.ones(m) if coefficients is None else np.asarray(coefficients, float)
            )
            require(coefficients.size == m, "need one coefficient per step")
            parametrized = not np.allclose(coefficients, 1.0)
        else:
            coefficients = None
            parametrized = False

        vm = VectorMachine(self.timing)
        precond_seconds = 0.0
        maxiter = maxiter if maxiter is not None else 5 * self.n_padded + 100

        def precondition(r: np.ndarray) -> np.ndarray:
            nonlocal precond_seconds
            if coefficients is None:
                return vm.copy(r)
            before = vm.elapsed_seconds
            out = self._precondition(vm, coefficients, r)
            precond_seconds += vm.elapsed_seconds - before
            return out

        u = vm.fill(self.n_padded, 0.0)
        r = vm.copy(self.f)  # u⁰ = 0 ⇒ r⁰ = f
        rt = precondition(r)
        p = vm.copy(rt)
        rho = vm.dot(rt, r)

        converged = False
        iterations = 0
        for iteration in range(1, maxiter + 1):
            kp = self._matvec(vm, p)
            denom = vm.dot(p, kp)
            if denom <= 0.0:
                iterations = iteration
                converged = rho == 0.0
                break
            vm.scalar()  # α
            alpha = rho / denom

            step = vm.scale(alpha, p)
            u = vm.add(u, step)
            delta_norm = vm.abs_max(step)
            iterations = iteration
            if delta_norm < eps:
                converged = True
                break

            r = vm.axpy(-alpha, kp, r)
            rt = precondition(r)
            rho_new = vm.dot(rt, r)
            vm.scalar()  # β
            beta = rho_new / rho
            rho = rho_new
            p = vm.axpy(beta, p, rt)

        u_natural = self._to_natural(u)
        seconds = vm.elapsed_seconds
        if label is None:
            label = "0" if m == 0 else (f"{m}P" if parametrized else f"{m}")
        return CyberResult(
            label=label,
            m=m,
            parametrized=parametrized,
            iterations=iterations,
            converged=converged,
            seconds=seconds,
            max_vector_length=self.max_vector_length,
            op_breakdown=vm.log.breakdown(),
            u_natural=u_natural,
            preconditioner_seconds=precond_seconds,
            outer_seconds=seconds - precond_seconds,
        )

    def _to_natural(self, u_padded_mc: np.ndarray) -> np.ndarray:
        """Padded multicolor vector → reduced natural-ordering solution."""
        mesh = self.problem.mesh
        padded_natural = self.ordering.unpermute_vector(u_padded_mc)
        free_nodes = mesh.unconstrained_nodes
        free_dofs = np.empty(2 * free_nodes.size, dtype=np.int64)
        free_dofs[0::2] = 2 * free_nodes
        free_dofs[1::2] = 2 * free_nodes + 1
        return padded_natural[free_dofs]

    # ------------------------------------------------------------ diagnostics
    def diagonal_counts(self) -> dict[str, int]:
        """Diagonals per block row — the storage scheme of (3.2)."""
        labels = PlateProblem.GROUP_LABELS
        out = {}
        for c in range(self.n_groups):
            total = 1  # D_c itself
            total += sum(s.n_diagonals for s in self.blocks[c].values())
            out[labels[c]] = total
        return out

    def storage_report(self) -> dict[str, int]:
        """Memory footprint in 64-bit words of the diagonal storage scheme.

        The paper's bookkeeping: ≤14 coefficients per equation for the
        matrix (by diagonals, padded constrained slots included) plus the
        working vectors of Algorithms 1–2 (u, r, r̃, p, y and the saved
        K·p), each of full padded length.
        """
        matrix_words = sum(d.shape[0] for d in self.diagonals)
        for row in self.blocks:
            for storage in row.values():
                matrix_words += sum(seg.shape[0] for seg in storage.data)
        vector_words = 6 * self.n_padded  # u, r, r̃, p, y, Kp
        return {
            "matrix_words": int(matrix_words),
            "vector_words": int(vector_words),
            "total_words": int(matrix_words + vector_words),
            "words_per_equation": int(
                round((matrix_words + vector_words) / self.n_padded)
            ),
        }
