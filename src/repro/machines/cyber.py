"""The CYBER 203/205 implementation of the m-step SSOR PCG method (§3.1).

Reproduces the paper's vector-machine organization faithfully:

* **Padded color vectors.**  The six color groups R(u), R(v), B(u), B(v),
  G(u), G(v) are laid out contiguously *including the constrained nodes*,
  raising the maximum vector length from a·b/3 to a(b+1)/3 (the paper's
  ``v``).  Constrained slots are held at zero by the control-vector mask —
  stores there are suppressed at no extra cost, while every vector
  operation is charged at full padded length.
* **Matrix by diagonals.**  All 36 blocks of (3.1) — and hence the products
  ``K p``, ``B_jcᵀ r̃`` and ``B_cj r̃`` — are stored and multiplied by
  diagonals (Madsen–Rodrique–Karush 1976); each diagonal is one
  multiply-add stream.
* **Inner products** pay the partial-sum penalty of
  :meth:`~repro.machines.timing.VectorTimingModel.dot_time` ("considerably
  slower than the other vector operations").
* The m-step preconditioner runs the same Conrad–Wallach merged sweeps as
  :class:`repro.multicolor.sor.MStepSSOR`, expressed in vector primitives.

Numerics are exact (NumPy); only the clock is simulated.  The iterates are
identical (to roundoff-in-summation-order) to the reference Algorithm 1 on
the eliminated system, which the tests verify.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.fem.model_problems import PlateProblem
from repro.fem.plane_stress import assemble_plate_full
from repro.kernels import ops as kernel_ops
from repro.kernels.backend import REFERENCE, resolve_backend
from repro.kernels.triangular import ColorBlockMergedSweep, ColorBlockTriangularSolver
from repro.machines.diagonals import DiagonalStorage
from repro.machines.timing import CYBER_203, VectorTimingModel
from repro.machines.vector import VectorMachine
from repro.multicolor.ordering import MulticolorOrdering
from repro.util import require

__all__ = ["CyberResult", "CyberMachine"]


@dataclass
class CyberResult:
    """One Table-2 cell: a CYBER solve of the plate problem."""

    label: str
    m: int
    parametrized: bool
    iterations: int
    converged: bool
    seconds: float
    max_vector_length: int
    op_breakdown: dict[str, tuple[int, float]]
    u_natural: np.ndarray
    preconditioner_seconds: float
    outer_seconds: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CyberResult(m={self.label}, I={self.iterations}, "
            f"T={self.seconds:.4f}s, v={self.max_vector_length})"
        )


class _ScheduleCellState:
    """Per-cell running state of a batched :meth:`CyberMachine.solve_schedule`."""

    __slots__ = (
        "m", "coefficients", "parametrized", "vm", "u", "r", "rt", "p",
        "rho", "iterations", "converged", "precond_seconds",
    )

    def __init__(self, m: int, coefficients: np.ndarray | None,
                 parametrized: bool, vm: VectorMachine):
        self.m = m
        self.coefficients = coefficients
        self.parametrized = parametrized
        self.vm = vm
        self.u = self.r = self.rt = self.p = None
        self.rho = 0.0
        self.iterations = 0
        self.converged = False
        self.precond_seconds = 0.0


class CyberMachine:
    """The plate problem laid out for the CYBER, ready to solve repeatedly."""

    def __init__(
        self,
        problem: PlateProblem,
        timing: VectorTimingModel = CYBER_203,
    ):
        self.problem = problem
        self.timing = timing
        mesh = problem.mesh

        # Padded dof universe: 2·node + component over *all* nodes.
        n_nodes = mesh.n_nodes
        node_of_dof = np.repeat(np.arange(n_nodes), 2)
        comp_of_dof = np.tile(np.array([0, 1]), n_nodes)
        groups = 2 * mesh.node_colors[node_of_dof] + comp_of_dof
        self.ordering = MulticolorOrdering.from_groups(
            groups, PlateProblem.GROUP_LABELS
        )

        k_full, f_full = assemble_plate_full(
            mesh, problem.material, element_scale=problem.element_scale
        )
        permuted = self.ordering.permute_matrix(k_full)
        self.slices = self.ordering.group_slices
        self.n_groups = 6
        self.n_padded = 2 * n_nodes

        # Control vector: True on unconstrained slots (multicolor order).
        free = np.repeat(~mesh.is_constrained, 2)
        self.free_mask = self.ordering.permute_vector(free)
        self.group_free = [self.free_mask[s] for s in self.slices]

        # Blocks by diagonals: D_c plus every off-diagonal block.
        self.diagonals = []
        self.blocks: list[dict[int, DiagonalStorage]] = []
        for c in range(self.n_groups):
            rows = permuted[self.slices[c]]
            dc = rows[:, self.slices[c]].diagonal().copy()
            require(bool(np.all(dc > 0)), "padded diagonal must be positive")
            self.diagonals.append(dc)
            row_blocks: dict[int, DiagonalStorage] = {}
            for j in range(self.n_groups):
                if j == c:
                    continue
                block = rows[:, self.slices[j]].tocsr()
                if block.nnz:
                    storage = DiagonalStorage.from_block(block)
                    if storage.n_diagonals:
                        row_blocks[j] = storage
            self.blocks.append(row_blocks)

        # Right-hand side, masked to the free slots.
        f_mc = self.ordering.permute_vector(f_full)
        f_mc[~self.free_mask] = 0.0
        self.f = f_mc

        self.max_vector_length = max(
            (s.stop - s.start) for s in self.slices
        )
        self._merged_sweep: ColorBlockMergedSweep | None = None
        self._charge_stream_cache: dict = {}

    # ------------------------------------------------------------- primitives
    def _matvec(self, vm: VectorMachine, x: np.ndarray) -> np.ndarray:
        """``K x`` color row by color row, by diagonals, masked."""
        out = np.empty_like(x)
        for c in range(self.n_groups):
            acc = vm.multiply(self.diagonals[c], x[self.slices[c]])
            for j, storage in self.blocks[c].items():
                vm.diag_matvec_accumulate(storage, x[self.slices[j]], acc)
            out[self.slices[c]] = acc
        return vm.apply_mask(out, self.free_mask)

    def _charge_matvec(self, vm: VectorMachine) -> None:
        """Replay :meth:`_matvec`'s charge stream without executing it.

        Kind-for-kind and length-for-length the sequence ``_matvec`` emits
        (one ``multiply`` per color row, one ``diag_madd`` per stored
        diagonal), so a solve that computes its products elsewhere — the
        batched lockstep pass of :meth:`solve_schedule` — lands on the
        bitwise-identical clock and operation ledger.
        """
        for c in range(self.n_groups):
            vm.charge("multiply", self.diagonals[c].shape[0])
            for storage in self.blocks[c].values():
                for index in range(storage.n_diagonals):
                    start, stop = storage.diagonal_span(index)
                    vm.charge("diag_madd", stop - start)

    def _matvec_block(self, x: np.ndarray) -> np.ndarray:
        """Numerics of ``K X`` on an ``(n, k)`` block, by diagonals, masked.

        Column ``j`` undergoes exactly the elementwise multiply-adds
        ``_matvec`` performs on ``x[:, j]`` (diagonal products broadcast
        over the block), so the result is bit-identical column by column;
        only the Python/NumPy pass count drops from ``k`` to one.
        """
        out = np.empty_like(x)
        for c in range(self.n_groups):
            acc = self.diagonals[c][:, None] * x[self.slices[c]]
            for j, storage in self.blocks[c].items():
                storage.matvec(x[self.slices[j]], out=acc)
            out[self.slices[c]] = acc
        out[~self.free_mask] = 0.0
        return out

    # -------------------------------------------------- charge-stream replay
    def _recorded_stream(self, key, builder) -> dict[str, list[float]]:
        """The per-kind charge times one structural replay emits (cached).

        A solve's charge stream is purely structural, so for a fixed
        ``key`` — ``("matvec",)`` or ``("precond", m)`` — the sequence of
        ``(kind, seconds)`` events never changes.  Recording it once and
        replaying per kind (:meth:`_replay_stream`) keeps the ledger
        bitwise identical — each kind's additions happen in the same order
        with the same floats, and kinds first appear in stream order — at
        a fraction of the Python cost of re-deriving every event.
        """
        cached = self._charge_stream_cache.get(key)
        if cached is not None:
            return cached
        events: list[tuple[str, float]] = []
        timing = self.timing

        class _Recorder:
            @staticmethod
            def charge(kind: str, n: int, width: int = 1) -> None:
                t = (
                    timing.vector_op_time(n)
                    if width == 1
                    else timing.block_op_time(n, width)
                )
                events.append((kind, t))

        builder(_Recorder())
        stream: dict[str, list[float]] = {}
        for kind, t in events:
            stream.setdefault(kind, []).append(t)
        self._charge_stream_cache[key] = stream
        return stream

    @staticmethod
    def _replay_stream(vm: VectorMachine, stream: dict[str, list[float]]) -> None:
        """Charge a recorded stream to ``vm`` — ledger-bitwise-identical."""
        counts = vm.log.counts
        seconds = vm.log.seconds
        for kind, times in stream.items():
            s = seconds.get(kind, 0.0)
            for t in times:
                s += t
            seconds[kind] = s
            counts[kind] = counts.get(kind, 0) + len(times)

    # -------------------------------------------------- preconditioner charge
    def _charge_precondition(self, vm: VectorMachine, m: int, width: int = 1) -> None:
        """Replay Algorithm 2's charge stream without executing it.

        The cost of the merged Conrad–Wallach sweeps is purely structural —
        one multiply-add per stored diagonal of each touched block, one
        axpy/add/divide triple per color solve — so both numeric backends
        charge this identical stream (the control-vector masking rides
        along free).  ``width > 1`` charges an ``(n, width)`` batched
        application: the same operations at block width, each paying a
        single pipeline startup (:meth:`VectorTimingModel.block_op_time`).

        The loop skeleton mirrors :meth:`_precondition_reference` step for
        step (and, through it, the kernel merged sweep); the
        backend-equivalence suite pins the three in lockstep.
        """
        nc = self.n_groups

        def charge_sums(c: int, js) -> None:
            for j in js:
                storage = self.blocks[c].get(j)
                if storage is None:
                    continue
                for index in range(storage.n_diagonals):
                    start, stop = storage.diagonal_span(index)
                    vm.charge("diag_madd", stop - start, width)

        def charge_solve(c: int) -> None:
            n = self.diagonals[c].shape[0]
            vm.charge("axpy", n, width)
            vm.charge("add", n, width)
            vm.charge("divide", n, width)

        for s in range(1, m + 1):
            for c in range(nc):
                charge_sums(c, range(c))
                charge_solve(c)
            for c in range(nc - 2, 0, -1):
                charge_sums(c, range(c + 1, nc))
                charge_solve(c)
            charge_sums(0, range(1, nc))
            if s == m:
                charge_solve(0)

    # ------------------------------------------------ preconditioner numerics
    def _precondition_reference(
        self, coefficients: np.ndarray, r: np.ndarray
    ) -> np.ndarray:
        """Algorithm 2 by hand-rolled per-color solves over the diagonal
        storage — the paper-faithful pin the kernel path is tested against."""
        nc = self.n_groups
        m = coefficients.size
        rt = np.zeros_like(r)
        rg = [r[s] for s in self.slices]
        xg = [rt[s] for s in self.slices]
        y = [np.zeros(d.shape[0]) for d in self.diagonals]

        def row_sum(c: int, js) -> np.ndarray:
            acc = np.zeros(self.diagonals[c].shape[0])
            for j in js:
                storage = self.blocks[c].get(j)
                if storage is not None:
                    storage.matvec(xg[j], out=acc)
            return acc

        def solve(c: int, x: np.ndarray, yc: np.ndarray, alpha: float) -> np.ndarray:
            rhs = x + kernel_ops.axpy(alpha, rg[c], yc)
            sol = rhs / self.diagonals[c]
            sol[~self.group_free[c]] = 0.0
            return sol

        for s in range(1, m + 1):
            alpha = float(coefficients[m - s])
            for c in range(nc):
                x = row_sum(c, range(c))
                np.negative(x, out=x)
                xg[c][:] = solve(c, x, y[c], alpha)
                y[c] = x
            for c in range(nc - 2, 0, -1):
                x = row_sum(c, range(c + 1, nc))
                np.negative(x, out=x)
                xg[c][:] = solve(c, x, y[c], alpha)
                y[c] = x
            y[nc - 1] = np.zeros_like(y[nc - 1])
            x = row_sum(0, range(1, nc))
            np.negative(x, out=x)
            if s == m:
                xg[0][:] = solve(0, x, np.zeros_like(x), alpha)
            else:
                y[0] = x
        return rt

    def _sweep_kernel(self) -> ColorBlockMergedSweep:
        """The cached kernel-layer realization of Algorithm 2 (built once).

        The padded multicolor system, with constrained rows and columns
        masked out (the control vector, baked into the operator so no
        per-color masking pass is needed), splits into its block-lower and
        block-upper triangles; each becomes a
        :class:`ColorBlockTriangularSolver` whose cached per-color CSR
        sub-blocks drive the merged sweeps for single vectors or ``(n, k)``
        blocks of right-hand sides.
        """
        if self._merged_sweep is None:
            # Reassemble the padded system on demand rather than retaining
            # the full CSR for the machine's lifetime — the steady-state
            # footprint stays at the diagonal-storage level the
            # storage_report() ledger documents.
            k_full, _ = assemble_plate_full(
                self.problem.mesh,
                self.problem.material,
                element_scale=self.problem.element_scale,
            )
            k = self.ordering.permute_matrix(k_full).tocsr()
            diag = np.concatenate(self.diagonals)
            mask = sp.diags(self.free_mask.astype(float))
            off_masked = (mask @ (k - sp.diags(k.diagonal())) @ mask).tocsr()
            t_lower = (sp.diags(diag) + sp.tril(off_masked, -1)).tocsr()
            t_upper = (sp.diags(diag) + sp.triu(off_masked, 1)).tocsr()
            self._merged_sweep = ColorBlockMergedSweep(
                ColorBlockTriangularSolver(t_lower, self.slices, lower=True),
                ColorBlockTriangularSolver(t_upper, self.slices, lower=False),
            )
            self._permuted = None  # the sweep's cached sub-blocks suffice now
        return self._merged_sweep

    def _precondition(
        self,
        vm: VectorMachine,
        coefficients: np.ndarray,
        r: np.ndarray,
        backend: str,
    ) -> np.ndarray:
        """Algorithm 2 — merged Conrad–Wallach sweeps, backend-dispatched.

        Both backends charge the identical vector-primitive stream (the
        cost is structural); only the numeric engine differs — the
        ``"reference"`` per-color diagonal-storage solves, or the kernel
        layer's cached color-block sweeps.  Iterates agree to roundoff
        (summation order differs), clocks and op counts exactly.
        """
        self._charge_precondition(vm, coefficients.size)
        if backend == REFERENCE:
            return self._precondition_reference(coefficients, r)
        # The kernel returns a pooled workspace buffer; Algorithm 1 never
        # holds r̃ across preconditioner applications, so no copy is needed.
        return self._sweep_kernel().apply(coefficients, r)

    def precondition_block(
        self,
        coefficients: np.ndarray,
        r_block: np.ndarray,
        vm: VectorMachine | None = None,
        backend: str | None = None,
    ) -> np.ndarray:
        """Batched Algorithm 2 on an ``(n_padded, k)`` block of residuals.

        The vectorized backend runs one merged color-block sweep over the
        whole block and charges block-width vector operations — a single
        pipeline startup per color-block op, the long-vector advantage the
        paper's machine organization is built around.  The reference
        backend applies column by column and pays ``k`` full charge
        streams.  Constrained slots are masked on entry (control vector,
        free of charge).

        ``coefficients`` is ``(m,)`` — one α schedule shared by every
        column — or ``(m, k)`` to give each right-hand side its own
        schedule (the batched multi-cell sweeps of :meth:`solve_schedule`).
        """
        coefficients = np.atleast_1d(np.asarray(coefficients, dtype=float))
        require(coefficients.shape[0] >= 1, "need at least one step (m ≥ 1)")
        r_block = np.asarray(r_block, dtype=float)
        require(
            r_block.ndim == 2 and r_block.shape[0] == self.n_padded,
            "need an (n_padded, k) block of right-hand sides",
        )
        require(
            coefficients.ndim == 1 or coefficients.shape[1] == r_block.shape[1],
            "per-column coefficients must match the block's column count",
        )
        backend = resolve_backend(backend)
        vm = vm if vm is not None else VectorMachine(self.timing)
        masked = vm.apply_mask(r_block, self.free_mask)
        m = coefficients.shape[0]
        width = r_block.shape[1]
        if backend == REFERENCE:
            out = np.empty_like(masked)
            for col in range(width):
                self._charge_precondition(vm, m)
                coeffs_col = (
                    coefficients if coefficients.ndim == 1 else coefficients[:, col]
                )
                out[:, col] = self._precondition_reference(
                    coeffs_col, masked[:, col].copy()
                )
            return out
        self._charge_precondition(vm, m, width=width)
        return self._sweep_kernel().apply(coefficients, masked).copy()

    # ----------------------------------------------------------- cost model
    def iteration_costs(self) -> tuple[float, float]:
        """(A, B) of the performance model (4.1) on the CYBER clock.

        The vector-machine analogue of
        :meth:`~repro.machines.fem_machine.FiniteElementMachine.iteration_costs`:
        ``A`` is the charged cost of one steady-state outer CG iteration
        (the matvec-by-diagonals stream, two partial-sum inner products,
        the ``‖Δu‖∞`` reduction, four full-length vector updates and the
        two scalar-unit results), exactly the per-iteration charge stream
        of :meth:`solve`; ``B`` is the marginal cost of one further
        preconditioner step, the per-``m`` slope of Algorithm 2's charge
        stream.  Both are structural constants of the layout — unlike the
        FEM counterpart there is no ``m`` parameter, since neither
        quantity depends on it.  Feeds
        :meth:`repro.analysis.models.PerformanceModel.from_cyber_machine`
        — the CYBER-calibrated ``--m auto`` path.
        """
        vm = VectorMachine(self.timing)
        self._charge_matvec(vm)
        t_matvec = vm.elapsed_seconds
        t = self.timing
        n = self.n_padded
        a = (
            t_matvec
            + 2 * t.dot_time(n)  # (p, Kp) and (r̃, r)
            + t.dot_time(n)  # ‖Δu‖∞ via the abs/max hardware
            + 4 * t.vector_op_time(n)  # scale, add, two axpys
            + 2 * t.scalar_op_time()  # α, β
        )
        b = self.preconditioner_block_seconds(
            2, 1
        ) - self.preconditioner_block_seconds(1, 1)
        return a, b

    def preconditioner_block_seconds(self, m: int, width: int = 1) -> float:
        """Charged seconds of one batched m-step application on ``(n, width)``.

        The CYBER analogue of the Finite Element Machine's block cost:
        every color-block operation streams the whole ``(n, width)`` block
        through the pipe for a single startup
        (:meth:`~repro.machines.timing.VectorTimingModel.block_op_time`),
        so the per-right-hand-side cost falls as the block widens — the
        amortization the width-aware (4.2) autotuner prices.
        """
        require(m >= 1, "m must be at least 1")
        require(width >= 1, "width must be at least 1")
        vm = VectorMachine(self.timing)
        self._charge_precondition(vm, m, width=width)
        return vm.elapsed_seconds

    # ------------------------------------------------------------------ solve
    def solve(
        self,
        m: int,
        coefficients: np.ndarray | None = None,
        eps: float = 1e-6,
        maxiter: int | None = None,
        label: str | None = None,
        backend: str | None = None,
    ) -> CyberResult:
        """Run Algorithm 1 + Algorithm 2 with full cost accounting.

        ``m = 0`` (or empty coefficients) runs plain CG.  For m ≥ 1 supply
        the ``αᵢ`` — :func:`repro.driver.mstep_coefficients` builds them —
        or all-ones is assumed.

        ``backend`` mirrors :func:`repro.driver.solve_mstep_ssor`: the
        default ``"vectorized"`` routes the preconditioner through the
        kernel layer's cached :class:`ColorBlockTriangularSolver` sweeps,
        ``"reference"`` keeps the hand-rolled per-color diagonal-storage
        solves.  The charged clock and operation counts are identical
        either way (the cost stream is structural); iterates agree to
        roundoff-in-summation-order.
        """
        require(m >= 0, "m must be non-negative")
        backend = resolve_backend(backend)
        if m >= 1:
            coefficients = (
                np.ones(m) if coefficients is None else np.asarray(coefficients, float)
            )
            require(coefficients.size == m, "need one coefficient per step")
            parametrized = not np.allclose(coefficients, 1.0)
        else:
            coefficients = None
            parametrized = False

        vm = VectorMachine(self.timing)
        precond_seconds = 0.0
        maxiter = maxiter if maxiter is not None else 5 * self.n_padded + 100

        def precondition(r: np.ndarray) -> np.ndarray:
            nonlocal precond_seconds
            if coefficients is None:
                return vm.copy(r)
            before = vm.elapsed_seconds
            out = self._precondition(vm, coefficients, r, backend)
            precond_seconds += vm.elapsed_seconds - before
            return out

        u = vm.fill(self.n_padded, 0.0)
        r = vm.copy(self.f)  # u⁰ = 0 ⇒ r⁰ = f
        rt = precondition(r)
        p = vm.copy(rt)
        rho = vm.dot(rt, r)

        converged = False
        iterations = 0
        for iteration in range(1, maxiter + 1):
            kp = self._matvec(vm, p)
            denom = vm.dot(p, kp)
            if denom <= 0.0:
                iterations = iteration
                converged = rho == 0.0
                break
            vm.scalar()  # α
            alpha = rho / denom

            step = vm.scale(alpha, p)
            u = vm.add(u, step)
            delta_norm = vm.abs_max(step)
            iterations = iteration
            if delta_norm < eps:
                converged = True
                break

            r = vm.axpy(-alpha, kp, r)
            rt = precondition(r)
            rho_new = vm.dot(rt, r)
            vm.scalar()  # β
            beta = rho_new / rho
            rho = rho_new
            p = vm.axpy(beta, p, rt)

        u_natural = self._to_natural(u)
        seconds = vm.elapsed_seconds
        if label is None:
            label = "0" if m == 0 else (f"{m}P" if parametrized else f"{m}")
        return CyberResult(
            label=label,
            m=m,
            parametrized=parametrized,
            iterations=iterations,
            converged=converged,
            seconds=seconds,
            max_vector_length=self.max_vector_length,
            op_breakdown=vm.log.breakdown(),
            u_natural=u_natural,
            preconditioner_seconds=precond_seconds,
            outer_seconds=seconds - precond_seconds,
        )

    def solve_schedule(
        self,
        cells,
        eps: float = 1e-6,
        maxiter: int | None = None,
        labels=None,
    ) -> list[CyberResult]:
        """All schedule cells through **one** lockstep simulator pass.

        ``cells`` is a sequence of ``(m, coefficients)`` pairs — one per
        Table-2 column (``coefficients`` may be ``None`` for all-ones or
        plain CG).  Every cell's Algorithm 1 advances one outer iteration
        per pass of the loop below; the still-active cells' direction
        vectors and residuals are stacked into ``(n, k)`` blocks so the
        matvec runs once per iteration (:meth:`_matvec_block`) and the
        preconditioner once per distinct ``m`` (the batched per-column-α
        merged sweep of :class:`ColorBlockMergedSweep`), instead of once
        per cell.

        The *charge* stream stays strictly per cell: each cell owns a
        :class:`VectorMachine` whose ledger replays exactly the sequence
        :meth:`solve` would emit, and the batched numerics are elementwise
        broadcasts and compiled multi-vector matvecs whose columns are
        bit-identical to the single-vector kernels.  Iteration counts,
        modeled clocks, op breakdowns and iterates therefore match the
        per-column path bitwise — only the wall-clock of the simulation
        itself drops (the tests and the perf gate hold both properties).
        """
        states: list[_ScheduleCellState] = []
        for m, coefficients in cells:
            require(m >= 0, "m must be non-negative")
            if m >= 1:
                coefficients = (
                    np.ones(m)
                    if coefficients is None
                    else np.asarray(coefficients, float)
                )
                require(coefficients.size == m, "need one coefficient per step")
                parametrized = not np.allclose(coefficients, 1.0)
            else:
                coefficients = None
                parametrized = False
            states.append(
                _ScheduleCellState(
                    m, coefficients, parametrized, VectorMachine(self.timing)
                )
            )

        n = self.n_padded
        maxiter = maxiter if maxiter is not None else 5 * n + 100

        def precondition_batched(group_states: list[_ScheduleCellState]) -> None:
            """One batched Algorithm-2 application per distinct m."""
            groups: dict[int, list[_ScheduleCellState]] = {}
            for st in group_states:
                if st.coefficients is None:
                    # Plain CG: r̃ = r, charged but (as in :meth:`solve`)
                    # not booked as preconditioner time.
                    st.rt = st.vm.copy(st.r)
                    continue
                before = st.vm.elapsed_seconds
                self._replay_stream(
                    st.vm,
                    self._recorded_stream(
                        ("precond", st.m),
                        lambda vm, m=st.m: self._charge_precondition(vm, m),
                    ),
                )
                st.precond_seconds += st.vm.elapsed_seconds - before
                groups.setdefault(st.m, []).append(st)
            if not groups:
                return
            sweep = self._sweep_kernel()
            for group in groups.values():
                if len(group) == 1:
                    st = group[0]
                    st.rt = sweep.apply(st.coefficients, st.r).copy()
                    continue
                coeffs = np.stack([st.coefficients for st in group], axis=1)
                r_block = np.stack([st.r for st in group], axis=1)
                rt_block = sweep.apply(coeffs, r_block)
                for idx, st in enumerate(group):
                    st.rt = np.ascontiguousarray(rt_block[:, idx])

        # Startup: u⁰ = 0, r⁰ = f, r̃⁰ = M⁻¹r⁰, p⁰ = r̃⁰, ρ₀ — the exact
        # per-cell sequence of :meth:`solve`.
        for st in states:
            st.u = st.vm.fill(n, 0.0)
            st.r = st.vm.copy(self.f)
        precondition_batched(states)
        for st in states:
            st.p = st.vm.copy(st.rt)
            st.rho = st.vm.dot(st.rt, st.r)

        active = list(states)
        for iteration in range(1, maxiter + 1):
            if not active:
                break
            if len(active) == 1:
                st = active[0]
                kp_cols = [self._matvec(st.vm, st.p)]
            else:
                p_block = np.stack([st.p for st in active], axis=1)
                kp_block = self._matvec_block(p_block)
                kp_cols = [
                    np.ascontiguousarray(kp_block[:, i])
                    for i in range(len(active))
                ]
                matvec_stream = self._recorded_stream(
                    ("matvec",), self._charge_matvec
                )
                for st in active:
                    self._replay_stream(st.vm, matvec_stream)
            survivors: list[_ScheduleCellState] = []
            for st, kp in zip(active, kp_cols):
                denom = st.vm.dot(st.p, kp)
                if denom <= 0.0:
                    st.iterations = iteration
                    st.converged = st.rho == 0.0
                    continue
                st.vm.scalar()  # α
                alpha = st.rho / denom
                step = st.vm.scale(alpha, st.p)
                st.u = st.vm.add(st.u, step)
                delta_norm = st.vm.abs_max(step)
                st.iterations = iteration
                if delta_norm < eps:
                    st.converged = True
                    continue
                st.r = st.vm.axpy(-alpha, kp, st.r)
                survivors.append(st)
            if survivors:
                precondition_batched(survivors)
                for st in survivors:
                    rho_new = st.vm.dot(st.rt, st.r)
                    st.vm.scalar()  # β
                    beta = rho_new / st.rho
                    st.rho = rho_new
                    st.p = st.vm.axpy(beta, st.p, st.rt)
            active = survivors

        results = []
        for index, st in enumerate(states):
            seconds = st.vm.elapsed_seconds
            label = labels[index] if labels is not None else None
            if label is None:
                label = (
                    "0" if st.m == 0
                    else (f"{st.m}P" if st.parametrized else f"{st.m}")
                )
            results.append(
                CyberResult(
                    label=label,
                    m=st.m,
                    parametrized=st.parametrized,
                    iterations=st.iterations,
                    converged=st.converged,
                    seconds=seconds,
                    max_vector_length=self.max_vector_length,
                    op_breakdown=st.vm.log.breakdown(),
                    u_natural=self._to_natural(st.u),
                    preconditioner_seconds=st.precond_seconds,
                    outer_seconds=seconds - st.precond_seconds,
                )
            )
        return results

    def _to_natural(self, u_padded_mc: np.ndarray) -> np.ndarray:
        """Padded multicolor vector → reduced natural-ordering solution."""
        mesh = self.problem.mesh
        padded_natural = self.ordering.unpermute_vector(u_padded_mc)
        free_nodes = mesh.unconstrained_nodes
        free_dofs = np.empty(2 * free_nodes.size, dtype=np.int64)
        free_dofs[0::2] = 2 * free_nodes
        free_dofs[1::2] = 2 * free_nodes + 1
        return padded_natural[free_dofs]

    # ------------------------------------------------------------ diagnostics
    def diagonal_counts(self) -> dict[str, int]:
        """Diagonals per block row — the storage scheme of (3.2)."""
        labels = PlateProblem.GROUP_LABELS
        out = {}
        for c in range(self.n_groups):
            total = 1  # D_c itself
            total += sum(s.n_diagonals for s in self.blocks[c].values())
            out[labels[c]] = total
        return out

    def storage_report(self) -> dict[str, int]:
        """Memory footprint in 64-bit words of the diagonal storage scheme.

        The paper's bookkeeping: ≤14 coefficients per equation for the
        matrix (by diagonals, padded constrained slots included) plus the
        working vectors of Algorithms 1–2 (u, r, r̃, p, y and the saved
        K·p), each of full padded length.
        """
        matrix_words = sum(d.shape[0] for d in self.diagonals)
        for row in self.blocks:
            for storage in row.values():
                matrix_words += sum(seg.shape[0] for seg in storage.data)
        vector_words = 6 * self.n_padded  # u, r, r̃, p, y, Kp
        return {
            "matrix_words": int(matrix_words),
            "vector_words": int(vector_words),
            "total_words": int(matrix_words + vector_words),
            "words_per_equation": int(
                round((matrix_words + vector_words) / self.n_padded)
            ),
        }
