"""The Finite Element Machine simulator (§3.2, Table 3).

Executes the m-step multicolor SSOR PCG method exactly as the reference
solver does — so iteration counts are *identical for any processor count*,
the property Table 3 exhibits — while charging a lockstep (BSP-style) cost
model built from the paper's description of the machine:

* each processor owns a color-balanced rectangle of unconstrained nodes and
  the 14-coefficient stencil rows of its equations (Figures 3, 5);
* every CG iteration exchanges the border ``p`` components with neighbors
  over the local links, one packaged record per neighbor;
* every preconditioner step exchanges border ``r̃`` components after each
  color phase (3 forward exchanges, 2 backward — the ``c mod 2 = 0``
  sends of Algorithm 3);
* the two inner products need a global reduction — software
  store-and-forward on the 1983 machine, or the sum/max circuit (O(log₂ P));
* the convergence test uses the signal flag network.

A phase's time is the maximum over processors of its compute plus its
communication (processors are synchronized by the data dependencies between
phases); per-iteration costs are static because they depend only on the
partition, not on values.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.mstep import MStepPreconditioner
from repro.core.splittings import SSORSplitting
from repro.driver import build_blocked_system, build_mstep_applicator
from repro.fem.model_problems import PlateProblem
from repro.kernels import (
    matvec_accumulate,
    matvec_into,
    supports_matvec_block,
    xpay_into,
)
from repro.machines.comm import CommLog
from repro.machines.timing import FEM_1983, ArrayTimingModel
from repro.machines.topology import Assignment, ProcessorGrid
from repro.core.pcg import pcg
from repro.util import inf_norm, inner, require

__all__ = ["FEMResult", "FiniteElementMachine", "speedup_table"]


class _FEMCellState:
    """Per-cell running state of a batched :meth:`FiniteElementMachine.solve_schedule`."""

    __slots__ = (
        "m", "coefficients", "padded", "parametrized", "group", "u", "r",
        "rt", "p", "rho", "iterations", "converged",
    )

    def __init__(self, m: int, coefficients: np.ndarray | None,
                 parametrized: bool, group):
        self.m = m
        self.coefficients = coefficients
        self.padded = None  # α schedule zero-padded to the batch's max m
        self.parametrized = parametrized
        self.group = group  # preconditioner-group key (None for plain CG)
        self.u = self.r = self.rt = self.p = None
        self.rho = 0.0
        self.iterations = 0
        self.converged = False


@dataclass
class FEMResult:
    """One Table-3 cell: a Finite Element Machine solve."""

    label: str
    m: int
    parametrized: bool
    n_procs: int
    iterations: int
    converged: bool
    seconds: float
    compute_seconds: float
    comm_seconds: float
    reduction_seconds: float
    flag_seconds: float
    total_records: int
    total_words: int
    u_natural: np.ndarray

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FEMResult(m={self.label}, P={self.n_procs}, I={self.iterations}, "
            f"T={self.seconds:.2f}s)"
        )


class FiniteElementMachine:
    """The plate problem distributed over a processor array."""

    def __init__(
        self,
        problem: PlateProblem,
        n_procs: int | Assignment = 1,
        timing: ArrayTimingModel = FEM_1983,
        reduction: str = "software",
        blocked=None,
    ):
        self.problem = problem
        self.timing = timing
        require(reduction in ("software", "circuit"), "unknown reduction mode")
        self.reduction = reduction
        if isinstance(n_procs, Assignment):
            self.assignment = n_procs
        else:
            grid = ProcessorGrid.for_count(n_procs, problem.mesh)
            self.assignment = Assignment.rectangles(problem.mesh, grid)
        self.blocked = blocked if blocked is not None else build_blocked_system(problem)
        # Shared splitting applicators of the batched schedule pass, one
        # per kernel backend — factorized once per machine lifetime so
        # repeated solve_schedule calls (e.g. through a SolverSession's
        # cached machine) pay no rebuild.
        self._schedule_applicators: dict = {}
        self._precompute_static_costs()

    # -------------------------------------------------------- static costing
    def _precompute_static_costs(self) -> None:
        assignment = self.assignment
        mesh = self.problem.mesh
        k_csr = self.problem.k.tocsr()
        row_nnz = np.diff(k_csr.indptr)
        groups = self.problem.group_of_unknown
        n_procs = assignment.n_procs

        self._owned = [u.size for u in assignment.unknowns_of_proc]
        self._owned_backward = []  # unknowns in groups 1..nc−2 (backward solves)
        self._matvec_flops = []
        self._precond_mult_flops = []
        nc = self.problem.n_groups
        for p in range(n_procs):
            unknowns = assignment.unknowns_of_proc[p]
            self._matvec_flops.append(int(2 * row_nnz[unknowns].sum()))
            # Off-diagonal entries touched once per merged SSOR step.
            self._precond_mult_flops.append(int(2 * (row_nnz[unknowns] - 1).sum()))
            g = groups[unknowns]
            self._owned_backward.append(int(np.count_nonzero((g >= 1) & (g <= nc - 2))))

        # Border words for the p-exchange (all colors) and the per-step
        # r̃-exchanges.  Forward: one record per node color, both dofs
        # packaged ("the two equations at the same node [are] the same
        # color" for communication).  Backward: the ``send r̃_{c+1}, r̃_c``
        # events of Algorithm 3 — (Gv, Gu) after the Gu solve and (Bv, Bu)
        # after the Bu solve, which is exactly what the downstream solves'
        # data dependencies require (same-node couplings are always local,
        # so Rv never needs a remote Ru and the R pair is not re-sent).
        self._kp_exchange_words: dict[tuple[int, int], int] = {}
        self._fwd_words: dict[tuple[int, int], list[int]] = {}
        self._bwd_words: dict[tuple[int, int], list[int]] = {}
        for (p, q), nodes in assignment.border_pairs.items():
            colors = mesh.node_colors[nodes]
            per_color = np.bincount(colors, minlength=3)
            self._kp_exchange_words[(p, q)] = 2 * nodes.size
            # forward events: node colors R, B, G → 2 words per node of color
            self._fwd_words[(p, q)] = [2 * int(c) for c in per_color]
            # backward events: (Gv, Gu) then (Bv, Bu)
            self._bwd_words[(p, q)] = [2 * int(per_color[2]), 2 * int(per_color[1])]

    def _exchange_phase_time(
        self, words: dict[tuple[int, int], int], comm: CommLog | None
    ) -> float:
        """Max over processors of (send + receive) time for one exchange."""
        per_proc = np.zeros(self.assignment.n_procs)
        for (p, q), w in words.items():
            t = (
                comm.add_record(p, q, w)
                if comm is not None
                else self.timing.record_time(w)
            )
            per_proc[p] += t  # send
            per_proc[q] += t  # matching receive
        return float(per_proc.max()) if per_proc.size else 0.0

    def _precond_step_compute(self, width: int = 1) -> float:
        """Compute seconds of one merged Conrad–Wallach step (max over procs).

        Per processor: all off-diagonal stencil coefficients touched once
        (2 flops each), 4 flops per solved component (forward all colors,
        backward the interior colors), plus the fixed per-color-phase setup
        overhead of the stencil data structures (2·nc − 1 phases).

        ``width > 1`` models a dense color-block sweep over an ``(n, width)``
        block of right-hand sides: the flops scale with the block width
        while the per-color-phase setup is paid once per *block*, not once
        per vector — the same startup amortization the kernel layer's
        batched triangular solves realize in software.
        """
        t_flop = self.timing.flop_time
        phases = 2 * self.problem.n_groups - 1
        return (
            max(
                self._precond_mult_flops[p] * width * t_flop
                + 4 * (self._owned[p] + self._owned_backward[p]) * width * t_flop
                for p in range(self.assignment.n_procs)
            )
            + phases * self.timing.color_phase_overhead
        )

    def _precond_step_time(self, comm: CommLog | None, width: int = 1) -> float:
        """One merged Conrad–Wallach step: compute + the 5 border exchanges.

        At ``width > 1`` each border exchange still packages one record per
        neighbor — the per-record latency amortizes over the block — with
        ``width`` times the words.
        """
        compute = self._precond_step_compute(width)
        comm_time = 0.0
        if self.assignment.n_procs > 1:
            for event in range(3):  # forward: R, B, G phases
                words = {
                    pair: w[event] * width
                    for pair, w in self._fwd_words.items()
                    if w[event] > 0
                }
                comm_time += self._exchange_phase_time(words, comm)
            for event in range(2):  # backward pairs
                words = {
                    pair: w[event] * width
                    for pair, w in self._bwd_words.items()
                    if w[event] > 0
                }
                comm_time += self._exchange_phase_time(words, comm)
        return compute + comm_time

    def preconditioner_block_seconds(self, m: int, width: int = 1) -> float:
        """Modeled seconds of one batched m-step application on ``(n, width)``.

        The machine analogue of the kernel layer's ``(n, k)`` batched
        preconditioning: per-phase setup and per-record link latency are
        charged once per color-block operation, so the per-right-hand-side
        cost falls as the block widens.
        """
        require(m >= 1, "m must be at least 1")
        require(width >= 1, "width must be at least 1")
        return m * self._precond_step_time(None, width=width)

    def _outer_phase_times(self, comm: CommLog | None) -> dict[str, float]:
        """Static per-iteration costs of the outer CG phases."""
        t_flop = self.timing.flop_time
        n_procs = self.assignment.n_procs
        max_owned = max(self._owned)
        matvec = max(self._matvec_flops) * t_flop
        exchange = (
            self._exchange_phase_time(self._kp_exchange_words, comm)
            if n_procs > 1
            else 0.0
        )
        dot = 2 * max_owned * t_flop + (
            comm.add_reduction(n_procs, self.reduction)
            if comm is not None
            else self.timing.reduction_time(n_procs, self.reduction)
        )
        update_delta = 3 * max_owned * t_flop + (
            comm.add_flag_sync() if comm is not None else self.timing.flag_sync_time
        )
        axpy = 2 * max_owned * t_flop
        return {
            "exchange": exchange,
            "matvec": matvec,
            "dot": dot,
            "update_delta": update_delta,
            "axpy": axpy,
        }

    def iteration_costs(self, m: int) -> tuple[float, float]:
        """(A, B) of the performance model (4.1): T_m = (A + m·B)·N_m.

        A is the outer-iteration cost (exchange, matvec, two inner products,
        three vector updates, convergence test); B is one preconditioner
        step.
        """
        phases = self._outer_phase_times(None)
        a = (
            phases["exchange"]
            + phases["matvec"]
            + 2 * phases["dot"]
            + phases["update_delta"]
            + 2 * phases["axpy"]
        )
        b = self._precond_step_time(None) if m >= 0 else 0.0
        return a, b

    # ------------------------------------------------------------------ solve
    def solve(
        self,
        m: int,
        coefficients: np.ndarray | None = None,
        eps: float = 1e-6,
        maxiter: int | None = None,
        label: str | None = None,
        applicator: str = "splitting",
        backend: str | None = None,
        preconditioner=None,
    ) -> FEMResult:
        """Run the method; numerics identical to the reference solver.

        ``applicator``/``backend`` mirror
        :func:`repro.driver.solve_mstep_ssor`: the default routes the
        preconditioner through the kernel layer's cached
        :class:`~repro.kernels.ColorBlockTriangularSolver` sweeps
        (``backend="vectorized"``), with ``backend="reference"`` the
        row-sequential pin and ``applicator="sweep"`` the Conrad–Wallach
        merged sweep.  The charged clock depends only on the iteration
        count — which every path reproduces — so the cost model is
        backend-invariant.

        A prebuilt ``preconditioner`` (an object with ``apply``) skips the
        per-solve applicator construction — the
        :class:`~repro.pipeline.SolverSession` hands its compiled, cached
        applicators in here so a whole Table-3 schedule shares one set of
        factorized sweeps.
        """
        require(m >= 0, "m must be non-negative")
        if m >= 1:
            coefficients = (
                np.ones(m) if coefficients is None else np.asarray(coefficients, float)
            )
            require(coefficients.size == m, "need one coefficient per step")
            parametrized = not np.allclose(coefficients, 1.0)
            if preconditioner is None:
                preconditioner = build_mstep_applicator(
                    self.blocked, coefficients, applicator=applicator, backend=backend
                )
        else:
            parametrized = False
            preconditioner = None

        ordering = self.blocked.ordering
        f_mc = ordering.permute_vector(np.asarray(self.problem.f, dtype=float))
        result = pcg(
            self.blocked.permuted,
            f_mc,
            preconditioner=preconditioner,
            eps=eps,
            maxiter=maxiter,
        )
        return self._charged_result(
            m=m,
            preconditioned=preconditioner is not None,
            iterations=result.iterations,
            converged=result.converged,
            u_natural=ordering.unpermute_vector(result.u),
            parametrized=parametrized,
            label=label,
        )

    def _charged_result(
        self,
        m: int,
        preconditioned: bool,
        iterations: int,
        converged: bool,
        u_natural: np.ndarray,
        parametrized: bool,
        label: str | None,
    ) -> FEMResult:
        """Charge one solve's clock and package the :class:`FEMResult`.

        The charge stream is purely structural — it depends only on
        ``m``, whether a preconditioner ran, the iteration count and the
        convergence flag — so any execution path that reproduces the
        iteration count (the per-cell :meth:`solve` or the batched
        lockstep :meth:`solve_schedule`) lands on the bitwise-identical
        clock and communication ledger by construction.
        """
        comm = CommLog(self.timing)
        compute_seconds = 0.0
        comm_seconds = 0.0
        reduction_seconds = 0.0
        flag_seconds = 0.0
        t_flop = self.timing.flop_time
        n_procs = self.assignment.n_procs
        max_owned = max(self._owned)

        def charge_exchange() -> float:
            if n_procs <= 1:
                return 0.0
            return self._exchange_phase_time(self._kp_exchange_words, comm)

        def charge_dot() -> tuple[float, float]:
            partial = 2 * max_owned * t_flop
            red = comm.add_reduction(n_procs, self.reduction)
            return partial, red

        step_compute = self._precond_step_compute()

        def charge_precond() -> tuple[float, float]:
            """Returns (compute seconds, comm seconds) of one application."""
            if not preconditioned:
                return 0.0, 0.0
            total_compute = total_comm = 0.0
            for _ in range(m):
                step_total = self._precond_step_time(comm)
                total_compute += step_compute
                total_comm += step_total - step_compute
            return total_compute, total_comm

        # Startup: K u⁰, r⁰ = f − K u⁰, M r̃⁰ = r⁰, p⁰ = r̃⁰, ρ₀.
        comm_seconds += charge_exchange()
        compute_seconds += max(self._matvec_flops) * t_flop
        compute_seconds += 2 * max_owned * t_flop  # r = f − K u
        pc, pm = charge_precond()
        compute_seconds += pc
        comm_seconds += pm
        partial, red = charge_dot()
        compute_seconds += partial
        reduction_seconds += red

        for it in range(1, iterations + 1):
            final = it == iterations and converged
            comm_seconds += charge_exchange()
            compute_seconds += max(self._matvec_flops) * t_flop  # K p
            partial, red = charge_dot()  # (p, Kp)
            compute_seconds += partial
            reduction_seconds += red
            compute_seconds += 3 * max_owned * t_flop  # u update + |Δu| pass
            flag_seconds += comm.add_flag_sync()
            if final:
                break
            compute_seconds += 2 * max_owned * t_flop  # r update
            pc, pm = charge_precond()
            compute_seconds += pc
            comm_seconds += pm
            partial, red = charge_dot()  # (r̃, r)
            compute_seconds += partial
            reduction_seconds += red
            compute_seconds += 2 * max_owned * t_flop  # p update

        seconds = compute_seconds + comm_seconds + reduction_seconds + flag_seconds
        if label is None:
            label = "0" if m == 0 else (f"{m}P" if parametrized else f"{m}")
        return FEMResult(
            label=label,
            m=m,
            parametrized=parametrized,
            n_procs=n_procs,
            iterations=iterations,
            converged=converged,
            seconds=seconds,
            compute_seconds=compute_seconds,
            comm_seconds=comm_seconds,
            reduction_seconds=reduction_seconds,
            flag_seconds=flag_seconds,
            total_records=comm.total_records,
            total_words=comm.total_words,
            u_natural=u_natural,
        )


    def _schedule_applicator(self, backend: str | None) -> MStepPreconditioner:
        """The cached shared applicator of :meth:`solve_schedule`.

        Every application overrides the coefficient schedule, so one
        factorized SSOR splitting per backend serves any mix of cells and
        any m.
        """
        if backend not in self._schedule_applicators:
            self._schedule_applicators[backend] = MStepPreconditioner(
                SSORSplitting(self.blocked.permuted, backend=backend),
                np.ones(1),
            )
        return self._schedule_applicators[backend]

    def solve_schedule(
        self,
        cells,
        eps: float = 1e-6,
        maxiter: int | None = None,
        labels=None,
        backend: str | None = None,
    ) -> list[FEMResult]:
        """All schedule cells through **one** lockstep simulator pass.

        The Finite Element Machine analogue of
        :meth:`repro.machines.cyber.CyberMachine.solve_schedule`:
        ``cells`` is a sequence of ``(m, coefficients)`` pairs — one per
        Table-3 row (``coefficients`` may be ``None`` for all-ones or
        plain CG).  Every cell's Algorithm 1 advances one outer iteration
        per pass; the still-active cells' direction vectors are stacked
        into an ``(n, k)`` block for one batched ``K``-product, and *all*
        preconditioned cells — whatever their m — run through **one**
        batched application of a shared splitting applicator
        (:meth:`~repro.core.mstep.MStepPreconditioner.apply` with an
        ``(m_max, k)`` per-column coefficient block, smaller-m schedules
        zero-padded at the top so their columns sit at exactly zero until
        their own first Horner step) instead of one application per cell.

        Numerics per cell are bit-identical to :meth:`solve`'s — every
        batched kernel is per-column bitwise equal to its single-vector
        form — and the clock is charged through the same structural
        replay (:meth:`_charged_result`), so iteration counts, charged
        seconds, communication ledgers and iterates all match the
        per-cell path bitwise (pinned in the tests and gated as
        ``fem_schedule`` in ``BENCH_kernels.json``).  Only the wall-clock
        of the simulation itself drops.
        """
        states: list[_FEMCellState] = []
        for m, coefficients in cells:
            require(m >= 0, "m must be non-negative")
            if m >= 1:
                coefficients = (
                    np.ones(m)
                    if coefficients is None
                    else np.asarray(coefficients, float)
                )
                require(coefficients.size == m, "need one coefficient per step")
                parametrized = not np.allclose(coefficients, 1.0)
                group = int(m)
            else:
                coefficients = None
                parametrized = False
                group = None
            states.append(_FEMCellState(m, coefficients, parametrized, group))

        # One shared splitting applicator — the realization solve() builds
        # per cell — driven through the per-application coefficient
        # override.  Cells of different m share a block application via
        # top-zero-padded schedules (see MStepPreconditioner.apply); the
        # applicator itself (the factorized SSOR splitting) is cached on
        # the machine, so repeated schedule runs rebuild nothing.
        max_m = max((st.m for st in states if st.group is not None), default=0)
        precond = self._schedule_applicator(backend) if max_m >= 1 else None
        for st in states:
            if st.group is not None:
                st.padded = np.zeros(max_m)
                st.padded[: st.m] = st.coefficients

        k_mat = self.blocked.permuted
        n = self.blocked.n
        block_matvec = supports_matvec_block(k_mat)
        ordering = self.blocked.ordering
        f_mc = np.ascontiguousarray(
            ordering.permute_vector(np.asarray(self.problem.f, dtype=float))
        )
        maxiter = maxiter if maxiter is not None else 5 * n + 100

        def precondition(active: list[_FEMCellState]) -> None:
            pre = []
            for st in active:
                if st.group is None:
                    st.rt = st.r.copy()  # M = I, as in pcg
                else:
                    pre.append(st)
            if not pre:
                return
            if len(pre) == 1:
                st = pre[0]
                st.rt = np.array(
                    precond.apply(st.r, coefficients=st.coefficients),
                    dtype=float,
                )
                return
            r_block = np.stack([st.r for st in pre], axis=1)
            coeffs = np.stack([st.padded for st in pre], axis=1)
            rt_block = precond.apply(
                r_block, coefficients=coeffs,
                column_steps=[st.m for st in pre],
            )
            for i, st in enumerate(pre):
                st.rt = np.ascontiguousarray(rt_block[:, i])

        # Startup: u⁰ = 0, r⁰ = f, r̃⁰ = M⁻¹r⁰, p⁰ = r̃⁰, ρ₀ — the exact
        # per-cell sequence of pcg().
        for st in states:
            st.u = np.zeros(n)
            st.r = f_mc.copy()
        precondition(states)
        for st in states:
            st.p = np.array(st.rt, dtype=float)
            st.rho = inner(st.rt, st.r)

        step = np.empty(n)
        kp_buf = np.empty(n)
        active = list(states)
        for iteration in range(1, maxiter + 1):
            if not active:
                break
            if len(active) > 1 and block_matvec:
                p_block = np.stack([st.p for st in active], axis=1)
                kp_block = np.zeros((n, len(active)))
                matvec_accumulate(k_mat, p_block, kp_block)
                kp_cols = [
                    np.ascontiguousarray(kp_block[:, i])
                    for i in range(len(active))
                ]
            else:
                kp_cols = []
                for st in active:
                    matvec_into(k_mat, st.p, kp_buf)
                    kp_cols.append(kp_buf.copy())
            survivors: list[_FEMCellState] = []
            for st, kp in zip(active, kp_cols):
                denom = inner(st.p, kp)
                if denom <= 0.0:
                    st.iterations = iteration
                    st.converged = st.rho == 0.0
                    continue
                alpha = st.rho / denom
                np.multiply(st.p, alpha, out=step)
                st.u += step
                delta_norm = inf_norm(step)
                st.iterations = iteration
                if delta_norm < eps:
                    st.converged = True
                    continue
                np.multiply(kp, alpha, out=step)
                st.r -= step
                survivors.append(st)
            if survivors:
                precondition(survivors)
                for st in survivors:
                    rho_new = inner(st.rt, st.r)
                    beta = rho_new / st.rho
                    st.rho = rho_new
                    xpay_into(st.rt, beta, st.p)
            active = survivors

        return [
            self._charged_result(
                m=st.m,
                preconditioned=st.group is not None,
                iterations=st.iterations,
                converged=st.converged,
                u_natural=ordering.unpermute_vector(st.u),
                parametrized=st.parametrized,
                label=labels[index] if labels is not None else None,
            )
            for index, st in enumerate(states)
        ]


def speedup_table(results_by_procs: dict[int, FEMResult]) -> dict[int, float]:
    """Speedups relative to the one-processor run (Table 3's columns)."""
    require(1 in results_by_procs, "need the one-processor baseline")
    base = results_by_procs[1].seconds
    return {p: base / r.seconds for p, r in sorted(results_by_procs.items())}
