"""Calibrated cost models for the two 1983 machines.

Neither the CYBER 203/205 nor the Finite Element Machine exists anymore, so
the simulators run the numerics for real and charge time through these
models.  The constants are calibrated to the *published characteristics*,
not to match absolute 1983 seconds:

**CYBER 203/205 (vector pipeline).**  A vector operation on ``n`` elements
costs ``(s + r·n)·τ`` — a startup of ``s`` element-times plus a per-element
stream rate.  The paper quotes efficiencies of ≈90 % at n = 1000, ≈50 % at
n = 100 and ≈10 % at n = 10; the single choice ``s = 100`` reproduces all
three exactly, since efficiency is ``n/(n + s)``.  Inner products add a
partial-sum phase — modeled as the machine's log₂-halving vector sums, each
with its own startup — which is why the paper calls them "considerably
slower than the other vector operations".

**Finite Element Machine (processor array).**  TI-9900-class processors
with software floating point (the paper's one-processor solve of 60
equations takes over a minute), nearest-neighbor links with a per-record
setup cost and per-word transfer cost, a signal-flag network for the
convergence test, and (designed but not yet installed in 1983) a sum/max
circuit performing global reductions in O(log₂ P).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.util import require

__all__ = ["VectorTimingModel", "ArrayTimingModel", "CYBER_203", "CYBER_205", "FEM_1983"]


@dataclass(frozen=True)
class VectorTimingModel:
    """Cost model for a pipelined vector machine.

    Parameters
    ----------
    startup_elements:
        Pipeline startup expressed in element-times (``s``); 100 fits the
        paper's efficiency quotes exactly.
    element_time:
        Seconds per streamed element (``τ``) for add/multiply-class ops.
    scalar_time:
        Seconds for one scalar operation (used for α, β and bookkeeping);
        scalar units on these machines were an order of magnitude slower
        per result than the pipes.
    dot_rate:
        Stream-rate multiplier for the multiply phase of an inner product.
    sum_startup_elements:
        Startup charged to *each* halving stage of the partial-sum phase.
    """

    startup_elements: float = 100.0
    element_time: float = 20e-9
    scalar_time: float = 1000e-9
    dot_rate: float = 1.0
    sum_startup_elements: float = 100.0

    def __post_init__(self) -> None:
        require(self.startup_elements >= 0, "startup must be non-negative")
        require(self.element_time > 0, "element time must be positive")

    def vector_op_time(self, n: int, n_ops: int = 1) -> float:
        """Time for ``n_ops`` elementwise vector operations of length n."""
        if n <= 0:
            return 0.0
        return n_ops * (self.startup_elements + n) * self.element_time

    def block_op_time(self, n: int, width: int) -> float:
        """One elementwise op on an ``(n, width)`` block streamed as a unit.

        The dense color-block sweeps of the kernel layer apply a whole
        block of right-hand sides per instruction, so the pipeline pays
        *one* startup for the ``n·width``-element stream — versus ``width``
        separate startups when the same work is issued vector at a time.
        ``width = 1`` is exactly :meth:`vector_op_time`.
        """
        if n <= 0 or width <= 0:
            return 0.0
        return (self.startup_elements + n * width) * self.element_time

    def efficiency(self, n: int) -> float:
        """Fraction of peak stream rate achieved at vector length n."""
        if n <= 0:
            return 0.0
        return n / (n + self.startup_elements)

    def dot_time(self, n: int) -> float:
        """Inner product: multiply stream + log₂-halving partial sums.

        The sum phase performs vector adds of lengths n/2, n/4, …, 1; each
        stage pays its own startup, so short stages are dominated by
        startup — the effect that makes the inner product the slow
        operation of Algorithm 1 on this machine.
        """
        if n <= 0:
            return 0.0
        multiply = (self.startup_elements + self.dot_rate * n) * self.element_time
        stages = max(1, math.ceil(math.log2(n))) if n > 1 else 1
        sum_elements = n  # total elements streamed across all halvings ≈ n
        sum_time = (
            stages * self.sum_startup_elements + sum_elements
        ) * self.element_time
        return multiply + sum_time

    def scalar_op_time(self, n_ops: int = 1) -> float:
        return n_ops * self.scalar_time


#: CYBER 203 at NASA Langley (the machine of Table 2): 64-bit stream rate
#: of one result per 20 ns per pipe is the right order of magnitude.
CYBER_203 = VectorTimingModel(
    startup_elements=100.0,
    element_time=20e-9,
    scalar_time=1500e-9,
    dot_rate=1.0,
    sum_startup_elements=100.0,
)

#: CYBER 205 successor: faster stream and shorter startup.
CYBER_205 = VectorTimingModel(
    startup_elements=50.0,
    element_time=10e-9,
    scalar_time=800e-9,
    dot_rate=1.0,
    sum_startup_elements=50.0,
)


@dataclass(frozen=True)
class ArrayTimingModel:
    """Cost model for the Finite Element Machine processor array.

    Parameters
    ----------
    flop_time:
        Seconds per floating-point operation (software floating point on a
        TI-9900-class CPU: ~0.5 ms/flop reproduces the minute-scale
        one-processor times of Table 3).
    record_latency:
        Per-record setup cost of a nearest-neighbor transfer (the paper
        packages all values of one color per neighbor into one record
        precisely to amortize this).
    word_time:
        Seconds per 32-bit word on a local link.
    flag_sync_time:
        One signal-flag-network convergence check (raise flags, synchronize,
        test all-raised).
    circuit_stage_time:
        One stage of the sum/max circuit; a global sum costs
        ``ceil(log₂ P)`` stages.
    ring_hop_time:
        One hop of the software reduction used before the circuit existed
        (P − 1 hops for a full ring reduction).
    color_phase_overhead:
        Fixed per-color-phase setup cost inside a preconditioner step (loop
        and data-structure overhead of the 14-coefficient stencil storage);
        one merged SSOR step runs ``2·n_colors − 1`` phases.  Calibrated so
        the one-processor step-to-iteration cost ratio ``B/A`` matches the
        ≈1 implied by Table 3's single-processor column.
    """

    flop_time: float = 700e-6
    record_latency: float = 3.5e-3
    word_time: float = 300e-6
    flag_sync_time: float = 2e-3
    circuit_stage_time: float = 50e-6
    ring_hop_time: float = 7e-3
    color_phase_overhead: float = 8e-3

    def __post_init__(self) -> None:
        require(self.flop_time > 0, "flop time must be positive")

    def compute_time(self, flops: int | float) -> float:
        return float(flops) * self.flop_time

    def record_time(self, n_words: int) -> float:
        """One packaged record of ``n_words`` values over a local link."""
        if n_words <= 0:
            return 0.0
        return self.record_latency + n_words * self.word_time

    def reduction_time(self, p: int, mode: str = "software") -> float:
        """Global sum across ``p`` processors.

        ``"software"`` — store-and-forward ring (what the 1983 machine had);
        ``"circuit"`` — the sum/max hardware circuit, O(log₂ P) (Jordan 1979).
        """
        if p <= 1:
            return 0.0
        if mode == "software":
            return (p - 1) * self.ring_hop_time
        if mode == "circuit":
            return math.ceil(math.log2(p)) * self.circuit_stage_time
        raise ValueError(f"unknown reduction mode {mode!r}")


#: The 1983 Finite Element Machine (Table 3 calibration).
FEM_1983 = ArrayTimingModel()
