"""Processor topology and node assignment for the Finite Element Machine.

Section 3.2: unconstrained nodes are assigned to processors in rectangles,
"as nearly as possible an equal number of Red, Black and Green unconstrained
nodes" per processor (Figures 3a–3c, Figure 5).  Each processor has eight
nearest-neighbor links; the '/' triangulation's stencil touches only six of
them — N, S, E, W, NW, SE (Figure 4).

:class:`Assignment` partitions the mesh's unconstrained columns and rows
into processor bands (``np.array_split``, so counts differ by at most one),
and precomputes everything the machine simulator charges for:

* per-processor node lists and color counts,
* the directed border sets — which of processor p's unknowns processor q's
  equations reference — per color group (these are the paper's packaged
  records: "the values of each color to be sent to a given neighbor can be
  packaged and sent as one record"),
* the set of link directions actually used.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.fem.mesh import PlateMesh
from repro.util import require

__all__ = ["ProcessorGrid", "Assignment", "LINK_DIRECTIONS"]

#: The eight FEM local links, as (Δcol, Δrow) processor offsets.
LINK_DIRECTIONS: dict[str, tuple[int, int]] = {
    "E": (1, 0),
    "W": (-1, 0),
    "N": (0, 1),
    "S": (0, -1),
    "NE": (1, 1),
    "NW": (-1, 1),
    "SE": (1, -1),
    "SW": (-1, -1),
}


@dataclass(frozen=True)
class ProcessorGrid:
    """``prows × pcols`` array of processors; id = row·pcols + col."""

    prows: int
    pcols: int

    def __post_init__(self) -> None:
        require(self.prows >= 1 and self.pcols >= 1, "grid must be non-empty")

    @property
    def n_procs(self) -> int:
        return self.prows * self.pcols

    def proc_id(self, pcol: int, prow: int) -> int:
        require(0 <= pcol < self.pcols and 0 <= prow < self.prows, "proc out of range")
        return prow * self.pcols + pcol

    def proc_rc(self, proc: int) -> tuple[int, int]:
        require(0 <= proc < self.n_procs, "proc out of range")
        return proc % self.pcols, proc // self.pcols

    @classmethod
    def for_count(cls, n_procs: int, mesh: PlateMesh) -> "ProcessorGrid":
        """A near-balanced grid for ``n_procs`` fitting the mesh's shape.

        Picks the factorization p_r × p_c of n_procs whose bands divide the
        unconstrained node grid most evenly (matching the paper's Figure-5
        choices: 2 → 2×1 row split, 5 → 1×5 column split for the 6×5 grid).
        """
        require(n_procs >= 1, "need at least one processor")
        rows, cols = mesh.nrows, mesh.b
        best = None
        for prows in range(1, n_procs + 1):
            if n_procs % prows:
                continue
            pcols = n_procs // prows
            if prows > rows or pcols > cols:
                continue
            # Imbalance: spread of band products.
            row_bands = [len(b) for b in np.array_split(range(rows), prows)]
            col_bands = [len(b) for b in np.array_split(range(cols), pcols)]
            sizes = [r * c for r in row_bands for c in col_bands]
            score = (max(sizes) - min(sizes), abs(prows - pcols))
            if best is None or score < best[0]:
                best = (score, cls(prows=prows, pcols=pcols))
        require(best is not None, "no processor grid fits this mesh")
        return best[1]


@dataclass(frozen=True)
class Assignment:
    """Node → processor map plus all derived communication structure."""

    mesh: PlateMesh
    grid: ProcessorGrid
    #: processor of every node; −1 for constrained nodes (never assigned).
    proc_of_node: np.ndarray

    @classmethod
    def rectangles(cls, mesh: PlateMesh, grid: ProcessorGrid) -> "Assignment":
        """The paper's rectangular partition of the unconstrained nodes."""
        require(grid.prows <= mesh.nrows, "more processor rows than node rows")
        require(grid.pcols <= mesh.b, "more processor columns than node columns")
        row_band = np.empty(mesh.nrows, dtype=np.int64)
        for band, rows in enumerate(np.array_split(np.arange(mesh.nrows), grid.prows)):
            row_band[rows] = band
        col_band = np.empty(mesh.ncols, dtype=np.int64)
        col_band[0] = -1  # constrained column
        for band, cols in enumerate(
            np.array_split(np.arange(1, mesh.ncols), grid.pcols)
        ):
            col_band[cols] = band

        proc = -np.ones(mesh.n_nodes, dtype=np.int64)
        for node in range(mesh.n_nodes):
            i, j = mesh.node_ij(node)
            if col_band[i] < 0:
                continue
            proc[node] = grid.proc_id(int(col_band[i]), int(row_band[j]))
        return cls(mesh=mesh, grid=grid, proc_of_node=proc)

    # ------------------------------------------------------------- ownership
    @property
    def n_procs(self) -> int:
        return self.grid.n_procs

    @cached_property
    def nodes_of_proc(self) -> list[np.ndarray]:
        return [
            np.flatnonzero(self.proc_of_node == p) for p in range(self.n_procs)
        ]

    @cached_property
    def unknowns_of_proc(self) -> list[np.ndarray]:
        """Natural reduced unknown indices owned by each processor."""
        out = []
        for p in range(self.n_procs):
            nodes = self.nodes_of_proc[p]
            ranks = self.mesh.node_rank[nodes]
            unknowns = np.empty(2 * nodes.size, dtype=np.int64)
            unknowns[0::2] = 2 * ranks
            unknowns[1::2] = 2 * ranks + 1
            out.append(np.sort(unknowns))
        return out

    @cached_property
    def proc_of_unknown(self) -> np.ndarray:
        """Owner of every natural reduced unknown."""
        owner = np.empty(self.mesh.n_unknowns, dtype=np.int64)
        owner[:] = -1
        for p, unknowns in enumerate(self.unknowns_of_proc):
            owner[unknowns] = p
        return owner

    def color_counts(self, proc: int) -> np.ndarray:
        """Unconstrained node count per color on ``proc`` (Figure-5 balance)."""
        nodes = self.nodes_of_proc[proc]
        return np.bincount(self.mesh.node_colors[nodes], minlength=3)

    def balance_report(self) -> dict[str, int]:
        """Max spread of per-color node counts across processors."""
        counts = np.stack([self.color_counts(p) for p in range(self.n_procs)])
        return {
            "max_nodes": int(counts.sum(axis=1).max()),
            "min_nodes": int(counts.sum(axis=1).min()),
            "max_color_spread": int((counts.max(axis=0) - counts.min(axis=0)).max()),
        }

    # ---------------------------------------------------------------- borders
    @cached_property
    def border_pairs(self) -> dict[tuple[int, int], np.ndarray]:
        """Directed border sets: ``(owner, consumer) → owner's border nodes``.

        Node ``n`` (owned by p) is in the (p, q) border when some node of q
        is a mesh neighbor of ``n`` — q's equations then reference values at
        ``n`` and p must send them.
        """
        pairs: dict[tuple[int, int], set[int]] = {}
        for node in range(self.mesh.n_nodes):
            p = int(self.proc_of_node[node])
            if p < 0:
                continue
            for other in self.mesh.neighbors(node):
                q = int(self.proc_of_node[other])
                if q < 0 or q == p:
                    continue
                pairs.setdefault((p, q), set()).add(node)
        return {
            key: np.array(sorted(nodes), dtype=np.int64)
            for key, nodes in sorted(pairs.items())
        }

    def border_words(self, owner: int, consumer: int, colors=None) -> int:
        """Values (words) ``owner`` sends ``consumer`` for the given colors.

        Two words per border node (u and v); ``colors=None`` means all three
        node colors (the full p-vector exchange of the CG iteration).
        """
        nodes = self.border_pairs.get((owner, consumer))
        if nodes is None:
            return 0
        if colors is None:
            return 2 * nodes.size
        node_colors = self.mesh.node_colors[nodes]
        keep = np.isin(node_colors, np.asarray(list(colors)))
        return 2 * int(np.count_nonzero(keep))

    def neighbors_of_proc(self, proc: int) -> list[int]:
        """Processors this one exchanges with (either direction)."""
        out = set()
        for (p, q) in self.border_pairs:
            if p == proc:
                out.add(q)
            if q == proc:
                out.add(p)
        return sorted(out)

    @cached_property
    def links_used(self) -> set[str]:
        """Directions (of the 8 links) carrying traffic — Figure 4 says 6."""
        used = set()
        inverse = {offset: name for name, offset in LINK_DIRECTIONS.items()}
        for (p, q) in self.border_pairs:
            pc, pr = self.grid.proc_rc(p)
            qc, qr = self.grid.proc_rc(q)
            offset = (qc - pc, qr - pr)
            if offset in inverse:
                used.add(inverse[offset])
        return used

    # ------------------------------------------------------------- rendering
    def ascii_map(self) -> str:
        """Figure 3/5-style map: processor id per node ('.' = constrained)."""
        width = max(2, len(str(self.n_procs - 1)) + 1)
        rows = []
        for j in reversed(range(self.mesh.nrows)):
            cells = []
            for i in range(self.mesh.ncols):
                p = int(self.proc_of_node[self.mesh.node_id(i, j)])
                cells.append((".".rjust(width)) if p < 0 else str(p).rjust(width))
            rows.append("".join(cells))
        return "\n".join(rows)
