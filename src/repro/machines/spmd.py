"""A real distributed-memory (SPMD) execution of Algorithm 1 + Algorithm 3.

Where :class:`~repro.machines.fem_machine.FiniteElementMachine` charges a
*cost model* while computing globally, this engine actually distributes the
data the way Section 3.2 describes and runs per-processor code:

* each processor stores only its owned unknowns, its stencil rows (columns
  remapped to a local ``[owned | halo]`` layout), and halo buffers for the
  border values it receives;
* every transfer moves through an explicit message plan — (sender-local
  gather indices → receiver-halo positions) per processor pair — at *node*
  granularity (both displacements of a border node travel together, the
  paper's packaged records);
* the m-step SSOR sweep runs color phase by color phase with exchanges at
  exactly the points Algorithm 3 prescribes: after each node color in the
  forward sweep, and after the Gu and Bu solves in the backward sweep
  (same-node couplings are always processor-local, which is why the R pair
  never needs a backward re-send);
* inner products are computed as per-processor partials reduced in rank
  order — a deterministic simulation of the machine's global sum.

Because local row kernels sum their columns in a *different order* than the
global solver, iterates agree with the reference only to roundoff; the
test-suite pins iteration counts within ±2 and solutions to ~1e-6, and —
more importantly — cross-validates the *measured* message ledger against
the static counts the FiniteElementMachine cost model charges.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.driver import build_blocked_system
from repro.kernels.ops import matvec_accumulate
from repro.machines.topology import Assignment
from repro.util import require

__all__ = ["SPMDSolver", "SPMDResult", "MessageLedger"]


@dataclass
class MessageLedger:
    """Words actually moved, by phase kind and directed pair."""

    words_by_kind: dict[str, int] = field(default_factory=dict)
    words_by_pair: dict[tuple[int, int], int] = field(default_factory=dict)
    messages: int = 0

    def log(self, kind: str, src: int, dst: int, n_words: int) -> None:
        if n_words <= 0:
            return
        self.messages += 1
        self.words_by_kind[kind] = self.words_by_kind.get(kind, 0) + n_words
        key = (src, dst)
        self.words_by_pair[key] = self.words_by_pair.get(key, 0) + n_words

    @property
    def total_words(self) -> int:
        return sum(self.words_by_kind.values())


@dataclass
class SPMDResult:
    iterations: int
    converged: bool
    u_natural: np.ndarray
    ledger: MessageLedger
    n_procs: int


class _SPMDCellState:
    """Per-cell running state of a batched :meth:`SPMDSolver.solve_schedule`."""

    __slots__ = (
        "m", "coefficients", "padded", "ledger", "ud", "rd", "rtd", "pd",
        "rho", "iterations", "converged",
    )

    def __init__(self, m: int, coefficients: np.ndarray | None):
        self.m = m
        self.coefficients = coefficients
        self.padded = None  # α schedule zero-padded to the batch's max m
        self.ledger = MessageLedger()
        self.ud = self.rd = self.rtd = self.pd = None
        self.rho = 0.0
        self.iterations = 0
        self.converged = False


class _Plan:
    """One directed transfer: gather from the owner, fill the halo."""

    __slots__ = ("src", "dst", "src_local", "dst_halo", "groups")

    def __init__(self, src, dst, src_local, dst_halo, groups):
        self.src = src
        self.dst = dst
        self.src_local = src_local  # indices into owner's owned array
        self.dst_halo = dst_halo  # indices into receiver's halo array
        self.groups = groups  # color group of each transferred value


class SPMDSolver:
    """Distributed m-step multicolor SSOR PCG on an :class:`Assignment`."""

    def __init__(self, problem, assignment: Assignment, blocked=None):
        self.problem = problem
        self.assignment = assignment
        blocked = blocked if blocked is not None else build_blocked_system(problem)
        self.blocked = blocked
        ordering = blocked.ordering
        self.ordering = ordering
        self.n = blocked.n
        self.nc = ordering.n_groups
        n_procs = assignment.n_procs
        self.n_procs = n_procs

        permuted = blocked.permuted.tocsr()
        groups_mc = np.sort(ordering.groups)  # group of each multicolor index

        owner_mc = assignment.proc_of_unknown[ordering.perm]
        self.owned_idx = [
            np.flatnonzero(owner_mc == p) for p in range(n_procs)
        ]
        # local position of each multicolor index within its owner
        local_pos = np.empty(self.n, dtype=np.int64)
        for p in range(n_procs):
            local_pos[self.owned_idx[p]] = np.arange(self.owned_idx[p].size)

        # Node-granular halo: referenced remote indices, closed over (u, v)
        # pairs of the same node (the paper's packaged records).
        mesh = problem.mesh
        node_of_mc = mesh.dof_node[ordering.perm]
        self.halo_idx: list[np.ndarray] = []
        for p in range(n_procs):
            rows = permuted[self.owned_idx[p]]
            referenced = np.unique(rows.tocoo().col)
            remote = referenced[owner_mc[referenced] != p]
            remote_nodes = np.unique(node_of_mc[remote])
            node_mask = np.isin(node_of_mc, remote_nodes) & (owner_mc != p)
            self.halo_idx.append(np.flatnonzero(node_mask))

        # Local matrices: rows owned by p over columns [owned | halo].
        self.local_k: list[sp.csr_matrix] = []
        self.local_col_groups: list[np.ndarray] = []
        self.local_diag: list[np.ndarray] = []
        self.row_groups: list[np.ndarray] = []
        self.rows_of_group: list[list[np.ndarray]] = []
        for p in range(n_procs):
            owned = self.owned_idx[p]
            halo = self.halo_idx[p]
            col_map = -np.ones(self.n, dtype=np.int64)
            col_map[owned] = np.arange(owned.size)
            col_map[halo] = owned.size + np.arange(halo.size)
            rows = permuted[owned].tocoo()
            keep = col_map[rows.col] >= 0
            require(bool(np.all(keep)), "referenced column missing from halo")
            local = sp.csr_matrix(
                (rows.data, (rows.row, col_map[rows.col])),
                shape=(owned.size, owned.size + halo.size),
            )
            self.local_k.append(local)
            self.local_col_groups.append(
                np.concatenate([groups_mc[owned], groups_mc[halo]])
                if owned.size + halo.size
                else np.empty(0, dtype=np.int64)
            )
            self.local_diag.append(permuted[owned][:, owned].diagonal().copy())
            rg = groups_mc[owned]
            self.row_groups.append(rg)
            self.rows_of_group.append(
                [np.flatnonzero(rg == c) for c in range(self.nc)]
            )

        # Per-processor, per-row-color, per-column-group sweep blocks.
        self.sweep_blocks: list[list[dict[int, sp.csr_matrix]]] = []
        for p in range(n_procs):
            per_color: list[dict[int, sp.csr_matrix]] = []
            col_groups = self.local_col_groups[p]
            owned_count = self.owned_idx[p].size
            for c in range(self.nc):
                rows_c = self.rows_of_group[p][c]
                row_block = self.local_k[p][rows_c]
                blocks: dict[int, sp.csr_matrix] = {}
                for j in range(self.nc):
                    if j == c:
                        # Same-group coupling is the diagonal only (proper
                        # coloring); it is applied through local_diag.
                        continue
                    cols = np.flatnonzero(col_groups == j)
                    if cols.size == 0:
                        continue
                    sub = row_block[:, cols].tocsr()
                    if sub.nnz:
                        blocks[j] = sub
                per_color.append(blocks)
            self.sweep_blocks.append(per_color)

        # Column selections per group (for gathering sweep inputs).
        self.cols_of_group: list[list[np.ndarray]] = [
            [np.flatnonzero(self.local_col_groups[p] == j) for j in range(self.nc)]
            for p in range(n_procs)
        ]

        # Message plans per directed pair.
        self.plans: list[_Plan] = []
        for p in range(n_procs):
            halo = self.halo_idx[p]
            if halo.size == 0:
                continue
            halo_owner = owner_mc[halo]
            for q in range(n_procs):
                sel = np.flatnonzero(halo_owner == q)
                if sel.size == 0:
                    continue
                src_local = local_pos[halo[sel]]
                self.plans.append(
                    _Plan(
                        src=q,
                        dst=p,
                        src_local=src_local,
                        dst_halo=sel,
                        groups=groups_mc[halo[sel]],
                    )
                )

        self.ledger = MessageLedger()

    # ------------------------------------------------------------ primitives
    def scatter(self, x_mc: np.ndarray) -> list[np.ndarray]:
        return [np.array(x_mc[idx], dtype=float) for idx in self.owned_idx]

    def gather(self, xd: list[np.ndarray]) -> np.ndarray:
        out = np.empty(self.n)
        for p, idx in enumerate(self.owned_idx):
            out[idx] = xd[p]
        return out

    def new_halos(self, width: int | None = None) -> list[np.ndarray]:
        """Fresh halo buffers: ``(halo,)`` vectors or ``(halo, width)`` blocks."""
        if width is None:
            return [np.zeros(idx.size) for idx in self.halo_idx]
        return [np.zeros((idx.size, width)) for idx in self.halo_idx]

    def exchange(
        self,
        xd: list[np.ndarray],
        halos: list[np.ndarray],
        kind: str,
        groups=None,
        ledgers=None,
    ) -> None:
        """Fill halo buffers from owners; optionally only some color groups.

        ``xd``/``halos`` may hold ``(owned,)`` vectors or ``(owned, k)``
        blocks (the batched lockstep schedule).  ``ledgers`` names the
        :class:`MessageLedger`\\ s to book the transfer on — by default the
        solver's own; the batched passes hand in one ledger per live cell
        so each cell's account matches a solo solve's bitwise (a cell is
        charged its own words, not the block's).
        """
        if ledgers is None:
            ledgers = (self.ledger,)
        for plan in self.plans:
            if groups is None:
                src_sel = plan.src_local
                dst_sel = plan.dst_halo
                count = src_sel.size
            else:
                mask = np.isin(plan.groups, groups)
                if not np.any(mask):
                    continue
                src_sel = plan.src_local[mask]
                dst_sel = plan.dst_halo[mask]
                count = int(np.count_nonzero(mask))
            halos[plan.dst][dst_sel] = xd[plan.src][src_sel]
            for ledger in ledgers:
                ledger.log(kind, plan.src, plan.dst, count)

    def matvec(
        self, xd: list[np.ndarray], halos: list[np.ndarray], ledgers=None
    ) -> list[np.ndarray]:
        self.exchange(xd, halos, kind="p_exchange", ledgers=ledgers)
        out = []
        for p in range(self.n_procs):
            local = (
                np.concatenate([xd[p], halos[p]]) if halos[p].size else xd[p]
            )
            out.append(self.local_k[p] @ local)
        return out

    def dot(self, xd: list[np.ndarray], yd: list[np.ndarray]) -> float:
        return float(sum(float(np.dot(xd[p], yd[p])) for p in range(self.n_procs)))

    def axpy(self, alpha: float, xd, yd) -> list[np.ndarray]:
        return [yd[p] + alpha * xd[p] for p in range(self.n_procs)]

    def inf_norm(self, xd) -> float:
        # The flag network: each processor tests its own portion; the global
        # verdict is the max of local maxima.
        return max(
            (float(np.max(np.abs(x))) if x.size else 0.0) for x in xd
        )

    # -------------------------------------------------------------- m-step SSOR
    def _solve_color(self, p, c, x_sum, y_c, alpha, rd, rt_local):
        rows_c = self.rows_of_group[p][c]
        if rows_c.size == 0:
            return np.empty((0,) + rd[p].shape[1:])
        rhs = x_sum + y_c + alpha * rd[p][rows_c]
        diag = self.local_diag[p][rows_c]
        return rhs / (diag if rhs.ndim == 1 else diag[:, None])

    def _row_sum(self, p, c, rt_full, js) -> np.ndarray:
        # The same per-color accumulation the kernel layer's color-block
        # sweeps run, here over each processor's local sub-blocks: scipy's
        # compiled CSR matvec accumulates straight into the sum (identical
        # arithmetic to `acc += block @ x`, one temporary less per block).
        rows_c = self.rows_of_group[p][c]
        acc = np.zeros((rows_c.size,) + rt_full.shape[1:])
        for j in js:
            block = self.sweep_blocks[p][c].get(j)
            if block is not None:
                matvec_accumulate(block, rt_full[self.cols_of_group[p][j]], acc)
        return acc

    def precondition(
        self,
        coefficients: np.ndarray,
        rd: list[np.ndarray],
        ledgers=None,
        column_steps=None,
    ) -> list[np.ndarray]:
        """Distributed Algorithm 3 (merged Conrad–Wallach sweeps).

        ``rd`` holds per-processor ``(owned,)`` vectors — one residual —
        or ``(owned, k)`` blocks (``k`` cells advancing in lockstep), with
        ``coefficients`` then ``(m,)`` shared or ``(m, k)`` per-column.
        Cells of different m batch by zero-padding their schedules at the
        top: a padded column's state stays exactly zero until its own
        first step, so every column is bit-identical to a solo sweep.
        ``ledgers`` (one per column) books each exchange on the cells it
        belongs to; ``column_steps`` gives each column's *real* step count
        so padding steps — which move only zeros — charge nothing to the
        cells still waiting (their solo runs never performed them).
        """
        nc = self.nc
        coefficients = np.asarray(coefficients, dtype=float)
        m = coefficients.shape[0]
        n_procs = self.n_procs
        tail = rd[0].shape[1:] if rd else ()
        width = tail[0] if tail else None
        rt = [np.zeros_like(rd[p]) for p in range(n_procs)]
        halos = self.new_halos(width)
        # rt_full[p]: local [owned | halo] view of r̃, refreshed lazily.
        rt_full = [
            np.concatenate([rt[p], halos[p]]) if halos[p].size else rt[p].copy()
            for p in range(n_procs)
        ]
        y = [
            [
                np.zeros((self.rows_of_group[p][c].size,) + tail)
                for c in range(nc)
            ]
            for p in range(n_procs)
        ]

        def step_ledgers(s):
            """The ledgers of the cells whose sweep is live at step ``s``."""
            if ledgers is None or column_steps is None:
                return ledgers
            return [
                ledger
                for ledger, steps in zip(ledgers, column_steps)
                if s > m - steps
            ]

        def refresh(groups, kind, s):
            self.exchange(
                rt, halos, kind=kind, groups=groups, ledgers=step_ledgers(s)
            )
            for p in range(n_procs):
                owned_count = self.owned_idx[p].size
                if halos[p].size:
                    rt_full[p][:owned_count] = rt[p]
                    rt_full[p][owned_count:] = halos[p]
                else:
                    rt_full[p][:] = rt[p]

        def set_color(p, c, values):
            rows_c = self.rows_of_group[p][c]
            rt[p][rows_c] = values
            rt_full[p][rows_c] = values

        for s in range(1, m + 1):
            alpha = coefficients[m - s]
            if coefficients.ndim == 1:
                alpha = float(alpha)
            # ---- forward sweep, exchanging after each node-color pair ----
            for c in range(nc):
                for p in range(n_procs):
                    x = -self._row_sum(p, c, rt_full[p], range(c))
                    values = self._solve_color(p, c, x, y[p][c], alpha, rd, rt)
                    set_color(p, c, values)
                    y[p][c] = x
                if c % 2 == 1:  # node-color pair (c−1, c) complete
                    refresh(groups=[c - 1, c], kind="precond_fwd", s=s)
            # ---- backward sweep over interior colors -------------------
            for c in range(nc - 2, 0, -1):
                for p in range(n_procs):
                    x = -self._row_sum(p, c, rt_full[p], range(c + 1, nc))
                    values = self._solve_color(p, c, x, y[p][c], alpha, rd, rt)
                    set_color(p, c, values)
                    y[p][c] = x
                if c % 2 == 0:  # after Gu (c = nc−2) and Bu (c = 2) solves
                    refresh(groups=[c, c + 1], kind="precond_bwd", s=s)
            for p in range(n_procs):
                y[p][nc - 1] = np.zeros(
                    (self.rows_of_group[p][nc - 1].size,) + tail
                )
            # ---- first color: close the step or prepare the next -------
            for p in range(n_procs):
                x = -self._row_sum(p, 0, rt_full[p], range(1, nc))
                if s == m:
                    rows_0 = self.rows_of_group[p][0]
                    diag = self.local_diag[p][rows_0]
                    rhs = x + alpha * rd[p][rows_0]
                    values = rhs / (diag if rhs.ndim == 1 else diag[:, None])
                    set_color(p, 0, values)
                else:
                    y[p][0] = x
            if s < m:
                # The next forward sweep's R phase needs nothing remote yet;
                # color 0/1 values travel in its own first exchange.
                pass
        return rt

    # ------------------------------------------------------------------ solve
    def solve(
        self,
        m: int,
        coefficients: np.ndarray | None = None,
        eps: float = 1e-6,
        maxiter: int | None = None,
    ) -> SPMDResult:
        require(m >= 0, "m must be non-negative")
        if m >= 1:
            coefficients = (
                np.ones(m) if coefficients is None else np.asarray(coefficients, float)
            )
            require(coefficients.size == m, "need one coefficient per step")
        f_mc = self.ordering.permute_vector(np.asarray(self.problem.f, dtype=float))
        maxiter = maxiter if maxiter is not None else 5 * self.n + 100

        fd = self.scatter(f_mc)
        ud = [np.zeros_like(x) for x in fd]
        rd = [x.copy() for x in fd]  # u⁰ = 0
        if m >= 1:
            rtd = self.precondition(coefficients, rd)
        else:
            rtd = [x.copy() for x in rd]
        pd = [x.copy() for x in rtd]
        rho = self.dot(rtd, rd)
        halos = self.new_halos()

        converged = False
        iterations = 0
        for iteration in range(1, maxiter + 1):
            kpd = self.matvec(pd, halos)
            denom = self.dot(pd, kpd)
            if denom <= 0.0:
                iterations = iteration
                converged = rho == 0.0
                break
            alpha = rho / denom
            stepd = [alpha * pd[p] for p in range(self.n_procs)]
            ud = self.axpy(1.0, stepd, ud)
            delta = self.inf_norm(stepd)
            iterations = iteration
            if delta < eps:
                converged = True
                break
            rd = self.axpy(-alpha, kpd, rd)
            rtd = (
                self.precondition(coefficients, rd)
                if m >= 1
                else [x.copy() for x in rd]
            )
            rho_new = self.dot(rtd, rd)
            beta = rho_new / rho
            rho = rho_new
            pd = self.axpy(beta, pd, rtd)

        u_mc = self.gather(ud)
        return SPMDResult(
            iterations=iterations,
            converged=converged,
            u_natural=self.ordering.unpermute_vector(u_mc),
            ledger=self.ledger,
            n_procs=self.n_procs,
        )

    def solve_schedule(
        self,
        cells,
        eps: float = 1e-6,
        maxiter: int | None = None,
    ) -> list[SPMDResult]:
        """All schedule cells through **one** distributed lockstep pass.

        The SPMD analogue of the CYBER and Finite Element Machine
        ``solve_schedule`` passes: ``cells`` is a sequence of
        ``(m, coefficients)`` pairs, every cell's Algorithm 1 advancing
        one outer iteration per pass.  The still-active cells' direction
        vectors are stacked into per-processor ``(owned, k)`` blocks for
        one batched halo exchange + local product, and all preconditioned
        cells share **one** distributed Algorithm-3 sweep per iteration
        (per-column α schedules, smaller m zero-padded — see
        :meth:`precondition`).  Each cell owns a
        :class:`MessageLedger`; batched exchanges book each cell exactly
        the words its solo solve would move, so per-cell iteration
        counts, iterates and message ledgers are bitwise identical to
        per-cell :meth:`solve` runs (pinned in the tests).
        """
        states: list[_SPMDCellState] = []
        for m, coefficients in cells:
            require(m >= 0, "m must be non-negative")
            if m >= 1:
                coefficients = (
                    np.ones(m)
                    if coefficients is None
                    else np.asarray(coefficients, float)
                )
                require(coefficients.size == m, "need one coefficient per step")
            else:
                coefficients = None
            states.append(_SPMDCellState(m, coefficients))
        max_m = max((st.m for st in states if st.m >= 1), default=0)
        for st in states:
            if st.m >= 1:
                st.padded = np.zeros(max_m)
                st.padded[: st.m] = st.coefficients

        n_procs = self.n_procs
        f_mc = self.ordering.permute_vector(np.asarray(self.problem.f, dtype=float))
        maxiter = maxiter if maxiter is not None else 5 * self.n + 100

        def precondition_cells(active: list[_SPMDCellState]) -> None:
            pre = []
            for st in active:
                if st.m == 0:
                    st.rtd = [x.copy() for x in st.rd]
                else:
                    pre.append(st)
            if not pre:
                return
            if len(pre) == 1:
                st = pre[0]
                st.rtd = self.precondition(
                    st.coefficients, st.rd, ledgers=[st.ledger]
                )
                return
            rd_block = [
                np.stack([st.rd[p] for st in pre], axis=1)
                for p in range(n_procs)
            ]
            coeffs = np.stack([st.padded for st in pre], axis=1)
            rt_block = self.precondition(
                coeffs,
                rd_block,
                ledgers=[st.ledger for st in pre],
                column_steps=[st.m for st in pre],
            )
            for i, st in enumerate(pre):
                st.rtd = [
                    np.ascontiguousarray(rt_block[p][:, i])
                    for p in range(n_procs)
                ]

        # Startup: u⁰ = 0, r⁰ = f, r̃⁰ = M⁻¹r⁰, p⁰ = r̃⁰, ρ₀ — the exact
        # per-cell sequence of :meth:`solve`.
        for st in states:
            fd = self.scatter(f_mc)
            st.ud = [np.zeros_like(x) for x in fd]
            st.rd = [x.copy() for x in fd]
        precondition_cells(states)
        for st in states:
            st.pd = [x.copy() for x in st.rtd]
            st.rho = self.dot(st.rtd, st.rd)

        active = list(states)
        for iteration in range(1, maxiter + 1):
            if not active:
                break
            if len(active) == 1:
                st = active[0]
                halos = self.new_halos()
                kpd_cols = [self.matvec(st.pd, halos, ledgers=[st.ledger])]
            else:
                p_block = [
                    np.stack([st.pd[p] for st in active], axis=1)
                    for p in range(n_procs)
                ]
                halos = self.new_halos(len(active))
                kp_block = self.matvec(
                    p_block, halos, ledgers=[st.ledger for st in active]
                )
                kpd_cols = [
                    [
                        np.ascontiguousarray(kp_block[p][:, i])
                        for p in range(n_procs)
                    ]
                    for i in range(len(active))
                ]
            survivors: list[_SPMDCellState] = []
            for st, kpd in zip(active, kpd_cols):
                denom = self.dot(st.pd, kpd)
                if denom <= 0.0:
                    st.iterations = iteration
                    st.converged = st.rho == 0.0
                    continue
                alpha = st.rho / denom
                stepd = [alpha * st.pd[p] for p in range(n_procs)]
                st.ud = self.axpy(1.0, stepd, st.ud)
                delta = self.inf_norm(stepd)
                st.iterations = iteration
                if delta < eps:
                    st.converged = True
                    continue
                st.rd = self.axpy(-alpha, kpd, st.rd)
                survivors.append(st)
            if survivors:
                precondition_cells(survivors)
                for st in survivors:
                    rho_new = self.dot(st.rtd, st.rd)
                    beta = rho_new / st.rho
                    st.rho = rho_new
                    st.pd = self.axpy(beta, st.pd, st.rtd)
            active = survivors

        return [
            SPMDResult(
                iterations=st.iterations,
                converged=st.converged,
                u_natural=self.ordering.unpermute_vector(self.gather(st.ud)),
                ledger=st.ledger,
                n_procs=n_procs,
            )
            for st in states
        ]
