"""Matrix-free stencil operator: fused ``K·x`` and multicolor SSOR sweeps.

The paper's two inner kernels — the operator product ``K·x`` and the
multicolor SSOR color-block sweep — need no assembled matrix on a regular
mesh: every row of ``K`` couples a node to a fixed set of grid neighbors,
so the whole operator is a handful of *diagonals* ``K[i, i+o]`` indexed by
a constant offset ``o``.  :class:`StencilOperator` stores exactly those
diagonals (a few ``(n,)`` vectors instead of CSR data/indices/indptr) and

* applies ``K·x`` as trimmed shifted-slice multiply-adds, accumulated in
  ascending-offset order — which *is* ascending-column order per row, the
  same association scipy's compiled ``csr_matvec`` uses, so the product is
  bitwise identical to the assembled natural-ordering matvec;
* exposes the per-color sweep structure (gather columns + coefficients per
  ``(color, offset)`` pair) that :class:`StencilSSOR` runs Algorithm 2's
  Conrad–Wallach merged double sweep on, directly in natural ordering — no
  permutation, no ``ColorBlockTriangularSolver`` factors, no CSR.

Both paths handle ``(n,)`` vectors and ``(n, k)`` blocks; the block forms
are per-column bitwise identical to the single-vector forms (same
accumulation order), so :func:`repro.core.pcg.block_pcg` batches through
them unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.kernels._native import load_native
from repro.kernels.workspace import WorkspacePool
from repro.util import OperationCounter, require

__all__ = ["StencilOperator", "StencilSSOR"]


@dataclass(frozen=True)
class _GroupTable:
    """Sweep structure of one color: rows, diagonal, lower/upper couplings.

    ``lower``/``upper`` hold ``(target_group, offset, cols, coeffs)``
    tuples sorted by ``(target_group, offset)`` — for each row of the
    color that is ascending permuted-column order, the order the merged
    CSR block rows of :class:`~repro.multicolor.blocked.BlockedMatrix`
    accumulate in, which keeps the sweeps bitwise comparable.  ``cols``
    are clipped into range; out-of-range positions carry a zero
    coefficient, so their gathered garbage contributes exactly ``±0.0``.
    """

    rows: np.ndarray
    diag: np.ndarray
    lower: tuple
    upper: tuple
    lower_count: int
    upper_count: int


class StencilOperator:
    """``K`` as constant-offset diagonals over the natural ordering.

    Parameters
    ----------
    offsets:
        Strictly increasing integer diagonal offsets; must include ``0``.
    values:
        ``(len(offsets), n)`` float64 array, ``values[d][i] = K[i, i+offsets[d]]``.
        Rows whose column ``i + o`` falls outside ``[0, n)`` are zeroed on
        construction, so builders only need to mask *interior* holes (e.g.
        grid-row wraps).
    groups:
        ``(n,)`` color-group index per unknown (the multicolor ordering's
        ``group_of_unknown``); consecutive integers starting at 0.
    group_labels:
        Optional color names for display.
    copy:
        Copy ``values`` before zeroing the out-of-range rows in place
        (the default).  Builders that construct a fresh array anyway pass
        ``copy=False`` to hand over ownership — at large ``n`` the
        defensive copy would double the coefficient footprint exactly at
        construction peak, which is the metric the matrix-free path
        exists to win.
    """

    #: Block products are per-column bitwise identical to single-vector
    #: ones (see :func:`repro.kernels.ops.supports_matvec_block`).
    block_matvec_bitwise = True

    def __init__(self, offsets, values, groups, group_labels=None, copy=True):
        offsets = np.asarray(offsets, dtype=np.int64)
        values = (  # zeroed in place below; asarray converts only if needed
            np.array(values, dtype=float) if copy
            else np.asarray(values, dtype=float)
        )
        groups = np.asarray(groups, dtype=np.int64)
        require(offsets.ndim == 1 and values.ndim == 2, "offsets (d,), values (d, n)")
        require(values.shape[0] == offsets.size, "one value row per offset")
        require(np.all(np.diff(offsets) > 0), "offsets must be strictly increasing")
        n = values.shape[1]
        require(groups.shape == (n,), "one group per unknown")
        for d, o in enumerate(offsets):
            o = int(o)
            if o < 0:
                values[d, : min(-o, n)] = 0.0
            elif o > 0:
                values[d, n - min(o, n):] = 0.0
        where = np.flatnonzero(offsets == 0)
        require(where.size == 1, "offsets must include the main diagonal (0)")
        diag = values[int(where[0])]
        require(bool(np.all(diag > 0.0)), "stencil diagonal must be positive")
        self.offsets = tuple(int(o) for o in offsets)
        self.values = values
        self.diag = diag
        self.groups = groups
        self.n_groups = int(groups.max()) + 1 if n else 0
        self.group_labels = (
            tuple(group_labels)
            if group_labels is not None
            else tuple(f"C{c}" for c in range(self.n_groups))
        )
        self.workspace = WorkspacePool()
        self._tables = None
        self._plan = None
        self._native = False  # resolved lazily: None or the kernel pack
        self._sweep_plan = False  # resolved lazily: None or (native, arrays)

    # ------------------------------------------------------------- protocol
    @property
    def n(self) -> int:
        return int(self.values.shape[1])

    @property
    def shape(self) -> tuple[int, int]:
        return (self.n, self.n)

    @property
    def dtype(self):
        return self.values.dtype

    @property
    def nnz(self) -> int:
        """Structural nonzeros (for memory/size reporting)."""
        return int(np.count_nonzero(self.values))

    def memory_bytes(self) -> int:
        """Bytes held by the diagonals and (if built) the sweep tables."""
        total = self.values.nbytes + self.groups.nbytes
        if self._tables is not None:
            for t in self._tables:
                total += t.rows.nbytes + t.diag.nbytes
                for _, _, cols, coeffs in t.lower + t.upper:
                    total += cols.nbytes + coeffs.nbytes
        if self._sweep_plan not in (False, None):
            total += sum(a.nbytes for a in self._sweep_plan[1])
        return total

    # --------------------------------------------------------------- matvec
    @property
    def _matvec_plan(self):
        """Per-diagonal apply recipes: scalar-dominated or full-vector.

        A regular-mesh diagonal is one constant almost everywhere — the
        exceptions are boundary tapering and grid-row wrap masks, ``O(√n)``
        of ``n`` entries.  Classifying each diagonal once lets the hot
        product multiply by a *scalar* (reading only ``x``, not the
        ``(n,)`` value row) and patch the exceptions by a tiny gather —
        elementwise identical to the full ``v·x`` product, entry for
        entry, so the bitwise contract is untouched.
        """
        if self._plan is None:
            n = self.n
            plan = []
            for o, v in zip(self.offsets, self.values):
                s = -o if o < 0 else 0
                e = n - o if o > 0 else n
                window = v[s:e]
                uniq, counts = np.unique(window, return_counts=True)
                c = float(uniq[np.argmax(counts)]) if uniq.size else 0.0
                exc = s + np.flatnonzero(window != c)
                if exc.size <= max(32, (e - s) // 8):
                    plan.append((o, s, e, c, exc, v[exc].copy(), None))
                else:
                    plan.append((o, s, e, None, None, None, v))
            self._plan = tuple(plan)
        return self._plan

    @property
    def _native_plan(self):
        """The compiled fused kernel plus its row classification, if usable.

        Usable means: every diagonal is scalar-dominated (the plan above
        chose the constant path for all of them), the special rows —
        boundary margins where a diagonal leaves the window, plus every
        row where a diagonal deviates from its constant — are a small
        fraction of ``n``, and the C kernel compiled.  Anything else
        keeps the numpy shifted-slice path, which is always correct.
        """
        if self._native is False:
            self._native = None
            native = load_native()
            plan = self._matvec_plan
            if native is not None and all(p[6] is None for p in plan):
                n = self.n
                lo = -self.offsets[0] if self.offsets[0] < 0 else 0
                hi = n - self.offsets[-1] if self.offsets[-1] > 0 else n
                hi = max(hi, lo)
                margins = [np.arange(0, lo), np.arange(hi, n)]
                exceptions = [p[4] for p in plan]
                srows = np.unique(np.concatenate(margins + exceptions))
                if srows.size <= max(64, n // 4):
                    self._native = (
                        native,
                        np.asarray(self.offsets, dtype=np.int64),
                        np.array([p[3] for p in plan], dtype=np.float64),
                        np.ascontiguousarray(srows, dtype=np.int64),
                        np.ascontiguousarray(self.values[:, srows]),
                    )
        return self._native

    def _apply_native(self, x: np.ndarray, out: np.ndarray, zero: bool):
        """One fused C pass per row, when layout and plan allow it."""
        plan = self._native_plan
        if (
            plan is None
            or x.dtype != np.float64
            or out.dtype != np.float64
            or not out.flags.writeable
        ):
            return None
        native, offs, cs, srows, svals = plan
        n, accumulate = self.n, not zero
        if x.ndim == 1:
            if not (x.flags.c_contiguous and out.flags.c_contiguous):
                return None
            stash = self.workspace.get("nat_stash", (srows.size,))
            native.apply_vector(n, offs, cs, srows, svals, stash, x, out, accumulate)
            return out
        if x.flags.c_contiguous and out.flags.c_contiguous:
            stash = self.workspace.get("nat_stash_b", (srows.size, x.shape[1]))
            native.apply_block(n, offs, cs, srows, svals, stash, x, out, accumulate)
            return out
        if x.flags.f_contiguous and out.flags.f_contiguous:
            # Column-major block: each column is a contiguous vector.
            stash = self.workspace.get("nat_stash", (srows.size,))
            for j in range(x.shape[1]):
                native.apply_vector(
                    n, offs, cs, srows, svals, stash, x[:, j], out[:, j], accumulate
                )
            return out
        return None

    #: Row-chunk size (in elements, chunk_rows × width) of the numpy
    #: fallback: the out chunk, the temporary and the x windows all stay
    #: cache-resident across the diagonals, so DRAM sees x and out once.
    _CHUNK_ELEMS = 16384

    def _apply(self, x: np.ndarray, out: np.ndarray, zero: bool) -> np.ndarray:
        done = self._apply_native(x, out, zero)
        if done is not None:
            return done
        n = self.n
        one_d = x.ndim == 1
        width = 1 if one_d else int(x.shape[1])
        rows = max(1, min(n, self._CHUNK_ELEMS // max(width, 1)))
        tmp = self.workspace.get("mv_tmp", (rows,) + x.shape[1:])
        plan = self._matvec_plan
        for cs in range(0, n, rows):
            ce = min(cs + rows, n)
            if zero:
                out[cs:ce] = 0.0
            for o, s, e, c, exc, exc_vals, v in plan:
                ls, le = max(cs, s), min(ce, e)
                if ls >= le:
                    continue
                t = tmp[: le - ls]
                if v is None:
                    np.multiply(x[ls + o : le + o], c, out=t)
                    if exc.size:
                        i0, i1 = np.searchsorted(exc, (ls, le))
                        if i1 > i0:
                            p = exc[i0:i1]
                            w = exc_vals[i0:i1]
                            t[p - ls] = (w if one_d else w[:, None]) * x[p + o]
                else:
                    np.multiply(
                        v[ls:le] if one_d else v[ls:le, None],
                        x[ls + o : le + o],
                        out=t,
                    )
                out[ls:le] += t
        return out

    def matvec_accumulate(self, x: np.ndarray, out: np.ndarray) -> np.ndarray:
        """``out += K·x`` by chunked, trimmed shifted slices.

        Per output element the terms accumulate in ascending-offset order
        — ascending column order per row, the association of the
        natural-ordering ``csr_matvec`` — so the sum is bitwise identical
        to the assembled product.  Handles ``(n,)`` and ``(n, k)``; the
        temporaries come from the operator's workspace pool, so
        steady-state applications allocate nothing.
        """
        return self._apply(x, out, zero=False)

    def matvec_into(self, x: np.ndarray, out: np.ndarray) -> np.ndarray:
        """``out ← K·x`` (chunk-wise zero-fill + accumulate)."""
        return self._apply(x, out, zero=True)

    def __matmul__(self, x):
        x = np.asarray(x, dtype=float)
        require(x.shape[0] == self.n, "operand length mismatch")
        out = np.zeros(x.shape)
        return self.matvec_accumulate(x, out)

    def to_csr(self) -> sp.csr_matrix:
        """Assemble the stencil (tests; defeats the point in production)."""
        rows, cols, data = [], [], []
        for o, v in zip(self.offsets, self.values):
            idx = np.flatnonzero(v)
            rows.append(idx)
            cols.append(idx + o)
            data.append(v[idx])
        return sp.coo_matrix(
            (np.concatenate(data), (np.concatenate(rows), np.concatenate(cols))),
            shape=self.shape,
        ).tocsr()

    # --------------------------------------------------------- sweep tables
    @property
    def sweep_tables(self) -> tuple[_GroupTable, ...]:
        """Per-color gather structure for the multicolor SSOR sweeps.

        Built once, lazily.  Verifies the multicolor contract on the
        actual coefficients: every off-diagonal offset of a color couples
        to exactly *one* other color (constant target group over its
        nonzero rows) and never to its own — the property that makes the
        color-block sweeps triangular without factorization.
        """
        if self._tables is None:
            n = self.n
            idx_dtype = np.int32 if n < 2**31 else np.int64
            tables = []
            for c in range(self.n_groups):
                rows = np.flatnonzero(self.groups == c)
                lower, upper = [], []
                for o, v in zip(self.offsets, self.values):
                    if o == 0:
                        continue
                    coeffs = np.ascontiguousarray(v[rows])
                    nz = coeffs != 0.0
                    if not nz.any():
                        continue
                    cols = np.clip(rows + o, 0, n - 1)
                    targets = self.groups[cols][nz]
                    target = int(targets[0])
                    require(
                        bool(np.all(targets == target)),
                        f"offset {o} of color {c} crosses color groups; "
                        "not a multicolor stencil",
                    )
                    require(
                        target != c,
                        f"offset {o} couples color {c} to itself; "
                        "not a multicolor stencil",
                    )
                    entry = (target, o, cols.astype(idx_dtype), coeffs)
                    (lower if target < c else upper).append(entry)
                lower.sort(key=lambda t: (t[0], t[1]))
                upper.sort(key=lambda t: (t[0], t[1]))
                tables.append(
                    _GroupTable(
                        rows=rows.astype(idx_dtype),
                        diag=np.ascontiguousarray(self.diag[rows]),
                        lower=tuple(lower),
                        upper=tuple(upper),
                        lower_count=len({t[0] for t in lower}),
                        upper_count=len({t[0] for t in upper}),
                    )
                )
            self._tables = tuple(tables)
        return self._tables

    @property
    def sweep_plan(self):
        """Flattened sweep schedule for the fused native kernel, or ``None``.

        The schedule concatenates the per-color tables into the flat
        arrays the C entry points walk: row-range pointers ``gp`` into
        the scheduled ``rows``/``diag``, and per half (lower/upper)
        entry-range pointers, column offsets, and a row-major ``(rows,
        entries)`` coefficient matrix per color (entries in the same
        ``(target, offset)`` order as the tables, so the in-kernel
        accumulation is bitwise the numpy ``block_sum``).  ``None`` when
        the compiled kernel is unavailable (``REPRO_NO_NATIVE``, no
        ``cc``) — callers then keep the chunked-numpy sweep.
        """
        if self._sweep_plan is False:
            self._sweep_plan = None
            native = load_native()
            if native is not None and self.n_groups > 0:
                tables = self.sweep_tables
                sizes = [t.rows.size for t in tables]
                gp = np.concatenate(
                    ([0], np.cumsum(sizes, dtype=np.int64))
                ).astype(np.int64)
                rows = np.concatenate([t.rows for t in tables]).astype(np.int64)
                diag = np.ascontiguousarray(
                    np.concatenate([t.diag for t in tables])
                )

                def half(side):
                    ep = np.zeros(self.n_groups + 1, dtype=np.int64)
                    bases = np.zeros(self.n_groups, dtype=np.int64)
                    offs, mats, base = [], [], 0
                    for c, t in enumerate(tables):
                        entries = getattr(t, side)
                        ep[c + 1] = ep[c] + len(entries)
                        bases[c] = base
                        offs.extend(int(e[1]) for e in entries)
                        if entries:
                            mat = np.ascontiguousarray(
                                np.stack([e[3] for e in entries], axis=1)
                            )
                        else:
                            mat = np.zeros((t.rows.size, 0))
                        mats.append(mat)
                        base += mat.size
                    coef = (
                        np.ascontiguousarray(
                            np.concatenate([m.ravel() for m in mats])
                        )
                        if base
                        else np.zeros(0)
                    )
                    return ep, np.array(offs, dtype=np.int64), bases, coef

                lp, loff, lcb, lcoef = half("lower")
                up, uoff, ucb, ucoef = half("upper")
                self._sweep_plan = (
                    native,
                    (gp, rows, diag, lp, loff, lcb, lcoef, up, uoff, ucb, ucoef),
                )
        return self._sweep_plan


@dataclass
class StencilSSOR:
    """m-step multicolor SSOR applied straight off the stencil.

    The natural-ordering twin of :class:`repro.multicolor.sor.MStepSSOR`:
    the same Horner recurrence over the same Conrad–Wallach merged double
    sweep (Algorithm 2), with the per-color block products realized as
    gather-multiply-accumulate off the stencil diagonals instead of merged
    CSR block rows.  Per color and offset the gathered terms accumulate in
    the same ascending permuted-column order as the merged CSR rows, so on
    a stencil whose coefficients bitwise match the assembled matrix the
    application is bitwise identical to ``unpermute ∘ MStepSSOR.apply ∘
    permute``.  Counters charge identically (per column for blocks).
    """

    operator: StencilOperator
    coefficients: np.ndarray
    counter: OperationCounter = field(default_factory=OperationCounter)
    #: ``None`` (the default) shares the operator's pool: every sweep
    #: bound to one operator reuses the same ~n-sized gather/solve
    #: buffers, so a session's interval probe and its cell applicators
    #: pay for them once.  Sweeps never nest, so sharing is safe; pass a
    #: private pool only for concurrent applies against one operator.
    workspace: WorkspacePool | None = field(default=None, repr=False)

    #: ``(n, k)`` blocks are per-column bitwise identical to vectors.
    block_capable = True

    def __post_init__(self) -> None:
        self.coefficients = np.atleast_1d(np.asarray(self.coefficients, dtype=float))
        require(self.coefficients.ndim == 1, "coefficients must be a vector")
        require(self.coefficients.size >= 1, "need at least one step (m ≥ 1)")
        if self.workspace is None:
            self.workspace = self.operator.workspace

    @property
    def m(self) -> int:
        return int(self.coefficients.size)

    def apply(self, r: np.ndarray) -> np.ndarray:
        """``M_m⁻¹ r`` in natural ordering; ``(n,)`` or ``(n, k)``.

        Runs the fused native sweep when the compiled kernel is
        available, else the chunked-numpy sweep — the two are bitwise
        identical (same per-row accumulation order and subtraction
        association; ``-ffp-contract=off`` keeps the C chain unfused).
        The returned array is a pooled buffer, valid until the next
        ``apply`` of any sweep sharing this pool (by default every sweep
        bound to the same operator) — copy it if it must outlive that.
        """
        pool = self.workspace
        r = np.asarray(r, dtype=float)
        rt_pooled = pool.peek("rt")
        if rt_pooled is not None and np.may_share_memory(r, rt_pooled):
            r = r.copy()
        plan = self.operator.sweep_plan
        if plan is not None:
            return self._apply_native(r, plan)
        return self._apply_numpy(r)

    def _charge(self, multiplies: int, solves: int, ncols: int) -> None:
        self.counter.precond_applications += ncols
        self.counter.precond_steps += self.m * ncols
        self.counter.extra["block_multiplies"] = (
            self.counter.extra.get("block_multiplies", 0) + multiplies * ncols
        )
        self.counter.extra["diag_solves"] = (
            self.counter.extra.get("diag_solves", 0) + solves * ncols
        )

    def _apply_native(self, r: np.ndarray, plan) -> np.ndarray:
        """One fused C call for the whole m-step schedule."""
        native, arrays = plan
        op = self.operator
        tables = op.sweep_tables
        n, nc, m = op.n, op.n_groups, self.m
        pool = self.workspace
        r = np.ascontiguousarray(r)
        rt = pool.get("rt", r.shape)
        if r.ndim == 1:
            y = pool.get("ssor_y", (n,))
            native.ssor_vector(n, m, nc, arrays, self.coefficients, r, rt, y)
        else:
            k = int(r.shape[1])
            y = pool.get("ssor_y_b", (n, k))
            acc = pool.get("ssor_acc", (k,))
            native.ssor_block(
                n, k, m, nc, arrays, self.coefficients, r, rt, y, acc
            )
        # Identical charges to the numpy loop, in closed form.
        per_step = sum(t.lower_count for t in tables)
        per_step += sum(tables[c].upper_count for c in range(nc - 2, 0, -1))
        if nc >= 2:
            per_step += tables[0].upper_count
        solves = m * (nc + max(nc - 2, 0)) + (1 if nc >= 2 else 0)
        self._charge(m * per_step, solves, 1 if r.ndim == 1 else int(r.shape[1]))
        return rt

    def _apply_numpy(self, r: np.ndarray) -> np.ndarray:
        """Chunked-numpy sweep; the always-available bitwise twin."""
        op = self.operator
        tables = op.sweep_tables
        nc = op.n_groups
        m = self.m
        alphas = self.coefficients
        pool = self.workspace

        cache = self.__dict__.get("_apply_buffers")
        if cache is None or cache[0] != r.shape:
            tail = r.shape[1:]
            group_shapes = [(t.rows.shape[0],) + tail for t in tables]
            cache = (
                r.shape,
                pool.get("rt", r.shape),
                pool.get("ar", r.shape),
                pool.get_list("y", group_shapes),
                pool.get_list("x", group_shapes),
                pool.get_list("z", group_shapes),
                pool.get_list("g", group_shapes),
                pool.get_list("arg", group_shapes),
                (
                    [t.diag for t in tables]
                    if r.ndim == 1
                    else [
                        np.ascontiguousarray(
                            np.broadcast_to(t.diag[:, None], t.diag.shape + tail)
                        )
                        for t in tables
                    ]
                ),
            )
            self.__dict__["_apply_buffers"] = cache
        _, rt, ar, y, xs, zs, gs, args, divisors = cache
        one_d = r.ndim == 1
        multiplies = 0
        solves = 0

        def block_sum(entries, buf: np.ndarray, gbuf: np.ndarray) -> np.ndarray:
            # Σ_j B_cj x_j as gather·coeff accumulations, one per coupled
            # (color, offset); per row the terms land in ascending
            # permuted-column order, matching the merged CSR block rows.
            buf.fill(0.0)
            for _, _, cols, coeffs in entries:
                np.take(rt, cols, axis=0, out=gbuf)
                gbuf *= coeffs if one_d else coeffs[:, None]
                buf += gbuf
            return buf

        def solve_into(c: int, x: np.ndarray, yc) -> None:
            # zc ← (α·r_c − y_c − x) / D_c, then scatter into rt —
            # the same subtraction order as MStepSSOR.solve_into.
            t = tables[c]
            zc = zs[c]
            np.take(ar, t.rows, axis=0, out=args[c])
            if yc is None:
                np.subtract(args[c], x, out=zc)
            else:
                np.subtract(args[c], yc, out=zc)
                zc -= x
            zc /= divisors[c]
            rt[t.rows] = zc

        for s in range(1, m + 1):
            np.multiply(r, alphas[m - s], out=ar)
            first = s == 1
            for c in range(nc):
                x = block_sum(tables[c].lower, xs[c], gs[c])
                multiplies += tables[c].lower_count
                solve_into(c, x, None if first else y[c])
                solves += 1
                y[c], xs[c] = xs[c], y[c]
            for c in range(nc - 2, 0, -1):
                x = block_sum(tables[c].upper, xs[c], gs[c])
                multiplies += tables[c].upper_count
                solve_into(c, x, y[c])
                solves += 1
                y[c], xs[c] = xs[c], y[c]
            if nc >= 2:
                y[nc - 1].fill(0.0)
            if nc >= 2:
                x = block_sum(tables[0].upper, xs[0], gs[0])
                multiplies += tables[0].upper_count
                if s == m:
                    solve_into(0, x, None)
                    solves += 1
                else:
                    y[0], xs[0] = xs[0], y[0]

        self._charge(multiplies, solves, 1 if one_d else int(r.shape[1]))
        return rt
