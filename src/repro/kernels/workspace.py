"""Per-object workspace pools.

An m-step PCG solve applies the preconditioner thousands of times with
identically shaped vectors; a :class:`WorkspacePool` hands each call the
same named buffers so the steady state allocates nothing.  Buffers are
reallocated transparently when the requested shape changes (e.g. a
batched ``(n, k)`` application after vector ones).
"""

from __future__ import annotations

import numpy as np

__all__ = ["WorkspacePool"]


class WorkspacePool:
    """Named, shape-checked scratch buffers (not thread-safe, like numpy)."""

    def __init__(self):
        self._buffers: dict[str, np.ndarray] = {}

    def get(self, name: str, shape, dtype=np.float64) -> np.ndarray:
        """A buffer named ``name`` of exactly ``shape`` (contents arbitrary)."""
        shape = (shape,) if np.isscalar(shape) else tuple(shape)
        buf = self._buffers.get(name)
        if buf is None or buf.shape != shape or buf.dtype != np.dtype(dtype):
            buf = np.empty(shape, dtype=dtype)
            self._buffers[name] = buf
        return buf

    def zeros(self, name: str, shape, dtype=np.float64) -> np.ndarray:
        """Like :meth:`get` but zero-filled on every call."""
        buf = self.get(name, shape, dtype)
        buf.fill(0.0)
        return buf

    def clear(self) -> None:
        self._buffers.clear()

    @property
    def allocated_bytes(self) -> int:
        return sum(b.nbytes for b in self._buffers.values())
