"""Per-object workspace pools.

An m-step PCG solve applies the preconditioner thousands of times with
identically shaped vectors; a :class:`WorkspacePool` hands each call the
same named buffers so the steady state allocates nothing.  Buffers are
reallocated transparently when the requested shape changes (e.g. a
batched ``(n, k)`` application after vector ones).
"""

from __future__ import annotations

import numpy as np

__all__ = ["WorkspacePool"]


class WorkspacePool:
    """Named, shape-checked scratch buffers (not thread-safe, like numpy)."""

    def __init__(self):
        self._buffers: dict[str, np.ndarray] = {}

    def get(self, name: str, shape, dtype=np.float64) -> np.ndarray:
        """A buffer named ``name`` of exactly ``shape`` (contents arbitrary)."""
        shape = (shape,) if np.isscalar(shape) else tuple(shape)
        buf = self._buffers.get(name)
        if buf is None or buf.shape != shape or buf.dtype != np.dtype(dtype):
            buf = np.empty(shape, dtype=dtype)
            self._buffers[name] = buf
        return buf

    def zeros(self, name: str, shape, dtype=np.float64) -> np.ndarray:
        """Like :meth:`get` but zero-filled on every call."""
        buf = self.get(name, shape, dtype)
        buf.fill(0.0)
        return buf

    def get_list(self, name: str, shapes, dtype=np.float64) -> list[np.ndarray]:
        """One buffer per entry of ``shapes``, named ``name0``, ``name1``, …

        The per-color auxiliary vectors of the multicolor sweeps (one ``y``
        and one scratch accumulator per color) pool through this; callers
        may freely swap the returned list's elements between roles — the
        buffers stay owned by the pool either way.
        """
        return [self.get(f"{name}{i}", s, dtype) for i, s in enumerate(shapes)]

    def zeros_list(self, name: str, shapes, dtype=np.float64) -> list[np.ndarray]:
        """Like :meth:`get_list` but every buffer zero-filled."""
        buffers = self.get_list(name, shapes, dtype)
        for buf in buffers:
            buf.fill(0.0)
        return buffers

    def peek(self, name: str) -> np.ndarray | None:
        """The buffer currently pooled under ``name``, if any (no allocation).

        Lets a consumer detect that an *input* aliases one of its own
        pooled buffers (e.g. an apply fed its previous pooled result) and
        defensively copy before overwriting it.
        """
        return self._buffers.get(name)

    def clear(self) -> None:
        self._buffers.clear()

    @property
    def allocated_bytes(self) -> int:
        return sum(b.nbytes for b in self._buffers.values())
