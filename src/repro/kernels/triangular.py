"""Cached triangular application — the kernel behind every splitting solve.

The paper's point (3.1): under a multicolor ordering the SSOR factors
``D − ωL`` and ``D − ωU`` are *block* triangular with genuinely diagonal
diagonal blocks, so the "triangular solve" is really ``nc`` dense vector
updates

    z_c ← (r_c − Σ_{j<c} T_cj z_j) / d_c          (lower; upper mirrored)

— all vector-length work, no row recurrence.  :class:`ColorBlockTriangularSolver`
precomputes the per-color CSR sub-blocks and inverse diagonals once at
construction and replays them on every solve, for single vectors or
``(n, k)`` blocks of right-hand sides.

Matrices that are *not* color-structured (incomplete-Cholesky factors of
naturally ordered systems, arbitrary test matrices) get
:class:`FactorizedTriangularSolver`: one CSC conversion + SuperLU
factorization cached across the thousands of solves a Table-2 sweep makes.
:class:`ReferenceTriangularSolver` keeps the row-sequential
``spsolve_triangular`` formulation for the ``"reference"`` backend pin.

:func:`detect_color_slices` discovers the block structure from the sparsity
pattern alone, so consumers need not thread the multicolor ordering through
— a splitting built on ``blocked.permuted`` finds its six color blocks by
itself.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla
from scipy.sparse.linalg import spsolve_triangular

from repro.kernels.backend import REFERENCE, resolve_backend
from repro.kernels.ops import matvec_accumulate
from repro.kernels.workspace import WorkspacePool

__all__ = [
    "detect_color_slices",
    "ColorBlockTriangularSolver",
    "ColorBlockMergedSweep",
    "FactorizedTriangularSolver",
    "ReferenceTriangularSolver",
    "make_triangular_solver",
]

#: Above this many detected blocks the per-color Python loop stops paying
#: for itself and the factorized path wins.
MAX_COLOR_GROUPS = 32


def detect_color_slices(
    t: sp.spmatrix, lower: bool = True, max_groups: int | None = None
) -> tuple[slice, ...] | None:
    """Partition ``0..n`` into consecutive blocks with diagonal diagonal-blocks.

    Returns the coarsest front-to-back greedy partition such that the
    strictly-triangular part of ``t`` has no entry *inside* any block —
    exactly the condition under which the block solve above is valid.  For
    a matrix permuted by a :class:`~repro.multicolor.ordering.MulticolorOrdering`
    this recovers the color groups.  Returns ``None`` when more than
    ``max_groups`` blocks would be needed (structure absent; use the
    factorized fallback).
    """
    t = t.tocsr()
    n = t.shape[0]
    if max_groups is None:
        max_groups = MAX_COLOR_GROUPS
    if n == 0:
        return ()
    if lower:
        strict = sp.tril(t, -1).tocoo()
        # extreme[i] = max column of row i's strictly-lower entries (−1: none)
        extreme = np.full(n, -1, dtype=np.int64)
        np.maximum.at(extreme, strict.row, strict.col)
        bounds = [0]
        start = 0
        for i in range(n):
            if extreme[i] >= start:
                bounds.append(i)
                start = i
                if len(bounds) > max_groups:
                    return None
        bounds.append(n)
    else:
        strict = sp.triu(t, 1).tocoo()
        # extreme[i] = min column of row i's strictly-upper entries (n: none)
        extreme = np.full(n, n, dtype=np.int64)
        np.minimum.at(extreme, strict.row, strict.col)
        rbounds = [n]
        end = n
        for i in range(n - 1, -1, -1):
            if extreme[i] < end:
                rbounds.append(i + 1)
                end = i + 1
                if len(rbounds) > max_groups:
                    return None
        rbounds.append(0)
        bounds = rbounds[::-1]
    return tuple(
        slice(bounds[c], bounds[c + 1]) for c in range(len(bounds) - 1)
    )


class ColorBlockTriangularSolver:
    """``T z = r`` by ``nc`` dense color-block updates (cached sub-blocks).

    ``T`` must be (block-)triangular with diagonal diagonal-blocks on the
    given ``slices`` — the form every multicolor-ordered SSOR/SOR factor
    has.  Solves accept ``(n,)`` vectors or ``(n, k)`` blocks.
    """

    kind = "color_block"

    def __init__(self, t: sp.spmatrix, slices, lower: bool = True):
        t = t.tocsr()
        self.lower = bool(lower)
        self.slices = tuple(slices)
        self.n = t.shape[0]
        diag = t.diagonal()
        if not np.all(diag != 0.0):
            raise ValueError("triangular matrix has a zero diagonal entry")
        nc = len(self.slices)
        self._inv_diag = [1.0 / diag[s] for s in self.slices]
        self._blocks: list[list[tuple[int, sp.csr_matrix]]] = []
        for c in range(nc):
            rows = t[self.slices[c]]
            js = range(c) if lower else range(c + 1, nc)
            row_blocks = []
            for j in js:
                block = rows[:, self.slices[j]].tocsr()
                if block.nnz:
                    row_blocks.append((j, block))
            self._blocks.append(row_blocks)
        self._order = range(nc) if lower else range(nc - 1, -1, -1)

    @property
    def n_groups(self) -> int:
        return len(self.slices)

    def solve(self, b: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        b = np.asarray(b, dtype=np.float64)
        z = out if out is not None and out.shape == b.shape else np.empty_like(b)
        slices = self.slices
        for c in self._order:
            sc = slices[c]
            acc = np.array(b[sc], dtype=np.float64)
            for j, block in self._blocks[c]:
                acc -= block @ z[slices[j]]
            inv = self._inv_diag[c] if b.ndim == 1 else self._inv_diag[c][:, None]
            np.multiply(acc, inv, out=z[sc])
        return z


class ColorBlockMergedSweep:
    """m-step Conrad–Wallach merged sweeps over cached color-block factors.

    The kernel behind the machine simulators' preconditioner path: given the
    *lower* factor ``D + strict-block-lower(K)`` and the *upper* factor
    ``D + strict-block-upper(K)`` of a multicolor-ordered system — each as a
    :class:`ColorBlockTriangularSolver`, whose cached per-color CSR
    sub-blocks and inverse diagonals this class reuses — ``apply`` realizes
    Algorithm 2's merged double sweeps

    ``r̃_c ← (−Σ_j B_cj r̃_j + y_c + α_{m−s} r_c) / D_c``

    for single vectors or ``(n, k)`` blocks of right-hand sides.  All
    auxiliary vectors (the per-color ``y`` carries and block-sum
    accumulators) live in a :class:`WorkspacePool`, so steady-state
    applications allocate nothing; the returned array is a pooled buffer
    valid until the next ``apply`` on the same object.

    The loop structure (forward sweep, backward interior sweep, closing
    first-color solve, ``y``/scratch swap protocol) is deliberately kept
    in lockstep with :meth:`repro.multicolor.sor.MStepSSOR.apply` and the
    CYBER simulator's reference/charge replicas — the equivalence suites
    (``test_kernels.py``, ``test_machines_backend.py``) pin them to each
    other; a change to one belongs in all.
    """

    kind = "color_block_merged"

    def __init__(
        self,
        lower: ColorBlockTriangularSolver,
        upper: ColorBlockTriangularSolver,
        pool: WorkspacePool | None = None,
    ):
        if lower.slices != upper.slices:
            raise ValueError("lower/upper factors disagree on the color blocks")
        # Both factors must carry the same diagonal D (the merged sweep
        # scales every solve by it); fail fast rather than corrupt silently.
        if any(
            not np.array_equal(dl, du)
            for dl, du in zip(lower._inv_diag, upper._inv_diag)
        ):
            raise ValueError("lower/upper factors disagree on the diagonal")
        self.lower = lower
        self.upper = upper
        self.slices = lower.slices
        self.n = lower.n
        self.pool = pool if pool is not None else WorkspacePool()

    @property
    def n_groups(self) -> int:
        return len(self.slices)

    def apply(self, coefficients: np.ndarray, r: np.ndarray) -> np.ndarray:
        """``(α₀ I + … + α_{m−1} G^{m−1}) P⁻¹ r`` by merged sweeps.

        ``coefficients`` is ``(m,)`` — one schedule for every right-hand
        side — or ``(m, k)`` for an ``(n, k)`` block ``r`` whose columns
        carry *different* α schedules of the same length (the batched
        multi-cell sweep of :meth:`repro.machines.cyber.CyberMachine
        .solve_schedule`).  Per-column α's enter only through elementwise
        broadcasts, so each column's arithmetic is bit-identical to a
        single-vector apply with its own schedule.
        """
        coefficients = np.atleast_1d(np.asarray(coefficients, dtype=np.float64))
        m = int(coefficients.shape[0])
        r = np.asarray(r, dtype=np.float64)
        if coefficients.ndim == 2:
            if r.ndim != 2 or r.shape[1] != coefficients.shape[1]:
                raise ValueError(
                    "per-column coefficients need an (n, k) block with "
                    "matching column count"
                )
        nc = self.n_groups
        slices = self.slices
        pool = self.pool
        tail = r.shape[1:]
        inv_diag = self.lower._inv_diag
        lower_blocks = self.lower._blocks
        upper_blocks = self.upper._blocks

        rt_pooled = pool.peek("rt")
        if rt_pooled is not None and np.may_share_memory(r, rt_pooled):
            # The caller fed us our own pooled result; zero-filling it below
            # would silently destroy the input.
            r = r.copy()
        rt = pool.zeros("rt", r.shape)
        rg = [r[s] for s in slices]
        xg = [rt[s] for s in slices]
        group_shapes = [(s.stop - s.start,) + tail for s in slices]
        y = pool.zeros_list("y", group_shapes)
        xs = pool.get_list("x", group_shapes)

        def block_sum_neg(pairs, buf: np.ndarray) -> np.ndarray:
            """``buf ← −Σ_j B_cj r̃_j`` over the cached ``(j, block)`` pairs."""
            buf.fill(0.0)
            for j, block in pairs:
                matvec_accumulate(block, xg[j], buf)
            np.negative(buf, out=buf)
            return buf

        def solve_into(c: int, x: np.ndarray, yc, alpha) -> None:
            zc = xg[c]
            np.multiply(rg[c], alpha, out=zc)
            if yc is not None:
                zc += yc
            zc += x
            zc *= inv_diag[c] if r.ndim == 1 else inv_diag[c][:, None]

        for s in range(1, m + 1):
            # Scalar α for a shared schedule; an (k,) row of per-column α's
            # otherwise (broadcast across the block in solve_into).
            alpha = (
                float(coefficients[m - s])
                if coefficients.ndim == 1
                else coefficients[m - s]
            )
            for c in range(nc):
                x = block_sum_neg(lower_blocks[c], xs[c])
                solve_into(c, x, y[c], alpha)
                y[c], xs[c] = xs[c], y[c]
            for c in range(nc - 2, 0, -1):
                x = block_sum_neg(upper_blocks[c], xs[c])
                solve_into(c, x, y[c], alpha)
                y[c], xs[c] = xs[c], y[c]
            if nc >= 2:
                # The last color's upper sum is empty; the first color closes
                # the step (coefficient α_{m−s}) on the final step and
                # otherwise feeds the next forward sweep's first solve.
                y[nc - 1].fill(0.0)
                x = block_sum_neg(upper_blocks[0], xs[0])
                if s == m:
                    solve_into(0, x, None, alpha)
                else:
                    y[0], xs[0] = xs[0], y[0]
        return rt


class FactorizedTriangularSolver:
    """Cached SuperLU factorization of a triangular matrix.

    Structure-unaware fallback: the CSC conversion and (trivial, natural-
    order, unpivoted) factorization happen once; every subsequent solve is
    one compiled sweep, for vectors or ``(n, k)`` blocks.
    """

    kind = "factorized"

    def __init__(self, t: sp.spmatrix, lower: bool = True):
        self.lower = bool(lower)
        self.n = t.shape[0]
        self._lu = spla.splu(
            t.tocsc(),
            permc_spec="NATURAL",
            options={"DiagPivotThresh": 0.0, "SymmetricMode": False},
        )

    def solve(self, b: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        z = self._lu.solve(np.asarray(b, dtype=np.float64))
        if out is not None and out.shape == z.shape:
            out[...] = z
            return out
        return z


class ReferenceTriangularSolver:
    """Row-sequential ``spsolve_triangular`` — the paper-faithful pin."""

    kind = "reference"

    def __init__(self, t: sp.spmatrix, lower: bool = True):
        self.lower = bool(lower)
        self.n = t.shape[0]
        self._t = t.tocsr()

    def solve(self, b: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        z = spsolve_triangular(self._t, np.asarray(b, dtype=np.float64), lower=self.lower)
        if out is not None and out.shape == z.shape:
            out[...] = z
            return out
        return z


def make_triangular_solver(
    t: sp.spmatrix,
    lower: bool = True,
    slices=None,
    backend: str | None = None,
    max_groups: int | None = None,
):
    """Build the best cached solver for ``T`` under the given backend.

    ``"reference"`` always returns the row-sequential solver.  The
    vectorized backend uses the color-block sweep when ``slices`` are given
    or detected, and the cached factorization otherwise.
    """
    if resolve_backend(backend) == REFERENCE:
        return ReferenceTriangularSolver(t, lower=lower)
    if slices is None:
        slices = detect_color_slices(t, lower=lower, max_groups=max_groups)
    if slices is not None and len(slices) >= 1:
        return ColorBlockTriangularSolver(t, slices, lower=lower)
    return FactorizedTriangularSolver(t, lower=lower)
