"""The kernel backend layer — every solver's hot primitives live here.

The paper's vectorization argument, realized in numpy: under a multicolor
ordering the SSOR triangular solves decompose into a handful of dense
color-block operations (:mod:`repro.kernels.triangular`), the PCG loop is
three fused in-place updates (:mod:`repro.kernels.ops`), and the steady
state runs out of preallocated workspaces
(:mod:`repro.kernels.workspace`).

Every consumer dispatches on a backend name
(:mod:`repro.kernels.backend`): ``"vectorized"`` is the default fast
path, ``"reference"`` the paper-faithful row-sequential formulation that
the equivalence test-suite pins the fast path against.
"""

from repro.kernels.backend import (
    BACKENDS,
    REFERENCE,
    SOLVER_BACKENDS,
    STENCIL,
    VECTORIZED,
    default_backend,
    resolve_backend,
    resolve_solver_backend,
    set_default_backend,
    use_backend,
)
from repro.kernels.ops import (
    axpy,
    matvec_accumulate,
    matvec_into,
    row_scale,
    supports_matvec_block,
    supports_matvec_into,
    xpay_into,
)
from repro.kernels.triangular import (
    ColorBlockMergedSweep,
    ColorBlockTriangularSolver,
    FactorizedTriangularSolver,
    ReferenceTriangularSolver,
    detect_color_slices,
    make_triangular_solver,
)
from repro.kernels.stencil import StencilOperator, StencilSSOR
from repro.kernels.workspace import WorkspacePool

__all__ = [
    "BACKENDS",
    "REFERENCE",
    "SOLVER_BACKENDS",
    "STENCIL",
    "VECTORIZED",
    "default_backend",
    "resolve_backend",
    "resolve_solver_backend",
    "set_default_backend",
    "use_backend",
    "StencilOperator",
    "StencilSSOR",
    "axpy",
    "matvec_accumulate",
    "matvec_into",
    "row_scale",
    "supports_matvec_block",
    "supports_matvec_into",
    "xpay_into",
    "ColorBlockMergedSweep",
    "ColorBlockTriangularSolver",
    "FactorizedTriangularSolver",
    "ReferenceTriangularSolver",
    "detect_color_slices",
    "make_triangular_solver",
    "WorkspacePool",
]
