"""Fused, allocation-free vector primitives.

The outer PCG iteration and the Horner recurrence of the m-step
preconditioner are built from three updates — ``y ← y + α·x`` (axpy),
``y ← x + β·y`` (xpay) and ``out ← K·x`` — which naive numpy spells as
``y += alpha * x`` etc., allocating a temporary per call.  These helpers
perform the same arithmetic through ``np.multiply(..., out=)`` so the
steady-state iteration touches only preallocated buffers.

All results are bit-identical to the naive spellings: they execute the
same elementary operations in the same order (IEEE addition is
commutative, so ``β·y + x`` equals ``x + β·y`` bitwise).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

try:  # scipy's compiled CSR kernels; absent only on exotic builds.
    from scipy.sparse import _sparsetools as _csr_tools

    _csr_matvec = _csr_tools.csr_matvec
    _csr_matvecs = getattr(_csr_tools, "csr_matvecs", None)
except (ImportError, AttributeError):  # pragma: no cover - fallback guard
    _csr_matvec = None
    _csr_matvecs = None

__all__ = [
    "axpy",
    "xpay_into",
    "row_scale",
    "supports_matvec_into",
    "supports_matvec_block",
    "matvec_into",
    "matvec_accumulate",
    "bind_matvec_accumulate",
]


def axpy(alpha: float, x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """``y + α·x`` with a single temporary (the result itself)."""
    out = np.multiply(x, alpha)
    out += y
    return out


def xpay_into(x: np.ndarray, beta: float, y: np.ndarray) -> np.ndarray:
    """``y ← x + β·y`` fully in place (the PCG direction update)."""
    np.multiply(y, beta, out=y)
    y += x
    return y


def row_scale(x: np.ndarray, v: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
    """Scale the rows of ``x`` by the vector ``v``; works on (n,) and (n, k)."""
    scale = v if x.ndim == 1 else v[:, None]
    if out is None:
        return x * scale
    np.multiply(x, scale, out=out)
    return out


def supports_matvec_into(a, x: np.ndarray, out: np.ndarray) -> bool:
    """Whether :func:`matvec_into` has a zero-allocation path for ``a @ x``."""
    if isinstance(a, np.ndarray):
        return True
    if not sp.issparse(a) and callable(getattr(a, "matvec_into", None)):
        # Matrix-free operators (repro.kernels.stencil.StencilOperator)
        # bring their own fused in-place product.
        return True
    return (
        _csr_matvec is not None
        and sp.issparse(a)
        and a.format == "csr"
        and a.dtype == np.float64
        and x.ndim == 1
        and out.ndim == 1
        and x.dtype == np.float64
        and out.dtype == np.float64
        and x.flags.c_contiguous
        and out.flags.c_contiguous
    )


def supports_matvec_block(a) -> bool:
    """Whether ``a @ X`` on an ``(n, k)`` block is per-column bitwise safe.

    True for float64 CSR with scipy's compiled ``csr_matvecs`` available,
    and for matrix-free operators that declare ``block_matvec_bitwise``
    (:class:`repro.kernels.stencil.StencilOperator`) — the cases where
    every column of the block product is bit-identical to the
    single-vector form (both accumulate each row's nonzeros in index
    order).  :func:`repro.core.pcg.block_pcg` uses this to decide between
    one batched product and a per-column loop.
    """
    if not sp.issparse(a) and getattr(a, "block_matvec_bitwise", False):
        return True
    return (
        _csr_matvecs is not None
        and sp.issparse(a)
        and a.format == "csr"
        and a.dtype == np.float64
    )


def matvec_into(a, x: np.ndarray, out: np.ndarray) -> np.ndarray:
    """``out ← a @ x`` without allocating the result when possible.

    CSR matrices go through scipy's compiled ``csr_matvec`` (which
    accumulates, hence the zero-fill); dense operators through
    ``np.matmul(..., out=)``; anything else falls back to ``a @ x``.
    """
    if isinstance(a, np.ndarray):
        np.matmul(a, x, out=out)
        return out
    if not sp.issparse(a) and callable(getattr(a, "matvec_into", None)):
        return a.matvec_into(x, out)
    if supports_matvec_into(a, x, out):
        out[:] = 0.0
        _csr_matvec(a.shape[0], a.shape[1], a.indptr, a.indices, a.data, x, out)
        return out
    out[:] = a @ x
    return out


def matvec_accumulate(a, x: np.ndarray, out: np.ndarray) -> np.ndarray:
    """``out += a @ x`` without a temporary when the compiled path applies.

    Scipy's ``csr_matvec`` / ``csr_matvecs`` *accumulate* into their output
    (the reason :func:`matvec_into` zero-fills first) — here that is exactly
    the semantics wanted, so the block sums of the multicolor sweeps can run
    over preallocated accumulators.  Handles ``(n,)`` vectors and ``(n, k)``
    blocks; anything outside the fast path falls back to ``out += a @ x``
    (one temporary, same arithmetic).
    """
    if not sp.issparse(a) and callable(getattr(a, "matvec_accumulate", None)):
        return a.matvec_accumulate(x, out)
    if (
        sp.issparse(a)
        and a.format == "csr"
        and a.dtype == np.float64
        and x.dtype == np.float64
        and out.dtype == np.float64
        and x.flags.c_contiguous
        and out.flags.c_contiguous
        # The compiled kernels trust their dimensions blindly; mismatched
        # shapes must fall through to `out += a @ x`, which raises.
        and a.shape[1] == x.shape[0]
        and a.shape[0] == out.shape[0]
    ):
        if x.ndim == 1 and out.ndim == 1 and _csr_matvec is not None:
            _csr_matvec(a.shape[0], a.shape[1], a.indptr, a.indices, a.data, x, out)
            return out
        if (
            x.ndim == 2
            and out.ndim == 2
            and x.shape[1] == out.shape[1]
            and _csr_matvecs is not None
        ):
            _csr_matvecs(
                a.shape[0], a.shape[1], x.shape[1],
                a.indptr, a.indices, a.data, x.ravel(), out.ravel(),
            )
            return out
    out += a @ x
    return out


def bind_matvec_accumulate(a):
    """``out += a @ x`` with the operand's guards hoisted out of the loop.

    :func:`matvec_accumulate` re-validates format, dtype and shapes on
    every call — ~µs of pure Python per invocation, which the multicolor
    sweeps pay tens of thousands of times per solve over the *same* small
    color blocks.  For a fixed float64 CSR operand those checks are loop
    invariants: this binds them once and returns an ``accumulate(x, out)``
    closure that goes straight to the compiled kernels.  The per-call cost
    is width-independent, so narrow right-hand-side blocks (the sharded
    column groups) gain the most.

    Returns ``None`` when the operand has no fully-guarded fast path —
    callers keep :func:`matvec_accumulate` for those.  Callers must
    guarantee what the binding no longer checks: float64 C-contiguous
    ``x``/``out`` with matching dimensions (the sweeps' pooled workspace
    buffers and group views satisfy this by construction).  The compiled
    kernels are the very ones :func:`matvec_accumulate` dispatches to, so
    results are bitwise identical.
    """
    if not (
        sp.issparse(a)
        and a.format == "csr"
        and a.dtype == np.float64
        and _csr_matvec is not None
        and _csr_matvecs is not None
    ):
        return None
    nrow, ncol = int(a.shape[0]), int(a.shape[1])
    indptr, indices, data = a.indptr, a.indices, a.data

    def accumulate(x: np.ndarray, out: np.ndarray) -> np.ndarray:
        if x.ndim == 1:
            _csr_matvec(nrow, ncol, indptr, indices, data, x, out)
        else:
            _csr_matvecs(
                nrow, ncol, x.shape[1], indptr, indices, data,
                x.ravel(), out.ravel(),
            )
        return out

    return accumulate
